#include "bench/experiments.h"

#include <algorithm>
#include <sstream>

#include "src/common/status.h"
#include "src/core/tuning.h"
#include "src/models/dlrm.h"
#include "src/models/moe.h"
#include "src/models/workload.h"
#include "src/net/cost.h"
#include "src/net/topology.h"
#include "src/obs/json.h"

namespace mcrdl::bench {

const BenchSeries* BenchReport::find(const std::string& name) const {
  for (const auto& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const BenchPoint& BenchReport::at(const std::string& name, int world) const {
  const BenchSeries* s = find(name);
  if (s != nullptr) {
    for (const auto& p : s->points) {
      if (p.world == world) return p;
    }
  }
  throw InvalidArgument("no bench point for series '" + name + "' at world " +
                        std::to_string(world));
}

namespace {

void append_number(std::ostringstream& out, double v) {
  std::ostringstream num;
  num.precision(12);
  num << v;
  out << num.str();
}

}  // namespace

std::string to_bench_json(const BenchReport& report) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kBenchSchema << "\",\"experiment\":\""
      << obs::json_escape(report.experiment) << "\",\"series\":[";
  bool first_series = true;
  for (const auto& s : report.series) {
    if (!first_series) out << ",";
    first_series = false;
    out << "{\"name\":\"" << obs::json_escape(s.name) << "\",\"backend\":\""
        << obs::json_escape(s.backend) << "\",\"points\":[";
    bool first_point = true;
    for (const auto& p : s.points) {
      if (!first_point) out << ",";
      first_point = false;
      out << "{\"world\":" << p.world << ",\"bytes\":" << p.bytes << ",\"virtual_us\":";
      append_number(out, p.virtual_us);
      out << ",\"items_per_s\":";
      append_number(out, p.items_per_s);
      out << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

// --- figure 2 ---------------------------------------------------------------

BenchReport run_fig2(const Fig2Options& options) {
  Fig2Options opts = options;
  if (opts.sizes.empty()) {
    opts.sizes = {1u << 10,   4u << 10, 16u << 10, 64u << 10, 256u << 10,
                  1u << 20, 4u << 20, 16u << 20,  64u << 20};
  }
  if (opts.backends.empty()) opts.backends = {"mv2-gdr", "ompi", "nccl", "sccl"};
  if (opts.quick) {
    // CI smoke grid: two backends, four sizes, one iteration.
    opts.backends.resize(std::min<std::size_t>(opts.backends.size(), 2));
    std::vector<std::size_t> trimmed;
    for (std::size_t i = 0; i < opts.sizes.size() && trimmed.size() < 4; i += 2) {
      trimmed.push_back(opts.sizes[i]);
    }
    opts.sizes = trimmed;
    opts.iterations = 1;
    opts.warmup = 0;
  }
  MCRDL_REQUIRE(opts.world % 4 == 0, "fig2 runs on Lassen (4 GPUs per node)");

  TuningSuite suite(net::SystemConfig::lassen(opts.world / 4));
  TuningConfig cfg;
  cfg.backends = opts.backends;
  cfg.ops = {OpType::AllReduce, OpType::AllToAllSingle};
  cfg.sizes = opts.sizes;
  cfg.world_sizes = {opts.world};
  cfg.iterations = opts.iterations;
  cfg.warmup = opts.warmup;
  (void)suite.generate(cfg);

  BenchReport report;
  report.experiment = "fig2";
  for (OpType op : cfg.ops) {
    for (const auto& backend : opts.backends) {
      BenchSeries series;
      series.name = std::string(op_name(op)) + "/" + backend;
      series.backend = backend;
      for (std::size_t bytes : opts.sizes) {
        BenchPoint p;
        p.world = opts.world;
        p.bytes = bytes;
        p.virtual_us = suite.measured(backend, op, opts.world, bytes);
        series.points.push_back(p);
      }
      report.series.push_back(std::move(series));
    }
  }
  return report;
}

// --- figures 8 and 9 --------------------------------------------------------

namespace {

// The label recorded in the `backend` field: concrete name for pure plans,
// "mixed" for coarse-grained plans, "auto" for the tuned plan.
std::string plan_backend_label(const models::CommPlan& plan) {
  if (plan.use_auto) return "auto";
  if (!plan.per_op.empty()) return "mixed";
  return plan.default_backend;
}

template <typename MakeModel>
BenchReport run_scaling(const std::string& experiment, const ScalingOptions& options,
                        const std::vector<int>& default_scales, int default_warmup,
                        int default_measured, int gpus_per_node,
                        net::SystemConfig (*make_system)(int),
                        const std::vector<std::size_t>& tuning_sizes, MakeModel make_model) {
  ScalingOptions opts = options;
  if (opts.scales.empty()) opts.scales = default_scales;
  if (opts.warmup_steps < 0) opts.warmup_steps = default_warmup;
  if (opts.measured_steps < 0) opts.measured_steps = default_measured;
  if (opts.quick) {
    opts.scales.resize(std::min<std::size_t>(opts.scales.size(), 2));
    opts.warmup_steps = 0;
    opts.measured_steps = 1;
  }

  const std::vector<models::CommPlan> plans = {
      models::CommPlan::pure("mv2-gdr", "Pure MVAPICH2-GDR"),
      models::CommPlan::pure("nccl", "Pure NCCL"), models::CommPlan::mcr_dl_mixed(),
      models::CommPlan::mcr_dl_tuned()};

  models::HarnessOptions hopts;
  hopts.warmup_steps = opts.warmup_steps;
  hopts.measured_steps = opts.measured_steps;

  BenchReport report;
  report.experiment = experiment;
  for (const auto& plan : plans) {
    BenchSeries series;
    series.name = plan.name;
    series.backend = plan_backend_label(plan);
    report.series.push_back(std::move(series));
  }

  for (int gpus : opts.scales) {
    MCRDL_REQUIRE(gpus % gpus_per_node == 0, "scale must fill whole nodes");
    net::SystemConfig sys = make_system(gpus / gpus_per_node);
    models::TrainingHarness harness(sys);
    auto model = make_model(sys);

    // MCR-DL-T consumes a tuning table generated at this scale for the ops
    // and message range the model actually uses.
    TuningSuite suite(sys);
    TuningConfig tcfg;
    tcfg.backends = {"nccl", "mv2-gdr"};
    tcfg.ops = {OpType::AllReduce, OpType::AllToAllSingle, OpType::Barrier};
    tcfg.sizes = tuning_sizes;
    tcfg.world_sizes = {gpus};
    tcfg.iterations = 1;
    TuningTable table = suite.generate(tcfg);

    for (std::size_t i = 0; i < plans.size(); ++i) {
      const models::RunResult result = harness.run(
          model, plans[i], models::FrameworkModel::raw(), hopts,
          plans[i].use_auto ? &table : nullptr);
      BenchPoint p;
      p.world = gpus;
      p.bytes = 0;  // whole-step measurement, not a message-size sweep
      p.virtual_us = result.step_time_us;
      p.items_per_s = result.throughput;
      report.series[i].points.push_back(p);
    }
  }
  return report;
}

}  // namespace

BenchReport run_fig8(const ScalingOptions& options) {
  return run_scaling(
      "fig8", options, {16, 32, 64, 128, 256}, /*warmup=*/1, /*measured=*/2,
      /*gpus_per_node=*/4, &net::SystemConfig::lassen,
      {64u << 10, 1u << 20, 4u << 20, 16u << 20, 32u << 20},
      [](const net::SystemConfig& sys) { return models::DSMoEModel(models::DSMoEConfig{}, sys); });
}

BenchReport run_fig9(const ScalingOptions& options) {
  return run_scaling(
      "fig9", options, {8, 16, 32}, /*warmup=*/2, /*measured=*/6,
      /*gpus_per_node=*/8, &net::SystemConfig::theta_gpu,
      {256u << 10, 1u << 20, 4u << 20, 8u << 20, 16u << 20},
      [](const net::SystemConfig& sys) { return models::DLRMModel(models::DLRMConfig{}, sys); });
}

}  // namespace mcrdl::bench
