#include "bench/experiments.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <thread>

#include "src/coll/spec.h"
#include "src/common/status.h"
#include "src/core/mcr_dl.h"
#include "src/tune/online_tuner.h"
#include "src/tune/tuning.h"
#include "src/models/cnn3d.h"
#include "src/models/dlrm.h"
#include "src/models/moe.h"
#include "src/models/workload.h"
#include "src/net/cost.h"
#include "src/net/topology.h"
#include "src/obs/json.h"

namespace mcrdl::bench {

const BenchSeries* BenchReport::find(const std::string& name) const {
  for (const auto& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const BenchPoint& BenchReport::at(const std::string& name, int world) const {
  const BenchSeries* s = find(name);
  if (s != nullptr) {
    for (const auto& p : s->points) {
      if (p.world == world) return p;
    }
  }
  throw InvalidArgument("no bench point for series '" + name + "' at world " +
                        std::to_string(world));
}

namespace {

void append_number(std::ostringstream& out, double v) {
  std::ostringstream num;
  num.precision(12);
  num << v;
  out << num.str();
}

}  // namespace

std::string to_bench_json(const BenchReport& report) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kBenchSchema << "\",\"experiment\":\""
      << obs::json_escape(report.experiment) << "\",\"series\":[";
  bool first_series = true;
  for (const auto& s : report.series) {
    if (!first_series) out << ",";
    first_series = false;
    out << "{\"name\":\"" << obs::json_escape(s.name) << "\",\"backend\":\""
        << obs::json_escape(s.backend) << "\",\"points\":[";
    bool first_point = true;
    for (const auto& p : s.points) {
      if (!first_point) out << ",";
      first_point = false;
      out << "{\"world\":" << p.world << ",\"bytes\":" << p.bytes << ",\"virtual_us\":";
      append_number(out, p.virtual_us);
      out << ",\"items_per_s\":";
      append_number(out, p.items_per_s);
      out << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

// --- figure 2 ---------------------------------------------------------------

BenchReport run_fig2(const Fig2Options& options) {
  Fig2Options opts = options;
  if (opts.sizes.empty()) {
    opts.sizes = {1u << 10,   4u << 10, 16u << 10, 64u << 10, 256u << 10,
                  1u << 20, 4u << 20, 16u << 20,  64u << 20};
  }
  if (opts.backends.empty()) opts.backends = {"mv2-gdr", "ompi", "nccl", "sccl"};
  if (opts.quick) {
    // CI smoke grid: two backends, four sizes, one iteration.
    opts.backends.resize(std::min<std::size_t>(opts.backends.size(), 2));
    std::vector<std::size_t> trimmed;
    for (std::size_t i = 0; i < opts.sizes.size() && trimmed.size() < 4; i += 2) {
      trimmed.push_back(opts.sizes[i]);
    }
    opts.sizes = trimmed;
    opts.iterations = 1;
    opts.warmup = 0;
  }
  MCRDL_REQUIRE(opts.world % 4 == 0, "fig2 runs on Lassen (4 GPUs per node)");

  TuningSuite suite(net::SystemConfig::lassen(opts.world / 4));
  TuningConfig cfg;
  cfg.backends = opts.backends;
  cfg.ops = {OpType::AllReduce, OpType::AllToAllSingle};
  cfg.sizes = opts.sizes;
  cfg.world_sizes = {opts.world};
  cfg.iterations = opts.iterations;
  cfg.warmup = opts.warmup;
  (void)suite.generate(cfg);

  BenchReport report;
  report.experiment = "fig2";
  for (OpType op : cfg.ops) {
    for (const auto& backend : opts.backends) {
      BenchSeries series;
      series.name = std::string(op_name(op)) + "/" + backend;
      series.backend = backend;
      for (std::size_t bytes : opts.sizes) {
        BenchPoint p;
        p.world = opts.world;
        p.bytes = bytes;
        p.virtual_us = suite.measured(backend, op, opts.world, bytes);
        series.points.push_back(p);
      }
      report.series.push_back(std::move(series));
    }
  }
  return report;
}

// --- figures 8 and 9 --------------------------------------------------------

namespace {

// The label recorded in the `backend` field: concrete name for pure plans,
// "mixed" for coarse-grained plans, "auto" for the tuned plan.
std::string plan_backend_label(const models::CommPlan& plan) {
  if (plan.use_auto) return "auto";
  if (!plan.per_op.empty()) return "mixed";
  return plan.default_backend;
}

template <typename MakeModel>
BenchReport run_scaling(const std::string& experiment, const ScalingOptions& options,
                        const std::vector<int>& default_scales, int default_warmup,
                        int default_measured, int gpus_per_node,
                        net::SystemConfig (*make_system)(int),
                        const std::vector<std::size_t>& tuning_sizes, MakeModel make_model) {
  ScalingOptions opts = options;
  if (opts.scales.empty()) opts.scales = default_scales;
  if (opts.warmup_steps < 0) opts.warmup_steps = default_warmup;
  if (opts.measured_steps < 0) opts.measured_steps = default_measured;
  if (opts.quick) {
    opts.scales.resize(std::min<std::size_t>(opts.scales.size(), 2));
    opts.warmup_steps = 0;
    opts.measured_steps = 1;
  }

  const std::vector<models::CommPlan> plans = {
      models::CommPlan::pure("mv2-gdr", "Pure MVAPICH2-GDR"),
      models::CommPlan::pure("nccl", "Pure NCCL"), models::CommPlan::mcr_dl_mixed(),
      models::CommPlan::mcr_dl_tuned()};

  models::HarnessOptions hopts;
  hopts.warmup_steps = opts.warmup_steps;
  hopts.measured_steps = opts.measured_steps;
  hopts.execution = opts.execution;

  BenchReport report;
  report.experiment = experiment;
  for (const auto& plan : plans) {
    BenchSeries series;
    series.name = plan.name;
    series.backend = plan_backend_label(plan);
    report.series.push_back(std::move(series));
  }

  for (int gpus : opts.scales) {
    MCRDL_REQUIRE(gpus % gpus_per_node == 0, "scale must fill whole nodes");
    net::SystemConfig sys = make_system(gpus / gpus_per_node);
    models::TrainingHarness harness(sys);
    auto model = make_model(sys);

    // MCR-DL-T consumes a tuning table generated at this scale for the ops
    // and message range the model actually uses.
    TuningSuite suite(sys);
    TuningConfig tcfg;
    tcfg.backends = {"nccl", "mv2-gdr"};
    tcfg.ops = {OpType::AllReduce, OpType::AllToAllSingle, OpType::Barrier};
    tcfg.sizes = tuning_sizes;
    tcfg.world_sizes = {gpus};
    tcfg.iterations = 1;
    TuningTable table = suite.generate(tcfg);

    for (std::size_t i = 0; i < plans.size(); ++i) {
      const models::RunResult result = harness.run(
          model, plans[i], models::FrameworkModel::raw(), hopts,
          plans[i].use_auto ? &table : nullptr);
      BenchPoint p;
      p.world = gpus;
      p.bytes = 0;  // whole-step measurement, not a message-size sweep
      p.virtual_us = result.step_time_us;
      p.items_per_s = result.throughput;
      report.series[i].points.push_back(p);
    }
  }
  return report;
}

}  // namespace

BenchReport run_fig8(const ScalingOptions& options) {
  return run_scaling(
      "fig8", options, {16, 32, 64, 128, 256}, /*warmup=*/1, /*measured=*/2,
      /*gpus_per_node=*/4, &net::SystemConfig::lassen,
      {64u << 10, 1u << 20, 4u << 20, 16u << 20, 32u << 20},
      [](const net::SystemConfig& sys) { return models::DSMoEModel(models::DSMoEConfig{}, sys); });
}

BenchReport run_fig9(const ScalingOptions& options) {
  return run_scaling(
      "fig9", options, {8, 16, 32}, /*warmup=*/2, /*measured=*/6,
      /*gpus_per_node=*/8, &net::SystemConfig::theta_gpu,
      {256u << 10, 1u << 20, 4u << 20, 8u << 20, 16u << 20},
      [](const net::SystemConfig& sys) { return models::DLRMModel(models::DLRMConfig{}, sys); });
}

// --- execution-engine scaling -----------------------------------------------

BenchReport run_scale(const ScaleOptions& options) {
  ScaleOptions opts = options;
  if (opts.thread_counts.empty()) opts.thread_counts = {1, 2, 4};
  if (opts.scales.empty()) opts.scales = {32, 64, 128, 256};
  if (opts.quick) {
    opts.scales = {16};
    opts.warmup_steps = 0;
    opts.measured_steps = 1;
  }
  std::sort(opts.thread_counts.begin(), opts.thread_counts.end());
  MCRDL_REQUIRE(opts.thread_counts.front() <= 1,
                "scale needs the serial engine (threads<=1) as the baseline");

  // One fixed workload for every engine: the DS-MoE model under the mixed
  // plan, which exercises both backends without the (serial) tuning-suite
  // preamble the tuned plan would need.
  const models::CommPlan plan = models::CommPlan::mcr_dl_mixed();

  BenchReport report;
  report.experiment = "scale";
  for (int threads : opts.thread_counts) {
    BenchSeries series;
    series.name = threads <= 1 ? "serial" : "threads" + std::to_string(threads);
    series.backend =
        sim::execution_model_name(sim::ExecutionConfig::from_threads(threads).kind);
    report.series.push_back(std::move(series));
  }
  BenchSeries speedup;
  speedup.name = "speedup";
  speedup.backend = "derived";

  // Wall-clock numbers are only meaningful relative to the host they were
  // taken on, so the report carries the core count the OS exposed: on a
  // single-core machine the expected speedup is ~1.0 (the run degenerates
  // into an engine-overhead comparison), and the >1 readings need at least
  // as many cores as shards.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  BenchSeries host;
  host.name = "host-cores";
  host.backend = "meta";
  {
    BenchPoint p;
    p.world = 0;
    p.bytes = cores;
    p.items_per_s = static_cast<double>(cores);
    host.points.push_back(p);
  }
  report.series.push_back(std::move(host));

  for (int gpus : opts.scales) {
    MCRDL_REQUIRE(gpus % 4 == 0, "scale runs DS-MoE on Lassen (4 GPUs per node)");
    const net::SystemConfig sys = net::SystemConfig::lassen(gpus / 4);
    models::TrainingHarness harness(sys);
    const models::DSMoEModel model(models::DSMoEConfig{}, sys);

    double serial_wall_s = 0.0;
    double last_wall_s = 0.0;
    double reference_step_us = -1.0;
    for (std::size_t i = 0; i < opts.thread_counts.size(); ++i) {
      const int threads = opts.thread_counts[i];
      models::HarnessOptions hopts;
      hopts.warmup_steps = opts.warmup_steps;
      hopts.measured_steps = opts.measured_steps;
      hopts.execution = sim::ExecutionConfig::from_threads(threads);

      const auto wall_start = std::chrono::steady_clock::now();
      const models::RunResult result =
          harness.run(model, plan, models::FrameworkModel::raw(), hopts);
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
              .count();

      // The engines must agree on virtual time exactly — the traces are
      // byte-identical, so the derived step time is too. Any drift here is
      // a determinism bug, not measurement noise.
      if (reference_step_us < 0.0) {
        reference_step_us = result.step_time_us;
      } else {
        MCRDL_REQUIRE(result.step_time_us == reference_step_us,
                      "execution engines disagree on virtual step time");
      }
      if (threads <= 1) serial_wall_s = wall_s;
      last_wall_s = wall_s;

      BenchPoint p;
      p.world = gpus;
      p.bytes = static_cast<std::size_t>(std::max(threads, 1));  // thread count
      p.virtual_us = result.step_time_us;
      p.items_per_s = wall_s > 0.0 ? opts.measured_steps / wall_s : 0.0;
      report.series[i].points.push_back(p);
    }

    BenchPoint ratio;
    ratio.world = gpus;
    ratio.bytes = static_cast<std::size_t>(opts.thread_counts.back());
    ratio.virtual_us = reference_step_us;
    ratio.items_per_s = last_wall_s > 0.0 ? serial_wall_s / last_wall_s : 0.0;
    speedup.points.push_back(ratio);
  }
  report.series.push_back(std::move(speedup));
  return report;
}

// --- online adaptation ------------------------------------------------------

namespace {

// One blocking all_reduce loop through the full facade; returns rank 0's
// per-step durations. `mutate_options` tweaks the McrDlOptions (fault plan,
// online tuner); `after_run` sees the McrDl before finalize (tuner counters).
std::vector<double> run_auto_loop(const net::SystemConfig& sys, const AdaptOptions& opts,
                                  const std::vector<std::string>& backends,
                                  const std::string& backend_string, const TuningTable* table,
                                  const std::function<void(McrDlOptions&)>& mutate_options,
                                  const std::function<void(McrDl&)>& after_run) {
  ClusterContext cluster(sys);
  McrDlOptions mopts;
  if (mutate_options) mutate_options(mopts);
  McrDl mcr(&cluster, mopts);
  mcr.init(backends);
  if (table != nullptr) mcr.set_tuning_table(*table);
  std::vector<double> step_us(static_cast<std::size_t>(opts.steps), 0.0);
  const std::int64_t numel =
      std::max<std::int64_t>(static_cast<std::int64_t>(opts.bytes / 4), 1);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    for (int s = 0; s < opts.steps; ++s) {
      const SimTime start = cluster.scheduler().now();
      Tensor t = Tensor::phantom({numel}, DType::F32, dev);
      api.all_reduce(backend_string, t, ReduceOp::Sum, /*async_op=*/false);
      api.synchronize();
      if (rank == 0) step_us[static_cast<std::size_t>(s)] = cluster.scheduler().now() - start;
    }
  });
  if (after_run) after_run(mcr);
  mcr.finalize();
  return step_us;
}

double median_of(std::vector<double> v) {
  MCRDL_REQUIRE(!v.empty(), "median of an empty window");
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// Median step time of the run's final window — robust to the occasional
// re-probe of the quarantined backend, which is exploration cost rather
// than steady-state routing.
double last_window_median(const std::vector<double>& steps, int window) {
  const std::size_t w = static_cast<std::size_t>(window);
  return median_of(std::vector<double>(steps.end() - static_cast<std::ptrdiff_t>(w), steps.end()));
}

BenchSeries windowed_series(const std::string& name, const std::string& backend,
                            const std::vector<double>& steps, const AdaptOptions& opts) {
  BenchSeries series;
  series.name = name;
  series.backend = backend;
  for (int s = 0; s + opts.window <= static_cast<int>(steps.size()); s += opts.window) {
    double sum = 0.0;
    for (int i = s; i < s + opts.window; ++i) sum += steps[static_cast<std::size_t>(i)];
    BenchPoint p;
    p.world = opts.world;
    p.bytes = static_cast<std::size_t>(s);  // window start step — the time axis
    p.virtual_us = sum / opts.window;
    p.items_per_s = p.virtual_us > 0.0 ? 1e6 / p.virtual_us : 0.0;
    series.points.push_back(p);
  }
  return series;
}

}  // namespace

AdaptReport run_adapt(const AdaptOptions& options) {
  AdaptOptions opts = options;
  if (opts.quick) {
    opts.steps = 96;
    opts.window = 12;
  }
  MCRDL_REQUIRE(opts.world % 4 == 0, "adapt runs on Lassen (4 GPUs per node)");
  MCRDL_REQUIRE(opts.steps >= 3 * opts.window, "adapt needs >= 3 windows of steps");
  const net::SystemConfig sys = net::SystemConfig::lassen(opts.world / 4);
  const std::vector<std::string> backends = {"nccl", "mv2-gdr"};

  // Calibrate: a short clean loop per backend finds the static winner (the
  // backend to degrade) and the best undegraded alternative.
  AdaptOptions calib = opts;
  calib.steps = 8;
  std::map<std::string, double> calib_us;
  for (const auto& name : backends) {
    calib_us[name] = median_of(
        run_auto_loop(sys, calib, backends, name, nullptr, nullptr, nullptr));
  }
  std::string winner = backends.front();
  for (const auto& name : backends) {
    if (calib_us[name] < calib_us[winner]) winner = name;
  }
  std::string alt = backends.front() == winner ? backends[1] : backends.front();
  for (const auto& name : backends) {
    if (name != winner && calib_us[name] < calib_us[alt]) alt = name;
  }

  // The static table the paper's workflow would have produced: the winner at
  // this grid point. It doubles as the online tuner's prior.
  TuningTable table;
  table.set(OpType::AllReduce, opts.world, tune::OnlineTuner::bucket(opts.bytes), winner);

  // Degrade the winner's links after the first third of the run (paced by
  // its own calibrated step time, so the instant scales with the grid).
  const double degrade_from_us = calib_us[winner] * (opts.steps / 3.0);
  const auto degraded = [&](McrDlOptions& m) {
    m.fault.enabled = true;
    m.fault.plan.specs.push_back(fault::FaultSpec::degrade_links(
        winner, opts.degrade_factor, fault::LinkScope::All, degrade_from_us));
  };

  AdaptReport report;
  report.degraded_backend = winner;
  report.adapted_backend = alt;
  report.degrade_from_us = degrade_from_us;
  report.bench.experiment = "adapt";

  const std::vector<double> static_steps =
      run_auto_loop(sys, opts, backends, "auto", &table, degraded, nullptr);
  const std::vector<double> online_steps = run_auto_loop(
      sys, opts, backends, "auto", &table,
      [&](McrDlOptions& m) {
        degraded(m);
        m.online_tuning.enabled = true;
        m.online_tuning.seed = opts.seed;
      },
      [&](McrDl& mcr) {
        const tune::OnlineTuner* tuner = mcr.online_tuner();
        report.switches = tuner->switches();
        report.quarantines = tuner->quarantines();
        report.learned_table = mcr.online_tuner()->to_table().serialize();
      });
  const std::vector<double> alt_steps =
      run_auto_loop(sys, opts, backends, alt, nullptr, nullptr, nullptr);

  report.bench.series.push_back(windowed_series("static", "auto", static_steps, opts));
  report.bench.series.push_back(windowed_series("online", "auto", online_steps, opts));
  report.bench.series.push_back(windowed_series("alt-best", alt, alt_steps, opts));
  report.static_post_us = last_window_median(static_steps, opts.window);
  report.online_post_us = last_window_median(online_steps, opts.window);
  report.alt_best_us = last_window_median(alt_steps, opts.window);
  return report;
}

// --- resilience -------------------------------------------------------------

namespace {

struct ResilienceRun {
  std::vector<double> step_us;      // rank 0 durations, phase one then two
  std::vector<double> done_at_us;   // rank 0 completion instants, same order
  std::size_t phase_two_begin = 0;  // index of phase two's first step
  fault::ResilienceReport report;
  int alive = 0;                    // ranks alive at the end of the run
};

// The shared two-phase loop: lose `lost_rank` at `loss_at`, park every rank
// until just past `rejoin_at`, run phase two over whatever is alive. The
// shrink-only run simply omits the rank_rejoin spec, so the casualty stays
// dead through phase two and the two runs differ in nothing but the grow.
ResilienceRun run_resilience_loop(const ResilienceOptions& opts, SimTime loss_at,
                                  SimTime rejoin_at, bool with_rejoin) {
  const net::SystemConfig sys = net::SystemConfig::lassen(opts.world / 4);
  ClusterContext cluster(sys);
  McrDlOptions mopts;
  mopts.fault.enabled = true;
  const SimTime silent_from = std::max(0.0, loss_at - 2.0 * opts.interval_us);
  mopts.fault.plan.specs.push_back(
      fault::FaultSpec::straggler(opts.lost_rank, 10.0 * loss_at + 1000.0, silent_from, loss_at));
  mopts.fault.plan.specs.push_back(fault::FaultSpec::lose_rank(opts.lost_rank, loss_at));
  if (with_rejoin) {
    mopts.fault.plan.specs.push_back(fault::FaultSpec::rejoin_rank(opts.lost_rank, rejoin_at));
  }
  McrDl mcr(&cluster, mopts);
  mcr.init({"nccl", "mv2-gdr"});

  ResilienceRun out;
  const std::int64_t numel =
      std::max<std::int64_t>(static_cast<std::int64_t>(opts.bytes / 4), 1);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    const auto one_step = [&] {
      const SimTime start = cluster.scheduler().now();
      Tensor t = Tensor::phantom({numel}, DType::F32, dev);
      api.all_reduce("nccl", t, ReduceOp::Sum, /*async_op=*/false);
      api.synchronize("nccl");
      if (rank == 0) {
        out.step_us.push_back(cluster.scheduler().now() - start);
        out.done_at_us.push_back(cluster.scheduler().now());
      }
      if (opts.interval_us > 0.0) cluster.scheduler().sleep_for(opts.interval_us);
    };
    for (int s = 0; s < opts.steps; ++s) {
      if (cluster.faults().rank_lost(rank)) break;
      try {
        one_step();
      } catch (const RankLostError&) {
        break;  // the casualty itself; survivors get the op replayed
      }
    }
    if (rank == 0) out.phase_two_begin = out.step_us.size();
    // Virtual-time barrier past the rejoin instant, so the grow event (when
    // planned) fires into an idle cluster in both runs alike.
    const SimTime wake = rejoin_at + opts.interval_us + 1.0;
    if (cluster.scheduler().now() < wake) {
      cluster.scheduler().sleep_for(wake - cluster.scheduler().now());
    }
    for (int s = 0; s < opts.steps; ++s) {
      if (cluster.faults().rank_lost(rank)) break;
      one_step();
    }
  });
  out.report = mcr.failover()->report();
  for (int r = 0; r < opts.world; ++r) {
    if (!cluster.faults().rank_lost(r)) ++out.alive;
  }
  mcr.finalize();
  return out;
}

BenchSeries resilience_step_series(const std::string& name, const ResilienceRun& run,
                                   int world) {
  BenchSeries series;
  series.name = name;
  series.backend = "nccl";
  for (std::size_t s = 0; s < run.step_us.size(); ++s) {
    BenchPoint p;
    p.world = world;
    p.bytes = s;  // step index — the time axis
    p.virtual_us = run.step_us[s];
    p.items_per_s = p.virtual_us > 0.0 ? 1e6 / p.virtual_us : 0.0;
    series.points.push_back(p);
  }
  return series;
}

// Latency from `event_us` to the first collective completed after it.
double recovery_latency_us(const ResilienceRun& run, SimTime event_us) {
  for (double done : run.done_at_us) {
    if (done > event_us) return done - event_us;
  }
  return 0.0;
}

// Post-recovery throughput in rank-steps/s: how much aggregate work the
// cluster completes per second once it has settled after the event.
double post_throughput(const ResilienceRun& run, int alive) {
  std::vector<double> phase_two(run.step_us.begin() +
                                    static_cast<std::ptrdiff_t>(run.phase_two_begin),
                                run.step_us.end());
  if (phase_two.empty()) return 0.0;
  const double med = median_of(std::move(phase_two));
  return med > 0.0 ? static_cast<double>(alive) * 1e6 / med : 0.0;
}

}  // namespace

ResilienceBenchReport run_resilience(const ResilienceOptions& options) {
  ResilienceOptions opts = options;
  if (opts.quick) opts.steps = 6;
  MCRDL_REQUIRE(opts.world % 4 == 0, "resilience runs on Lassen (4 GPUs per node)");
  MCRDL_REQUIRE(opts.world >= 2, "resilience needs a survivor");
  MCRDL_REQUIRE(opts.lost_rank >= 0 && opts.lost_rank < opts.world,
                "lost rank out of range");
  MCRDL_REQUIRE(opts.steps >= 2, "resilience needs at least two steps per phase");

  // The loss lands mid-phase-one; the rejoin far enough past it that the
  // survivors have certainly finished phase one (virtual time is free).
  const SimTime loss_at = 2.0 * (opts.interval_us + 1000.0);
  const SimTime rejoin_at = loss_at + 100.0 * opts.steps * (opts.interval_us + 1000.0);

  const ResilienceRun shrink = run_resilience_loop(opts, loss_at, rejoin_at, false);
  const ResilienceRun rejoin = run_resilience_loop(opts, loss_at, rejoin_at, true);
  MCRDL_REQUIRE(shrink.alive == opts.world - 1, "shrink run did not lose exactly one rank");
  MCRDL_REQUIRE(rejoin.alive == opts.world, "rejoin run did not restore the full world");

  ResilienceBenchReport report;
  report.bench.experiment = "resilience";
  report.loss_at_us = loss_at;
  report.rejoin_at_us = rejoin_at;
  report.shrink_report = shrink.report;
  report.rejoin_report = rejoin.report;
  report.shrink_recovery_us = recovery_latency_us(shrink, loss_at);
  report.rejoin_recovery_us = recovery_latency_us(rejoin, rejoin_at);
  report.shrink_post_rank_steps_per_s = post_throughput(shrink, shrink.alive);
  report.rejoin_post_rank_steps_per_s = post_throughput(rejoin, rejoin.alive);

  report.bench.series.push_back(resilience_step_series("steps/shrink", shrink, opts.world));
  report.bench.series.push_back(resilience_step_series("steps/rejoin", rejoin, opts.world));
  BenchSeries shrink_summary;
  shrink_summary.name = "recovery/shrink";
  shrink_summary.backend = "nccl";
  shrink_summary.points.push_back(BenchPoint{shrink.alive, 0, report.shrink_recovery_us,
                                             report.shrink_post_rank_steps_per_s});
  report.bench.series.push_back(std::move(shrink_summary));
  BenchSeries rejoin_summary;
  rejoin_summary.name = "recovery/rejoin";
  rejoin_summary.backend = "nccl";
  rejoin_summary.points.push_back(BenchPoint{rejoin.alive, 0, report.rejoin_recovery_us,
                                             report.rejoin_post_rank_steps_per_s});
  report.bench.series.push_back(std::move(rejoin_summary));
  return report;
}

// --- hotpath ----------------------------------------------------------------

namespace {

struct HotpathRun {
  double wall_s = 0.0;      // host clock around the dispatch loop
  double virtual_us = 0.0;  // final virtual instant of the run
};

// One dispatch loop: every rank issues `ops_per_rank` async small
// all_reduces, draining its stream every `sync_every` ops. The workload
// (tensor construction, issue cadence) is identical across modes so the
// wall-clock delta isolates the dispatch shape.
HotpathRun run_hotpath_loop(const HotpathOptions& opts, std::size_t bytes, bool fast_dispatch,
                            bool bucketed) {
  ClusterContext cluster(net::SystemConfig::lassen(opts.world / 4));
  McrDlOptions mopts;
  mopts.fast_dispatch = fast_dispatch;
  if (bucketed) {
    mopts.fusion.enabled = true;
    mopts.fusion.buffer_bytes = 64u << 10;  // coalesce a sync_every window
    mopts.fusion.flush_timeout_us = 50.0;
    mopts.fusion.max_tensor_bytes = 16u << 10;
  }
  McrDl mcr(&cluster, mopts);
  mcr.init({"nccl"});
  const int elems = static_cast<int>(std::max<std::size_t>(1, bytes / 4));

  const auto wall_start = std::chrono::steady_clock::now();
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    // Phantom payloads, like every other driver here: the experiment measures
    // the dispatch machinery, and materialized data would bill both paths the
    // same simulated elementwise math. One tensor per in-flight slot, reused
    // every window once the stream is drained — no allocator traffic either.
    std::vector<Tensor> grads;
    grads.reserve(static_cast<std::size_t>(opts.sync_every));
    for (int i = 0; i < opts.sync_every; ++i) {
      grads.push_back(Tensor::phantom({elems}, DType::F32, dev));
    }
    for (int i = 0; i < opts.ops_per_rank; ++i) {
      api.all_reduce("nccl", grads[static_cast<std::size_t>(i % opts.sync_every)],
                     ReduceOp::Sum, true);
      if ((i + 1) % opts.sync_every == 0) api.synchronize();
    }
    api.synchronize();
  });
  HotpathRun run;
  run.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  run.virtual_us = cluster.scheduler().now();
  return run;
}

}  // namespace

BenchReport run_hotpath(const HotpathOptions& options) {
  HotpathOptions opts = options;
  if (opts.sizes.empty()) opts.sizes = {256, 1024, 4096};
  if (opts.quick) {
    opts.sizes = {256, 1024};
    opts.ops_per_rank = 256;
  }
  MCRDL_REQUIRE(opts.world % 4 == 0, "hotpath runs on Lassen (4 GPUs per node)");
  MCRDL_REQUIRE(opts.ops_per_rank % opts.sync_every == 0,
                "ops_per_rank must be a multiple of sync_every");

  struct Mode {
    const char* name;
    bool fast;
    bool bucketed;
  };
  const Mode modes[] = {{"dispatch/slow", false, false},
                        {"dispatch/fast", true, false},
                        {"dispatch/bucketed", true, true}};

  BenchReport report;
  report.experiment = "hotpath";
  for (const Mode& mode : modes) {
    BenchSeries series;
    series.name = mode.name;
    series.backend = "nccl";
    report.series.push_back(std::move(series));
  }
  BenchSeries speedup;
  speedup.name = "speedup";
  speedup.backend = "derived";

  const double total_ops = static_cast<double>(opts.ops_per_rank) * opts.world;
  for (std::size_t bytes : opts.sizes) {
    double slow_ops_per_s = 0.0;
    double reference_virtual_us = -1.0;
    double bucketed_ops_per_s = 0.0;
    for (std::size_t m = 0; m < 3; ++m) {
      const Mode& mode = modes[m];
      const HotpathRun run = run_hotpath_loop(opts, bytes, mode.fast, mode.bucketed);
      // Slow and fast are two shapes of the same schedule: their virtual
      // clocks must agree exactly (golden traces pin the full records).
      // Bucketing coalesces issues, so its schedule — and clock — differ.
      if (!mode.bucketed) {
        if (reference_virtual_us < 0.0) {
          reference_virtual_us = run.virtual_us;
        } else {
          MCRDL_REQUIRE(run.virtual_us == reference_virtual_us,
                        "slow and fast dispatch disagree on virtual time");
        }
      }
      const double ops_per_s = run.wall_s > 0.0 ? total_ops / run.wall_s : 0.0;
      if (!mode.fast) slow_ops_per_s = ops_per_s;
      if (mode.bucketed) bucketed_ops_per_s = ops_per_s;

      BenchPoint p;
      p.world = opts.world;
      p.bytes = bytes;
      p.virtual_us = run.virtual_us;
      p.items_per_s = ops_per_s;
      report.series[m].points.push_back(p);
    }
    BenchPoint ratio;
    ratio.world = opts.world;
    ratio.bytes = bytes;
    ratio.virtual_us = reference_virtual_us;
    ratio.items_per_s = slow_ops_per_s > 0.0 ? bucketed_ops_per_s / slow_ops_per_s : 0.0;
    speedup.points.push_back(ratio);
  }
  report.series.push_back(std::move(speedup));
  return report;
}

// --- hier -------------------------------------------------------------------

namespace {

// The two levels of a "hier:<intra>+<inter>" string (or the backend itself
// for a flat algorithm) — the engines a hier run must bring up.
std::vector<std::string> hier_engines(std::initializer_list<std::string> algos) {
  std::vector<std::string> engines;
  auto add = [&engines](const std::string& b) {
    if (std::find(engines.begin(), engines.end(), b) == engines.end()) engines.push_back(b);
  };
  for (const std::string& algo : algos) {
    if (std::optional<coll::CompositeSpec> spec = coll::parse(algo)) {
      add(spec->intra);
      if (!spec->inter.empty()) add(spec->inter);
    } else {
      add(algo);
    }
  }
  return engines;
}

// One synchronous allreduce on `algo`, averaged over `iterations` in virtual
// time. Fresh cluster per configuration so the runs are independent. The
// synchronize before the closing barrier matters: stream-backend allreduces
// return once enqueued, so without a drain a flat nccl loop measures zero.
double hier_allreduce_us(const HierOptions& opts, const std::string& algo, int nodes,
                         std::size_t bytes, bool overlap) {
  ClusterContext cluster(net::SystemConfig::lassen(nodes));
  McrDlOptions mopts;
  mopts.coll.enabled = true;
  mopts.coll.overlap = overlap;
  McrDl mcr(&cluster, mopts);
  mcr.init(hier_engines({opts.flat_backend, algo}));
  const std::int64_t elems = static_cast<std::int64_t>(std::max<std::size_t>(1, bytes / 4));

  double elapsed_us = 0.0;
  SimTime start = 0.0;
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    for (int i = 0; i < opts.warmup; ++i) {
      api.all_reduce(algo, Tensor::phantom({elems}, DType::F32, dev));
    }
    api.synchronize();
    api.barrier(opts.flat_backend);
    if (rank == 0) start = cluster.scheduler().now();
    for (int i = 0; i < opts.iterations; ++i) {
      api.all_reduce(algo, Tensor::phantom({elems}, DType::F32, dev));
    }
    api.synchronize();
    api.barrier(opts.flat_backend);
    if (rank == 0) elapsed_us = (cluster.scheduler().now() - start) / opts.iterations;
  });
  return elapsed_us;
}

}  // namespace

BenchReport run_hier(const HierOptions& options) {
  HierOptions opts = options;
  if (opts.node_counts.empty()) opts.node_counts = {1, 2, 4};
  if (opts.sizes.empty()) {
    opts.sizes = {64u << 10, 256u << 10, 1u << 20, 4u << 20, 16u << 20, 64u << 20};
  }
  if (opts.model_worlds.empty()) opts.model_worlds = {8, 16};
  if (opts.quick) {
    opts.node_counts = {1, 2};
    opts.sizes = {256u << 10, 4u << 20, 16u << 20};
    opts.model_worlds = {8};
    opts.iterations = 1;
    opts.warmup = 0;
    opts.measured_steps = 1;
    opts.warmup_steps = 0;
  }
  const std::optional<coll::CompositeSpec> overlap_spec = coll::parse(opts.overlap_algo);
  MCRDL_REQUIRE(overlap_spec.has_value() && overlap_spec->algo == coll::CompositeAlgo::Hier,
                "HierOptions::overlap_algo must be a hier:<intra>+<inter> composite");

  BenchReport report;
  report.experiment = "hier";

  // Microbench sweep per node count: the flat incumbent, the same-runtime
  // composite (algorithm-only gain), and the mixed composite under the
  // overlap scheduler (algorithm + schedule).
  struct Variant {
    const char* tag;
    const std::string* algo;
    bool overlap;
  };
  const Variant variants[] = {{"flat", &opts.flat_backend, false},
                              {"hier", &opts.hier_algo, false},
                              {"hier+overlap", &opts.overlap_algo, true}};
  for (int nodes : opts.node_counts) {
    for (const Variant& v : variants) {
      BenchSeries series;
      series.name = std::string("all_reduce/") + v.tag + "/n" + std::to_string(nodes);
      series.backend = *v.algo;
      for (std::size_t bytes : opts.sizes) {
        BenchPoint p;
        p.world = nodes * 4;  // Lassen
        p.bytes = bytes;
        p.virtual_us = hier_allreduce_us(opts, *v.algo, nodes, bytes, v.overlap);
        series.points.push_back(p);
      }
      report.series.push_back(std::move(series));
    }
  }

  // Model sweep: 3D-CNN step time under the three plans. Both composite
  // variants run the identical mixed plan — the only delta between "hier"
  // and "hier+overlap" is the scheduler, so the model comparison isolates
  // what overlapping the levels is worth.
  struct PlanVariant {
    const char* tag;
    models::CommPlan plan;
    bool coll;
    bool overlap;
  };
  const PlanVariant plan_variants[] = {
      {"flat", models::CommPlan::pure(opts.flat_backend, "flat"), false, false},
      {"hier",
       models::CommPlan::hier_allreduce(opts.flat_backend, overlap_spec->intra,
                                        overlap_spec->inter, "hier"),
       true, false},
      {"hier+overlap",
       models::CommPlan::hier_allreduce(opts.flat_backend, overlap_spec->intra,
                                        overlap_spec->inter, "hier+overlap"),
       true, true}};

  std::vector<BenchSeries> model_series(3);
  for (std::size_t i = 0; i < 3; ++i) {
    model_series[i].name = std::string("cnn3d/") + plan_variants[i].tag;
    model_series[i].backend = plan_variants[i].coll ? opts.overlap_algo : opts.flat_backend;
  }
  for (int world : opts.model_worlds) {
    MCRDL_REQUIRE(world % 4 == 0, "hier model sweep runs on Lassen (4 GPUs per node)");
    net::SystemConfig sys = net::SystemConfig::lassen(world / 4);
    models::TrainingHarness harness(sys);
    models::Cnn3dModel model(models::Cnn3dConfig{}, sys);
    for (std::size_t i = 0; i < 3; ++i) {
      models::HarnessOptions hopts;
      hopts.warmup_steps = opts.warmup_steps;
      hopts.measured_steps = opts.measured_steps;
      hopts.mcr_options.coll.enabled = plan_variants[i].coll;
      hopts.mcr_options.coll.overlap = plan_variants[i].overlap;
      const models::RunResult result =
          harness.run(model, plan_variants[i].plan, models::FrameworkModel::raw(), hopts);
      BenchPoint p;
      p.world = world;
      p.bytes = 0;  // whole-step measurement
      p.virtual_us = result.step_time_us;
      p.items_per_s = result.throughput;
      model_series[i].points.push_back(p);
    }
  }
  for (auto& s : model_series) report.series.push_back(std::move(s));
  return report;
}

const std::vector<Experiment>& experiment_registry() {
  static const std::vector<Experiment> registry = {
      {"fig2", "collective microbenchmark across backends (paper Figure 2)",
       [](const ExperimentOptions& o) {
         Fig2Options options;
         options.quick = o.quick;
         return run_fig2(options);
       }},
      {"fig8", "DS-MoE scaling across communication plans (paper Figure 8)",
       [](const ExperimentOptions& o) {
         ScalingOptions options;
         options.quick = o.quick;
         options.execution = sim::ExecutionConfig::from_threads(o.threads);
         return run_fig8(options);
       }},
      {"fig9", "DLRM scaling across communication plans (paper Figure 9)",
       [](const ExperimentOptions& o) {
         ScalingOptions options;
         options.quick = o.quick;
         options.execution = sim::ExecutionConfig::from_threads(o.threads);
         return run_fig9(options);
       }},
      {"scale", "execution-engine wall-clock scaling, serial vs sharded (DESIGN.md §11)",
       [](const ExperimentOptions& o) {
         ScaleOptions options;
         options.quick = o.quick;
         if (o.threads > 1) options.thread_counts = {1, o.threads};
         return run_scale(options);
       }},
      {"adapt", "online tuner rerouting around a mid-run degrade (DESIGN.md §9)",
       [](const ExperimentOptions& o) {
         AdaptOptions options;
         options.quick = o.quick;
         return run_adapt(options).bench;
       }},
      {"serve", "multi-tenant trace replay, clean vs chaos latency (DESIGN.md §10)",
       [](const ExperimentOptions& o) {
         ServeExperimentOptions options;
         options.quick = o.quick;
         return run_serve(options).bench;
       }},
      {"resilience", "recovery latency and throughput, shrink-only vs grow-back (DESIGN.md §13)",
       [](const ExperimentOptions& o) {
         ResilienceOptions options;
         options.quick = o.quick;
         return run_resilience(options).bench;
       }},
      {"hotpath", "dispatch wall-clock throughput: slow vs fast path vs bucketed (DESIGN.md §14)",
       [](const ExperimentOptions& o) {
         HotpathOptions options;
         options.quick = o.quick;
         return run_hotpath(options);
       }},
      {"hier", "hierarchical composite allreduce vs flat, plus overlap (DESIGN.md §15)",
       [](const ExperimentOptions& o) {
         HierOptions options;
         options.quick = o.quick;
         return run_hier(options);
       }},
  };
  return registry;
}

const Experiment* find_experiment(const std::string& name) {
  for (const Experiment& experiment : experiment_registry()) {
    if (experiment.name == name) return &experiment;
  }
  return nullptr;
}

std::string experiment_names() {
  std::string names;
  for (const Experiment& experiment : experiment_registry()) {
    if (!names.empty()) names += "|";
    names += experiment.name;
  }
  return names;
}

}  // namespace mcrdl::bench
