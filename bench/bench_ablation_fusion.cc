// Ablation: Tensor Fusion parameters (paper Section V-E).
//
// A DDP-like workload of many small gradient allreduces, swept over the
// fusion buffer size B and flush timeout T, plus the cross-backend overlap
// optimisation MCR-DL adds on timeout flushes.
#include "bench/bench_util.h"
#include "src/core/mcr_dl.h"

using namespace mcrdl;

namespace {

struct FusionOutcome {
  double time_us;
  int flushes;
  int overlap_flushes;
};

// `tensors` small gradient allreduces per rank. `two_backends` alternates
// NCCL and MVAPICH2-GDR (for the cross-backend overlap study); otherwise
// everything goes to NCCL, whose per-op launch overhead serialises on the
// communication streams — the cost fusion amortises.
FusionOutcome run(FusionConfig cfg, int tensors, std::size_t tensor_bytes,
                  bool two_backends = false) {
  ClusterContext cluster(net::SystemConfig::lassen(4));  // 16 GPUs
  McrDlOptions opts;
  opts.fusion = cfg;
  McrDl mcr(&cluster, opts);
  mcr.init(two_backends ? std::vector<std::string>{"nccl", "mv2-gdr"}
                        : std::vector<std::string>{"nccl"});
  double total = 0.0;
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    for (int i = 0; i < tensors; ++i) {
      Tensor g = Tensor::phantom({static_cast<std::int64_t>(tensor_bytes / 4)}, DType::F32, dev);
      api.all_reduce(two_backends && i % 2 == 1 ? "mv2-gdr" : "nccl", g, ReduceOp::Sum,
                     /*async_op=*/true);
      dev->compute(2.0, "grad-producer");
    }
    api.synchronize();
    if (rank == 0) total = cluster.scheduler().now();
  });
  return {total, mcr.fusion().flush_count(), mcr.fusion().overlap_flush_count()};
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kTensors = 64;
  constexpr std::size_t kBytes = 16 << 10;  // 16 KiB gradients

  bench::print_header("Ablation: fusion buffer size B (timeout fixed at 100 us)");
  {
    TextTable t({"Config", "Total time", "Collectives issued (16 ranks)", "vs no fusion"});
    FusionConfig off;  // disabled
    const FusionOutcome base = run(off, kTensors, kBytes);
    t.add_row({"fusion off", format_time_us(base.time_us), std::to_string(kTensors * 16),
               "1.00x"});
    bench::register_result("ablation_fusion/off", base.time_us);
    for (std::size_t B : {64u << 10, 256u << 10, 1u << 20, 4u << 20}) {
      FusionConfig cfg;
      cfg.enabled = true;
      cfg.buffer_bytes = B;
      cfg.flush_timeout_us = 100.0;
      cfg.max_tensor_bytes = 64 << 10;
      const FusionOutcome o = run(cfg, kTensors, kBytes);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fx", base.time_us / o.time_us);
      t.add_row({"B = " + format_bytes(B), format_time_us(o.time_us), std::to_string(o.flushes),
                 buf});
      bench::register_result("ablation_fusion/B_" + format_bytes(B), o.time_us);
    }
    std::printf("%s", t.to_string().c_str());
  }

  bench::print_header("Ablation: flush timeout T (B fixed at 1 MiB)");
  {
    TextTable t({"T", "Total time", "Flushes", "Cross-backend overlap flushes"});
    for (double T : {10.0, 50.0, 200.0, 1000.0}) {
      FusionConfig cfg;
      cfg.enabled = true;
      cfg.buffer_bytes = 1 << 20;
      cfg.flush_timeout_us = T;
      cfg.max_tensor_bytes = 64 << 10;
      const FusionOutcome o = run(cfg, kTensors, kBytes);
      t.add_row({format_time_us(T), format_time_us(o.time_us), std::to_string(o.flushes),
                 std::to_string(o.overlap_flushes)});
      bench::register_result("ablation_fusion/T_" + std::to_string(static_cast<int>(T)),
                             o.time_us);
    }
    std::printf("%s", t.to_string().c_str());
  }

  bench::print_header("Ablation: cross-backend overlap flush (paper's fusion twist)");
  {
    TextTable t({"Cross-backend overlap", "Total time", "Overlap flushes"});
    for (bool overlap : {false, true}) {
      FusionConfig cfg;
      cfg.enabled = true;
      cfg.buffer_bytes = 1 << 20;
      cfg.flush_timeout_us = 50.0;
      cfg.max_tensor_bytes = 64 << 10;
      cfg.cross_backend_overlap = overlap;
      const FusionOutcome o = run(cfg, kTensors, kBytes, /*two_backends=*/true);
      t.add_row({overlap ? "on" : "off", format_time_us(o.time_us),
                 std::to_string(o.overlap_flushes)});
      bench::register_result(std::string("ablation_fusion/overlap_") + (overlap ? "on" : "off"),
                             o.time_us);
    }
    std::printf("%s", t.to_string().c_str());
  }
  return bench::run_registered(argc, argv);
}
