// Figure 8 reproduction: DS-MoE pre-training throughput (a) and scaling
// efficiency (b) on Lassen V100s for pure NCCL, pure MVAPICH2-GDR,
// coarse-grained mixed backends (MCR-DL) and tuned fine-grained mixing
// (MCR-DL-T), from 16 to 256 GPUs. Paper headline: +31% over pure
// MVAPICH2-GDR and +35% over pure NCCL at 256 GPUs, 81% scaling efficiency.
//
// The sweep lives in bench/experiments.cc (shared with `bench_export`).
#include <algorithm>

#include "bench/bench_util.h"
#include "bench/experiments.h"

using namespace mcrdl;

int main(int argc, char** argv) {
  const std::vector<int> scales = {16, 32, 64, 128, 256};
  const bench::BenchReport report = bench::run_fig8();
  std::vector<std::string> plan_names;
  for (const auto& s : report.series) plan_names.push_back(s.name);

  bench::print_header("Figure 8(a): DS-MoE throughput (samples/s) on Lassen V100s");
  {
    std::vector<std::string> headers = {"GPUs"};
    for (const auto& name : plan_names) headers.push_back(name);
    TextTable t(headers);
    for (int gpus : scales) {
      std::vector<std::string> row = {std::to_string(gpus)};
      for (const auto& name : plan_names) {
        const bench::BenchPoint& p = report.at(name, gpus);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", p.items_per_s);
        row.push_back(buf);
        bench::register_result("fig8/" + name + "/" + std::to_string(gpus) + "gpus",
                               p.virtual_us, p.items_per_s);
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  }

  bench::print_header("Figure 8(b): DS-MoE scaling efficiency (vs 16 GPUs)");
  {
    std::vector<std::string> headers = {"GPUs"};
    for (const auto& name : plan_names) headers.push_back(name);
    TextTable t(headers);
    for (int gpus : scales) {
      std::vector<std::string> row = {std::to_string(gpus)};
      for (const auto& name : plan_names) {
        // Weak-scaling efficiency: per-GPU throughput vs the 16-GPU run.
        const bench::BenchPoint& p = report.at(name, gpus);
        const bench::BenchPoint& p0 = report.at(name, scales.front());
        const double eff = (p.items_per_s / gpus) / (p0.items_per_s / scales.front());
        row.push_back(format_percent(eff));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  }

  const double best_tuned = std::max(report.at("MCR-DL", 256).items_per_s,
                                     report.at("MCR-DL-T", 256).items_per_s);
  std::printf(
      "\nAt 256 GPUs: MCR-DL improves throughput by %s over pure MVAPICH2-GDR and %s over "
      "pure NCCL (paper: 31%% and 35%%).\n",
      format_percent(best_tuned / report.at("Pure MVAPICH2-GDR", 256).items_per_s - 1.0).c_str(),
      format_percent(best_tuned / report.at("Pure NCCL", 256).items_per_s - 1.0).c_str());
  return bench::run_registered(argc, argv);
}
