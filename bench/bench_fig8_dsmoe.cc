// Figure 8 reproduction: DS-MoE pre-training throughput (a) and scaling
// efficiency (b) on Lassen V100s for pure NCCL, pure MVAPICH2-GDR,
// coarse-grained mixed backends (MCR-DL) and tuned fine-grained mixing
// (MCR-DL-T), from 16 to 256 GPUs. Paper headline: +31% over pure
// MVAPICH2-GDR and +35% over pure NCCL at 256 GPUs, 81% scaling efficiency.
#include <map>

#include "bench/bench_util.h"
#include "src/models/moe.h"

using namespace mcrdl;
using namespace mcrdl::models;

int main(int argc, char** argv) {
  const std::vector<int> scales = {16, 32, 64, 128, 256};
  const std::vector<CommPlan> plans = {CommPlan::pure("mv2-gdr", "Pure MVAPICH2-GDR"),
                                       CommPlan::pure("nccl", "Pure NCCL"),
                                       CommPlan::mcr_dl_mixed(), CommPlan::mcr_dl_tuned()};
  HarnessOptions opts;
  opts.warmup_steps = 1;
  opts.measured_steps = 2;

  std::map<std::string, std::map<int, RunResult>> results;
  for (int gpus : scales) {
    net::SystemConfig sys = net::SystemConfig::lassen(gpus / 4);
    TrainingHarness harness(sys);
    DSMoEModel model(DSMoEConfig{}, sys);

    // MCR-DL-T consumes a tuning table generated at this scale for the ops
    // and message range the model actually uses.
    TuningSuite suite(sys);
    TuningConfig tcfg;
    tcfg.backends = {"nccl", "mv2-gdr"};
    tcfg.ops = {OpType::AllReduce, OpType::AllToAllSingle, OpType::Barrier};
    tcfg.sizes = {64u << 10, 1u << 20, 4u << 20, 16u << 20, 32u << 20};
    tcfg.world_sizes = {gpus};
    tcfg.iterations = 1;
    TuningTable table = suite.generate(tcfg);

    for (const auto& plan : plans) {
      results[plan.name][gpus] =
          harness.run(model, plan, FrameworkModel::raw(), opts, plan.use_auto ? &table : nullptr);
    }
  }

  bench::print_header("Figure 8(a): DS-MoE throughput (samples/s) on Lassen V100s");
  {
    std::vector<std::string> headers = {"GPUs"};
    for (const auto& plan : plans) headers.push_back(plan.name);
    TextTable t(headers);
    for (int gpus : scales) {
      std::vector<std::string> row = {std::to_string(gpus)};
      for (const auto& plan : plans) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", results[plan.name][gpus].throughput);
        row.push_back(buf);
        bench::register_result("fig8/" + plan.name + "/" + std::to_string(gpus) + "gpus",
                               results[plan.name][gpus].step_time_us,
                               results[plan.name][gpus].throughput);
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  }

  bench::print_header("Figure 8(b): DS-MoE scaling efficiency (vs 16 GPUs)");
  {
    std::vector<std::string> headers = {"GPUs"};
    for (const auto& plan : plans) headers.push_back(plan.name);
    TextTable t(headers);
    for (int gpus : scales) {
      std::vector<std::string> row = {std::to_string(gpus)};
      for (const auto& plan : plans) {
        row.push_back(format_percent(
            scaling_efficiency(results[plan.name][gpus], results[plan.name][scales.front()])));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  }

  const double best_tuned =
      std::max(results["MCR-DL"][256].throughput, results["MCR-DL-T"][256].throughput);
  std::printf(
      "\nAt 256 GPUs: MCR-DL improves throughput by %s over pure MVAPICH2-GDR and %s over "
      "pure NCCL (paper: 31%% and 35%%).\n",
      format_percent(best_tuned / results["Pure MVAPICH2-GDR"][256].throughput - 1.0).c_str(),
      format_percent(best_tuned / results["Pure NCCL"][256].throughput - 1.0).c_str());
  return bench::run_registered(argc, argv);
}
