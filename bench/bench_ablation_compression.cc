// Ablation: communication compression (paper Section V-E).
//
// Sweeps the zfp-style codec's fixed rate on a broadcast/all_gather
// workload, reporting the communication-time saving against the
// reconstruction error each rate costs — the trade-off a user tunes.
#include <cmath>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/mcr_dl.h"

using namespace mcrdl;

namespace {

struct Outcome {
  double time_us;
  double max_error;
};

Outcome run(int bits_or_zero) {
  CompressionConfig ccfg;
  ccfg.enabled = bits_or_zero > 0;
  if (ccfg.enabled) ccfg.codec.bits_per_value = bits_or_zero;
  ccfg.min_bytes = 0;
  McrDlOptions opts;
  opts.compression = ccfg;
  ClusterContext cluster(net::SystemConfig::lassen(4));  // 16 GPUs
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl"});
  Outcome out{0.0, 0.0};
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    // A real (materialised) payload so reconstruction error is measurable.
    Rng rng(7);
    Tensor reference = Tensor::random_uniform({16384}, DType::F32, dev, rng, -1.0, 1.0);
    Tensor payload = rank == 0 ? reference.clone() : Tensor::zeros({16384}, DType::F32, dev);
    for (int i = 0; i < 4; ++i) {
      api.broadcast("nccl", payload, 0);
      // Plus a phantom bandwidth-bound all_gather to expose the wire saving.
      Tensor in = Tensor::phantom({1 << 20}, DType::F32, dev);
      Tensor gathered = Tensor::phantom({16 << 20}, DType::F32, dev);
      api.all_gather("nccl", gathered, in);
      api.synchronize();
    }
    if (rank == 1) {
      double worst = 0.0;
      for (int i = 0; i < 16384; ++i) {
        worst = std::max(worst, std::abs(payload.get(i) - reference.get(i)));
      }
      out.max_error = worst;
    }
    if (rank == 0) out.time_us = cluster.scheduler().now();
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Ablation: zfp-style communication compression — rate vs time vs error "
      "(broadcast + all_gather workload, 16 GPUs Lassen)");
  TextTable t({"Rate (bits/value)", "Total time", "Speedup", "Max reconstruction error"});
  const Outcome base = run(0);
  t.add_row({"off (f32)", format_time_us(base.time_us), "1.00x", "0"});
  bench::register_result("ablation_compression/off", base.time_us);
  for (int bits : {6, 8, 12, 16, 20}) {
    const Outcome o = run(bits);
    char speed[32], err[32];
    std::snprintf(speed, sizeof(speed), "%.2fx", base.time_us / o.time_us);
    std::snprintf(err, sizeof(err), "%.2e", o.max_error);
    t.add_row({std::to_string(bits), format_time_us(o.time_us), speed, err});
    bench::register_result("ablation_compression/bits_" + std::to_string(bits), o.time_us);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nHigher rates keep more precision at less wire saving; the codec's\n"
      "fixed-rate contract keeps compressed buffer sizes known up front.\n");
  return bench::run_registered(argc, argv);
}
