// Figure 7 reproduction: framework overhead over the raw OSU-style
// micro-benchmark (OMB) for a fixed backend (MVAPICH2-GDR Alltoall on 32
// A100 GPUs, ThetaGPU). The paper measures ~5% small-message / ~1%
// large-message overhead for MCR-DL versus 18% / 4% for PyTorch-distributed.
#include "bench/bench_util.h"
#include "src/models/comm_plan.h"

using namespace mcrdl;
using namespace mcrdl::models;

namespace {

// Mean per-op Alltoall latency through one framework layer.
double measure(const FrameworkModel& fw, std::size_t bytes, int iters = 4) {
  ClusterContext cluster(net::SystemConfig::theta_gpu(4));  // 32 GPUs
  McrDl mcr(&cluster);
  CommPlan plan = CommPlan::pure("mv2-gdr");
  mcr.init(plan.backends_needed(available_backend_names()));
  double result = 0.0;
  const std::int64_t numel =
      ((static_cast<std::int64_t>(bytes) / 4 + 31) / 32) * 32;  // divisible by world
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    CommIssuer comm(api, plan, fw);
    sim::Device* dev = cluster.device(rank);
    auto one = [&] {
      Tensor in = Tensor::phantom({numel}, DType::F32, dev);
      Tensor out = Tensor::phantom({numel}, DType::F32, dev);
      comm.all_to_all_single(std::move(out), std::move(in), /*async_op=*/false);
      api.synchronize();
    };
    one();  // warmup
    const SimTime start = cluster.scheduler().now();
    for (int i = 0; i < iters; ++i) one();
    if (rank == 0) result = (cluster.scheduler().now() - start) / iters;
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::size_t> sizes = {512,        1u << 10, 4u << 10,  16u << 10,
                                          64u << 10,  256u << 10, 1u << 20, 4u << 20,
                                          16u << 20};
  bench::print_header(
      "Figure 7: % overhead over OMB, MPI Alltoall with a fixed backend "
      "(MVAPICH2-GDR), 32 A100 GPUs (ThetaGPU)");
  TextTable t({"Message size", "OMB latency", "MCR-DL", "MCR-DL overhead", "PyTorch-dist",
               "PyTorch-dist overhead"});
  for (std::size_t bytes : sizes) {
    const double raw = measure(FrameworkModel::raw(), bytes);
    const double mcr = measure(FrameworkModel::mcr_dl(), bytes);
    const double pytd = measure(FrameworkModel::pytorch_distributed("mv2-gdr"), bytes);
    t.add_row({format_bytes(bytes), format_time_us(raw), format_time_us(mcr),
               format_percent(mcr / raw - 1.0), format_time_us(pytd),
               format_percent(pytd / raw - 1.0)});
    bench::register_result("fig7/omb/" + format_bytes(bytes), raw);
    bench::register_result("fig7/mcr_dl/" + format_bytes(bytes), mcr);
    bench::register_result("fig7/pytorch_dist/" + format_bytes(bytes), pytd);
  }
  std::printf("%s", t.to_string().c_str());
  return bench::run_registered(argc, argv);
}
