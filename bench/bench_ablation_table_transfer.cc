// Ablation: tuning-table transferability across systems (paper Section
// V-F): "tuning tables are not transferable across HPC systems. However,
// general trends tend to hold across systems with a coarsely similar
// architecture (e.g. MVAPICH2-GDR consistently performs the best for small
// messages)." We generate the same table on Lassen and ThetaGPU and diff.
#include "bench/bench_util.h"
#include "src/tune/tuning.h"

using namespace mcrdl;

namespace {

TuningTable tune(const net::SystemConfig& base, int world,
                 const std::vector<std::size_t>& sizes) {
  TuningSuite suite(base);
  TuningConfig cfg;
  cfg.backends = {"mv2-gdr", "nccl", "sccl"};
  cfg.ops = {OpType::AllReduce, OpType::AllGather, OpType::AllToAllSingle};
  cfg.sizes = sizes;
  cfg.world_sizes = {world};
  cfg.iterations = 1;
  return suite.generate(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::size_t> sizes = {1u << 10, 16u << 10, 256u << 10, 4u << 20};
  const int world = 32;
  TuningTable lassen = tune(net::SystemConfig::lassen(8), world, sizes);
  TuningTable theta = tune(net::SystemConfig::theta_gpu(4), world, sizes);

  bench::print_header(
      "Ablation: tuning-table transfer, 32 GPUs — Lassen (V100/EDR) vs ThetaGPU (A100/HDR)");
  TextTable t({"Operation", "Message size", "Lassen winner", "ThetaGPU winner", "Same?"});
  int same = 0, total = 0;
  int mv2_small_wins = 0, small_points = 0;
  for (OpType op : {OpType::AllReduce, OpType::AllGather, OpType::AllToAllSingle}) {
    for (std::size_t bytes : sizes) {
      const std::string& a = lassen.lookup(op, world, bytes);
      const std::string& b = theta.lookup(op, world, bytes);
      same += (a == b);
      ++total;
      if (bytes <= (16u << 10)) {
        ++small_points;
        mv2_small_wins += (a == "mv2-gdr") + (b == "mv2-gdr");
      }
      t.add_row({op_name(op), format_bytes(bytes), a, b, a == b ? "yes" : "NO"});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\n%d/%d grid points agree across systems — the general trends hold, the exact\n"
      "thresholds do not, which is why each system runs its own tuning sweep.\n"
      "MVAPICH2-GDR wins %d/%d of the small-message points on both systems, the\n"
      "consistent trend the paper calls out.\n",
      same, total, mv2_small_wins, 2 * small_points);
  bench::register_result("ablation_transfer/agreeing_points", static_cast<double>(same));
  return bench::run_registered(argc, argv);
}
