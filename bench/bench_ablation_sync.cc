// Ablation: MCR-DL's fine-grained synchronisation (paper Section V-C,
// Figure 4) quantified.
//
// (1) Naive scheme — every collective posted and immediately
//     host-synchronised (cudaStreamSynchronize after each op) — versus
//     MCR-DL's event scheme — async post, stream-level wait() — on the
//     Listing-3 pattern of communication overlapping independent compute.
// (2) The communication-stream pool: concurrent small-message collectives
//     with pool size 1 (single comm stream) vs MCR-DL's pool, which the
//     paper's point (1) says only helps small messages.
#include "bench/bench_util.h"
#include "src/core/mcr_dl.h"

using namespace mcrdl;

namespace {

// Listing-3 pattern: `ops` rounds of {async allreduce, independent compute,
// dependent compute}; returns total virtual time.
double run_overlap(bool naive, int ops) {
  ClusterContext cluster(net::SystemConfig::lassen(4));  // 16 GPUs
  McrDl mcr(&cluster);
  mcr.init({"nccl"});
  double total = 0.0;
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    for (int i = 0; i < ops; ++i) {
      Tensor x = Tensor::phantom({1 << 20}, DType::F32, dev);  // 4 MiB
      Work h = api.all_reduce("nccl", x, ReduceOp::Sum, /*async_op=*/true);
      if (naive) h->synchronize();  // Fig 4(a): host blocks right away
      dev->compute(300.0, "independent");
      h->wait();  // Fig 4(b): stream-level dependency
      dev->compute(50.0, "dependent");
    }
    api.synchronize();
    dev->default_stream()->synchronize();
    if (rank == 0) total = cluster.scheduler().now();
  });
  return total;
}

// `ops` concurrent small collectives; pool=false forces one comm stream.
double run_pool(bool use_pool, int ops, std::size_t bytes) {
  ClusterContext cluster(net::SystemConfig::lassen(4));
  McrDl mcr(&cluster);
  mcr.init({"nccl"});
  auto* nccl = dynamic_cast<StreamBackend*>(mcr.backend("nccl"));
  (void)nccl;
  double total = 0.0;
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    std::vector<Work> works;
    for (int i = 0; i < ops; ++i) {
      Tensor x = Tensor::phantom({static_cast<std::int64_t>(bytes / 4)}, DType::F32, dev);
      // Forcing one stream: serialise via explicit waits between posts.
      if (!use_pool && !works.empty()) works.back()->synchronize();
      works.push_back(api.all_reduce("nccl", x, ReduceOp::Sum, true));
    }
    for (auto& w : works) w->synchronize();
    if (rank == 0) total = cluster.scheduler().now();
  });
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Ablation: naive host synchronisation vs MCR-DL fine-grained events");
  {
    TextTable t({"Scheme", "8 rounds of comm+compute", "Speedup"});
    const double naive = run_overlap(true, 8);
    const double events = run_overlap(false, 8);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", naive / events);
    t.add_row({"naive (Fig 4a)", format_time_us(naive), "1.00x"});
    t.add_row({"MCR-DL events (Fig 4b)", format_time_us(events), buf});
    std::printf("%s", t.to_string().c_str());
    bench::register_result("ablation_sync/naive", naive);
    bench::register_result("ablation_sync/events", events);
  }

  bench::print_header(
      "Ablation: communication-stream pool for concurrent small messages "
      "(paper: no benefit for large, bandwidth-bound messages)");
  {
    TextTable t({"Message size", "Serialised", "Stream pool", "Speedup"});
    for (std::size_t bytes : {4u << 10, 64u << 10, 4u << 20}) {
      const double serial = run_pool(false, 8, bytes);
      const double pooled = run_pool(true, 8, bytes);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fx", serial / pooled);
      t.add_row({format_bytes(bytes), format_time_us(serial), format_time_us(pooled), buf});
      bench::register_result("ablation_pool/" + format_bytes(bytes) + "/pooled", pooled);
    }
    std::printf("%s", t.to_string().c_str());
  }
  return bench::run_registered(argc, argv);
}
