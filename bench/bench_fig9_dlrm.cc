// Figure 9 reproduction: DLRM throughput (a) and scaling efficiency (b) on
// ThetaGPU A100s for pure NCCL, pure MVAPICH2-GDR, MCR-DL and MCR-DL-T,
// from 8 to 32 GPUs. Paper headline: +25% over pure MVAPICH2-GDR and +30%
// over pure NCCL at 32 GPUs, 75% scaling efficiency.
#include <map>

#include "bench/bench_util.h"
#include "src/models/dlrm.h"

using namespace mcrdl;
using namespace mcrdl::models;

int main(int argc, char** argv) {
  const std::vector<int> scales = {8, 16, 32};
  const std::vector<CommPlan> plans = {CommPlan::pure("mv2-gdr", "Pure MVAPICH2-GDR"),
                                       CommPlan::pure("nccl", "Pure NCCL"),
                                       CommPlan::mcr_dl_mixed(), CommPlan::mcr_dl_tuned()};
  HarnessOptions opts;
  opts.warmup_steps = 2;
  opts.measured_steps = 6;

  std::map<std::string, std::map<int, RunResult>> results;
  for (int gpus : scales) {
    net::SystemConfig sys = net::SystemConfig::theta_gpu(gpus / 8);
    TrainingHarness harness(sys);
    DLRMModel model(DLRMConfig{}, sys);

    TuningSuite suite(sys);
    TuningConfig tcfg;
    tcfg.backends = {"nccl", "mv2-gdr"};
    tcfg.ops = {OpType::AllReduce, OpType::AllToAllSingle, OpType::Barrier};
    tcfg.sizes = {256u << 10, 1u << 20, 4u << 20, 8u << 20, 16u << 20};
    tcfg.world_sizes = {gpus};
    tcfg.iterations = 1;
    TuningTable table = suite.generate(tcfg);

    for (const auto& plan : plans) {
      results[plan.name][gpus] =
          harness.run(model, plan, FrameworkModel::raw(), opts, plan.use_auto ? &table : nullptr);
    }
  }

  bench::print_header("Figure 9(a): DLRM throughput (samples/s) on ThetaGPU A100s");
  {
    std::vector<std::string> headers = {"GPUs"};
    for (const auto& plan : plans) headers.push_back(plan.name);
    TextTable t(headers);
    for (int gpus : scales) {
      std::vector<std::string> row = {std::to_string(gpus)};
      for (const auto& plan : plans) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2fM", results[plan.name][gpus].throughput / 1e6);
        row.push_back(buf);
        bench::register_result("fig9/" + plan.name + "/" + std::to_string(gpus) + "gpus",
                               results[plan.name][gpus].step_time_us,
                               results[plan.name][gpus].throughput);
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  }

  bench::print_header("Figure 9(b): DLRM scaling efficiency (vs 8 GPUs)");
  {
    std::vector<std::string> headers = {"GPUs"};
    for (const auto& plan : plans) headers.push_back(plan.name);
    TextTable t(headers);
    for (int gpus : scales) {
      std::vector<std::string> row = {std::to_string(gpus)};
      for (const auto& plan : plans) {
        // DLRM strong-scales a fixed global batch; efficiency compares
        // per-step speedup against the ideal P/P0.
        const double speedup = results[plan.name][scales.front()].step_time_us /
                               results[plan.name][gpus].step_time_us;
        const double ideal = static_cast<double>(gpus) / scales.front();
        row.push_back(format_percent(speedup / ideal));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  }

  const double best_tuned =
      std::max(results["MCR-DL"][32].throughput, results["MCR-DL-T"][32].throughput);
  std::printf(
      "\nAt 32 GPUs: MCR-DL improves throughput by %s over pure MVAPICH2-GDR and %s over pure "
      "NCCL (paper: 25%% and 30%%).\n",
      format_percent(best_tuned / results["Pure MVAPICH2-GDR"][32].throughput - 1.0).c_str(),
      format_percent(best_tuned / results["Pure NCCL"][32].throughput - 1.0).c_str());
  return bench::run_registered(argc, argv);
}
