// Figure 9 reproduction: DLRM throughput (a) and scaling efficiency (b) on
// ThetaGPU A100s for pure NCCL, pure MVAPICH2-GDR, MCR-DL and MCR-DL-T,
// from 8 to 32 GPUs. Paper headline: +25% over pure MVAPICH2-GDR and +30%
// over pure NCCL at 32 GPUs, 75% scaling efficiency.
//
// The sweep lives in bench/experiments.cc (shared with `bench_export`).
#include <algorithm>

#include "bench/bench_util.h"
#include "bench/experiments.h"

using namespace mcrdl;

int main(int argc, char** argv) {
  const std::vector<int> scales = {8, 16, 32};
  const bench::BenchReport report = bench::run_fig9();
  std::vector<std::string> plan_names;
  for (const auto& s : report.series) plan_names.push_back(s.name);

  bench::print_header("Figure 9(a): DLRM throughput (samples/s) on ThetaGPU A100s");
  {
    std::vector<std::string> headers = {"GPUs"};
    for (const auto& name : plan_names) headers.push_back(name);
    TextTable t(headers);
    for (int gpus : scales) {
      std::vector<std::string> row = {std::to_string(gpus)};
      for (const auto& name : plan_names) {
        const bench::BenchPoint& p = report.at(name, gpus);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2fM", p.items_per_s / 1e6);
        row.push_back(buf);
        bench::register_result("fig9/" + name + "/" + std::to_string(gpus) + "gpus",
                               p.virtual_us, p.items_per_s);
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  }

  bench::print_header("Figure 9(b): DLRM scaling efficiency (vs 8 GPUs)");
  {
    std::vector<std::string> headers = {"GPUs"};
    for (const auto& name : plan_names) headers.push_back(name);
    TextTable t(headers);
    for (int gpus : scales) {
      std::vector<std::string> row = {std::to_string(gpus)};
      for (const auto& name : plan_names) {
        // DLRM strong-scales a fixed global batch; efficiency compares
        // per-step speedup against the ideal P/P0.
        const double speedup =
            report.at(name, scales.front()).virtual_us / report.at(name, gpus).virtual_us;
        const double ideal = static_cast<double>(gpus) / scales.front();
        row.push_back(format_percent(speedup / ideal));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  }

  const double best_tuned =
      std::max(report.at("MCR-DL", 32).items_per_s, report.at("MCR-DL-T", 32).items_per_s);
  std::printf(
      "\nAt 32 GPUs: MCR-DL improves throughput by %s over pure MVAPICH2-GDR and %s over pure "
      "NCCL (paper: 25%% and 30%%).\n",
      format_percent(best_tuned / report.at("Pure MVAPICH2-GDR", 32).items_per_s - 1.0).c_str(),
      format_percent(best_tuned / report.at("Pure NCCL", 32).items_per_s - 1.0).c_str());
  return bench::run_registered(argc, argv);
}
