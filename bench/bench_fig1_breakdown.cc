// Figure 1 reproduction: (a) computation vs communication split and (b) the
// per-operation communication breakdown for ResNet-50 (64 V100, Lassen),
// DS-MoE (64 V100, Lassen) and DLRM (32 A100, ThetaGPU), each under a
// monolithic single-backend (NCCL) framework as in the paper's profile.
#include "bench/bench_util.h"
#include "src/models/dlrm.h"
#include "src/models/moe.h"
#include "src/models/resnet.h"

using namespace mcrdl;
using namespace mcrdl::models;

namespace {

struct Row {
  std::string model;
  int world;
  RunResult result;
};

Row run_model(const std::string& which) {
  HarnessOptions opts;
  opts.warmup_steps = 1;
  opts.measured_steps = 3;
  if (which == "resnet") {
    net::SystemConfig sys = net::SystemConfig::lassen(16);  // 64 GPUs
    ResNet50Model model(ResNet50Config{}, sys);
    return {"ResNet-50", 64,
            TrainingHarness(sys).run(model, CommPlan::pure("nccl"), FrameworkModel::raw(), opts)};
  }
  if (which == "moe") {
    net::SystemConfig sys = net::SystemConfig::lassen(16);
    DSMoEModel model(DSMoEConfig{}, sys);
    return {"DS-MoE", 64,
            TrainingHarness(sys).run(model, CommPlan::pure("nccl"), FrameworkModel::raw(), opts)};
  }
  net::SystemConfig sys = net::SystemConfig::theta_gpu(4);  // 32 GPUs
  DLRMModel model(DLRMConfig{}, sys);
  return {"DLRM", 32,
          TrainingHarness(sys).run(model, CommPlan::pure("nccl"), FrameworkModel::raw(), opts)};
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Row> rows;
  for (const char* which : {"resnet", "moe", "dlrm"}) rows.push_back(run_model(which));

  bench::print_header(
      "Figure 1(a): computation vs communication (ResNet-50 & DS-MoE on 64 "
      "V100/Lassen, DLRM on 32 A100/ThetaGPU)");
  {
    TextTable t({"Model", "GPUs", "Compute %", "Communication %", "Step time"});
    for (const auto& row : rows) {
      const double comm = row.result.comm_fraction();
      t.add_row({row.model, std::to_string(row.world), format_percent(1.0 - comm),
                 format_percent(comm), format_time_us(row.result.step_time_us)});
    }
    std::printf("%s", t.to_string().c_str());
  }

  bench::print_header("Figure 1(b): communication-operation breakdown (share of comm time)");
  {
    TextTable t({"Model", "Operation", "Share", "Per-step time"});
    for (const auto& row : rows) {
      double total = 0.0;
      for (const auto& [op, us] : row.result.comm_by_op_us) total += us;
      for (const auto& [op, us] : row.result.comm_by_op_us) {
        if (us / total < 0.001) continue;
        t.add_row({row.model, op, format_percent(us / total), format_time_us(us)});
      }
    }
    std::printf("%s", t.to_string().c_str());
  }

  for (const auto& row : rows) {
    bench::register_result("fig1/" + row.model + "/step_time", row.result.step_time_us,
                           row.result.throughput);
    bench::register_result("fig1/" + row.model + "/comm_time", row.result.comm_time_us);
  }
  return bench::run_registered(argc, argv);
}
