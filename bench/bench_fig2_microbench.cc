// Figure 2 reproduction: collective micro-benchmark comparison of the four
// communication backends on 64 GPUs (16 Lassen nodes x 4 ppn) —
// (a) non-blocking Allreduce and (b) Alltoall latency across message sizes.
#include "bench/bench_util.h"
#include "src/core/tuning.h"
#include "src/net/cost.h"

using namespace mcrdl;

int main(int argc, char** argv) {
  const std::vector<std::size_t> sizes = {1u << 10, 4u << 10, 16u << 10, 64u << 10,
                                          256u << 10, 1u << 20, 4u << 20, 16u << 20,
                                          64u << 20};
  const std::vector<std::string> backends = {"mv2-gdr", "ompi", "nccl", "sccl"};

  TuningSuite suite(net::SystemConfig::lassen(16));  // 64 GPUs
  TuningConfig cfg;
  cfg.backends = backends;
  cfg.ops = {OpType::AllReduce, OpType::AllToAllSingle};
  cfg.sizes = sizes;
  cfg.world_sizes = {64};
  cfg.iterations = 2;
  cfg.warmup = 1;
  (void)suite.generate(cfg);

  auto print_sweep = [&](OpType op, const std::string& title) {
    bench::print_header(title);
    std::vector<std::string> headers = {"Message size"};
    for (const auto& b : backends) headers.push_back(b);
    TextTable t(headers);
    for (std::size_t bytes : sizes) {
      std::vector<std::string> row = {format_bytes(bytes)};
      for (const auto& b : backends) {
        const double us = suite.measured(b, op, 64, bytes);
        row.push_back(format_time_us(us));
        bench::register_result(std::string("fig2/") + op_name(op) + "/" + b + "/" +
                                   format_bytes(bytes),
                               us);
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  };

  print_sweep(OpType::AllReduce,
              "Figure 2(a): iAllreduce latency, 64 GPUs (16 nodes x 4 ppn, Lassen)");
  print_sweep(OpType::AllToAllSingle,
              "Figure 2(b): Alltoall latency, 64 GPUs (16 nodes x 4 ppn, Lassen)");
  return bench::run_registered(argc, argv);
}
