// Figure 2 reproduction: collective micro-benchmark comparison of the four
// communication backends on 64 GPUs (16 Lassen nodes x 4 ppn) —
// (a) non-blocking Allreduce and (b) Alltoall latency across message sizes.
//
// The sweep itself lives in bench/experiments.cc (shared with the
// `bench_export` tool); this binary renders it for humans.
#include "bench/bench_util.h"
#include "bench/experiments.h"
#include "src/net/comm_types.h"

using namespace mcrdl;

int main(int argc, char** argv) {
  const bench::Fig2Options options;  // the paper's grid
  const bench::BenchReport report = bench::run_fig2(options);
  const std::vector<std::string> backends = {"mv2-gdr", "ompi", "nccl", "sccl"};

  auto print_sweep = [&](OpType op, const std::string& title) {
    bench::print_header(title);
    std::vector<std::string> headers = {"Message size"};
    for (const auto& b : backends) headers.push_back(b);
    TextTable t(headers);
    const bench::BenchSeries* first =
        report.find(std::string(op_name(op)) + "/" + backends.front());
    for (std::size_t i = 0; i < first->points.size(); ++i) {
      const std::size_t bytes = first->points[i].bytes;
      std::vector<std::string> row = {format_bytes(bytes)};
      for (const auto& b : backends) {
        const double us = report.find(std::string(op_name(op)) + "/" + b)->points[i].virtual_us;
        row.push_back(format_time_us(us));
        bench::register_result(std::string("fig2/") + op_name(op) + "/" + b + "/" +
                                   format_bytes(bytes),
                               us);
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  };

  print_sweep(OpType::AllReduce,
              "Figure 2(a): iAllreduce latency, 64 GPUs (16 nodes x 4 ppn, Lassen)");
  print_sweep(OpType::AllToAllSingle,
              "Figure 2(b): Alltoall latency, 64 GPUs (16 nodes x 4 ppn, Lassen)");
  return bench::run_registered(argc, argv);
}
