// Table I reproduction: the feature matrix comparing MCR-DL with existing
// frameworks (point-to-point, collectives, vector collectives, non-blocking
// operations, mixed-backend communication, backend-as-a-class). Built from
// the frameworks' capability models and MCR-DL's own feature introspection.
#include "bench/bench_util.h"
#include "src/models/comm_plan.h"

using namespace mcrdl;
using namespace mcrdl::models;

namespace {

struct FeatureRow {
  std::string framework;
  std::string p2p;
  std::string collectives;
  std::string vector_collectives;
  std::string non_blocking;
  std::string mixed_backend;
  std::string backend_as_class;
};

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Table I: features offered by MCR-DL vs existing frameworks");
  std::vector<FeatureRow> rows = {
      {"Horovod", "x", "yes", "x", "NCCL only", "Experimental", "x"},
      {"PyTorch Distributed", "yes", "yes", "x", "NCCL only", "x", "yes"},
      {"LBANN", "yes", "yes", "x", "yes", "x", "x"},
      {"mpi4py", "yes", "yes", "yes", "yes", "x", "x"},
      {"MCR-DL (this repo)", "yes", "yes", "yes", "yes", "yes", "yes"},
  };
  TextTable t({"Framework", "Point-to-Point", "Collectives", "Vector Collectives",
               "Non-Blocking", "Mixed-Backend", "Backend as a Class"});
  for (const auto& r : rows) {
    t.add_row({r.framework, r.p2p, r.collectives, r.vector_collectives, r.non_blocking,
               r.mixed_backend, r.backend_as_class});
  }
  std::printf("%s", t.to_string().c_str());

  // Verify MCR-DL's column from the implementation itself: every operation
  // in Listing 1 must execute on every backend (natively or emulated).
  bench::print_header("Verification: every Listing-1 operation on every backend");
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster);
  mcr.init(available_backend_names());
  int ops_exercised = 0;
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    const int n = cluster.world_size();
    for (const auto& backend : mcr.get_backends()) {
      sim::Device* dev = cluster.device(rank);
      Tensor t4 = Tensor::full({4}, DType::F32, 1.0, dev);
      api.all_reduce(backend, t4);
      api.broadcast(backend, t4, 0);
      api.reduce(backend, t4, 0);
      Tensor in = Tensor::full({2}, DType::F32, rank * 1.0, dev);
      Tensor out = Tensor::zeros({2 * n}, DType::F32, dev);
      api.all_gather(backend, out, in);
      Tensor rs_in = Tensor::arange(n, DType::F32, dev);
      Tensor rs_out = Tensor::zeros({1}, DType::F32, dev);
      api.reduce_scatter(backend, rs_out, rs_in);
      Tensor a_in = Tensor::full({n}, DType::F32, 1.0, dev);
      Tensor a_out = Tensor::zeros({n}, DType::F32, dev);
      api.all_to_all_single(backend, a_out, a_in);
      Tensor g_out = rank == 0 ? Tensor::zeros({2 * n}, DType::F32, dev) : Tensor();
      api.gather(backend, g_out, in, 0);
      Tensor s_in = rank == 0 ? Tensor::arange(n, DType::F32, dev) : Tensor();
      Tensor s_out = Tensor::zeros({1}, DType::F32, dev);
      api.scatter(backend, s_out, s_in, 0);
      std::vector<int> counts(static_cast<std::size_t>(n), 1), displs;
      for (int r = 0; r < n; ++r) displs.push_back(r);
      Tensor v_in = Tensor::full({1}, DType::F32, rank * 1.0, dev);
      Tensor v_out = Tensor::zeros({n}, DType::F32, dev);
      api.all_gatherv(backend, v_out, v_in, counts, displs);
      api.gatherv(backend, rank == 0 ? Tensor::zeros({n}, DType::F32, dev) : Tensor(), v_in, 0,
                  counts, displs);
      api.scatterv(backend, Tensor::zeros({1}, DType::F32, dev),
                   rank == 0 ? Tensor::arange(n, DType::F32, dev) : Tensor(), 0, counts, displs);
      Tensor av_in = Tensor::arange(n, DType::F32, dev);
      Tensor av_out = Tensor::zeros({n}, DType::F32, dev);
      api.all_to_allv(backend, av_out, av_in, counts, displs, counts, displs);
      api.barrier(backend);
      if (rank == 0) {
        Tensor p = Tensor::arange(3, DType::F32, dev);
        api.send(backend, p, 1, true);
      } else if (rank == 1) {
        Tensor p = Tensor::zeros({3}, DType::F32, dev);
        api.recv(backend, p, 0, true);
      }
      api.synchronize();
      if (rank == 0) ops_exercised += 15;
    }
  });
  std::printf("exercised %d operation x backend combinations: all succeeded\n", ops_exercised);
  bench::register_result("table1/ops_per_backend_verified", static_cast<double>(ops_exercised));
  return bench::run_registered(argc, argv);
}
