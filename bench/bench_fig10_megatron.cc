// Figure 10 reproduction: dense Megatron-DeepSpeed (6.7B parameters, TP=2,
// ZeRO-2) throughput and scaling efficiency on ThetaGPU for pure
// MVAPICH2-GDR, pure SCCL, and MCR-DL mixing the two (tuned per message
// size: SCCL's synthesized schedules win the huge ZeRO collectives,
// MVAPICH2-GDR the small per-layer operations).
#include <map>

#include "bench/bench_util.h"
#include "src/models/megatron.h"

using namespace mcrdl;
using namespace mcrdl::models;

int main(int argc, char** argv) {
  const std::vector<int> scales = {8, 16, 32};
  HarnessOptions opts;
  opts.warmup_steps = 1;
  opts.measured_steps = 2;

  CommPlan tuned = CommPlan::mcr_dl_tuned();
  tuned.name = "MCR-DL";
  const std::vector<CommPlan> plans = {CommPlan::pure("mv2-gdr", "Pure MVAPICH2-GDR"),
                                       CommPlan::pure("sccl", "Pure SCCL"), tuned};

  std::map<std::string, std::map<int, RunResult>> results;
  for (int gpus : scales) {
    net::SystemConfig sys = net::SystemConfig::theta_gpu(gpus / 8);
    TrainingHarness harness(sys);
    MegatronConfig mcfg;
    MegatronDenseModel model(mcfg, sys);

    TuningSuite suite(sys);
    TuningConfig tcfg;
    tcfg.backends = {"sccl", "mv2-gdr"};
    tcfg.ops = {OpType::AllReduce, OpType::ReduceScatter, OpType::AllGather, OpType::Barrier};
    tcfg.sizes = {32u << 10, 1u << 20, 16u << 20, 128u << 20};
    tcfg.world_sizes = {gpus};
    tcfg.iterations = 1;
    TuningTable table = suite.generate(tcfg);

    for (const auto& plan : plans) {
      results[plan.name][gpus] =
          harness.run(model, plan, FrameworkModel::raw(), opts, plan.use_auto ? &table : nullptr);
    }
  }

  bench::print_header(
      "Figure 10(a): dense Megatron-DeepSpeed throughput (samples/s) on ThetaGPU");
  {
    std::vector<std::string> headers = {"GPUs"};
    for (const auto& plan : plans) headers.push_back(plan.name);
    TextTable t(headers);
    for (int gpus : scales) {
      std::vector<std::string> row = {std::to_string(gpus)};
      for (const auto& plan : plans) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", results[plan.name][gpus].throughput);
        row.push_back(buf);
        bench::register_result("fig10/" + plan.name + "/" + std::to_string(gpus) + "gpus",
                               results[plan.name][gpus].step_time_us,
                               results[plan.name][gpus].throughput);
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  }

  bench::print_header("Figure 10(b): Megatron-DeepSpeed scaling efficiency (vs 8 GPUs)");
  {
    std::vector<std::string> headers = {"GPUs"};
    for (const auto& plan : plans) headers.push_back(plan.name);
    TextTable t(headers);
    for (int gpus : scales) {
      std::vector<std::string> row = {std::to_string(gpus)};
      for (const auto& plan : plans) {
        row.push_back(format_percent(
            scaling_efficiency(results[plan.name][gpus], results[plan.name][scales.front()])));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  }

  std::printf(
      "\nAt 32 GPUs: MCR-DL improves throughput by %s over pure MVAPICH2-GDR and %s over pure "
      "SCCL (paper: ~20%% for the dense model).\n",
      format_percent(results["MCR-DL"][32].throughput /
                         results["Pure MVAPICH2-GDR"][32].throughput -
                     1.0)
          .c_str(),
      format_percent(results["MCR-DL"][32].throughput / results["Pure SCCL"][32].throughput - 1.0)
          .c_str());
  return bench::run_registered(argc, argv);
}
