// Figure 11 reproduction: MCR-DL against the PyTorch-compatible competing
// frameworks of Table I on a Mixture-of-Experts transformer at 256 Lassen
// V100 GPUs. Tensor fusion is enabled for every framework that supports it
// (MCR-DL, Horovod, PyTorch-distributed), which is what separates them from
// mpi4py in the paper.
#include "bench/bench_util.h"
#include "src/models/moe.h"

using namespace mcrdl;
using namespace mcrdl::models;

int main(int argc, char** argv) {
  net::SystemConfig sys = net::SystemConfig::lassen(64);  // 256 GPUs
  TrainingHarness harness(sys);
  DSMoEModel model(DSMoEConfig{}, sys);

  HarnessOptions opts;
  opts.warmup_steps = 1;
  opts.measured_steps = 2;
  opts.mcr_options.fusion.enabled = true;  // disabled per framework when unsupported

  struct Entry {
    FrameworkModel framework;
    CommPlan plan;
  };
  const std::vector<Entry> entries = {
      {FrameworkModel::mcr_dl(), CommPlan::mcr_dl_mixed()},
      {FrameworkModel::horovod(), CommPlan::pure("nccl")},
      {FrameworkModel::pytorch_distributed("nccl"), CommPlan::pure("nccl")},
      {FrameworkModel::mpi4py(), CommPlan::pure("mv2-gdr")},
  };

  bench::print_header(
      "Figure 11: framework comparison on a Mixture-of-Experts transformer, 256 Lassen V100s");
  TextTable t({"Framework", "Throughput (samples/s)", "Step time", "Comm share", "Fusion"});
  double mcr_thr = 0.0;
  for (const auto& entry : entries) {
    RunResult r = harness.run(model, entry.plan, entry.framework, opts);
    if (entry.framework.name == "MCR-DL") mcr_thr = r.throughput;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", r.throughput);
    t.add_row({entry.framework.name, buf, format_time_us(r.step_time_us),
               format_percent(r.comm_fraction()),
               entry.framework.supports_fusion ? "on" : "unsupported"});
    bench::register_result("fig11/" + entry.framework.name, r.step_time_us, r.throughput);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nMCR-DL throughput: %.1f samples/s — best of all frameworks: %s\n", mcr_thr,
              mcr_thr > 0 ? "see table" : "?");
  return bench::run_registered(argc, argv);
}
