// Table II reproduction: the static tuning table the MCR-DL tuning suite
// generates for the all_gather collective at a single world size (64 GPUs,
// Lassen). The paper's pattern: MVAPICH2-GDR for small messages, NCCL for
// the 4-8 KiB band, SCCL for 16 KiB and above.
#include "bench/bench_util.h"
#include "src/tune/tuning.h"
#include "src/net/cost.h"

using namespace mcrdl;

int main(int argc, char** argv) {
  TuningSuite suite(net::SystemConfig::lassen(16));  // 64 GPUs
  TuningConfig cfg;
  cfg.ops = {OpType::AllGather};
  cfg.sizes = {256, 512, 1024, 2048, 4096, 8192, 16384, 32768};
  cfg.world_sizes = {64};
  cfg.iterations = 2;
  cfg.warmup = 1;
  TuningTable table = suite.generate(cfg);

  bench::print_header(
      "Table II: tuning table for all_gather at one world size (64 GPUs, Lassen)");
  TextTable t({"Message Size", "Backend", "Measured latency"});
  for (const auto& entry : table.entries(OpType::AllGather, 64)) {
    std::string display = entry.backend;
    for (const auto& profile : net::all_backend_profiles()) {
      if (profile.name == entry.backend) display = profile.display_name;
    }
    const double us = suite.measured(entry.backend, OpType::AllGather, 64, entry.max_bytes);
    t.add_row({std::to_string(entry.max_bytes), display, format_time_us(us)});
    bench::register_result("table2/all_gather/" + std::to_string(entry.max_bytes) + "/" +
                               entry.backend,
                           us);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("total tuning-table entries: %zu (= collectives x scales x sizes)\n",
              table.num_entries());

  // Demonstrate the serialisation round trip the runtime consumes.
  const std::string path = "/tmp/mcrdl_table2_tuning.txt";
  table.save(path);
  TuningTable reloaded = TuningTable::load(path);
  std::printf("serialised to %s and reloaded: %zu entries, lookup(4096) -> %s\n", path.c_str(),
              reloaded.num_entries(), reloaded.lookup(OpType::AllGather, 64, 4096).c_str());
  return bench::run_registered(argc, argv);
}
