// Figure 12 reproduction: communication-overhead reduction from adopting
// MCR-DL — the compute-vs-communication split of DS-MoE (256 V100, Lassen)
// and DLRM (32 A100, ThetaGPU) under the best single backend versus MCR-DL
// mixed backends. Paper: 9% communication-time reduction for DS-MoE, 7%
// for DLRM.
#include "bench/bench_util.h"
#include "src/models/dlrm.h"
#include "src/models/moe.h"

using namespace mcrdl;
using namespace mcrdl::models;

int main(int argc, char** argv) {
  HarnessOptions opts;
  opts.warmup_steps = 1;
  opts.measured_steps = 2;

  struct Row {
    std::string model;
    std::string config;
    RunResult result;
  };
  std::vector<Row> rows;

  {
    net::SystemConfig sys = net::SystemConfig::lassen(64);  // 256 GPUs
    TrainingHarness harness(sys);
    DSMoEModel model(DSMoEConfig{}, sys);
    rows.push_back({"DS-MoE (256 V100)", "Baseline NCCL",
                    harness.run(model, CommPlan::pure("nccl"), FrameworkModel::raw(), opts)});
    rows.push_back({"DS-MoE (256 V100)", "MCR-DL",
                    harness.run(model, CommPlan::mcr_dl_mixed(), FrameworkModel::raw(), opts)});
  }
  {
    net::SystemConfig sys = net::SystemConfig::theta_gpu(4);  // 32 GPUs
    TrainingHarness harness(sys);
    DLRMModel model(DLRMConfig{}, sys);
    opts.warmup_steps = 2;
    opts.measured_steps = 6;
    rows.push_back({"DLRM (32 A100)", "Baseline NCCL",
                    harness.run(model, CommPlan::pure("nccl"), FrameworkModel::raw(), opts)});
    rows.push_back({"DLRM (32 A100)", "MCR-DL",
                    harness.run(model, CommPlan::mcr_dl_mixed(), FrameworkModel::raw(), opts)});
  }

  bench::print_header("Figure 12: communication-overhead reduction with MCR-DL");
  TextTable t({"Model", "Configuration", "Compute %", "Communication %", "Step time"});
  for (const auto& row : rows) {
    const double comm = row.result.comm_fraction();
    t.add_row({row.model, row.config, format_percent(1.0 - comm), format_percent(comm),
               format_time_us(row.result.step_time_us)});
    bench::register_result("fig12/" + row.model + "/" + row.config, row.result.step_time_us);
  }
  std::printf("%s", t.to_string().c_str());

  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const double before = rows[i].result.comm_fraction();
    const double after = rows[i + 1].result.comm_fraction();
    std::printf("%s: communication share %s -> %s (reduction of %.1f points; paper: %s)\n",
                rows[i].model.c_str(), format_percent(before).c_str(),
                format_percent(after).c_str(), (before - after) * 100.0,
                i == 0 ? "9 points" : "7 points");
  }
  return bench::run_registered(argc, argv);
}
