// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each binary runs its experiment once in virtual time, registers the
// resulting timings as manual-time google-benchmark entries (so `--help`,
// filters and reporters all work), and prints the corresponding paper
// table/series to stdout.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "src/common/format.h"

namespace mcrdl::bench {

// Registers a pre-computed virtual-time result (µs) as a manual-time
// benchmark entry named `name`.
inline void register_result(const std::string& name, double virtual_us,
                            double items_per_second = 0.0) {
  ::benchmark::RegisterBenchmark(name.c_str(),
                                 [virtual_us, items_per_second](::benchmark::State& state) {
                                   for (auto _ : state) {
                                     state.SetIterationTime(virtual_us * 1e-6);
                                   }
                                   if (items_per_second > 0.0) {
                                     state.counters["items/s"] = items_per_second;
                                   }
                                 })
      ->UseManualTime()
      ->Iterations(1);
}

// Standard tail for every binary: run google-benchmark over the registered
// entries, then return success.
inline int run_registered(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace mcrdl::bench
