// Reusable drivers for the paper's headline experiments (Figures 2, 8, 9)
// plus the stable BENCH_*.json export schema.
//
// The figure binaries (bench_fig2_microbench, bench_fig8_dsmoe,
// bench_fig9_dlrm) and the `bench_export` tool share these drivers: the
// binaries render tables for humans, the tool writes machine-readable
// perf-trajectory files CI can diff across commits.
//
// Schema (mcrdl-bench-v1):
//   {"schema":"mcrdl-bench-v1","experiment":"fig2",
//    "series":[{"name":"all_reduce/nccl","backend":"nccl",
//               "points":[{"world":64,"bytes":1024,"virtual_us":12.3,
//                          "items_per_s":0.0},...]},...]}
// Microbench sweeps vary `bytes` (monotonically increasing within a
// series); model-scaling sweeps vary `world` and report bytes=0 with
// throughput in items_per_s.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mcrdl::bench {

inline constexpr const char* kBenchSchema = "mcrdl-bench-v1";

struct BenchPoint {
  int world = 0;
  std::size_t bytes = 0;        // 0 for model sweeps (whole-step timing)
  double virtual_us = 0.0;      // per-op latency or per-step time
  double items_per_s = 0.0;     // throughput where the experiment has one
};

struct BenchSeries {
  std::string name;             // "all_reduce/nccl", "MCR-DL-T", ...
  std::string backend;          // backend or plan routing ("mixed", "auto")
  std::vector<BenchPoint> points;
};

struct BenchReport {
  std::string experiment;       // "fig2", "fig8", "fig9"
  std::vector<BenchSeries> series;

  const BenchSeries* find(const std::string& name) const;
  // The point for `world` in `name`; throws InvalidArgument when absent.
  const BenchPoint& at(const std::string& name, int world) const;
};

// Serialises a report in the mcrdl-bench-v1 schema (strictly valid JSON).
std::string to_bench_json(const BenchReport& report);

// --- experiment drivers -----------------------------------------------------

// Figure 2: collective microbenchmark across backends on 64 Lassen GPUs.
struct Fig2Options {
  std::vector<std::size_t> sizes;       // empty = the paper's 1KB..64MB grid
  std::vector<std::string> backends;    // empty = all four backends
  int world = 64;
  int iterations = 2;
  int warmup = 1;
  bool quick = false;                   // trim the grid for CI smoke runs
};
BenchReport run_fig2(const Fig2Options& options = {});

// Figures 8/9: end-to-end model scaling sweeps (DS-MoE on Lassen, DLRM on
// ThetaGPU) across the four communication plans.
struct ScalingOptions {
  std::vector<int> scales;              // empty = the figure's GPU counts
  int warmup_steps = -1;                // -1 = the figure's defaults
  int measured_steps = -1;
  bool quick = false;                   // fewest scales/steps for CI
};
BenchReport run_fig8(const ScalingOptions& options = {});
BenchReport run_fig9(const ScalingOptions& options = {});

}  // namespace mcrdl::bench
