// Reusable drivers for the paper's headline experiments (Figures 2, 8, 9)
// plus the stable BENCH_*.json export schema.
//
// The figure binaries (bench_fig2_microbench, bench_fig8_dsmoe,
// bench_fig9_dlrm) and the `bench_export` tool share these drivers: the
// binaries render tables for humans, the tool writes machine-readable
// perf-trajectory files CI can diff across commits.
//
// Schema (mcrdl-bench-v1):
//   {"schema":"mcrdl-bench-v1","experiment":"fig2",
//    "series":[{"name":"all_reduce/nccl","backend":"nccl",
//               "points":[{"world":64,"bytes":1024,"virtual_us":12.3,
//                          "items_per_s":0.0},...]},...]}
// Microbench sweeps vary `bytes` (monotonically increasing within a
// series); model-scaling sweeps vary `world` and report bytes=0 with
// throughput in items_per_s.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/fault/failover.h"
#include "src/sched/serve.h"
#include "src/sim/execution_model.h"

namespace mcrdl::bench {

inline constexpr const char* kBenchSchema = "mcrdl-bench-v1";

struct BenchPoint {
  int world = 0;
  std::size_t bytes = 0;        // 0 for model sweeps (whole-step timing)
  double virtual_us = 0.0;      // per-op latency or per-step time
  double items_per_s = 0.0;     // throughput where the experiment has one
};

struct BenchSeries {
  std::string name;             // "all_reduce/nccl", "MCR-DL-T", ...
  std::string backend;          // backend or plan routing ("mixed", "auto")
  std::vector<BenchPoint> points;
};

struct BenchReport {
  std::string experiment;       // "fig2", "fig8", "fig9"
  std::vector<BenchSeries> series;

  const BenchSeries* find(const std::string& name) const;
  // The point for `world` in `name`; throws InvalidArgument when absent.
  const BenchPoint& at(const std::string& name, int world) const;
};

// Serialises a report in the mcrdl-bench-v1 schema (strictly valid JSON).
std::string to_bench_json(const BenchReport& report);

// --- experiment drivers -----------------------------------------------------

// Figure 2: collective microbenchmark across backends on 64 Lassen GPUs.
struct Fig2Options {
  std::vector<std::size_t> sizes;       // empty = the paper's 1KB..64MB grid
  std::vector<std::string> backends;    // empty = all four backends
  int world = 64;
  int iterations = 2;
  int warmup = 1;
  bool quick = false;                   // trim the grid for CI smoke runs
};
BenchReport run_fig2(const Fig2Options& options = {});

// Figures 8/9: end-to-end model scaling sweeps (DS-MoE on Lassen, DLRM on
// ThetaGPU) across the four communication plans.
struct ScalingOptions {
  std::vector<int> scales;              // empty = the figure's GPU counts
  int warmup_steps = -1;                // -1 = the figure's defaults
  int measured_steps = -1;
  bool quick = false;                   // fewest scales/steps for CI
  // Execution engine for the harness runs (DESIGN.md §11). Virtual-time
  // results are engine-independent; parallel shards only change wall clock.
  sim::ExecutionConfig execution = sim::ExecutionConfig::serial();
};
BenchReport run_fig8(const ScalingOptions& options = {});
BenchReport run_fig9(const ScalingOptions& options = {});

// Execution-engine scaling experiment (DESIGN.md §11): the same DS-MoE
// sweep timed on the host clock under the serial baton and under parallel
// shards. Unlike every other experiment the quantity of interest is *wall
// clock*, not virtual time: each series is one engine config ("serial",
// "threads2", ...; `bytes` holds the thread count), each point one model
// scale, with `virtual_us` the simulated step time (identical across
// engines — the run aborts if it ever is not) and `items_per_s` the
// simulator's wall-clock throughput in measured steps per second. A final
// "speedup" series reports, per scale, the serial/parallel wall-clock ratio
// at the largest thread count.
struct ScaleOptions {
  std::vector<int> thread_counts;       // empty = {1, 2, 4}
  std::vector<int> scales;              // GPU counts; empty = {32, 64, 128, 256}
  int warmup_steps = 1;
  int measured_steps = 6;
  bool quick = false;                   // one small scale for CI smoke runs
};
BenchReport run_scale(const ScaleOptions& options = {});

// Online-adaptation experiment (DESIGN.md §9): a fixed-size all_reduce loop
// dispatched on "auto" while the statically-best backend's links degrade
// mid-run. Three series show the contrast:
//
//   "static"   — static-table resolution only; throughput never recovers
//   "online"   — the online tuner quarantines the degraded backend and
//                re-routes; throughput recovers to the best alternative
//   "alt-best" — the best undegraded backend, run clean, as the target line
//
// Unlike the other experiments the sweep axis is *time*: each point is one
// window of `window` steps, `bytes` holds the window's first step index and
// `virtual_us` the window's mean step time (items_per_s = steps/second).
struct AdaptOptions {
  int world = 8;                   // Lassen, world/4 nodes
  std::size_t bytes = 256u << 10;  // all_reduce payload
  int steps = 240;                 // loop length per series
  int window = 20;                 // steps per reported point
  double degrade_factor = 8.0;     // beta multiplier injected on the winner
  std::uint64_t seed = 42;         // online-tuner seed
  bool quick = false;              // trim for CI smoke runs
};

struct AdaptReport {
  BenchReport bench;
  std::string degraded_backend;    // statically-best backend (the casualty)
  std::string adapted_backend;     // best undegraded alternative
  std::uint64_t switches = 0;      // online-tuner incumbent switches
  std::uint64_t quarantines = 0;   // drift quarantines
  double degrade_from_us = 0.0;    // virtual instant the degrade starts
  double online_post_us = 0.0;     // median step time, last window, online
  double static_post_us = 0.0;     // same for the static-table run
  double alt_best_us = 0.0;        // same for the clean alternative run
  std::string learned_table;       // tuner's learned table (text format)
};
AdaptReport run_adapt(const AdaptOptions& options = {});

// Multi-tenant serving experiment (DESIGN.md §10): replay a seeded arrival
// trace through the ServeScheduler twice — once clean, once with a chaos
// window degrading the shared fabric mid-trace — and report job-latency
// percentiles. The sweep axis is the *percentile rank*: each series carries
// points at p50/p90/p99 (`bytes` holds the rank so the generic
// increasing-bytes schema check applies), `virtual_us` the latency, and
// `items_per_s` the run's completed-jobs-per-second. Series cover the
// aggregate plus each QoS class, for the clean and chaos runs.
struct ServeExperimentOptions {
  int nodes = 16;                  // Lassen nodes shared by all tenants
  int jobs = 1000;                 // trace length
  std::uint64_t seed = 7;          // arrival-trace seed
  double chaos_degrade = 8.0;      // fabric slowdown inside the window
  bool quick = false;              // smaller trace/world for CI smoke runs
};

struct ServeBenchReport {
  BenchReport bench;
  sched::ServeResult clean;
  sched::ServeResult chaos;
};
ServeBenchReport run_serve(const ServeExperimentOptions& options = {});

// Resilience experiment (DESIGN.md §13): a fixed-size allreduce loop that
// loses one rank mid-run, compared shrink-only vs shrink-then-rejoin. Both
// runs share the same two-phase shape — phase one absorbs the loss (the
// survivors shrink and finish), every rank then parks until just past the
// rejoin instant, and phase two runs over whatever world is alive: the
// shrunk survivors in the shrink-only run, the restored full world in the
// rejoin run. Series "steps/shrink" and "steps/rejoin" carry rank 0's
// per-step times (`bytes` is the step index); "recovery/shrink" and
// "recovery/rejoin" carry one point each with `world` the post-recovery
// alive count, `virtual_us` the recovery latency (loss/rejoin instant to
// the first collective completed afterwards) and `items_per_s` the
// post-recovery throughput in rank-steps/s — the number grow-back restores.
struct ResilienceOptions {
  int world = 8;                   // Lassen, world/4 nodes
  std::size_t bytes = 1u << 20;    // all_reduce payload
  int steps = 12;                  // per phase
  int lost_rank = 1;               // the casualty (and rejoiner)
  double interval_us = 200.0;      // virtual gap between steps
  bool quick = false;              // trim for CI smoke runs
};

struct ResilienceBenchReport {
  BenchReport bench;
  double loss_at_us = 0.0;             // the shared loss instant
  double rejoin_at_us = 0.0;           // the rejoin instant (rejoin run only)
  double shrink_recovery_us = 0.0;     // loss -> first completed collective
  double rejoin_recovery_us = 0.0;     // rejoin -> first completed collective
  double shrink_post_rank_steps_per_s = 0.0;  // alive x steps/s after recovery
  double rejoin_post_rank_steps_per_s = 0.0;
  fault::ResilienceReport shrink_report;
  fault::ResilienceReport rejoin_report;
};
ResilienceBenchReport run_resilience(const ResilienceOptions& options = {});

// Hot-path dispatch experiment (DESIGN.md §14): wall-clock throughput of a
// small-allreduce loop under three dispatch shapes on the same workload —
//
//   "dispatch/slow"     — fast_dispatch=false: fresh OpCall per op, every
//                         stage invoked, per-call label maps (the referee)
//   "dispatch/fast"     — arena OpCalls + precompiled stage plans
//   "dispatch/bucketed" — fast path with gradient bucketing coalescing the
//                         small collectives into fused issues
//
// Like "scale", the quantity of interest is wall clock: each point is one
// message size (`bytes`), `virtual_us` the run's final virtual instant and
// `items_per_s` the host-clock dispatch throughput in ops/s across all
// ranks. Slow and fast must agree on virtual time exactly (the golden
// traces pin byte-identical records; the run aborts on drift) — bucketing
// legitimately changes the schedule, so its virtual time differs. A final
// "speedup" series reports, per size, the bucketed/slow throughput ratio.
struct HotpathOptions {
  int world = 8;                        // Lassen, world/4 nodes
  std::vector<std::size_t> sizes;       // empty = {256, 1024, 4096}
  int ops_per_rank = 4096;              // dispatches per rank per run
  int sync_every = 64;                  // drain the stream every N ops
  bool quick = false;                   // trim for CI smoke runs
};
BenchReport run_hotpath(const HotpathOptions& options = {});

// Composite-collective experiment (DESIGN.md §15): where does a two-level
// hierarchical allreduce beat the flat single-backend choice, and what does
// the overlap scheduler add on top? Two sweeps in one report:
//
//   * microbench — for each node count n, series "all_reduce/flat/n<n>",
//     "all_reduce/hier/n<n>" and "all_reduce/hier+overlap/n<n>" sweep the
//     message grid (strictly increasing `bytes`), measuring one synchronous
//     allreduce per point in virtual time. Flat wins small messages (one
//     launch vs three); `hier_algo` (same runtime at both levels) wins large
//     messages at n >= 2 — the NIC hop carries 1/gpus_per_node of the
//     traffic, rail-striped by the leaders. At n == 1 the composite
//     degenerates to reduce+broadcast and loses everywhere — kept in the
//     export as the honest baseline.
//
//   * model — series "cnn3d/flat", "cnn3d/hier" and "cnn3d/hier+overlap"
//     carry the 3D-CNN step time per world size (`bytes` = 0). Both
//     composite variants run the *same* `overlap_algo` plan so the only
//     delta is the scheduler: without overlap the host-MPI inter hop is
//     pure added tax and the plan loses to flat; with overlap the chunks of
//     independent gradient buckets interleave the NVLink and NIC levels and
//     the plan wins outright — the paper-style "algorithm *and* schedule"
//     crossover.
//
// Why two composite strings: a single-runtime composite ("hier:nccl+nccl")
// issues both levels on the same device stream, which orders them — it can
// improve the *algorithm* but the overlap scheduler cannot interleave its
// phases. Pairing a stream runtime intra-node with a host-progressed MPI
// runtime inter-node ("hier:nccl+mv2-gdr") is what makes the levels truly
// concurrent — the mix-and-match thesis in one experiment.
struct HierOptions {
  std::vector<int> node_counts;         // empty = {1, 2, 4}
  std::vector<std::size_t> sizes;       // empty = 64KiB..64MiB grid
  std::string flat_backend = "nccl";    // the single-backend incumbent
  std::string hier_algo = "hier:nccl+nccl";           // algorithm-only gain
  std::string overlap_algo = "hier:nccl+mv2-gdr";     // mixed, overlappable
  std::vector<int> model_worlds;        // empty = {8, 16}
  int iterations = 2;
  int warmup = 1;
  int measured_steps = 3;
  int warmup_steps = 1;
  bool quick = false;                   // trim grids for CI smoke runs
};
BenchReport run_hier(const HierOptions& options = {});

// --- experiment registry ----------------------------------------------------
//
// Name -> runner table shared by bench_export (and anything else that runs
// experiments by name); adding an experiment here is all it takes to make
// `bench_export --experiment <name>` and `--list` know about it.
struct ExperimentOptions {
  bool quick = false;  // trim the sweep for CI smoke runs
  // Execution engine: <=1 runs the serial baton, N>1 runs ParallelShards
  // with N worker threads. Applies to the harness-driven experiments
  // (fig8/fig9); for "scale" it sets the largest thread count compared
  // against serial. fig2/adapt/serve pin the serial referee (the tuning
  // suite and the online tuner's exploration are calibrated against it).
  int threads = 1;
};

struct Experiment {
  std::string name;
  std::string description;  // one line for --list
  std::function<BenchReport(const ExperimentOptions&)> run;
};

// Registered experiments in a stable order (fig2, fig8, fig9, scale, adapt,
// serve, resilience, hotpath, hier).
const std::vector<Experiment>& experiment_registry();
// The registry entry for `name`, or nullptr when unknown.
const Experiment* find_experiment(const std::string& name);
// "fig2|fig8|..." — the registry's names joined for usage strings.
std::string experiment_names();

}  // namespace mcrdl::bench
