// run_serve — the multi-tenant serving experiment (DESIGN.md §10).
//
// One seeded arrival trace, two replays on the same shared cluster: a clean
// run and a chaos run whose mid-trace window degrades the inter-node fabric.
// The report shows what multi-tenant contention and a degraded fabric do to
// job-latency percentiles — the serving-layer counterpart of the paper's
// single-job figures — and the chaos run's recovery is visible in the p50
// staying far below the p99 (jobs outside the window are served normally).
#include <cmath>

#include "bench/experiments.h"
#include "src/common/status.h"

namespace mcrdl::bench {

namespace {

// Latencies of completed jobs, aggregate (qos == nullptr) or one class.
std::vector<double> latencies_of(const sched::ServeResult& result,
                                 const sched::QosClass* qos) {
  std::vector<double> latencies;
  for (const sched::JobRecord& job : result.jobs) {
    if (job.state != sched::JobState::Completed) continue;
    if (qos != nullptr && job.spec.qos != *qos) continue;
    latencies.push_back(job.latency_us());
  }
  return latencies;
}

// One percentile-axis series: points at p50/p90/p99 with the rank in
// `bytes` so the schema's strictly-increasing-bytes sweep check applies.
BenchSeries percentile_series(const std::string& name, const std::string& plan,
                              const std::vector<double>& latencies, int world,
                              double jobs_per_s) {
  BenchSeries series;
  series.name = name;
  series.backend = plan;
  for (const double rank : {50.0, 90.0, 99.0}) {
    BenchPoint point;
    point.world = world;
    point.bytes = static_cast<std::size_t>(rank);
    point.virtual_us = sched::percentile(latencies, rank);
    point.items_per_s = jobs_per_s;
    series.points.push_back(point);
  }
  return series;
}

void append_run_series(BenchReport& report, const std::string& label,
                       const std::string& plan, const sched::ServeResult& result,
                       int world) {
  const double jobs_per_s = result.makespan_us > 0.0
                                ? static_cast<double>(result.completed) /
                                      (result.makespan_us / 1e6)
                                : 0.0;
  const std::vector<double> aggregate = latencies_of(result, nullptr);
  MCRDL_REQUIRE(!aggregate.empty(), "serve run completed no jobs");
  report.series.push_back(
      percentile_series(label + "/aggregate", plan, aggregate, world, jobs_per_s));
  for (const sched::QosClass qos : sched::all_qos_classes()) {
    const std::vector<double> latencies = latencies_of(result, &qos);
    if (latencies.empty()) continue;
    report.series.push_back(percentile_series(label + "/" + sched::qos_name(qos), plan,
                                              latencies, world, jobs_per_s));
  }
}

}  // namespace

ServeBenchReport run_serve(const ServeExperimentOptions& options) {
  sched::TraceConfig trace_config;
  trace_config.seed = options.seed;
  trace_config.num_jobs = options.quick ? 150 : options.jobs;

  sched::ServeConfig config;
  config.system = net::SystemConfig::lassen(options.quick ? 8 : options.nodes);

  const sched::ArrivalTrace trace = sched::generate_trace(trace_config);
  const double horizon = trace.jobs.empty() ? 0.0 : trace.jobs.back().arrival_us;

  ServeBenchReport report;
  report.bench.experiment = "serve";

  {
    sched::ServeScheduler scheduler(config);
    report.clean = scheduler.run(trace);
  }
  {
    // One long fabric brown-out across the middle half of the arrivals; the
    // tail before/after shows latency recovering once the window closes.
    sched::ServeConfig chaos_config = config;
    chaos_config.chaos.push_back(
        sched::ChaosWindow{0.25 * horizon, 0.75 * horizon, options.chaos_degrade});
    sched::ServeScheduler scheduler(chaos_config);
    report.chaos = scheduler.run(trace);
  }

  const int world = config.system.world_size();
  append_run_series(report.bench, "clean", config.plan, report.clean, world);
  append_run_series(report.bench, "chaos", config.plan, report.chaos, world);
  return report;
}

}  // namespace mcrdl::bench
