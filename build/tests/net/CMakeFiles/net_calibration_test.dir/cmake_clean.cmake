file(REMOVE_RECURSE
  "CMakeFiles/net_calibration_test.dir/calibration_test.cc.o"
  "CMakeFiles/net_calibration_test.dir/calibration_test.cc.o.d"
  "net_calibration_test"
  "net_calibration_test.pdb"
  "net_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
