# Empty dependencies file for net_calibration_test.
# This may be replaced when dependencies are built.
