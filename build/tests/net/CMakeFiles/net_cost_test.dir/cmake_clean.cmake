file(REMOVE_RECURSE
  "CMakeFiles/net_cost_test.dir/cost_test.cc.o"
  "CMakeFiles/net_cost_test.dir/cost_test.cc.o.d"
  "net_cost_test"
  "net_cost_test.pdb"
  "net_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
