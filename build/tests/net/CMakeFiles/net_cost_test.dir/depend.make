# Empty dependencies file for net_cost_test.
# This may be replaced when dependencies are built.
