# Empty dependencies file for fault_failover_test.
# This may be replaced when dependencies are built.
