file(REMOVE_RECURSE
  "CMakeFiles/fault_failover_test.dir/failover_test.cc.o"
  "CMakeFiles/fault_failover_test.dir/failover_test.cc.o.d"
  "fault_failover_test"
  "fault_failover_test.pdb"
  "fault_failover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_failover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
