file(REMOVE_RECURSE
  "CMakeFiles/fault_policy_test.dir/policy_test.cc.o"
  "CMakeFiles/fault_policy_test.dir/policy_test.cc.o.d"
  "fault_policy_test"
  "fault_policy_test.pdb"
  "fault_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
