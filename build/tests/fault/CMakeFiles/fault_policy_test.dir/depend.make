# Empty dependencies file for fault_policy_test.
# This may be replaced when dependencies are built.
