file(REMOVE_RECURSE
  "CMakeFiles/fault_watchdog_test.dir/watchdog_test.cc.o"
  "CMakeFiles/fault_watchdog_test.dir/watchdog_test.cc.o.d"
  "fault_watchdog_test"
  "fault_watchdog_test.pdb"
  "fault_watchdog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_watchdog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
