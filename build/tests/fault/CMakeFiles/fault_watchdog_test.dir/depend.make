# Empty dependencies file for fault_watchdog_test.
# This may be replaced when dependencies are built.
