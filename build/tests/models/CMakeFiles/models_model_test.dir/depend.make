# Empty dependencies file for models_model_test.
# This may be replaced when dependencies are built.
