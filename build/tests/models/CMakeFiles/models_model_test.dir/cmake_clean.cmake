file(REMOVE_RECURSE
  "CMakeFiles/models_model_test.dir/model_test.cc.o"
  "CMakeFiles/models_model_test.dir/model_test.cc.o.d"
  "models_model_test"
  "models_model_test.pdb"
  "models_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
