# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/core_api_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_fusion_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_tuning_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_logger_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_compression_hook_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_emulation_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_trace_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_persistent_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_process_groups_test[1]_include.cmake")
