file(REMOVE_RECURSE
  "CMakeFiles/core_emulation_test.dir/emulation_test.cc.o"
  "CMakeFiles/core_emulation_test.dir/emulation_test.cc.o.d"
  "core_emulation_test"
  "core_emulation_test.pdb"
  "core_emulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_emulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
