# Empty compiler generated dependencies file for core_emulation_test.
# This may be replaced when dependencies are built.
