file(REMOVE_RECURSE
  "CMakeFiles/core_process_groups_test.dir/process_groups_test.cc.o"
  "CMakeFiles/core_process_groups_test.dir/process_groups_test.cc.o.d"
  "core_process_groups_test"
  "core_process_groups_test.pdb"
  "core_process_groups_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_process_groups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
