
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/compression_hook_test.cc" "tests/core/CMakeFiles/core_compression_hook_test.dir/compression_hook_test.cc.o" "gcc" "tests/core/CMakeFiles/core_compression_hook_test.dir/compression_hook_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcrdl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/mcrdl_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/mcrdl_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcrdl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/mcrdl_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mcrdl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcrdl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mcrdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
