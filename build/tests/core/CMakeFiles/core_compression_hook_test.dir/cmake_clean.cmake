file(REMOVE_RECURSE
  "CMakeFiles/core_compression_hook_test.dir/compression_hook_test.cc.o"
  "CMakeFiles/core_compression_hook_test.dir/compression_hook_test.cc.o.d"
  "core_compression_hook_test"
  "core_compression_hook_test.pdb"
  "core_compression_hook_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_compression_hook_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
