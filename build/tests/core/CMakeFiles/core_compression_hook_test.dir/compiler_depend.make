# Empty compiler generated dependencies file for core_compression_hook_test.
# This may be replaced when dependencies are built.
