file(REMOVE_RECURSE
  "CMakeFiles/core_logger_test.dir/logger_test.cc.o"
  "CMakeFiles/core_logger_test.dir/logger_test.cc.o.d"
  "core_logger_test"
  "core_logger_test.pdb"
  "core_logger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_logger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
