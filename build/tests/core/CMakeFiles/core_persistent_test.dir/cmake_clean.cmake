file(REMOVE_RECURSE
  "CMakeFiles/core_persistent_test.dir/persistent_test.cc.o"
  "CMakeFiles/core_persistent_test.dir/persistent_test.cc.o.d"
  "core_persistent_test"
  "core_persistent_test.pdb"
  "core_persistent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_persistent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
