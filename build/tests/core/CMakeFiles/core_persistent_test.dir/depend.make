# Empty dependencies file for core_persistent_test.
# This may be replaced when dependencies are built.
