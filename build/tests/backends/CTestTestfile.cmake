# CMake generated Testfile for 
# Source directory: /root/repo/tests/backends
# Build directory: /root/repo/build/tests/backends
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/backends/backends_engine_test[1]_include.cmake")
include("/root/repo/build/tests/backends/backends_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/backends/backends_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/backends/backends_p2p_test[1]_include.cmake")
include("/root/repo/build/tests/backends/backends_differential_test[1]_include.cmake")
include("/root/repo/build/tests/backends/backends_failure_injection_test[1]_include.cmake")
