# Empty dependencies file for backends_semantics_test.
# This may be replaced when dependencies are built.
