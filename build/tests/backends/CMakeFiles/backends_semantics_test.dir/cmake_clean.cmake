file(REMOVE_RECURSE
  "CMakeFiles/backends_semantics_test.dir/backend_semantics_test.cc.o"
  "CMakeFiles/backends_semantics_test.dir/backend_semantics_test.cc.o.d"
  "backends_semantics_test"
  "backends_semantics_test.pdb"
  "backends_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backends_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
