# Empty dependencies file for backends_collectives_test.
# This may be replaced when dependencies are built.
