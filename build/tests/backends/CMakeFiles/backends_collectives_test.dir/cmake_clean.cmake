file(REMOVE_RECURSE
  "CMakeFiles/backends_collectives_test.dir/backend_collectives_test.cc.o"
  "CMakeFiles/backends_collectives_test.dir/backend_collectives_test.cc.o.d"
  "backends_collectives_test"
  "backends_collectives_test.pdb"
  "backends_collectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backends_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
