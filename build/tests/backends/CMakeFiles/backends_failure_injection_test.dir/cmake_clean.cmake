file(REMOVE_RECURSE
  "CMakeFiles/backends_failure_injection_test.dir/failure_injection_test.cc.o"
  "CMakeFiles/backends_failure_injection_test.dir/failure_injection_test.cc.o.d"
  "backends_failure_injection_test"
  "backends_failure_injection_test.pdb"
  "backends_failure_injection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backends_failure_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
