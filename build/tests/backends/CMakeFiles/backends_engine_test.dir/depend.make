# Empty dependencies file for backends_engine_test.
# This may be replaced when dependencies are built.
