file(REMOVE_RECURSE
  "CMakeFiles/backends_engine_test.dir/engine_test.cc.o"
  "CMakeFiles/backends_engine_test.dir/engine_test.cc.o.d"
  "backends_engine_test"
  "backends_engine_test.pdb"
  "backends_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backends_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
