# Empty dependencies file for backends_p2p_test.
# This may be replaced when dependencies are built.
