file(REMOVE_RECURSE
  "CMakeFiles/backends_p2p_test.dir/p2p_test.cc.o"
  "CMakeFiles/backends_p2p_test.dir/p2p_test.cc.o.d"
  "backends_p2p_test"
  "backends_p2p_test.pdb"
  "backends_p2p_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backends_p2p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
