# Empty dependencies file for tensor_dtype_test.
# This may be replaced when dependencies are built.
