file(REMOVE_RECURSE
  "CMakeFiles/tensor_collective_dtype_test.dir/collective_dtype_test.cc.o"
  "CMakeFiles/tensor_collective_dtype_test.dir/collective_dtype_test.cc.o.d"
  "tensor_collective_dtype_test"
  "tensor_collective_dtype_test.pdb"
  "tensor_collective_dtype_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_collective_dtype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
