# Empty dependencies file for tensor_collective_dtype_test.
# This may be replaced when dependencies are built.
