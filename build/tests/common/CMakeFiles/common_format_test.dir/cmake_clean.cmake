file(REMOVE_RECURSE
  "CMakeFiles/common_format_test.dir/format_test.cc.o"
  "CMakeFiles/common_format_test.dir/format_test.cc.o.d"
  "common_format_test"
  "common_format_test.pdb"
  "common_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
