file(REMOVE_RECURSE
  "CMakeFiles/mcrdl_backends.dir/backend.cc.o"
  "CMakeFiles/mcrdl_backends.dir/backend.cc.o.d"
  "CMakeFiles/mcrdl_backends.dir/cluster.cc.o"
  "CMakeFiles/mcrdl_backends.dir/cluster.cc.o.d"
  "CMakeFiles/mcrdl_backends.dir/engine.cc.o"
  "CMakeFiles/mcrdl_backends.dir/engine.cc.o.d"
  "CMakeFiles/mcrdl_backends.dir/work.cc.o"
  "CMakeFiles/mcrdl_backends.dir/work.cc.o.d"
  "libmcrdl_backends.a"
  "libmcrdl_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrdl_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
