file(REMOVE_RECURSE
  "libmcrdl_backends.a"
)
