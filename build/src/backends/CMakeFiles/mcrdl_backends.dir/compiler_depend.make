# Empty compiler generated dependencies file for mcrdl_backends.
# This may be replaced when dependencies are built.
