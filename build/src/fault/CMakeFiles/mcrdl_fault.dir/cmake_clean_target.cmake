file(REMOVE_RECURSE
  "libmcrdl_fault.a"
)
