# Empty dependencies file for mcrdl_fault.
# This may be replaced when dependencies are built.
