file(REMOVE_RECURSE
  "CMakeFiles/mcrdl_fault.dir/failover.cc.o"
  "CMakeFiles/mcrdl_fault.dir/failover.cc.o.d"
  "CMakeFiles/mcrdl_fault.dir/injector.cc.o"
  "CMakeFiles/mcrdl_fault.dir/injector.cc.o.d"
  "CMakeFiles/mcrdl_fault.dir/policy.cc.o"
  "CMakeFiles/mcrdl_fault.dir/policy.cc.o.d"
  "CMakeFiles/mcrdl_fault.dir/watchdog.cc.o"
  "CMakeFiles/mcrdl_fault.dir/watchdog.cc.o.d"
  "libmcrdl_fault.a"
  "libmcrdl_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrdl_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
