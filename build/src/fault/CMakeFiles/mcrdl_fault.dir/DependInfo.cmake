
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/failover.cc" "src/fault/CMakeFiles/mcrdl_fault.dir/failover.cc.o" "gcc" "src/fault/CMakeFiles/mcrdl_fault.dir/failover.cc.o.d"
  "/root/repo/src/fault/injector.cc" "src/fault/CMakeFiles/mcrdl_fault.dir/injector.cc.o" "gcc" "src/fault/CMakeFiles/mcrdl_fault.dir/injector.cc.o.d"
  "/root/repo/src/fault/policy.cc" "src/fault/CMakeFiles/mcrdl_fault.dir/policy.cc.o" "gcc" "src/fault/CMakeFiles/mcrdl_fault.dir/policy.cc.o.d"
  "/root/repo/src/fault/watchdog.cc" "src/fault/CMakeFiles/mcrdl_fault.dir/watchdog.cc.o" "gcc" "src/fault/CMakeFiles/mcrdl_fault.dir/watchdog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mcrdl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcrdl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcrdl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
