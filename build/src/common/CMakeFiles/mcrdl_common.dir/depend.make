# Empty dependencies file for mcrdl_common.
# This may be replaced when dependencies are built.
