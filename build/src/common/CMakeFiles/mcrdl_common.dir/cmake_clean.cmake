file(REMOVE_RECURSE
  "CMakeFiles/mcrdl_common.dir/flags.cc.o"
  "CMakeFiles/mcrdl_common.dir/flags.cc.o.d"
  "CMakeFiles/mcrdl_common.dir/format.cc.o"
  "CMakeFiles/mcrdl_common.dir/format.cc.o.d"
  "CMakeFiles/mcrdl_common.dir/logging.cc.o"
  "CMakeFiles/mcrdl_common.dir/logging.cc.o.d"
  "libmcrdl_common.a"
  "libmcrdl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrdl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
