file(REMOVE_RECURSE
  "libmcrdl_common.a"
)
