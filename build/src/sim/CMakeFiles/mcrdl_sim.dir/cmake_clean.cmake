file(REMOVE_RECURSE
  "CMakeFiles/mcrdl_sim.dir/device.cc.o"
  "CMakeFiles/mcrdl_sim.dir/device.cc.o.d"
  "CMakeFiles/mcrdl_sim.dir/scheduler.cc.o"
  "CMakeFiles/mcrdl_sim.dir/scheduler.cc.o.d"
  "libmcrdl_sim.a"
  "libmcrdl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrdl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
