file(REMOVE_RECURSE
  "libmcrdl_sim.a"
)
