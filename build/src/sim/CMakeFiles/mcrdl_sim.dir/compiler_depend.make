# Empty compiler generated dependencies file for mcrdl_sim.
# This may be replaced when dependencies are built.
