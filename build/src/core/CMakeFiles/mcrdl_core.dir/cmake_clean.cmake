file(REMOVE_RECURSE
  "CMakeFiles/mcrdl_core.dir/composite_work.cc.o"
  "CMakeFiles/mcrdl_core.dir/composite_work.cc.o.d"
  "CMakeFiles/mcrdl_core.dir/compression.cc.o"
  "CMakeFiles/mcrdl_core.dir/compression.cc.o.d"
  "CMakeFiles/mcrdl_core.dir/context.cc.o"
  "CMakeFiles/mcrdl_core.dir/context.cc.o.d"
  "CMakeFiles/mcrdl_core.dir/emulation.cc.o"
  "CMakeFiles/mcrdl_core.dir/emulation.cc.o.d"
  "CMakeFiles/mcrdl_core.dir/fusion.cc.o"
  "CMakeFiles/mcrdl_core.dir/fusion.cc.o.d"
  "CMakeFiles/mcrdl_core.dir/logger.cc.o"
  "CMakeFiles/mcrdl_core.dir/logger.cc.o.d"
  "CMakeFiles/mcrdl_core.dir/persistent.cc.o"
  "CMakeFiles/mcrdl_core.dir/persistent.cc.o.d"
  "CMakeFiles/mcrdl_core.dir/process_groups.cc.o"
  "CMakeFiles/mcrdl_core.dir/process_groups.cc.o.d"
  "CMakeFiles/mcrdl_core.dir/trace.cc.o"
  "CMakeFiles/mcrdl_core.dir/trace.cc.o.d"
  "CMakeFiles/mcrdl_core.dir/tuning.cc.o"
  "CMakeFiles/mcrdl_core.dir/tuning.cc.o.d"
  "libmcrdl_core.a"
  "libmcrdl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrdl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
