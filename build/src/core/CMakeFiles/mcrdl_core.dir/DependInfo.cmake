
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/composite_work.cc" "src/core/CMakeFiles/mcrdl_core.dir/composite_work.cc.o" "gcc" "src/core/CMakeFiles/mcrdl_core.dir/composite_work.cc.o.d"
  "/root/repo/src/core/compression.cc" "src/core/CMakeFiles/mcrdl_core.dir/compression.cc.o" "gcc" "src/core/CMakeFiles/mcrdl_core.dir/compression.cc.o.d"
  "/root/repo/src/core/context.cc" "src/core/CMakeFiles/mcrdl_core.dir/context.cc.o" "gcc" "src/core/CMakeFiles/mcrdl_core.dir/context.cc.o.d"
  "/root/repo/src/core/emulation.cc" "src/core/CMakeFiles/mcrdl_core.dir/emulation.cc.o" "gcc" "src/core/CMakeFiles/mcrdl_core.dir/emulation.cc.o.d"
  "/root/repo/src/core/fusion.cc" "src/core/CMakeFiles/mcrdl_core.dir/fusion.cc.o" "gcc" "src/core/CMakeFiles/mcrdl_core.dir/fusion.cc.o.d"
  "/root/repo/src/core/logger.cc" "src/core/CMakeFiles/mcrdl_core.dir/logger.cc.o" "gcc" "src/core/CMakeFiles/mcrdl_core.dir/logger.cc.o.d"
  "/root/repo/src/core/persistent.cc" "src/core/CMakeFiles/mcrdl_core.dir/persistent.cc.o" "gcc" "src/core/CMakeFiles/mcrdl_core.dir/persistent.cc.o.d"
  "/root/repo/src/core/process_groups.cc" "src/core/CMakeFiles/mcrdl_core.dir/process_groups.cc.o" "gcc" "src/core/CMakeFiles/mcrdl_core.dir/process_groups.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/core/CMakeFiles/mcrdl_core.dir/trace.cc.o" "gcc" "src/core/CMakeFiles/mcrdl_core.dir/trace.cc.o.d"
  "/root/repo/src/core/tuning.cc" "src/core/CMakeFiles/mcrdl_core.dir/tuning.cc.o" "gcc" "src/core/CMakeFiles/mcrdl_core.dir/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backends/CMakeFiles/mcrdl_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/mcrdl_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/mcrdl_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcrdl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mcrdl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcrdl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mcrdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
