file(REMOVE_RECURSE
  "libmcrdl_core.a"
)
