# Empty compiler generated dependencies file for mcrdl_core.
# This may be replaced when dependencies are built.
