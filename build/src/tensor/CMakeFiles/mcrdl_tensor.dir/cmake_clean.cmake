file(REMOVE_RECURSE
  "CMakeFiles/mcrdl_tensor.dir/dtype.cc.o"
  "CMakeFiles/mcrdl_tensor.dir/dtype.cc.o.d"
  "CMakeFiles/mcrdl_tensor.dir/tensor.cc.o"
  "CMakeFiles/mcrdl_tensor.dir/tensor.cc.o.d"
  "libmcrdl_tensor.a"
  "libmcrdl_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrdl_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
