# Empty compiler generated dependencies file for mcrdl_tensor.
# This may be replaced when dependencies are built.
