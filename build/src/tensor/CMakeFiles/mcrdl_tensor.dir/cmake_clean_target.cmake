file(REMOVE_RECURSE
  "libmcrdl_tensor.a"
)
