file(REMOVE_RECURSE
  "CMakeFiles/mcrdl_models.dir/comm_plan.cc.o"
  "CMakeFiles/mcrdl_models.dir/comm_plan.cc.o.d"
  "CMakeFiles/mcrdl_models.dir/dlrm.cc.o"
  "CMakeFiles/mcrdl_models.dir/dlrm.cc.o.d"
  "CMakeFiles/mcrdl_models.dir/megatron.cc.o"
  "CMakeFiles/mcrdl_models.dir/megatron.cc.o.d"
  "CMakeFiles/mcrdl_models.dir/moe.cc.o"
  "CMakeFiles/mcrdl_models.dir/moe.cc.o.d"
  "CMakeFiles/mcrdl_models.dir/resnet.cc.o"
  "CMakeFiles/mcrdl_models.dir/resnet.cc.o.d"
  "CMakeFiles/mcrdl_models.dir/workload.cc.o"
  "CMakeFiles/mcrdl_models.dir/workload.cc.o.d"
  "libmcrdl_models.a"
  "libmcrdl_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrdl_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
