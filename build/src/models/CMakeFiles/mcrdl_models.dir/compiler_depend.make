# Empty compiler generated dependencies file for mcrdl_models.
# This may be replaced when dependencies are built.
