file(REMOVE_RECURSE
  "libmcrdl_models.a"
)
