# Empty dependencies file for mcrdl_compress.
# This may be replaced when dependencies are built.
