file(REMOVE_RECURSE
  "CMakeFiles/mcrdl_compress.dir/bitstream.cc.o"
  "CMakeFiles/mcrdl_compress.dir/bitstream.cc.o.d"
  "CMakeFiles/mcrdl_compress.dir/zfp_codec.cc.o"
  "CMakeFiles/mcrdl_compress.dir/zfp_codec.cc.o.d"
  "libmcrdl_compress.a"
  "libmcrdl_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrdl_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
