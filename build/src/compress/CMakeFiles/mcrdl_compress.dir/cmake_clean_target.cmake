file(REMOVE_RECURSE
  "libmcrdl_compress.a"
)
