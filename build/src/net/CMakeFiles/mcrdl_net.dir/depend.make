# Empty dependencies file for mcrdl_net.
# This may be replaced when dependencies are built.
