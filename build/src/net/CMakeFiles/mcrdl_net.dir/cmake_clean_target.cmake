file(REMOVE_RECURSE
  "libmcrdl_net.a"
)
