file(REMOVE_RECURSE
  "CMakeFiles/mcrdl_net.dir/comm_types.cc.o"
  "CMakeFiles/mcrdl_net.dir/comm_types.cc.o.d"
  "CMakeFiles/mcrdl_net.dir/cost.cc.o"
  "CMakeFiles/mcrdl_net.dir/cost.cc.o.d"
  "CMakeFiles/mcrdl_net.dir/profiles.cc.o"
  "CMakeFiles/mcrdl_net.dir/profiles.cc.o.d"
  "CMakeFiles/mcrdl_net.dir/topology.cc.o"
  "CMakeFiles/mcrdl_net.dir/topology.cc.o.d"
  "libmcrdl_net.a"
  "libmcrdl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrdl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
