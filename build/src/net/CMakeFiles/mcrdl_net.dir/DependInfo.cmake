
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/comm_types.cc" "src/net/CMakeFiles/mcrdl_net.dir/comm_types.cc.o" "gcc" "src/net/CMakeFiles/mcrdl_net.dir/comm_types.cc.o.d"
  "/root/repo/src/net/cost.cc" "src/net/CMakeFiles/mcrdl_net.dir/cost.cc.o" "gcc" "src/net/CMakeFiles/mcrdl_net.dir/cost.cc.o.d"
  "/root/repo/src/net/profiles.cc" "src/net/CMakeFiles/mcrdl_net.dir/profiles.cc.o" "gcc" "src/net/CMakeFiles/mcrdl_net.dir/profiles.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/mcrdl_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/mcrdl_net.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mcrdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
