# Empty dependencies file for bench_fig11_frameworks.
# This may be replaced when dependencies are built.
