file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_frameworks.dir/bench_fig11_frameworks.cc.o"
  "CMakeFiles/bench_fig11_frameworks.dir/bench_fig11_frameworks.cc.o.d"
  "bench_fig11_frameworks"
  "bench_fig11_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
