file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_megatron.dir/bench_fig10_megatron.cc.o"
  "CMakeFiles/bench_fig10_megatron.dir/bench_fig10_megatron.cc.o.d"
  "bench_fig10_megatron"
  "bench_fig10_megatron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_megatron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
