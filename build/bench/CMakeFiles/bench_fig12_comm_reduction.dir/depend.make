# Empty dependencies file for bench_fig12_comm_reduction.
# This may be replaced when dependencies are built.
