file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_table_transfer.dir/bench_ablation_table_transfer.cc.o"
  "CMakeFiles/bench_ablation_table_transfer.dir/bench_ablation_table_transfer.cc.o.d"
  "bench_ablation_table_transfer"
  "bench_ablation_table_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_table_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
