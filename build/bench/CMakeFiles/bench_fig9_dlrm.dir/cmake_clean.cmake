file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_dlrm.dir/bench_fig9_dlrm.cc.o"
  "CMakeFiles/bench_fig9_dlrm.dir/bench_fig9_dlrm.cc.o.d"
  "bench_fig9_dlrm"
  "bench_fig9_dlrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dlrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
