# Empty dependencies file for bench_fig2_microbench.
# This may be replaced when dependencies are built.
