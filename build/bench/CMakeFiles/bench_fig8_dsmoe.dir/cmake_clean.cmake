file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_dsmoe.dir/bench_fig8_dsmoe.cc.o"
  "CMakeFiles/bench_fig8_dsmoe.dir/bench_fig8_dsmoe.cc.o.d"
  "bench_fig8_dsmoe"
  "bench_fig8_dsmoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dsmoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
