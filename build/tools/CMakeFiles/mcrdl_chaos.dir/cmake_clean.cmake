file(REMOVE_RECURSE
  "CMakeFiles/mcrdl_chaos.dir/mcrdl_chaos.cc.o"
  "CMakeFiles/mcrdl_chaos.dir/mcrdl_chaos.cc.o.d"
  "mcrdl_chaos"
  "mcrdl_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrdl_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
