# Empty dependencies file for mcrdl_chaos.
# This may be replaced when dependencies are built.
