file(REMOVE_RECURSE
  "CMakeFiles/mcrdl_info.dir/mcrdl_info.cc.o"
  "CMakeFiles/mcrdl_info.dir/mcrdl_info.cc.o.d"
  "mcrdl_info"
  "mcrdl_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrdl_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
