# Empty dependencies file for mcrdl_info.
# This may be replaced when dependencies are built.
