# Empty compiler generated dependencies file for mcrdl_osu.
# This may be replaced when dependencies are built.
