file(REMOVE_RECURSE
  "CMakeFiles/mcrdl_osu.dir/mcrdl_osu.cc.o"
  "CMakeFiles/mcrdl_osu.dir/mcrdl_osu.cc.o.d"
  "mcrdl_osu"
  "mcrdl_osu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrdl_osu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
