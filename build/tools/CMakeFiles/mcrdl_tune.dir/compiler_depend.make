# Empty compiler generated dependencies file for mcrdl_tune.
# This may be replaced when dependencies are built.
