file(REMOVE_RECURSE
  "CMakeFiles/mcrdl_tune.dir/mcrdl_tune.cc.o"
  "CMakeFiles/mcrdl_tune.dir/mcrdl_tune.cc.o.d"
  "mcrdl_tune"
  "mcrdl_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrdl_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
