file(REMOVE_RECURSE
  "CMakeFiles/mixed_backend_overlap.dir/mixed_backend_overlap.cpp.o"
  "CMakeFiles/mixed_backend_overlap.dir/mixed_backend_overlap.cpp.o.d"
  "mixed_backend_overlap"
  "mixed_backend_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_backend_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
