# Empty compiler generated dependencies file for mixed_backend_overlap.
# This may be replaced when dependencies are built.
