file(REMOVE_RECURSE
  "CMakeFiles/compression_and_logging.dir/compression_and_logging.cpp.o"
  "CMakeFiles/compression_and_logging.dir/compression_and_logging.cpp.o.d"
  "compression_and_logging"
  "compression_and_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_and_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
