# Empty dependencies file for compression_and_logging.
# This may be replaced when dependencies are built.
