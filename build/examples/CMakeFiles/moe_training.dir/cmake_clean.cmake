file(REMOVE_RECURSE
  "CMakeFiles/moe_training.dir/moe_training.cpp.o"
  "CMakeFiles/moe_training.dir/moe_training.cpp.o.d"
  "moe_training"
  "moe_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
