# Empty dependencies file for dlrm_training.
# This may be replaced when dependencies are built.
