file(REMOVE_RECURSE
  "CMakeFiles/dlrm_training.dir/dlrm_training.cpp.o"
  "CMakeFiles/dlrm_training.dir/dlrm_training.cpp.o.d"
  "dlrm_training"
  "dlrm_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrm_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
