# Empty dependencies file for chaos_failover.
# This may be replaced when dependencies are built.
