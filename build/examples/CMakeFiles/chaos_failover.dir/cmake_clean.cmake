file(REMOVE_RECURSE
  "CMakeFiles/chaos_failover.dir/chaos_failover.cpp.o"
  "CMakeFiles/chaos_failover.dir/chaos_failover.cpp.o.d"
  "chaos_failover"
  "chaos_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
