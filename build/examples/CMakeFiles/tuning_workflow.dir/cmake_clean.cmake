file(REMOVE_RECURSE
  "CMakeFiles/tuning_workflow.dir/tuning_workflow.cpp.o"
  "CMakeFiles/tuning_workflow.dir/tuning_workflow.cpp.o.d"
  "tuning_workflow"
  "tuning_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
