# Empty compiler generated dependencies file for tuning_workflow.
# This may be replaced when dependencies are built.
