#include "src/models/comm_plan.h"

#include <algorithm>
#include <set>

#include "src/coll/spec.h"

namespace mcrdl::models {

// ---------------------------------------------------------------------------
// CommPlan
// ---------------------------------------------------------------------------

namespace {
const std::string kAuto = "auto";
}

const std::string& CommPlan::backend_for(OpType op) const {
  if (use_auto) return kAuto;
  auto it = per_op.find(op);
  return it != per_op.end() ? it->second : default_backend;
}

std::vector<std::string> CommPlan::backends_needed(const std::vector<std::string>& all) const {
  if (use_auto) return all;  // the table may pick any of them
  // Composite strings name algorithms over engines; init() wants the
  // engines. A bare "rsag" runs on the plan's default backend.
  auto constituents = [this](const std::string& name, std::set<std::string>& out) {
    if (auto spec = coll::parse(name)) {
      out.insert(spec->intra.empty() ? default_backend : spec->intra);
      if (!spec->inter.empty()) out.insert(spec->inter);
    } else {
      out.insert(name);
    }
  };
  std::set<std::string> names;
  constituents(default_backend, names);
  for (const auto& [op, b] : per_op) constituents(b, names);
  std::vector<std::string> out;
  // Preserve the registry order for deterministic init.
  for (const auto& name : all) {
    if (names.count(name)) out.push_back(name);
  }
  for (const auto& name : names) {
    if (std::find(out.begin(), out.end(), name) == out.end()) out.push_back(name);
  }
  return out;
}

CommPlan CommPlan::pure(const std::string& backend, std::string label) {
  CommPlan p;
  p.name = label.empty() ? "Pure " + backend : std::move(label);
  p.default_backend = backend;
  return p;
}

CommPlan CommPlan::mcr_dl_mixed() {
  CommPlan p;
  p.name = "MCR-DL";
  p.default_backend = "nccl";
  p.per_op[OpType::AllToAll] = "mv2-gdr";
  p.per_op[OpType::AllToAllSingle] = "mv2-gdr";
  p.per_op[OpType::AllToAllV] = "mv2-gdr";
  p.per_op[OpType::Gather] = "mv2-gdr";
  p.per_op[OpType::GatherV] = "mv2-gdr";
  p.per_op[OpType::Scatter] = "mv2-gdr";
  p.per_op[OpType::ScatterV] = "mv2-gdr";
  return p;
}

CommPlan CommPlan::mcr_dl_tuned() {
  CommPlan p;
  p.name = "MCR-DL-T";
  p.use_auto = true;
  return p;
}

CommPlan CommPlan::hier_allreduce(const std::string& flat, const std::string& intra,
                                  const std::string& inter, std::string label) {
  CommPlan p;
  const std::string composite = "hier:" + intra + "+" + inter;
  p.name = label.empty() ? flat + " + " + composite : std::move(label);
  p.default_backend = flat;
  p.per_op[OpType::AllReduce] = composite;
  return p;
}

// ---------------------------------------------------------------------------
// FrameworkModel
// ---------------------------------------------------------------------------

FrameworkModel FrameworkModel::mcr_dl() {
  FrameworkModel f;
  f.name = "MCR-DL";
  // Thin Python wrapper over the C++ backbone (paper C3: ~5% overhead on
  // the smallest messages, ~1% at MB sizes).
  f.per_call_overhead_us = 0.55;
  f.per_byte_overhead_us = 0.3e-6;  // ~3 TB/s effective: negligible passes
  f.supports_fusion = true;
  f.supports_mixed = true;
  return f;
}

FrameworkModel FrameworkModel::pytorch_distributed(const std::string& backend) {
  FrameworkModel f;
  f.name = "PyTorch-Distributed";
  // Heavier Python dispatch + ProcessGroup bookkeeping and an extra pass
  // over the payload (paper Fig 7: 18% small, 4% large over OMB).
  f.per_call_overhead_us = 2.0;
  f.per_byte_overhead_us = 1.5e-6;
  f.supports_fusion = true;
  f.supports_mixed = false;
  f.fixed_backend = backend;
  return f;
}

FrameworkModel FrameworkModel::horovod() {
  FrameworkModel f;
  f.name = "Horovod";
  // Background-coordinator handshake per operation.
  f.per_call_overhead_us = 1.5;
  f.per_byte_overhead_us = 1.0e-6;
  f.supports_fusion = true;
  f.supports_mixed = false;
  f.fixed_backend = "nccl";
  return f;
}

FrameworkModel FrameworkModel::mpi4py() {
  FrameworkModel f;
  f.name = "mpi4py";
  f.per_call_overhead_us = 1.0;
  f.host_staging = true;     // cupy -> numpy -> cupy round trip (Listing 2)
  f.forces_blocking = true;  // Listing 2's calls are blocking MPI
  f.supports_fusion = false;
  f.supports_mixed = false;
  f.fixed_backend = "mv2-gdr";
  return f;
}

FrameworkModel FrameworkModel::raw() {
  FrameworkModel f;
  f.name = "OMB";
  f.supports_mixed = true;  // routes exactly where the plan says, no overhead
  return f;
}

// ---------------------------------------------------------------------------
// CommIssuer
// ---------------------------------------------------------------------------

CommIssuer::CommIssuer(Api api, const CommPlan& plan, const FrameworkModel& framework)
    : api_(std::move(api)), plan_(plan), framework_(framework) {}

std::string CommIssuer::route(OpType op) const {
  if (!framework_.supports_mixed && !framework_.fixed_backend.empty()) {
    return framework_.fixed_backend;
  }
  return plan_.backend_for(op);
}

void CommIssuer::pre_op(std::size_t bytes) {
  McrDl* ctx = api_.context();
  double cost = framework_.per_call_overhead_us +
                framework_.per_byte_overhead_us * static_cast<double>(bytes);
  if (framework_.host_staging) {
    // Listing 2's cupy->numpy->cupy round trip: the payload crosses PCIe
    // twice before the MPI call sees host buffers.
    const net::SystemConfig& cfg = ctx->cluster()->topology().config();
    cost += 2.0 * (cfg.pcie_latency_us + transfer_time_us(bytes, cfg.pcie_bandwidth_gbps));
  }
  if (cost > 0.0) ctx->cluster()->scheduler().sleep_for(cost);
}

CommIssuer CommIssuer::group(std::vector<int> ranks) const {
  return CommIssuer(api_.group(std::move(ranks)), plan_, framework_);
}

bool CommIssuer::effective_async(bool async_op) const {
  return async_op && !framework_.forces_blocking;
}

Work CommIssuer::all_reduce(Tensor t, ReduceOp op, bool async_op) {
  pre_op(t.bytes());
  return api_.all_reduce(route(OpType::AllReduce), std::move(t), op, effective_async(async_op));
}

Work CommIssuer::all_to_all_single(Tensor output, Tensor input, bool async_op) {
  pre_op(input.bytes());
  return api_.all_to_all_single(route(OpType::AllToAllSingle), std::move(output),
                                std::move(input), effective_async(async_op));
}

Work CommIssuer::all_gather(Tensor output, Tensor input, bool async_op) {
  pre_op(input.bytes());
  return api_.all_gather(route(OpType::AllGather), std::move(output), std::move(input),
                         effective_async(async_op));
}

Work CommIssuer::reduce_scatter(Tensor output, Tensor input, ReduceOp op, bool async_op) {
  pre_op(input.bytes());
  return api_.reduce_scatter(route(OpType::ReduceScatter), std::move(output), std::move(input),
                             op, effective_async(async_op));
}

Work CommIssuer::broadcast(Tensor tensor, int root, bool async_op) {
  pre_op(tensor.bytes());
  return api_.broadcast(route(OpType::Broadcast), std::move(tensor), root,
                        effective_async(async_op));
}

Work CommIssuer::send(Tensor tensor, int dst, bool async_op) {
  pre_op(tensor.bytes());
  return api_.send(route(OpType::Send), std::move(tensor), dst, effective_async(async_op));
}

Work CommIssuer::recv(Tensor tensor, int src, bool async_op) {
  pre_op(tensor.bytes());
  return api_.recv(route(OpType::Recv), std::move(tensor), src, effective_async(async_op));
}

void CommIssuer::synchronize() { api_.synchronize(); }

}  // namespace mcrdl::models
