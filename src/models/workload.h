// Workload-model infrastructure: the Model interface every simulated DL
// training job implements, and the TrainingHarness that runs one
// (model, system, communication plan, framework) combination SPMD and
// reports the metrics the paper's figures use — throughput, step time,
// compute-vs-communication split, and the per-operation breakdown.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/models/comm_plan.h"

namespace mcrdl::models {

// Converts model FLOPs into device time given the achieved fraction of the
// GPU's peak throughput.
SimTime flops_time_us(double flops, double peak_tflops, double efficiency);

class Model {
 public:
  virtual ~Model() = default;
  virtual std::string name() const = 0;
  // Global training samples processed per step at the given world size.
  virtual double samples_per_step(int world) const = 0;
  // Runs `steps` full training steps; per-rank state lives inside the call.
  virtual void run_steps(CommIssuer& comm, int rank, int steps) const = 0;
};

struct RunResult {
  std::string plan_name;
  std::string model_name;
  int world = 0;
  double step_time_us = 0.0;
  double throughput = 0.0;          // samples/second (virtual time)
  double comm_time_us = 0.0;        // per-step union of comm intervals, rank 0
  double compute_time_us = 0.0;     // per-step default-stream busy time, rank 0
  std::map<std::string, double> comm_by_op_us;       // per step
  std::map<std::string, double> comm_by_backend_us;  // per step

  double comm_fraction() const {
    const double busy = comm_time_us + compute_time_us;
    return busy > 0.0 ? comm_time_us / busy : 0.0;
  }
};

struct HarnessOptions {
  int warmup_steps = 1;
  int measured_steps = 3;
  McrDlOptions mcr_options;  // fusion/compression settings for the run
  // Execution engine for the run's cluster (DESIGN.md §11). Serial is the
  // golden-trace referee; parallel(N) shards the ranks across N worker
  // threads for wall-clock speed at identical virtual-time results.
  sim::ExecutionConfig execution = sim::ExecutionConfig::serial();
  // Bandwidth-sharing factors from co-scheduled tenants, installed on the
  // run's cluster before any operation issues (src/sched/ measures each job
  // under the load the serving scheduler computed). Identity by default.
  net::ContentionScale contention;
};

class TrainingHarness {
 public:
  explicit TrainingHarness(net::SystemConfig system);

  // Runs the model under the given plan/framework; `world` ranks
  // participate (defaults to the whole system). A tuning table is required
  // when the plan uses "auto".
  RunResult run(const Model& model, const CommPlan& plan, const FrameworkModel& framework,
                HarnessOptions options = {}, const TuningTable* table = nullptr, int world = -1);

  const net::SystemConfig& system() const { return system_; }

 private:
  net::SystemConfig system_;
};

// Scaling efficiency relative to the smallest scale in a sweep:
// eff(P) = (throughput(P) / throughput(P0)) / (P / P0).
double scaling_efficiency(const RunResult& at_p, const RunResult& at_p0);

}  // namespace mcrdl::models
