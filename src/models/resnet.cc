#include "src/models/resnet.h"

#include <vector>

namespace mcrdl::models {

ResNet50Model::ResNet50Model(ResNet50Config config, const net::SystemConfig& system)
    : config_(config), gpu_tflops_(system.gpu_tflops) {}

double ResNet50Model::samples_per_step(int world) const {
  return static_cast<double>(config_.batch_per_gpu) * world;
}

void ResNet50Model::run_steps(CommIssuer& comm, int rank, int steps) const {
  sim::Device* dev = comm.api().context()->cluster()->device(rank);
  const double step_flops = config_.flops_per_sample * config_.batch_per_gpu;
  const SimTime fwd_us =
      flops_time_us(step_flops / 3.0, gpu_tflops_, config_.compute_efficiency);
  const SimTime bwd_us = 2.0 * fwd_us;
  const std::int64_t bucket_numel =
      static_cast<std::int64_t>(config_.params / config_.grad_buckets);

  for (int s = 0; s < steps; ++s) {
    dev->compute(fwd_us, "resnet-fwd");
    // Backward in chunks; each chunk's gradients all-reduce while the next
    // chunk computes (DDP-style overlap).
    std::vector<Work> works;
    for (int b = 0; b < config_.grad_buckets; ++b) {
      dev->compute(bwd_us / config_.grad_buckets, "resnet-bwd");
      Tensor g = Tensor::phantom({bucket_numel}, config_.grad_dtype, dev);
      works.push_back(comm.all_reduce(std::move(g), ReduceOp::Sum, /*async_op=*/true));
    }
    for (auto& w : works) w->wait();
    dev->compute(fwd_us * 0.05, "optimizer");
    comm.synchronize();
  }
}

}  // namespace mcrdl::models
