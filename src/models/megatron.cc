#include "src/models/megatron.h"

#include <vector>

#include "src/core/process_groups.h"

namespace mcrdl::models {

MegatronDenseModel::MegatronDenseModel(MegatronConfig config, const net::SystemConfig& system)
    : config_(config), gpu_tflops_(system.gpu_tflops) {
  MCRDL_REQUIRE(config_.tensor_parallel >= 1, "invalid tensor-parallel degree");
}

double MegatronDenseModel::samples_per_step(int world) const {
  // One micro-batch of sequences per model replica per step.
  return static_cast<double>(config_.micro_batch) * world / config_.tensor_parallel;
}

std::size_t MegatronDenseModel::activation_bytes() const {
  return static_cast<std::size_t>(config_.micro_batch) * config_.seq * config_.hidden *
         dtype_size(config_.dtype);
}

void MegatronDenseModel::run_steps(CommIssuer& comm, int rank, int steps) const {
  sim::Device* dev = comm.api().context()->cluster()->device(rank);
  const int world = comm.api().world_size();
  const int tp = config_.tensor_parallel;
  MCRDL_REQUIRE(world % tp == 0, "world size must be divisible by tensor_parallel");

  // TP ranks are contiguous (sharing a node under the block layout); DP
  // peers stride by the TP degree.
  ProcessGroups groups(world, tp);
  CommIssuer tp_comm = comm.group(groups.tp_group(rank));
  CommIssuer dp_comm = comm.group(groups.dp_group(rank));

  const double tokens = static_cast<double>(config_.micro_batch) * config_.seq;
  // 6 * params * tokens FLOPs per fwd+bwd step, split across the TP pair.
  const double step_flops = 6.0 * config_.params * tokens / tp;
  const SimTime layer_us = flops_time_us(step_flops / config_.layers, gpu_tflops_,
                                         config_.compute_efficiency);

  const std::int64_t act_numel =
      static_cast<std::int64_t>(activation_bytes() / dtype_size(config_.dtype));
  const std::int64_t small_numel =
      static_cast<std::int64_t>(config_.small_op_bytes / dtype_size(config_.dtype));
  const double shard_grad_bytes = config_.params / tp * dtype_size(config_.dtype);
  const int zero_buckets = static_cast<int>(
      (shard_grad_bytes + config_.zero_bucket_bytes - 1) / config_.zero_bucket_bytes);
  const std::int64_t bucket_numel =
      static_cast<std::int64_t>(config_.zero_bucket_bytes / dtype_size(config_.dtype));
  const int dp = world / tp;

  auto tp_allreduce = [&](std::int64_t numel, bool async) {
    Tensor t = Tensor::phantom({numel}, config_.dtype, dev);
    return tp_comm.all_reduce(std::move(t), ReduceOp::Sum, async);
  };

  for (int s = 0; s < steps; ++s) {
    // Forward: 2 activation allreduces + the small per-layer ops.
    for (int layer = 0; layer < config_.layers; ++layer) {
      dev->compute(layer_us / 3.0, "megatron-fwd");
      tp_allreduce(act_numel, /*async=*/true)->wait();
      tp_allreduce(act_numel, /*async=*/true)->wait();
      for (int k = 0; k < config_.small_ops_per_layer; ++k) {
        tp_allreduce(small_numel, /*async=*/true)->wait();
      }
    }
    // Backward: compute + activation-gradient allreduces; ZeRO-2 gradient
    // reduce-scatter buckets issue as layers finish and overlap compute.
    std::vector<Work> zero_works;
    int issued = 0;
    for (int layer = config_.layers - 1; layer >= 0; --layer) {
      dev->compute(layer_us * 2.0 / 3.0, "megatron-bwd");
      tp_allreduce(act_numel, /*async=*/true)->wait();
      tp_allreduce(act_numel, /*async=*/true)->wait();
      for (int k = 0; k < config_.small_ops_per_layer; ++k) {
        tp_allreduce(small_numel, /*async=*/true)->wait();
      }
      const int target = zero_buckets * (config_.layers - layer) / config_.layers;
      while (issued < target) {
        Tensor g = Tensor::phantom({bucket_numel}, config_.dtype, dev);
        Tensor out = Tensor::phantom({bucket_numel / std::max(dp, 1)}, config_.dtype, dev);
        zero_works.push_back(
            dp_comm.reduce_scatter(std::move(out), std::move(g), ReduceOp::Sum, /*async_op=*/true));
        ++issued;
      }
    }
    while (issued < zero_buckets) {
      Tensor g = Tensor::phantom({bucket_numel}, config_.dtype, dev);
      Tensor out = Tensor::phantom({bucket_numel / std::max(dp, 1)}, config_.dtype, dev);
      zero_works.push_back(
          dp_comm.reduce_scatter(std::move(out), std::move(g), ReduceOp::Sum, /*async_op=*/true));
      ++issued;
    }
    for (auto& w : zero_works) w->wait();
    // Optimizer on the shard, then gather the updated fp16 parameters.
    dev->compute(layer_us, "optimizer");
    for (int b = 0; b < zero_buckets; ++b) {
      Tensor shard = Tensor::phantom({bucket_numel / std::max(dp, 1)}, config_.dtype, dev);
      Tensor full = Tensor::phantom({bucket_numel}, config_.dtype, dev);
      dp_comm.all_gather(std::move(full), std::move(shard), /*async_op=*/true)->wait();
    }
    comm.synchronize();
  }
}

}  // namespace mcrdl::models
