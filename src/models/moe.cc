#include "src/models/moe.h"

#include <vector>

#include "src/core/process_groups.h"

namespace mcrdl::models {

DSMoEModel::DSMoEModel(DSMoEConfig config, const net::SystemConfig& system)
    : config_(config), gpu_tflops_(system.gpu_tflops) {
  MCRDL_REQUIRE(config_.layers >= 1 && config_.moe_every >= 1, "invalid DS-MoE config");
}

double DSMoEModel::samples_per_step(int world) const {
  return static_cast<double>(config_.micro_batch) * world;
}

std::size_t DSMoEModel::alltoall_bytes() const {
  // Every token's hidden vector crosses the wire once per dispatch/combine.
  return static_cast<std::size_t>(config_.micro_batch) * config_.seq * config_.hidden *
         dtype_size(config_.dtype);
}

void DSMoEModel::run_steps(CommIssuer& comm, int rank, int steps) const {
  sim::Device* dev = comm.api().context()->cluster()->device(rank);
  // Expert-parallel scoping: token Alltoalls run within EP groups; the
  // dense-gradient Allreduce stays world-wide.
  const int world = comm.api().world_size();
  const int ep = config_.expert_parallel > 0 ? config_.expert_parallel : world;
  MCRDL_REQUIRE(world % ep == 0, "world must be divisible by expert_parallel");
  CommIssuer ep_comm =
      ep == world ? comm : comm.group(ProcessGroups(world, /*tp=*/1, ep).ep_group(rank));
  const double h = config_.hidden;
  const double tokens = static_cast<double>(config_.micro_batch) * config_.seq;
  // Per-layer forward FLOPs: attention (QKV+proj ~ 8*T*H^2, scores ~
  // 4*T^2*H/…) approximated by the standard 2*T*(12*H^2) transformer figure,
  // FFN included. MoE layers route each token through one expert FFN, so
  // their FLOPs match the dense layer.
  const double layer_fwd_flops = 24.0 * tokens * h * h;
  const SimTime fwd_us = flops_time_us(layer_fwd_flops, gpu_tflops_, config_.compute_efficiency);
  const SimTime bwd_us = 2.0 * fwd_us;

  const std::size_t a2a_bytes = alltoall_bytes();
  const std::int64_t a2a_numel = static_cast<std::int64_t>(a2a_bytes / dtype_size(config_.dtype));
  const double grad_bytes = config_.base_params * dtype_size(config_.dtype);
  const int buckets =
      static_cast<int>((grad_bytes + config_.grad_bucket_bytes - 1) / config_.grad_bucket_bytes);
  const std::int64_t bucket_numel =
      static_cast<std::int64_t>(config_.grad_bucket_bytes / dtype_size(config_.dtype));

  auto alltoall = [&] {
    Tensor in = Tensor::phantom({a2a_numel}, config_.dtype, dev);
    Tensor out = Tensor::phantom({a2a_numel}, config_.dtype, dev);
    return ep_comm.all_to_all_single(std::move(out), std::move(in), /*async_op=*/true);
  };

  for (int s = 0; s < steps; ++s) {
    // --- forward ---
    for (int layer = 0; layer < config_.layers; ++layer) {
      dev->compute(fwd_us, "moe-fwd");
      if (layer % config_.moe_every == 0) {
        alltoall()->wait();  // token dispatch
        dev->compute(fwd_us * 0.3, "expert-fwd");
        alltoall()->wait();  // combine
      }
    }
    // --- backward ---
    for (int layer = config_.layers - 1; layer >= 0; --layer) {
      dev->compute(bwd_us, "moe-bwd");
      if (layer % config_.moe_every == 0) {
        alltoall()->wait();  // gradient w.r.t. combine
        dev->compute(fwd_us * 0.6, "expert-bwd");
        alltoall()->wait();  // gradient w.r.t. dispatch
      }
    }
    // Dense-gradient allreduce after backward, in buckets (DeepSpeed-MoE
    // averages the shared parameters once the whole backward pass is done —
    // this exposed Allreduce is what makes NCCL the better pure backend at
    // small scale, paper Fig 8).
    std::vector<Work> grad_works;
    for (int b = 0; b < buckets; ++b) {
      Tensor g = Tensor::phantom({bucket_numel}, config_.dtype, dev);
      grad_works.push_back(comm.all_reduce(std::move(g), ReduceOp::Sum, /*async_op=*/true));
    }
    for (auto& w : grad_works) w->wait();
    // Optimizer step, then everything must be done before the next batch.
    dev->compute(fwd_us * 0.2, "optimizer");
    comm.synchronize();
  }
}

}  // namespace mcrdl::models
