// How a training run routes its communication:
//
//  * CommPlan — which backend serves each operation class. Pure plans model
//    the paper's baselines ("Baseline NCCL" = PyTorch-distributed built
//    against one backend); the mixed plan is MCR-DL's coarse-grained
//    mix-and-match (one backend per collective); the tuned plan passes
//    "auto" so every (op, message size) pair resolves through the tuning
//    table — the paper's MCR-DL-T.
//  * FrameworkModel — per-call behaviour of the PyTorch-compatible
//    frameworks compared in Figures 7 and 11: host overhead per operation,
//    host-staging copies (mpi4py's cupy→numpy round trip), fusion support,
//    and whether mixed-backend routing is available.
//  * CommIssuer — the thin shim models call; it applies the framework
//    overheads and routes to the chosen backend through the MCR-DL Api.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/core/mcr_dl.h"

namespace mcrdl::models {

struct CommPlan {
  std::string name;              // series label, e.g. "MCR-DL"
  std::string default_backend = "nccl";
  std::map<OpType, std::string> per_op;  // coarse-grained mixing
  bool use_auto = false;                 // fine-grained tuned mixing (MCR-DL-T)

  const std::string& backend_for(OpType op) const;
  // Concrete backends this plan needs initialised (excludes "auto").
  // Composite algorithm strings ("hier:nccl+nccl", "rsag:ompi") are
  // decomposed into their constituent backends — init() loads engines, and
  // a composite is an algorithm over engines, not an engine itself.
  std::vector<std::string> backends_needed(const std::vector<std::string>& all) const;

  static CommPlan pure(const std::string& backend, std::string label = {});
  // The paper's flagship mix: NCCL Allreduce/ReduceScatter + MVAPICH2-GDR
  // Alltoall and small-message collectives.
  static CommPlan mcr_dl_mixed();
  // "auto" everywhere; requires a tuning table.
  static CommPlan mcr_dl_tuned();
  // Flat plan with Allreduce routed through a two-level hierarchical
  // composite (DESIGN.md §15); everything else rides `flat`. Requires
  // CollConfig::enabled on the run's options.
  static CommPlan hier_allreduce(const std::string& flat, const std::string& intra,
                                 const std::string& inter, std::string label = {});
};

struct FrameworkModel {
  std::string name;
  double per_call_overhead_us = 0.0;  // host software cost per operation
  double per_byte_overhead_us = 0.0;  // extra framework passes over the payload
  bool host_staging = false;          // device->host->device copies (mpi4py)
  // The framework cannot overlap its GPU-tensor communication (Listing 2's
  // blocking mpi4py calls): every operation completes before returning.
  bool forces_blocking = false;
  bool supports_fusion = false;
  bool supports_mixed = false;        // can follow a mixed CommPlan
  std::string fixed_backend;          // used when !supports_mixed (empty = plan default)

  static FrameworkModel mcr_dl();
  static FrameworkModel pytorch_distributed(const std::string& backend);
  static FrameworkModel horovod();
  static FrameworkModel mpi4py();
  // Zero-overhead reference: the OSU micro-benchmark path (Fig 7 baseline).
  static FrameworkModel raw();
};

// Per-rank communication shim used by the workload models.
class CommIssuer {
 public:
  CommIssuer(Api api, const CommPlan& plan, const FrameworkModel& framework);

  int rank() const { return api_.rank(); }
  Api& api() { return api_; }
  const CommPlan& plan() const { return plan_; }
  const FrameworkModel& framework() const { return framework_; }

  Work all_reduce(Tensor t, ReduceOp op = ReduceOp::Sum, bool async_op = false);
  Work all_to_all_single(Tensor output, Tensor input, bool async_op = false);
  Work all_gather(Tensor output, Tensor input, bool async_op = false);
  Work reduce_scatter(Tensor output, Tensor input, ReduceOp op = ReduceOp::Sum,
                      bool async_op = false);
  Work broadcast(Tensor tensor, int root, bool async_op = false);
  // Point-to-point (halo exchanges of spatially-partitioned models); ranks
  // are communicator-local, like every other rooted argument here.
  Work send(Tensor tensor, int dst, bool async_op = false);
  Work recv(Tensor tensor, int src, bool async_op = false);
  void synchronize();

  // Rebinds to a sub-communicator (tensor-parallel groups etc.).
  CommIssuer group(std::vector<int> ranks) const;

 private:
  std::string route(OpType op) const;
  // Framework cost before the operation posts: host overhead plus, for
  // host-staging frameworks, the D2H+H2D round trip for `bytes`.
  void pre_op(std::size_t bytes);
  // Downgrades async to blocking for frameworks that force blocking calls.
  bool effective_async(bool async_op) const;

  Api api_;
  const CommPlan& plan_;
  const FrameworkModel& framework_;
};

}  // namespace mcrdl::models
