// Spatially-partitioned 3D-CNN training workload (volumetric segmentation,
// the DESIGN.md §15 composite-collective showcase). Three communication
// patterns, in rough size order:
//
//   * halo exchanges — every conv layer swaps its boundary slices with the
//     spatial neighbours (rank±1 along the depth split): medium point-to-point
//     messages on the plan's default backend;
//   * channel allreduces — normalisation statistics reduced over the
//     intra-node channel group: small, latency-bound collectives;
//   * gradient allreduces — data-parallel weight gradients, bucketed and
//     issued asynchronously during the backward pass: the large, bandwidth-
//     bound messages a two-level "hier:<intra>+<inter>" composite splits
//     between the NVLink level and the NIC level, and the only place the
//     overlap scheduler has independent work to interleave.
//
// The interesting ordering lives on the mixed composite (stream runtime
// intra-node, host-MPI inter-node — the pairing whose levels can genuinely
// run concurrently, since a single-runtime composite is ordered by the
// device stream). At one node the flat plan wins outright: the composite
// degenerates to reduce+broadcast overhead. At >= 2 nodes the mixed plan
// *without* overlap loses to flat too — the host-MPI hop is pure added tax
// on a serial schedule. Turn the overlap scheduler on and the identical
// plan wins by a wide margin: chunked gradient buckets keep NVLink and NIC
// busy simultaneously. Algorithm and schedule only pay together — the
// crossover the `hier` bench experiment exports.
#pragma once

#include "src/models/workload.h"

namespace mcrdl::models {

struct Cnn3dConfig {
  int batch_per_gpu = 2;
  int conv_layers = 6;
  double params = 64.0e6;            // replicated weights (data parallel)
  double flops_per_sample = 30.0e9;  // forward; backward costs 2x
  int grad_buckets = 8;              // async DDP-style gradient buckets
  std::int64_t halo_elems = 512 * 1024;   // boundary slice per layer, per side
  std::int64_t channel_elems = 16 * 1024; // normalisation stats per block
  double compute_efficiency = 0.22;  // achieved fraction of peak on 3D convs
  DType dtype = DType::F32;
};

class Cnn3dModel : public Model {
 public:
  Cnn3dModel(Cnn3dConfig config, const net::SystemConfig& system);

  std::string name() const override { return "3D-CNN"; }
  double samples_per_step(int world) const override;
  void run_steps(CommIssuer& comm, int rank, int steps) const override;

 private:
  Cnn3dConfig config_;
  double gpu_tflops_;
  int gpus_per_node_;
};

}  // namespace mcrdl::models
