// DLRM training workload (paper Sections III-E and VI-4: synthetic 8k
// batches, bottom MLP 512-512-64, top MLP 1024-1024-1024-1, embedding
// tables of 1e6 x num_ranks rows).
//
// The embedding tables are model-parallel: after the (memory-bound) lookup,
// a *non-blocking* Alltoall redistributes embedding vectors while the top
// MLP of the previous batch computes — the overlap structure that makes
// non-blocking Alltoall a hard requirement (paper Section III-E). The dense
// MLPs are data-parallel and all-reduce their gradients each step.
#pragma once

#include "src/models/workload.h"

namespace mcrdl::models {

struct DLRMConfig {
  int global_batch = 8192;
  std::vector<int> bottom_mlp = {512, 512, 64};
  std::vector<int> top_mlp = {1024, 1024, 1024, 1};
  int embedding_dim = 128;
  int dense_features = 13;
  int tables_per_rank = 2;  // paper: table rows scale as 1e6 x num_ranks
  double compute_efficiency = 0.05;
  DType dtype = DType::F32;
};

class DLRMModel : public Model {
 public:
  DLRMModel(DLRMConfig config, const net::SystemConfig& system);

  std::string name() const override { return "DLRM"; }
  double samples_per_step(int world) const override;
  void run_steps(CommIssuer& comm, int rank, int steps) const override;

  std::size_t alltoall_bytes(int world) const;
  std::size_t dense_grad_bytes() const;

 private:
  double mlp_flops(const std::vector<int>& dims, int batch, int input_dim) const;

  DLRMConfig config_;
  double gpu_tflops_;
  double hbm_gbps_;
};

}  // namespace mcrdl::models
