#include "src/models/cnn3d.h"

#include <algorithm>
#include <vector>

namespace mcrdl::models {

namespace {

// Both-direction boundary swap with the spatial neighbours along the depth
// split, posted in the classic red-black order: within a pair the lower rank
// sends first, and even ranks serve their right neighbour before their left.
// Boundary slices are rendezvous-sized, so a send occupies the stream until
// the matching receive is reached — naive send-first-both-ways posting would
// cycle the last pair's streams, exactly like real NCCL p2p without grouped
// ordering.
void halo_exchange(CommIssuer& comm, int rank, int world, sim::Device* dev,
                   std::int64_t elems, DType dtype) {
  std::vector<Work> works;
  auto exchange = [&](int peer) {
    if (peer < 0 || peer >= world) return;
    Work first = rank < peer
                     ? comm.send(Tensor::phantom({elems}, dtype, dev), peer, /*async_op=*/true)
                     : comm.recv(Tensor::phantom({elems}, dtype, dev), peer, /*async_op=*/true);
    Work second = rank < peer
                      ? comm.recv(Tensor::phantom({elems}, dtype, dev), peer, /*async_op=*/true)
                      : comm.send(Tensor::phantom({elems}, dtype, dev), peer, /*async_op=*/true);
    works.push_back(std::move(first));
    works.push_back(std::move(second));
  };
  if (rank % 2 == 0) {
    exchange(rank + 1);
    exchange(rank - 1);
  } else {
    exchange(rank - 1);
    exchange(rank + 1);
  }
  for (auto& w : works) w->wait();
}

}  // namespace

Cnn3dModel::Cnn3dModel(Cnn3dConfig config, const net::SystemConfig& system)
    : config_(config), gpu_tflops_(system.gpu_tflops), gpus_per_node_(system.gpus_per_node) {}

double Cnn3dModel::samples_per_step(int world) const {
  return static_cast<double>(config_.batch_per_gpu) * world;
}

void Cnn3dModel::run_steps(CommIssuer& comm, int rank, int steps) const {
  sim::Device* dev = comm.api().context()->cluster()->device(rank);
  const int world = comm.api().world_size();
  const double step_flops = config_.flops_per_sample * config_.batch_per_gpu;
  const SimTime fwd_us =
      flops_time_us(step_flops / 3.0, gpu_tflops_, config_.compute_efficiency);
  const SimTime bwd_us = 2.0 * fwd_us;
  const std::int64_t bucket_numel =
      static_cast<std::int64_t>(config_.params / config_.grad_buckets);

  // Channel group: the ranks sharing this rank's node (clipped to the
  // communicator). Normalisation statistics reduce over channels, which are
  // partitioned node-locally, so the group never crosses the NIC.
  std::vector<int> channel_group;
  const int node_base = (rank / gpus_per_node_) * gpus_per_node_;
  for (int r = node_base; r < std::min(node_base + gpus_per_node_, world); ++r) {
    channel_group.push_back(r);
  }
  CommIssuer channel_comm = channel_group.size() > 1 ? comm.group(channel_group) : comm;

  for (int s = 0; s < steps; ++s) {
    // Forward: each conv layer computes its shard, then swaps boundary
    // slices with the spatial neighbours before the next layer reads them.
    for (int layer = 0; layer < config_.conv_layers; ++layer) {
      dev->compute(fwd_us / config_.conv_layers, "cnn3d-fwd");
      halo_exchange(comm, rank, world, dev, config_.halo_elems, config_.dtype);
      // Channel-partitioned normalisation: small latency-bound allreduce
      // over the node-local channel group.
      if (channel_group.size() > 1) {
        channel_comm.all_reduce(Tensor::phantom({config_.channel_elems}, config_.dtype, dev))
            ->wait();
      }
    }
    // Backward in buckets; each bucket's data-parallel gradient allreduce is
    // posted asynchronously while the next bucket computes — several large
    // independent collectives in flight at once, which is exactly the shape
    // the overlap scheduler interleaves.
    std::vector<Work> works;
    for (int b = 0; b < config_.grad_buckets; ++b) {
      dev->compute(bwd_us / config_.grad_buckets, "cnn3d-bwd");
      halo_exchange(comm, rank, world, dev, config_.halo_elems, config_.dtype);
      Tensor g = Tensor::phantom({bucket_numel}, config_.dtype, dev);
      works.push_back(comm.all_reduce(std::move(g), ReduceOp::Sum, /*async_op=*/true));
    }
    for (auto& w : works) w->wait();
    dev->compute(fwd_us * 0.05, "optimizer");
    comm.synchronize();
  }
}

}  // namespace mcrdl::models
