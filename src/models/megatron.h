// Dense Megatron-DeepSpeed training workload (paper Section VI-4: 6.7B
// parameters, tensor-parallel degree 2, ZeRO stage 2, trained on the Pile).
//
// Communication per step:
//   * two activation Allreduces per layer per pass inside each
//     tensor-parallel pair (same node, medium messages), plus a handful of
//     small Allreduces per layer (layernorm/bias terms) — small-message
//     latency territory, where MVAPICH2-GDR shines;
//   * ZeRO-2 gradient ReduceScatter across the data-parallel group and the
//     end-of-step parameter AllGather — huge messages, where synthesized
//     (SCCL) schedules shine.
// Mixing the two is what Figure 10 measures.
#pragma once

#include "src/models/workload.h"

namespace mcrdl::models {

struct MegatronConfig {
  int layers = 32;         // 6.7B: 32 x hidden 4096
  int hidden = 4096;
  int seq = 2048;
  int micro_batch = 1;
  int tensor_parallel = 2;
  double params = 6.7e9;
  std::size_t zero_bucket_bytes = 128u << 20;
  int small_ops_per_layer = 4;        // layernorm/bias gradient allreduces
  std::size_t small_op_bytes = 32u << 10;
  double compute_efficiency = 0.5;
  DType dtype = DType::F16;
};

class MegatronDenseModel : public Model {
 public:
  MegatronDenseModel(MegatronConfig config, const net::SystemConfig& system);

  std::string name() const override { return "Megatron-Dense"; }
  double samples_per_step(int world) const override;
  void run_steps(CommIssuer& comm, int rank, int steps) const override;

  std::size_t activation_bytes() const;

 private:
  MegatronConfig config_;
  double gpu_tflops_;
};

}  // namespace mcrdl::models
