#include "src/models/dlrm.h"

namespace mcrdl::models {

DLRMModel::DLRMModel(DLRMConfig config, const net::SystemConfig& system)
    : config_(std::move(config)),
      gpu_tflops_(system.gpu_tflops),
      hbm_gbps_(system.hbm_gbps) {
  MCRDL_REQUIRE(!config_.bottom_mlp.empty() && !config_.top_mlp.empty(), "invalid DLRM config");
}

double DLRMModel::samples_per_step(int /*world*/) const {
  return config_.global_batch;  // strong scaling: the global batch is fixed
}

double DLRMModel::mlp_flops(const std::vector<int>& dims, int batch, int input_dim) const {
  double flops = 0.0;
  int prev = input_dim;
  for (int d : dims) {
    flops += 2.0 * batch * prev * d;
    prev = d;
  }
  return flops;
}

std::size_t DLRMModel::alltoall_bytes(int world) const {
  // Each rank exchanges its local batch's embedding vectors for every
  // model-parallel table: B_local x world_tables x dim.
  const int local_batch = config_.global_batch / world;
  return static_cast<std::size_t>(local_batch) * world * config_.tables_per_rank *
         config_.embedding_dim * dtype_size(config_.dtype);
}

std::size_t DLRMModel::dense_grad_bytes() const {
  double params = 0.0;
  int prev = config_.dense_features;
  for (int d : config_.bottom_mlp) {
    params += static_cast<double>(prev) * d + d;
    prev = d;
  }
  prev = config_.bottom_mlp.back() + config_.embedding_dim;
  for (int d : config_.top_mlp) {
    params += static_cast<double>(prev) * d + d;
    prev = d;
  }
  return static_cast<std::size_t>(params) * dtype_size(config_.dtype);
}

void DLRMModel::run_steps(CommIssuer& comm, int rank, int steps) const {
  sim::Device* dev = comm.api().context()->cluster()->device(rank);
  const int world = comm.api().world_size();
  const int local_batch = config_.global_batch / std::max(world, 1);

  const SimTime bottom_us = flops_time_us(
      3.0 * mlp_flops(config_.bottom_mlp, local_batch, config_.dense_features), gpu_tflops_,
      config_.compute_efficiency);
  const SimTime top_us = flops_time_us(
      3.0 * mlp_flops(config_.top_mlp, local_batch,
                      config_.bottom_mlp.back() + config_.embedding_dim),
      gpu_tflops_, config_.compute_efficiency);
  // Embedding lookup: memory-bound gather over the local table shard.
  const double lookup_bytes = static_cast<double>(local_batch) * world *
                              config_.tables_per_rank * config_.embedding_dim *
                              dtype_size(config_.dtype);
  const SimTime lookup_us = lookup_bytes / gbps_to_bytes_per_us(hbm_gbps_) * 4.0;

  const std::size_t a2a = alltoall_bytes(world);
  const std::int64_t a2a_numel = static_cast<std::int64_t>(a2a / dtype_size(config_.dtype));
  const std::int64_t grad_numel =
      static_cast<std::int64_t>(dense_grad_bytes() / dtype_size(config_.dtype));

  auto alltoall_async = [&] {
    Tensor in = Tensor::phantom({a2a_numel}, config_.dtype, dev);
    Tensor out = Tensor::phantom({a2a_numel}, config_.dtype, dev);
    return comm.all_to_all_single(std::move(out), std::move(in), /*async_op=*/true);
  };

  // Software pipeline: the forward Alltoall of batch s overlaps the top MLP
  // of batch s-1 (paper Section III-E).
  Work pending_fwd_a2a;
  for (int s = 0; s < steps; ++s) {
    // Bottom MLP + embedding lookup for this batch.
    dev->compute(bottom_us, "bottom-mlp");
    dev->compute(lookup_us, "embedding-lookup");
    Work fwd_a2a = alltoall_async();

    if (pending_fwd_a2a != nullptr) {
      // Previous batch's embeddings arrived; run its top MLP + backward.
      pending_fwd_a2a->wait();
      dev->compute(top_us, "top-mlp");
      dev->compute(top_us * 2.0, "top-mlp-bwd");
      // Backward embedding Alltoall and the dense-gradient allreduce.
      Work bwd_a2a = alltoall_async();
      Tensor grads = Tensor::phantom({grad_numel}, config_.dtype, dev);
      Work ar = comm.all_reduce(std::move(grads), ReduceOp::Sum, /*async_op=*/true);
      dev->compute(bottom_us * 2.0, "bottom-mlp-bwd");
      bwd_a2a->wait();
      ar->wait();
      dev->compute(lookup_us, "embedding-update");
    }
    pending_fwd_a2a = fwd_a2a;
  }
  if (pending_fwd_a2a != nullptr) pending_fwd_a2a->synchronize();
}

}  // namespace mcrdl::models
