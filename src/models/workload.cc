#include "src/models/workload.h"

namespace mcrdl::models {

SimTime flops_time_us(double flops, double peak_tflops, double efficiency) {
  MCRDL_REQUIRE(peak_tflops > 0.0 && efficiency > 0.0, "invalid compute model parameters");
  // peak_tflops TFLOP/s == peak_tflops * 1e6 FLOP/us.
  return flops / (peak_tflops * 1e6 * efficiency);
}

TrainingHarness::TrainingHarness(net::SystemConfig system) : system_(std::move(system)) {}

RunResult TrainingHarness::run(const Model& model, const CommPlan& plan,
                               const FrameworkModel& framework, HarnessOptions options,
                               const TuningTable* table, int world) {
  if (world < 0) world = system_.world_size();
  MCRDL_REQUIRE(world >= 1 && world <= system_.world_size(), "world out of range for system");
  MCRDL_REQUIRE(options.measured_steps >= 1, "need at least one measured step");

  net::SystemConfig sys = system_;
  sys.num_nodes = (world + sys.gpus_per_node - 1) / sys.gpus_per_node;

  ClusterContext cluster(sys, options.execution);
  cluster.contention() = options.contention;
  McrDlOptions mcr_opts = options.mcr_options;
  mcr_opts.logging_enabled = true;
  if (!framework.supports_fusion) mcr_opts.fusion.enabled = false;
  McrDl mcr(&cluster, mcr_opts);
  mcr.init(plan.backends_needed(available_backend_names()));
  if (plan.use_auto) {
    MCRDL_REQUIRE(table != nullptr, "tuned plan needs a tuning table");
    mcr.set_tuning_table(*table);
  }

  std::vector<int> ranks;
  for (int r = 0; r < world; ++r) ranks.push_back(r);

  RunResult result;
  result.plan_name = plan.name;
  result.model_name = model.name();
  result.world = world;

  SimTime measure_start = 0.0;
  SimTime compute_before = 0.0;
  cluster.run_spmd(world, [&](int rank) {
    Api api = world == cluster.world_size() ? mcr.on(rank) : mcr.on(rank).group(ranks);
    CommIssuer comm(api, plan, framework);
    model.run_steps(comm, rank, options.warmup_steps);
    comm.synchronize();
    // Align all ranks, reset instrumentation, then measure.
    api.barrier(plan.use_auto ? mcr.get_backends().front() : plan.default_backend);
    if (rank == 0) {
      mcr.logger().clear();
      measure_start = cluster.scheduler().now();
      compute_before = cluster.device(0)->default_stream()->busy_time();
    }
    model.run_steps(comm, rank, options.measured_steps);
    comm.synchronize();
    api.barrier(plan.use_auto ? mcr.get_backends().front() : plan.default_backend);
    if (rank == 0) {
      const double steps = options.measured_steps;
      result.step_time_us = (cluster.scheduler().now() - measure_start) / steps;
      result.compute_time_us =
          (cluster.device(0)->default_stream()->busy_time() - compute_before) / steps;
    }
  });

  result.comm_time_us = mcr.logger().comm_time(0) / options.measured_steps;
  for (auto& [op, t] : mcr.logger().time_by_op(0)) {
    result.comm_by_op_us[op] = t / options.measured_steps;
  }
  for (auto& [b, t] : mcr.logger().time_by_backend(0)) {
    result.comm_by_backend_us[b] = t / options.measured_steps;
  }
  result.throughput = model.samples_per_step(world) / (result.step_time_us / kSecond);
  return result;
}

double scaling_efficiency(const RunResult& at_p, const RunResult& at_p0) {
  MCRDL_REQUIRE(at_p0.world >= 1 && at_p.world >= at_p0.world, "invalid efficiency baseline");
  const double ideal = at_p0.throughput * (static_cast<double>(at_p.world) / at_p0.world);
  return ideal > 0.0 ? at_p.throughput / ideal : 0.0;
}

}  // namespace mcrdl::models
