// ResNet-50 data-parallel training workload (paper Figure 1's
// compute-dominated baseline): per-step forward/backward compute plus
// bucketed gradient Allreduce overlapping the backward pass. The only
// significant communication is Allreduce, which is why monolithic
// single-backend frameworks already serve data-parallel models well
// (paper Section I-C).
#pragma once

#include "src/models/workload.h"

namespace mcrdl::models {

struct ResNet50Config {
  int batch_per_gpu = 32;
  double params = 25.5e6;
  double flops_per_sample = 12.0e9;  // ~4 GF forward + 8 GF backward
  int grad_buckets = 4;
  double compute_efficiency = 0.09;  // achieved fraction of peak on conv nets
  DType grad_dtype = DType::F32;
};

class ResNet50Model : public Model {
 public:
  ResNet50Model(ResNet50Config config, const net::SystemConfig& system);

  std::string name() const override { return "ResNet-50"; }
  double samples_per_step(int world) const override;
  void run_steps(CommIssuer& comm, int rank, int steps) const override;

 private:
  ResNet50Config config_;
  double gpu_tflops_;
};

}  // namespace mcrdl::models
