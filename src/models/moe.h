// DeepSpeed-MoE training workload (paper Section VI-4: the 4B-parameter
// 350M+PR-MoE-32/64 model trained on the Pile).
//
// Communication pattern per step:
//   * every MoE layer does an Alltoall token dispatch and an Alltoall
//     combine in the forward pass, and the mirror pair in backward — the
//     operations that come to dominate at scale (paper Section III-D);
//   * the dense (non-expert) gradients are all-reduced in buckets that
//     overlap the backward compute, like DDP.
// Payloads are phantom tensors (timing-only) sized from the config.
#pragma once

#include "src/models/workload.h"

namespace mcrdl::models {

struct DSMoEConfig {
  int layers = 24;          // 350M base: 24 x hidden 1024
  int hidden = 1024;
  int seq = 1024;
  int micro_batch = 2;      // sequences per GPU per step
  int moe_every = 2;        // every other layer hosts experts (PR-MoE)
  // Expert-parallel degree: the token Alltoall runs within groups of this
  // many ranks. 0 = the whole world (DeepSpeed-MoE's default when the
  // expert count matches the world size).
  int expert_parallel = 0;
  double base_params = 350e6;
  std::size_t grad_bucket_bytes = 25u << 20;
  double compute_efficiency = 0.45;  // fraction of peak FLOPs achieved
  DType dtype = DType::F16;
};

class DSMoEModel : public Model {
 public:
  DSMoEModel(DSMoEConfig config, const net::SystemConfig& system);

  std::string name() const override { return "DS-MoE"; }
  double samples_per_step(int world) const override;
  void run_steps(CommIssuer& comm, int rank, int steps) const override;

  // Bytes of one Alltoall dispatch/combine payload.
  std::size_t alltoall_bytes() const;
  int moe_layers() const { return config_.layers / config_.moe_every; }

 private:
  DSMoEConfig config_;
  double gpu_tflops_;
};

}  // namespace mcrdl::models
