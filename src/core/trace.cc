#include "src/core/trace.h"

#include <fstream>
#include <set>
#include <sstream>

#include "src/common/status.h"
#include "src/obs/json.h"

namespace mcrdl {

// Full JSON string escaping (src/obs/json.h): fault descriptions and
// backend names can carry quotes and control characters — a multi-line
// fault string used to produce output Perfetto rejects.
using obs::json_escape;

std::string to_chrome_trace(const CommLogger& logger) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& r : logger.records()) {
    if (!first) out << ",";
    first = false;
    // Complete ("X") events: ts/dur in microseconds, pid = rank,
    // tid = backend name (one track per backend per rank).
    out << "{\"name\":\"" << json_escape(op_name(r.op)) << "\",\"cat\":\"comm\","
        << "\"ph\":\"X\",\"ts\":" << r.start << ",\"dur\":" << (r.end - r.start)
        << ",\"pid\":" << r.rank << ",\"tid\":\"" << json_escape(r.backend) << "\",";
    // Recovered/rerouted/retried operations stand out: a distinct color name
    // plus the resilience metadata in args, so chaos traces show where
    // traffic moved and which ops were replayed after a rank loss.
    if (r.recovered) out << "\"cname\":\"olive\",";
    else if (r.rerouted) out << "\"cname\":\"terrible\",";
    else if (r.attempts > 1) out << "\"cname\":\"bad\",";
    out << "\"args\":{\"bytes\":" << r.bytes << ",\"fused\":" << (r.fused ? "true" : "false")
        << ",\"compressed\":" << (r.compressed ? "true" : "false");
    if (r.attempts > 1) out << ",\"attempts\":" << r.attempts;
    if (r.rerouted) {
      out << ",\"rerouted\":true,\"requested_backend\":\"" << json_escape(r.requested_backend)
          << "\"";
    }
    if (r.epoch > 0) out << ",\"epoch\":" << r.epoch;
    if (r.recovered) out << ",\"recovered\":true";
    if (!r.fault.empty()) out << ",\"fault\":\"" << json_escape(r.fault) << "\"";
    out << "}}";
  }
  // Process metadata so the viewer labels tracks "rank N".
  std::set<int> ranks;
  for (const auto& r : logger.records()) ranks.insert(r.rank);
  for (int rank : ranks) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << rank
        << ",\"args\":{\"name\":\"rank " << rank << "\"}}";
  }
  out << "]}";
  return out.str();
}

void write_chrome_trace(const CommLogger& logger, const std::string& path) {
  std::ofstream out(path);
  MCRDL_REQUIRE(out.good(), "cannot open trace file for writing: " + path);
  out << to_chrome_trace(logger);
  MCRDL_REQUIRE(out.good(), "failed writing trace file: " + path);
}

}  // namespace mcrdl
