// Persistent collectives — the future-work optimisation the paper names in
// Section V-E ("future optimizations (e.g. persistent collectives) can be
// easily added with minimal changes among backends and operations").
//
// A persistent collective is initialised once (buffers registered, schedule
// planned) and then launched many times; each launch skips most of the
// per-operation setup cost, exactly like MPI_Allreduce_init /
// MPIX_Persistent or CUDA-graph-captured NCCL. Here the amortised saving is
// a fraction of the backend's launch overhead, applied through the same
// rendezvous machinery as every other operation.
#pragma once

#include <memory>
#include <string>

#include "src/backends/backend.h"

namespace mcrdl {

class McrDl;

// Fraction of the backend's launch overhead a persistent launch still pays.
inline constexpr double kPersistentLaunchFraction = 0.25;

class PersistentAllReduce {
 public:
  // Plans a persistent allreduce of `tensor` on `comm`. The tensor binding
  // is fixed (like MPI persistent requests); re-binding requires a new plan.
  PersistentAllReduce(Comm* comm, int rank, Tensor tensor, ReduceOp op);

  // Launches one execution; with async_op the returned Work behaves exactly
  // like the ordinary all_reduce handle.
  Work launch(bool async_op = false);

  int launches() const { return launches_; }
  const Tensor& tensor() const { return tensor_; }

 private:
  Comm* comm_;
  int rank_;
  Tensor tensor_;
  ReduceOp op_;
  int launches_ = 0;
};

}  // namespace mcrdl
