// Chrome trace-event export: dumps the communication logger's records (and
// optionally per-device compute activity) as a chrome://tracing /
// Perfetto-compatible JSON file, one track per (rank, backend). This is the
// observability story the paper's logging extension (Section V-E) enables —
// the same data that generates Figures 1 and 12, but navigable on a
// timeline.
#pragma once

#include <string>

#include "src/core/logger.h"

namespace mcrdl {

// Serialises the records to trace-event JSON. Returns the JSON string.
std::string to_chrome_trace(const CommLogger& logger);

// Writes to_chrome_trace() to `path` (throws on I/O failure).
void write_chrome_trace(const CommLogger& logger, const std::string& path);

}  // namespace mcrdl
