#include "src/core/compression.h"

#include <cstring>

#include "src/core/composite_work.h"

namespace mcrdl {

CompressionLayer::CompressionLayer(ClusterContext* cluster, CompressionConfig config)
    : cluster_(cluster), config_(config), codec_(config.codec) {}

bool CompressionLayer::eligible(OpType op, const Tensor& payload) const {
  if (!config_.enabled || !payload.defined()) return false;
  if (!is_floating(payload.dtype()) || payload.bytes() < config_.min_bytes) return false;
  return op_supported(op);
}

Tensor CompressionLayer::compress_to_tensor(const Tensor& t, std::size_t bytes,
                                            sim::Device* dev) const {
  if (!t.materialized()) {
    return Tensor::phantom({static_cast<std::int64_t>(bytes)}, DType::U8, dev);
  }
  Tensor out = Tensor::zeros({static_cast<std::int64_t>(bytes)}, DType::U8, dev);
  const std::vector<std::byte> buf = codec_.compress(t);
  MCRDL_CHECK(buf.size() <= bytes) << "codec produced more bytes than the fixed rate allows";
  std::memcpy(out.raw_data(), buf.data(), buf.size());
  return out;
}

void CompressionLayer::decompress_from_tensor(const Tensor& compressed, Tensor out) const {
  if (!compressed.materialized() || !out.materialized()) return;
  std::vector<std::byte> buf(compressed.bytes());
  std::memcpy(buf.data(), compressed.raw_data(), buf.size());
  codec_.decompress(buf, out);
}

void CompressionLayer::charge_codec_time(sim::Device* dev, std::size_t bytes) const {
  const double us = static_cast<double>(bytes) / gbps_to_bytes_per_us(config_.throughput_gbps);
  dev->compute(us, "zfp-codec");
}

Work CompressionLayer::broadcast(Comm& comm, int rank, Tensor tensor, int root, bool async_op) {
  ++compressed_op_count_;
  sim::Device* dev = cluster_->device(rank);
  const int idx = comm.group_rank(rank);
  const std::size_t comp_bytes = codec_.compressed_bytes(tensor.numel());
  charge_codec_time(dev, tensor.bytes());
  // Only the root has meaningful payload; everyone provides a buffer.
  Tensor wire = idx == root
                    ? compress_to_tensor(tensor, comp_bytes, dev)
                    : (tensor.materialized()
                           ? Tensor::zeros({static_cast<std::int64_t>(comp_bytes)}, DType::U8, dev)
                           : Tensor::phantom({static_cast<std::int64_t>(comp_bytes)}, DType::U8,
                                             dev));
  Work inner = comm.broadcast(rank, wire, root, /*async_op=*/true);
  auto finalize = [this, wire, tensor]() mutable {
    // Every rank (root included) adopts the lossy values so replicas agree.
    decompress_from_tensor(wire, tensor);
  };
  Work w = make_composite(&cluster_->scheduler(), {inner}, std::move(finalize));
  if (!async_op) w->wait();
  return w;
}

Work CompressionLayer::all_gather(Comm& comm, int rank, Tensor output, Tensor input,
                                  bool async_op) {
  ++compressed_op_count_;
  sim::Device* dev = cluster_->device(rank);
  const int size = comm.size();
  const std::int64_t block = input.numel();
  const std::size_t comp_bytes = codec_.compressed_bytes(block);
  charge_codec_time(dev, input.bytes());
  Tensor wire_in = compress_to_tensor(input, comp_bytes, dev);
  Tensor wire_out =
      wire_in.materialized()
          ? Tensor::zeros({static_cast<std::int64_t>(comp_bytes) * size}, DType::U8, dev)
          : Tensor::phantom({static_cast<std::int64_t>(comp_bytes) * size}, DType::U8, dev);
  Work inner = comm.all_gather(rank, wire_out, wire_in, /*async_op=*/true);
  auto finalize = [this, wire_out, output, comp_bytes, block, size]() mutable {
    if (!wire_out.materialized() || !output.materialized()) return;
    for (int r = 0; r < size; ++r) {
      decompress_from_tensor(
          wire_out.view(static_cast<std::int64_t>(r) * comp_bytes, comp_bytes),
          output.view(static_cast<std::int64_t>(r) * block, block));
    }
  };
  Work w = make_composite(&cluster_->scheduler(), {inner}, std::move(finalize));
  if (!async_op) w->wait();
  return w;
}

Work CompressionLayer::all_to_all_single(Comm& comm, int rank, Tensor output, Tensor input,
                                         bool async_op) {
  ++compressed_op_count_;
  sim::Device* dev = cluster_->device(rank);
  const int size = comm.size();
  const std::int64_t block = input.numel() / size;
  const std::size_t comp_bytes = codec_.compressed_bytes(block);
  charge_codec_time(dev, input.bytes());
  // Compress each destination block independently so they stay addressable
  // after the shuffle.
  Tensor wire_in, wire_out;
  if (input.materialized()) {
    wire_in = Tensor::zeros({static_cast<std::int64_t>(comp_bytes) * size}, DType::U8, dev);
    for (int d = 0; d < size; ++d) {
      Tensor packed = compress_to_tensor(input.view(d * block, block), comp_bytes, dev);
      wire_in.view(static_cast<std::int64_t>(d) * comp_bytes, comp_bytes).copy_from(packed);
    }
    wire_out = Tensor::zeros({static_cast<std::int64_t>(comp_bytes) * size}, DType::U8, dev);
  } else {
    wire_in = Tensor::phantom({static_cast<std::int64_t>(comp_bytes) * size}, DType::U8, dev);
    wire_out = Tensor::phantom({static_cast<std::int64_t>(comp_bytes) * size}, DType::U8, dev);
  }
  Work inner = comm.all_to_all_single(rank, wire_out, wire_in, /*async_op=*/true);
  auto finalize = [this, wire_out, output, comp_bytes, block, size]() mutable {
    if (!wire_out.materialized() || !output.materialized()) return;
    for (int s = 0; s < size; ++s) {
      decompress_from_tensor(
          wire_out.view(static_cast<std::int64_t>(s) * comp_bytes, comp_bytes),
          output.view(static_cast<std::int64_t>(s) * block, block));
    }
  };
  Work w = make_composite(&cluster_->scheduler(), {inner}, std::move(finalize));
  if (!async_op) w->wait();
  return w;
}

}  // namespace mcrdl
