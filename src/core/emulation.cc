#include "src/core/emulation.h"

#include <algorithm>

#include "src/core/composite_work.h"

namespace mcrdl::emulation {

namespace {

sim::Scheduler* sched_of(Comm& comm) { return &comm.backend()->cluster()->scheduler(); }

sim::Device* device_of(Comm& comm, int rank) { return comm.backend()->cluster()->device(rank); }

// Scratch tensor matching the storage mode of `like`.
Tensor scratch_like(const Tensor& like, std::int64_t numel, sim::Device* dev) {
  if (like.defined() && !like.materialized()) return Tensor::phantom({numel}, like.dtype(), dev);
  return Tensor::zeros({numel}, like.dtype(), dev);
}

Work finish(Comm& comm, std::vector<Work> parts, std::function<void()> finalize, bool async_op) {
  Work w = make_composite(sched_of(comm), std::move(parts), std::move(finalize));
  if (!async_op) w->wait();
  return w;
}

}  // namespace

Work gather(Comm& comm, int rank, Tensor output, Tensor input, int root, bool async_op) {
  // all_gather into a scratch buffer on every rank; the root keeps it. This
  // moves size()x the necessary data — the documented emulation tax.
  const int size = comm.size();
  const int idx = comm.group_rank(rank);
  Tensor scratch = scratch_like(input, input.numel() * size, device_of(comm, rank));
  Work inner = comm.all_gather(rank, scratch, input, /*async_op=*/true);
  auto finalize = [idx, root, output, scratch]() mutable {
    if (idx == root && output.defined() && output.materialized() && scratch.materialized()) {
      output.copy_from(scratch);
    }
  };
  return finish(comm, {inner}, std::move(finalize), async_op);
}

Work scatter(Comm& comm, int rank, Tensor output, Tensor input, int root, bool async_op) {
  // Broadcast the root's whole buffer, then every rank slices its block.
  const int size = comm.size();
  const int idx = comm.group_rank(rank);
  const std::int64_t block = output.numel();
  Tensor staging = idx == root ? input : scratch_like(output, block * size, device_of(comm, rank));
  Work inner = comm.broadcast(rank, staging, root, /*async_op=*/true);
  auto finalize = [idx, block, output, staging]() mutable {
    if (output.defined() && output.materialized() && staging.materialized()) {
      output.copy_from(staging.view(idx * block, block));
    }
  };
  return finish(comm, {inner}, std::move(finalize), async_op);
}

Work gatherv(Comm& comm, int rank, Tensor output, Tensor input, int root,
             std::vector<int> recv_counts, std::vector<int> recv_displs, bool async_op) {
  const int size = comm.size();
  const int idx = comm.group_rank(rank);
  if (idx != root) {
    // Leaf ranks just send their payload to the root.
    return comm.send(rank, input, root, async_op);
  }
  std::vector<Work> parts;
  for (int r = 0; r < size; ++r) {
    if (r == root) continue;
    parts.push_back(comm.recv(rank, output.view(recv_displs[static_cast<std::size_t>(r)],
                                                recv_counts[static_cast<std::size_t>(r)]),
                              r, /*async_op=*/true));
  }
  const int own_count = recv_counts[static_cast<std::size_t>(root)];
  const int own_displ = recv_displs[static_cast<std::size_t>(root)];
  auto finalize = [output, input, own_count, own_displ]() mutable {
    if (output.materialized() && input.materialized()) {
      output.view(own_displ, own_count).copy_from(input.view(0, own_count));
    }
  };
  return finish(comm, std::move(parts), std::move(finalize), async_op);
}

Work scatterv(Comm& comm, int rank, Tensor output, Tensor input, int root,
              std::vector<int> send_counts, std::vector<int> send_displs, bool async_op) {
  const int size = comm.size();
  const int idx = comm.group_rank(rank);
  if (idx != root) {
    return comm.recv(rank, output, root, async_op);
  }
  std::vector<Work> parts;
  for (int r = 0; r < size; ++r) {
    if (r == root) continue;
    parts.push_back(comm.send(rank, input.view(send_displs[static_cast<std::size_t>(r)],
                                               send_counts[static_cast<std::size_t>(r)]),
                              r, /*async_op=*/true));
  }
  const int own_count = send_counts[static_cast<std::size_t>(root)];
  const int own_displ = send_displs[static_cast<std::size_t>(root)];
  auto finalize = [output, input, own_count, own_displ]() mutable {
    if (output.defined() && output.materialized() && input.materialized()) {
      output.view(0, own_count).copy_from(input.view(own_displ, own_count));
    }
  };
  return finish(comm, std::move(parts), std::move(finalize), async_op);
}

Work all_gatherv(Comm& comm, int rank, Tensor output, Tensor input, std::vector<int> recv_counts,
                 std::vector<int> recv_displs, bool async_op) {
  const int size = comm.size();
  const int idx = comm.group_rank(rank);
  const int max_count = *std::max_element(recv_counts.begin(), recv_counts.end());
  // Pad every contribution to the maximum count and run a plain all_gather.
  sim::Device* dev = device_of(comm, rank);
  Tensor padded_in = scratch_like(input, max_count, dev);
  const int own_count = recv_counts[static_cast<std::size_t>(idx)];
  if (padded_in.materialized() && input.materialized()) {
    padded_in.view(0, own_count).copy_from(input.view(0, own_count));
  }
  Tensor padded_out = scratch_like(input, static_cast<std::int64_t>(max_count) * size, dev);
  Work inner = comm.all_gather(rank, padded_out, padded_in, /*async_op=*/true);
  auto finalize = [size, max_count, output, padded_out, recv_counts = std::move(recv_counts),
                   recv_displs = std::move(recv_displs)]() mutable {
    if (!output.defined() || !output.materialized() || !padded_out.materialized()) return;
    for (int r = 0; r < size; ++r) {
      output.view(recv_displs[static_cast<std::size_t>(r)], recv_counts[static_cast<std::size_t>(r)])
          .copy_from(padded_out.view(static_cast<std::int64_t>(r) * max_count,
                                     recv_counts[static_cast<std::size_t>(r)]));
    }
  };
  return finish(comm, {inner}, std::move(finalize), async_op);
}

Work all_to_allv(Comm& comm, int rank, Tensor output, Tensor input, std::vector<int> send_counts,
                 std::vector<int> send_displs, std::vector<int> recv_counts,
                 std::vector<int> recv_displs, bool async_op) {
  const int size = comm.size();
  sim::Device* dev = device_of(comm, rank);
  // Phase 1 (blocking): agree on the global maximum block so the padded
  // exchange is layout-consistent on every rank. Real implementations do the
  // same count exchange before a padded alltoall.
  const int local_max = std::max(*std::max_element(send_counts.begin(), send_counts.end()),
                                 *std::max_element(recv_counts.begin(), recv_counts.end()));
  Tensor max_t = Tensor::full({1}, DType::I64, local_max, dev);
  comm.all_reduce(rank, max_t, ReduceOp::Max, /*async_op=*/true)->synchronize();
  const auto max_count = static_cast<std::int64_t>(max_t.get(0));

  // Phase 2: padded all_to_all_single.
  Tensor padded_in = scratch_like(input, max_count * size, dev);
  if (padded_in.materialized() && input.materialized()) {
    for (int d = 0; d < size; ++d) {
      padded_in.view(d * max_count, send_counts[static_cast<std::size_t>(d)])
          .copy_from(input.view(send_displs[static_cast<std::size_t>(d)],
                                send_counts[static_cast<std::size_t>(d)]));
    }
  }
  Tensor padded_out = scratch_like(input, max_count * size, dev);
  Work inner = comm.all_to_all_single(rank, padded_out, padded_in, /*async_op=*/true);
  auto finalize = [size, max_count, output, padded_out, recv_counts = std::move(recv_counts),
                   recv_displs = std::move(recv_displs)]() mutable {
    if (!output.defined() || !output.materialized() || !padded_out.materialized()) return;
    for (int s = 0; s < size; ++s) {
      output.view(recv_displs[static_cast<std::size_t>(s)], recv_counts[static_cast<std::size_t>(s)])
          .copy_from(padded_out.view(static_cast<std::int64_t>(s) * max_count,
                                     recv_counts[static_cast<std::size_t>(s)]));
    }
  };
  return finish(comm, {inner}, std::move(finalize), async_op);
}

Work issue(Comm& comm, int rank, const OpRequest& req) {
  switch (req.op) {
    case OpType::Gather:
      return gather(comm, rank, req.output, req.input, req.root, req.async_op);
    case OpType::Scatter:
      return scatter(comm, rank, req.output, req.input, req.root, req.async_op);
    case OpType::GatherV:
      return gatherv(comm, rank, req.output, req.input, req.root, req.recv_counts,
                     req.recv_displs, req.async_op);
    case OpType::ScatterV:
      return scatterv(comm, rank, req.output, req.input, req.root, req.send_counts,
                      req.send_displs, req.async_op);
    case OpType::AllGatherV:
      return all_gatherv(comm, rank, req.output, req.input, req.recv_counts, req.recv_displs,
                         req.async_op);
    case OpType::AllToAllV:
      return all_to_allv(comm, rank, req.output, req.input, req.send_counts, req.send_displs,
                         req.recv_counts, req.recv_displs, req.async_op);
    default:
      // No recipe: let the backend either run it natively or throw
      // UnsupportedOperation, same as a direct call would.
      return comm.issue(rank, req);
  }
}

}  // namespace mcrdl::emulation
