// Lossy communication compression (paper Section V-E): eligible
// data-movement collectives route their payloads through the zfp-style
// fixed-rate codec, so fewer bytes cross the wire at the price of bounded
// reconstruction error. Reduction collectives are left uncompressed (summing
// compressed residues needs algorithm changes out of scope for this hook).
//
// The codec's (de)compression work is charged to the device as a kernel on
// the default stream before the operation posts.
#pragma once

#include <atomic>
#include <cstdint>

#include "src/backends/backend.h"
#include "src/compress/zfp_codec.h"

namespace mcrdl {

struct CompressionConfig {
  bool enabled = false;
  compress::ZfpConfig codec;            // fixed-rate settings
  std::size_t min_bytes = 64 << 10;     // smaller messages skip compression
  double throughput_gbps = 80.0;        // codec speed for the timing model
};

class CompressionLayer {
 public:
  CompressionLayer(ClusterContext* cluster, CompressionConfig config);

  const CompressionConfig& config() const { return config_; }
  void set_config(CompressionConfig config) {
    config_ = config;
    version_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Bumped by every set_config; the pipeline recompiles its stage plans when
  // this moves.
  std::uint32_t config_version() const { return version_.load(std::memory_order_acquire); }

  // True if `op` has a compressed implementation at all — a static property
  // of the layer (movement ops with a contiguous payload), independent of
  // the current config. Used by the plan compiler.
  static bool op_supported(OpType op) {
    return op == OpType::Broadcast || op == OpType::AllGather || op == OpType::AllToAllSingle;
  }

  // True if the hook applies: enabled, a movement op, floating payload of
  // sufficient size.
  bool eligible(OpType op, const Tensor& payload) const;

  Work broadcast(Comm& comm, int rank, Tensor tensor, int root, bool async_op);
  Work all_gather(Comm& comm, int rank, Tensor output, Tensor input, bool async_op);
  Work all_to_all_single(Comm& comm, int rank, Tensor output, Tensor input, bool async_op);

  int compressed_op_count() const { return compressed_op_count_.load(); }

 private:
  // Compressed image of `t` as a U8 tensor of exactly `bytes` bytes
  // (phantom stays phantom).
  Tensor compress_to_tensor(const Tensor& t, std::size_t bytes, sim::Device* dev) const;
  void decompress_from_tensor(const Tensor& compressed, Tensor out) const;
  // Charges codec time for `bytes` of payload to the device.
  void charge_codec_time(sim::Device* dev, std::size_t bytes) const;

  ClusterContext* cluster_;
  CompressionConfig config_;
  std::atomic<std::uint32_t> version_{0};
  compress::ZfpCodec codec_;
  // Atomic: incremented by every rank's actor under the parallel engine.
  std::atomic<int> compressed_op_count_{0};
};

}  // namespace mcrdl
