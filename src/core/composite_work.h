// CompositeWork: a Work made of several underlying operations plus an
// optional finalisation step (repacking, slice-back, decompression) that
// runs under the scheduler baton the moment the last part completes.
// The emulation, fusion, and compression layers all return these.
#pragma once

#include <functional>
#include <vector>

#include "src/backends/work.h"
#include "src/sim/scheduler.h"

namespace mcrdl {

class CompositeWork : public WorkHandle, public std::enable_shared_from_this<CompositeWork> {
 public:
  // Use make_composite(); the two-phase construction (constructor + arm())
  // lets part callbacks hold shared ownership of the composite.
  CompositeWork(sim::Scheduler* sched, std::vector<Work> parts,
                std::function<void()> finalize = {});
  // Registers completion callbacks on the parts; must be called exactly once
  // on a shared_ptr-owned instance.
  void arm();

  bool test() const override { return done_; }
  void wait() override;         // host-level wait (emulated ops are host-driven)
  void synchronize() override { wait(); }
  SimTime complete_time() const override { return complete_time_; }
  void on_complete(std::function<void()> fn) override;

 private:
  void part_done();

  sim::Scheduler* sched_;
  std::vector<Work> parts_;
  std::function<void()> finalize_;
  int remaining_ = 0;
  bool done_ = false;
  SimTime complete_time_ = 0.0;
  std::vector<std::function<void()>> callbacks_;
  sim::SimCondition done_cond_;
};

// Builds a composite over existing works with an optional finalize step.
Work make_composite(sim::Scheduler* sched, std::vector<Work> parts,
                    std::function<void()> finalize = {});

}  // namespace mcrdl
