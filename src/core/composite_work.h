// CompositeWork: a Work made of several underlying operations plus an
// optional finalisation step (repacking, slice-back, decompression) that
// runs under the scheduler baton the moment the last part completes.
// The emulation, fusion, and compression layers all return these.
#pragma once

#include <functional>
#include <vector>

#include "src/backends/work.h"
#include "src/sim/scheduler.h"

namespace mcrdl {

class CompositeWork : public WorkHandle, public std::enable_shared_from_this<CompositeWork> {
 public:
  // Use make_composite(); the two-phase construction (constructor + arm())
  // lets part callbacks hold shared ownership of the composite.
  CompositeWork(sim::Scheduler* sched, std::vector<Work> parts,
                std::function<void()> finalize = {});
  // Registers completion callbacks on the parts; must be called exactly once
  // on a shared_ptr-owned instance.
  void arm();
  // Terminal without finalisation: drops the registered callbacks (matching
  // the engines' fail/cancel discipline — they are never fired), releases the
  // parts and the self-anchor, and wakes waiters. For owners abandoning a
  // composite whose parts will never complete (e.g. cancelled by a rank
  // loss): without it, an on_complete closure capturing this composite's own
  // handle would keep the never-firing work alive forever.
  void cancel();

  bool test() const override { return done_; }
  void wait() override;         // host-level wait (emulated ops are host-driven)
  void synchronize() override { wait(); }
  SimTime complete_time() const override { return complete_time_; }
  void on_complete(std::function<void()> fn) override;

 private:
  void part_done();

  sim::Scheduler* sched_;
  std::vector<Work> parts_;
  std::function<void()> finalize_;
  int remaining_ = 0;
  bool done_ = false;
  SimTime complete_time_ = 0.0;
  std::vector<std::function<void()>> callbacks_;
  sim::SimCondition done_cond_;
  // Shared self-reference set by arm() and released on every terminal path;
  // keeps the composite alive while its (weak) part callbacks are armed.
  std::shared_ptr<CompositeWork> self_;
};

// Builds a composite over existing works with an optional finalize step.
Work make_composite(sim::Scheduler* sched, std::vector<Work> parts,
                    std::function<void()> finalize = {});

}  // namespace mcrdl
