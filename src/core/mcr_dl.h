// Umbrella header: everything a downstream MCR-DL user needs.
//
//   #include "src/core/mcr_dl.h"
//
//   mcrdl::ClusterContext cluster(mcrdl::net::SystemConfig::lassen(16));
//   mcrdl::McrDl mcr(&cluster);
//   mcr.init({"nccl", "mv2-gdr"});
//   cluster.run_spmd([&](int rank) {
//     auto api = mcr.on(rank);
//     ...
//   });
#pragma once

#include "src/backends/backend.h"
#include "src/backends/cluster.h"
#include "src/backends/op_request.h"
#include "src/backends/work.h"
#include "src/core/composite_work.h"
#include "src/core/compression.h"
#include "src/core/context.h"
#include "src/core/emulation.h"
#include "src/core/fusion.h"
#include "src/core/logger.h"
#include "src/core/op_pipeline.h"
#include "src/core/persistent.h"
#include "src/core/process_groups.h"
#include "src/core/trace.h"
#include "src/net/comm_types.h"
#include "src/net/cost.h"
#include "src/net/topology.h"
#include "src/tensor/tensor.h"
#include "src/tune/online_tuner.h"
#include "src/tune/tuning.h"
