#include "src/core/process_groups.h"

namespace mcrdl {

ProcessGroups::ProcessGroups(int world, int tensor_parallel, int expert_parallel)
    : world_(world), tp_(tensor_parallel), ep_(expert_parallel) {
  MCRDL_REQUIRE(world_ >= 1, "world must be >= 1");
  MCRDL_REQUIRE(tp_ >= 1 && world_ % tp_ == 0, "world must be divisible by tensor_parallel");
  const int dp = world_ / tp_;
  MCRDL_REQUIRE(ep_ >= 1 && dp % ep_ == 0,
                "data-parallel degree must be divisible by expert_parallel");
}

void ProcessGroups::check_rank(int rank) const {
  MCRDL_REQUIRE(rank >= 0 && rank < world_, "rank out of range");
}

std::vector<int> ProcessGroups::tp_group(int rank) const {
  check_rank(rank);
  const int base = (rank / tp_) * tp_;
  std::vector<int> out;
  for (int t = 0; t < tp_; ++t) out.push_back(base + t);
  return out;
}

std::vector<int> ProcessGroups::dp_group(int rank) const {
  check_rank(rank);
  std::vector<int> out;
  for (int r = rank % tp_; r < world_; r += tp_) out.push_back(r);
  return out;
}

std::vector<int> ProcessGroups::ep_group(int rank) const {
  check_rank(rank);
  // Within this rank's DP group, take the contiguous slice of ep_ peers.
  const std::vector<int> dp = dp_group(rank);
  int index = 0;
  for (std::size_t i = 0; i < dp.size(); ++i) {
    if (dp[i] == rank) index = static_cast<int>(i);
  }
  const int slice = (index / ep_) * ep_;
  return {dp.begin() + slice, dp.begin() + slice + ep_};
}

std::vector<std::vector<int>> ProcessGroups::all_tp_groups() const {
  std::vector<std::vector<int>> out;
  for (int base = 0; base < world_; base += tp_) out.push_back(tp_group(base));
  return out;
}

std::vector<std::vector<int>> ProcessGroups::all_dp_groups() const {
  std::vector<std::vector<int>> out;
  for (int t = 0; t < tp_; ++t) out.push_back(dp_group(t));
  return out;
}

}  // namespace mcrdl
