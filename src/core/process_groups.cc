#include "src/core/process_groups.h"

#include <algorithm>
#include <map>

namespace mcrdl {

NodeGroups node_groups(const net::Topology& topo, const std::vector<int>& ranks) {
  return net::node_partition(topo, ranks);
}

std::vector<int> intra_node_group(const net::Topology& topo, const std::vector<int>& ranks,
                                  int rank) {
  const int node = topo.node_of(rank);
  std::vector<int> out;
  for (int r : ranks) {
    MCRDL_REQUIRE(r >= 0 && r < topo.world_size(), "rank out of range for topology");
    if (topo.node_of(r) == node) out.push_back(r);
  }
  std::sort(out.begin(), out.end());
  MCRDL_REQUIRE(std::find(out.begin(), out.end(), rank) != out.end(),
                "rank is not a member of the group");
  return out;
}

std::vector<int> inter_node_group(const net::Topology& topo, const std::vector<int>& ranks) {
  return node_groups(topo, ranks).leaders;
}

ProcessGroups::ProcessGroups(int world, int tensor_parallel, int expert_parallel)
    : world_(world), tp_(tensor_parallel), ep_(expert_parallel) {
  MCRDL_REQUIRE(world_ >= 1, "world must be >= 1");
  MCRDL_REQUIRE(tp_ >= 1 && world_ % tp_ == 0, "world must be divisible by tensor_parallel");
  const int dp = world_ / tp_;
  MCRDL_REQUIRE(ep_ >= 1 && dp % ep_ == 0,
                "data-parallel degree must be divisible by expert_parallel");
}

void ProcessGroups::check_rank(int rank) const {
  MCRDL_REQUIRE(rank >= 0 && rank < world_, "rank out of range");
}

std::vector<int> ProcessGroups::tp_group(int rank) const {
  check_rank(rank);
  const int base = (rank / tp_) * tp_;
  std::vector<int> out;
  for (int t = 0; t < tp_; ++t) out.push_back(base + t);
  return out;
}

std::vector<int> ProcessGroups::dp_group(int rank) const {
  check_rank(rank);
  std::vector<int> out;
  for (int r = rank % tp_; r < world_; r += tp_) out.push_back(r);
  return out;
}

std::vector<int> ProcessGroups::ep_group(int rank) const {
  check_rank(rank);
  // Within this rank's DP group, take the contiguous slice of ep_ peers.
  const std::vector<int> dp = dp_group(rank);
  int index = 0;
  for (std::size_t i = 0; i < dp.size(); ++i) {
    if (dp[i] == rank) index = static_cast<int>(i);
  }
  const int slice = (index / ep_) * ep_;
  return {dp.begin() + slice, dp.begin() + slice + ep_};
}

std::vector<std::vector<int>> ProcessGroups::all_tp_groups() const {
  std::vector<std::vector<int>> out;
  for (int base = 0; base < world_; base += tp_) out.push_back(tp_group(base));
  return out;
}

std::vector<std::vector<int>> ProcessGroups::all_dp_groups() const {
  std::vector<std::vector<int>> out;
  for (int t = 0; t < tp_; ++t) out.push_back(dp_group(t));
  return out;
}

ShrunkGroups shrink_process_groups(const ProcessGroups& old, const std::vector<int>& lost) {
  std::vector<bool> is_lost(static_cast<std::size_t>(old.world()), false);
  for (int r : lost) {
    MCRDL_REQUIRE(r >= 0 && r < old.world(), "lost rank out of range");
    is_lost[static_cast<std::size_t>(r)] = true;
  }
  std::vector<int> survivors;
  std::vector<int> old_to_new(static_cast<std::size_t>(old.world()), -1);
  for (int r = 0; r < old.world(); ++r) {
    if (is_lost[static_cast<std::size_t>(r)]) continue;
    old_to_new[static_cast<std::size_t>(r)] = static_cast<int>(survivors.size());
    survivors.push_back(r);
  }
  MCRDL_REQUIRE(!survivors.empty(), "cannot shrink process groups: every rank was lost");

  const int new_world = static_cast<int>(survivors.size());
  const bool tp_ok = new_world % old.tensor_parallel() == 0;
  const int new_tp = tp_ok ? old.tensor_parallel() : 1;
  const int new_dp = new_world / new_tp;
  const bool ep_ok = new_dp % old.expert_parallel() == 0;
  const int new_ep = ep_ok ? old.expert_parallel() : 1;

  ShrunkGroups out{ProcessGroups(new_world, new_tp, new_ep), std::move(survivors),
                   std::move(old_to_new), tp_ok, ep_ok};
  return out;
}

ShrunkGroups shrink_process_groups(const ProcessGroups& old, const std::vector<int>& lost,
                                   const net::Topology& topo) {
  ShrunkGroups out = shrink_process_groups(old, lost);
  out.nodes = node_groups(topo, out.survivors);
  return out;
}

ShrunkGroups rebuild_process_groups(const ProcessGroups& original,
                                    const std::vector<int>& lost) {
  // Same computation as shrink, but the caller contract differs: `original`
  // must be the seed layout and `lost` the *current* lost set, so a grow
  // event that empties the set reproduces the seed groups exactly.
  return shrink_process_groups(original, lost);
}

ShrunkGroups rebuild_process_groups(const ProcessGroups& original, const std::vector<int>& lost,
                                    const net::Topology& topo) {
  return shrink_process_groups(original, lost, topo);
}

}  // namespace mcrdl
