// Tensor fusion / gradient bucketing (paper Sections V-C and V-E): small
// tensors destined for the same (rank, communicator, op, reduction, root,
// dtype) are packed into one bandwidth-optimal buffer and issued as a single
// collective. A bucket flushes when it reaches B bytes (`buffer_bytes`) or
// when T microseconds (`flush_timeout_us`) elapse after its first tensor
// arrives. MCR-DL's cross-backend twist: a timeout flush means the buffer did
// NOT fill (bandwidth unsaturated), so other backends' pending buckets on the
// same rank are flushed too and the transfers overlap across backends.
//
// Historically this layer admitted AllReduce only; `FusionConfig::ops` now
// selects which collectives are bucketed (AllReduce, Reduce, Broadcast — the
// ops whose payload coalesces into one contiguous buffer with a pure
// slice-back). ResNet-style `grad_buckets` workloads model the same batching
// from the caller side; this is the runtime-side equivalent.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "src/backends/backend.h"

namespace mcrdl {

struct FusionConfig {
  bool enabled = false;
  std::size_t buffer_bytes = 4 << 20;      // B: flush when this full
  SimTime flush_timeout_us = 50.0;         // T: flush this long after first add
  std::size_t max_tensor_bytes = 64 << 10; // larger tensors bypass fusion
  bool cross_backend_overlap = true;
  // Collectives admitted into buckets. Only AllReduce, Reduce and Broadcast
  // are bucketable (contiguous pack + slice-back); set_config rejects others.
  std::vector<OpType> ops{OpType::AllReduce};
};

class FusionManager {
 public:
  FusionManager(ClusterContext* cluster, FusionConfig config);

  const FusionConfig& config() const { return config_; }
  void set_config(FusionConfig config);

  // True if `op` is in the configured bucketable set. Lock-free (atomic bit
  // mask): read by the pipeline's plan compiler and by every dispatch.
  bool admits(OpType op) const {
    return (admit_mask_.load(std::memory_order_acquire) >> static_cast<unsigned>(op)) & 1u;
  }
  // Bumped by every set_config; the pipeline recompiles its stage plans when
  // this moves.
  std::uint32_t config_version() const {
    return version_.load(std::memory_order_acquire);
  }

  // True if this (op, tensor) should go through a fusion bucket.
  bool eligible(OpType op, const Tensor& t) const;
  // Back-compat shorthand for the original AllReduce-only admission.
  bool eligible(const Tensor& t) const { return eligible(OpType::AllReduce, t); }

  // Adds the tensor to the matching bucket and returns a Work that completes
  // when the fused collective containing it does (with the result sliced
  // back into `t`). `root` is ignored for AllReduce (buckets are keyed on it
  // for rooted ops so different roots never coalesce).
  Work submit(Comm* comm, int rank, OpType op, Tensor t, ReduceOp rop, int root);
  Work all_reduce(Comm* comm, int rank, Tensor t, ReduceOp op) {
    return submit(comm, rank, OpType::AllReduce, std::move(t), op, /*root=*/-1);
  }

  // Flushes every pending bucket of one rank (used by synchronize()).
  void flush_all(int rank);

  // --- statistics -----------------------------------------------------------
  int flush_count() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return flush_count_;
  }
  int timeout_flush_count() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return timeout_flush_count_;
  }
  int fused_tensor_count() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return fused_tensor_count_;
  }
  int overlap_flush_count() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return overlap_flush_count_;
  }

 private:
  struct PendingFusion;
  class FusionWork;
  // Buckets are keyed per (rank, communicator, op, reduce-op, root, dtype);
  // root is normalized to -1 for unrooted ops.
  using Key = std::tuple<int, Comm*, int, int, int, int>;

  struct Batch {
    Comm* comm = nullptr;
    int rank = 0;
    OpType op = OpType::AllReduce;
    ReduceOp rop = ReduceOp::Sum;
    int root = -1;
    DType dtype = DType::F32;
    std::vector<Tensor> tensors;
    std::vector<SimTime> posted;   // per-entry submit instants, for latency billing
    std::int64_t total_numel = 0;
    std::size_t bytes = 0;
    bool any_phantom = false;
    std::uint64_t generation = 0;  // invalidates stale timeout events
    bool timer_armed = false;
    std::uint64_t timer_id = 0;    // scheduler event id of the armed timeout
    std::shared_ptr<PendingFusion> pending;
  };

  static std::uint32_t compute_admit_mask(const FusionConfig& config);
  void flush_locked(const Key& key, Batch& batch);
  void flush_if_pending(const Key& key);
  void on_timeout(const Key& key, std::uint64_t generation);

  ClusterContext* cluster_;
  FusionConfig config_;
  // Lock-free mirrors of config_ for the dispatch hot path: the admitted-op
  // bit mask (OpType fits in 32 bits) and the config version counter.
  std::atomic<std::uint32_t> admit_mask_{0};
  std::atomic<std::uint32_t> version_{0};
  // Guards batches_, the statistics counters, and each PendingFusion's
  // flushed/inner/deferred_callbacks (which FusionWork reads from other
  // actors). Recursive because flush paths nest (wait -> force_flush ->
  // flush_if_pending). Never held across a virtual-time block: flush_locked
  // posts the fused collective asynchronously and returns.
  mutable std::recursive_mutex mu_;
  std::map<Key, Batch> batches_;
  int flush_count_ = 0;
  int timeout_flush_count_ = 0;
  int fused_tensor_count_ = 0;
  int overlap_flush_count_ = 0;
};

}  // namespace mcrdl
