// Tensor Fusion (paper Section V-E): small tensors destined for the same
// (communicator, backend, reduction, dtype) are packed into one
// bandwidth-optimal buffer. A buffer flushes when it reaches B bytes
// (`buffer_bytes`) or when T microseconds (`flush_timeout_us`) elapse after
// its first tensor arrives. MCR-DL's cross-backend twist: a timeout flush
// means the buffer did NOT fill (bandwidth unsaturated), so other backends'
// pending buffers on the same rank are flushed too and the transfers overlap
// across backends.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "src/backends/backend.h"

namespace mcrdl {

struct FusionConfig {
  bool enabled = false;
  std::size_t buffer_bytes = 4 << 20;      // B: flush when this full
  SimTime flush_timeout_us = 50.0;         // T: flush this long after first add
  std::size_t max_tensor_bytes = 64 << 10; // larger tensors bypass fusion
  bool cross_backend_overlap = true;
};

class FusionManager {
 public:
  FusionManager(ClusterContext* cluster, FusionConfig config);

  const FusionConfig& config() const { return config_; }
  void set_config(FusionConfig config) {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    config_ = config;
  }

  // True if this all_reduce should go through the fusion buffer.
  bool eligible(const Tensor& t) const;

  // Adds the tensor to the matching fusion buffer and returns a Work that
  // completes when the fused operation containing it does (with the result
  // sliced back into `t`).
  Work all_reduce(Comm* comm, int rank, Tensor t, ReduceOp op);

  // Flushes every pending buffer of one rank (used by synchronize()).
  void flush_all(int rank);

  // --- statistics -----------------------------------------------------------
  int flush_count() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return flush_count_;
  }
  int timeout_flush_count() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return timeout_flush_count_;
  }
  int fused_tensor_count() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return fused_tensor_count_;
  }
  int overlap_flush_count() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return overlap_flush_count_;
  }

 private:
  struct PendingFusion;
  class FusionWork;
  // Buffers are keyed per (rank, communicator, reduce-op, dtype).
  using Key = std::tuple<int, Comm*, int, int>;

  struct Batch {
    Comm* comm = nullptr;
    int rank = 0;
    ReduceOp rop = ReduceOp::Sum;
    DType dtype = DType::F32;
    std::vector<Tensor> tensors;
    std::int64_t total_numel = 0;
    std::size_t bytes = 0;
    bool any_phantom = false;
    std::uint64_t generation = 0;  // invalidates stale timeout events
    bool timer_armed = false;
    std::shared_ptr<PendingFusion> pending;
  };

  void flush_locked(const Key& key, Batch& batch);
  void flush_if_pending(const Key& key);
  void on_timeout(const Key& key, std::uint64_t generation);

  ClusterContext* cluster_;
  FusionConfig config_;
  // Guards batches_, the statistics counters, and each PendingFusion's
  // flushed/inner/deferred_callbacks (which FusionWork reads from other
  // actors). Recursive because flush paths nest (wait -> force_flush ->
  // flush_if_pending). Never held across a virtual-time block: flush_locked
  // posts the fused all_reduce asynchronously and returns.
  mutable std::recursive_mutex mu_;
  std::map<Key, Batch> batches_;
  int flush_count_ = 0;
  int timeout_flush_count_ = 0;
  int fused_tensor_count_ = 0;
  int overlap_flush_count_ = 0;
};

}  // namespace mcrdl
