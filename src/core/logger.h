// Communication logging (paper Section V-E): every operation routed through
// MCR-DL can be recorded with its backend, payload and time span. The
// aggregations below generate the paper's Figure 1 (compute-vs-comm split
// and per-operation breakdown) and Figure 12 (communication-overhead
// reduction).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/units.h"
#include "src/net/comm_types.h"

namespace mcrdl {

struct CommRecord {
  int rank = 0;
  OpType op = OpType::Barrier;
  std::string backend;
  std::size_t bytes = 0;
  SimTime start = 0.0;  // when the operation was posted
  SimTime end = 0.0;    // when it completed
  bool fused = false;
  bool compressed = false;
  // --- resilience metadata (src/fault/) ------------------------------------
  int attempts = 1;               // issue attempts, including retries
  bool rerouted = false;          // completed on a different backend than requested
  std::string requested_backend;  // original routing choice when rerouted
  std::string fault;              // last injected failure seen: "", "transient",
                                  // "unavailable", "rank_lost"
  // --- elastic recovery (src/fault/recovery.h) ------------------------------
  std::uint64_t epoch = 0;  // recovery epoch the op finally completed under
  bool recovered = false;   // replayed on a shrunk communicator after rank loss
};

// Records are bucketed per rank so concurrent shards (DESIGN.md §11) never
// contend on one append vector and so the exported order is canonical:
// records() merges buckets in ascending rank order, preserving each rank's
// completion order within its bucket. Per-rank completion order is a pure
// function of virtual time, so the merged sequence is identical under the
// serial and parallel execution models (the golden-trace and
// parallel-identity tests pin this).
class CommLogger {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void record(CommRecord record);
  void clear();
  // Rank-major canonical merge; returned by value (the internal buckets can
  // keep growing while the caller iterates).
  std::vector<CommRecord> records() const;

  // Wall-clock (virtual) communication time on a rank: the union of all
  // operation intervals, so overlapping operations are not double-counted.
  SimTime comm_time(int rank) const;
  // Sum of per-operation durations, grouped by operation name — the
  // "communication breakdown" of Fig 1(b).
  std::map<std::string, SimTime> time_by_op(int rank) const;
  std::map<std::string, SimTime> time_by_backend(int rank) const;
  std::size_t bytes_moved(int rank) const;
  int op_count(int rank) const;

  // Length of the union of a set of [start, end) intervals.
  static SimTime interval_union(std::vector<std::pair<SimTime, SimTime>> intervals);

 private:
  bool enabled_ = false;
  mutable std::mutex mu_;
  std::map<int, std::vector<CommRecord>> by_rank_;
};

}  // namespace mcrdl
