// The operation-emulation layer (paper Section V-B, Table I).
//
// Stream libraries like NCCL/SCCL lack rooted and vector collectives; MCR-DL
// synthesises them from the primitives each backend does provide, so every
// operation in the Listing-1 API works on every backend. The synthesis costs
// extra data movement — exactly the "Option 1 sacrifices performance" the
// paper describes — and that cost shows up honestly in the virtual clock.
//
// Recipes:
//   gather       -> all_gather into a scratch buffer; root keeps it
//   scatter      -> broadcast the root's full buffer; ranks slice their block
//   gatherv      -> point-to-point sends into the root
//   scatterv     -> point-to-point sends from the root
//   all_gatherv  -> padded all_gather (max count) + repack
//   all_to_allv  -> blocking max-count exchange, padded all_to_all_single,
//                   then repack
#pragma once

#include <vector>

#include "src/backends/backend.h"

namespace mcrdl::emulation {

Work gather(Comm& comm, int rank, Tensor output, Tensor input, int root, bool async_op);
Work scatter(Comm& comm, int rank, Tensor output, Tensor input, int root, bool async_op);
Work gatherv(Comm& comm, int rank, Tensor output, Tensor input, int root,
             std::vector<int> recv_counts, std::vector<int> recv_displs, bool async_op);
Work scatterv(Comm& comm, int rank, Tensor output, Tensor input, int root,
              std::vector<int> send_counts, std::vector<int> send_displs, bool async_op);
Work all_gatherv(Comm& comm, int rank, Tensor output, Tensor input, std::vector<int> recv_counts,
                 std::vector<int> recv_displs, bool async_op);
Work all_to_allv(Comm& comm, int rank, Tensor output, Tensor input, std::vector<int> send_counts,
                 std::vector<int> send_displs, std::vector<int> recv_counts,
                 std::vector<int> recv_displs, bool async_op);

// Generic entry point mirroring Comm::issue: dispatches an OpRequest onto the
// matching emulation recipe, falling through to comm.issue for operations
// that have no recipe (so unsupported-and-unemulatable ops still surface the
// backend's UnsupportedOperation).
Work issue(Comm& comm, int rank, const OpRequest& req);

}  // namespace mcrdl::emulation
