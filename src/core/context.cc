#include "src/core/context.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/core/emulation.h"

namespace mcrdl {

// ---------------------------------------------------------------------------
// McrDl
// ---------------------------------------------------------------------------

McrDl::McrDl(ClusterContext* cluster, McrDlOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  MCRDL_REQUIRE(cluster_ != nullptr, "McrDl needs a cluster context");
  fusion_ = std::make_unique<FusionManager>(cluster_, options_.fusion);
  compression_ = std::make_unique<CompressionLayer>(cluster_, options_.compression);
  logger_.set_enabled(options_.logging_enabled);
}

McrDl::~McrDl() = default;

void McrDl::init(const std::vector<std::string>& backend_names) {
  MCRDL_REQUIRE(!backend_names.empty(), "init needs at least one backend");
  MCRDL_CHECK(!initialized_) << "McrDl::init called twice";
  for (const auto& name : backend_names) {
    if (backends_.count(name) > 0) {
      throw InvalidArgument("backend '" + name + "' listed twice in init()");
    }
    auto b = make_backend(name, cluster_);
    b->init();
    backend_order_.push_back(name);
    backends_[name] = std::move(b);
  }
  initialized_ = true;
}

void McrDl::finalize() {
  MCRDL_CHECK(initialized_) << "McrDl::finalize before init";
  for (auto& [name, b] : backends_) b->finalize();
  backends_.clear();
  backend_order_.clear();
  initialized_ = false;
}

std::vector<std::string> McrDl::get_backends() const { return backend_order_; }

bool McrDl::has_backend(const std::string& name) const { return backends_.count(name) > 0; }

Backend* McrDl::backend(const std::string& name) const {
  auto it = backends_.find(name);
  if (it == backends_.end()) {
    throw InvalidArgument("backend '" + name + "' was not passed to McrDl::init");
  }
  return it->second.get();
}

Backend* McrDl::resolve(const std::string& name, OpType op, std::size_t bytes, int world) const {
  MCRDL_CHECK(initialized_) << "MCR-DL is not initialised";
  if (name != "auto") return backend(name);
  if (!tuning_table_.has_value()) {
    throw InvalidArgument(
        "backend 'auto' requires a tuning table — run TuningSuite::generate and "
        "set_tuning_table first");
  }
  const std::string& best = tuning_table_->lookup(op, world, bytes);
  if (auto it = backends_.find(best); it != backends_.end()) return it->second.get();
  // The tuned winner is not among the initialised backends; fall back to the
  // first initialised one rather than failing mid-training.
  MCRDL_LOG_WARN << "tuning table prefers '" << best << "' for " << op_name(op)
                 << " but it is not initialised; using '" << backend_order_.front() << "'";
  return backend(backend_order_.front());
}

Api McrDl::on(int rank) { return Api(this, rank); }

// ---------------------------------------------------------------------------
// Api
// ---------------------------------------------------------------------------

Api::Api(McrDl* ctx, int rank, std::vector<int> group)
    : ctx_(ctx), rank_(rank), group_(std::move(group)) {
  MCRDL_REQUIRE(ctx_ != nullptr, "Api needs a context");
  MCRDL_REQUIRE(rank_ >= 0 && rank_ < ctx_->cluster()->world_size(), "Api rank out of range");
}

Api Api::group(std::vector<int> ranks) const {
  MCRDL_REQUIRE(!ranks.empty(), "group needs at least one rank");
  return Api(ctx_, rank_, std::move(ranks));
}

Comm* Api::comm_for(Backend* b) const {
  return group_.empty() ? b->world() : b->group(group_);
}

int Api::get_rank(const std::string& backend) const {
  return comm_for(ctx_->backend(backend))->group_rank(rank_);
}

int Api::get_size(const std::string& backend) const {
  return comm_for(ctx_->backend(backend))->size();
}

Backend* Api::resolve(const std::string& name, OpType op, std::size_t bytes) const {
  const int world =
      group_.empty() ? ctx_->cluster()->world_size() : static_cast<int>(group_.size());
  return ctx_->resolve(name, op, bytes, world);
}

void Api::pre_call() const {
  if (ctx_->options().per_call_overhead_us > 0.0) {
    ctx_->cluster()->scheduler().sleep_for(ctx_->options().per_call_overhead_us);
  }
}

Work Api::finish_op(Work w, OpType op, std::size_t bytes, const std::string& backend, bool fused,
                    bool compressed) {
  if (ctx_->logger().enabled()) {
    CommLogger* logger = &ctx_->logger();
    CommRecord rec;
    rec.rank = rank_;
    rec.op = op;
    rec.backend = backend;
    rec.bytes = bytes;
    rec.start = w->posted_at;
    rec.fused = fused;
    rec.compressed = compressed;
    // Capturing the shared handle keeps it alive until completion; the
    // callback list is cleared when it fires, breaking the cycle.
    w->on_complete([logger, rec, w]() mutable {
      rec.end = w->complete_time();
      // Bill only the execution window when the backend reported one, so
      // compute-overlapped queueing time does not count as communication.
      if (w->exec_start >= 0.0) rec.start = w->exec_start;
      logger->record(std::move(rec));
    });
  }
  return w;
}

void Api::synchronize() {
  ctx_->fusion().flush_all(rank_);
  for (const auto& name : ctx_->get_backends()) ctx_->backend(name)->synchronize(rank_);
}

void Api::synchronize(const std::string& backend) {
  ctx_->fusion().flush_all(rank_);
  ctx_->backend(backend)->synchronize(rank_);
}

Work Api::all_reduce(const std::string& backend, Tensor tensor, ReduceOp op, bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::AllReduce, tensor.bytes());
  Comm* comm = comm_for(b);
  const std::size_t bytes = tensor.bytes();
  if (ctx_->fusion().eligible(tensor)) {
    Work w = ctx_->fusion().all_reduce(comm, rank_, std::move(tensor), op);
    if (!async_op) w->wait();
    return finish_op(std::move(w), OpType::AllReduce, bytes, b->name(), /*fused=*/true, false);
  }
  Work w = comm->all_reduce(rank_, std::move(tensor), op, async_op);
  return finish_op(std::move(w), OpType::AllReduce, bytes, b->name(), false, false);
}

Work Api::broadcast(const std::string& backend, Tensor tensor, int root, bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::Broadcast, tensor.bytes());
  Comm* comm = comm_for(b);
  const std::size_t bytes = tensor.bytes();
  if (ctx_->compression().eligible(OpType::Broadcast, tensor)) {
    Work w = ctx_->compression().broadcast(*comm, rank_, std::move(tensor), root, async_op);
    return finish_op(std::move(w), OpType::Broadcast, bytes, b->name(), false, /*compressed=*/true);
  }
  Work w = comm->broadcast(rank_, std::move(tensor), root, async_op);
  return finish_op(std::move(w), OpType::Broadcast, bytes, b->name(), false, false);
}

Work Api::reduce(const std::string& backend, Tensor tensor, int root, ReduceOp op,
                 bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::Reduce, tensor.bytes());
  const std::size_t bytes = tensor.bytes();
  Work w = comm_for(b)->reduce(rank_, std::move(tensor), root, op, async_op);
  return finish_op(std::move(w), OpType::Reduce, bytes, b->name(), false, false);
}

Work Api::all_gather(const std::string& backend, Tensor output, Tensor input, bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::AllGather, input.bytes());
  Comm* comm = comm_for(b);
  const std::size_t bytes = input.bytes();
  if (ctx_->compression().eligible(OpType::AllGather, input)) {
    Work w = ctx_->compression().all_gather(*comm, rank_, std::move(output), std::move(input),
                                            async_op);
    return finish_op(std::move(w), OpType::AllGather, bytes, b->name(), false, true);
  }
  Work w = comm->all_gather(rank_, std::move(output), std::move(input), async_op);
  return finish_op(std::move(w), OpType::AllGather, bytes, b->name(), false, false);
}

Work Api::all_gatherv(const std::string& backend, Tensor output, Tensor input,
                      std::vector<int> recv_counts, std::vector<int> recv_displs, bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::AllGatherV, input.bytes());
  Comm* comm = comm_for(b);
  const std::size_t bytes = input.bytes();
  Work w;
  if (b->profile().is_native(OpType::AllGatherV)) {
    w = comm->all_gatherv(rank_, std::move(output), std::move(input), std::move(recv_counts),
                          std::move(recv_displs), async_op);
  } else {
    w = emulation::all_gatherv(*comm, rank_, std::move(output), std::move(input),
                               std::move(recv_counts), std::move(recv_displs), async_op);
  }
  return finish_op(std::move(w), OpType::AllGatherV, bytes, b->name(), false, false);
}

Work Api::gather(const std::string& backend, Tensor output, Tensor input, int root,
                 bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::Gather, input.bytes());
  Comm* comm = comm_for(b);
  const std::size_t bytes = input.bytes();
  Work w = b->profile().is_native(OpType::Gather)
               ? comm->gather(rank_, std::move(output), std::move(input), root, async_op)
               : emulation::gather(*comm, rank_, std::move(output), std::move(input), root,
                                   async_op);
  return finish_op(std::move(w), OpType::Gather, bytes, b->name(), false, false);
}

Work Api::gatherv(const std::string& backend, Tensor output, Tensor input, int root,
                  std::vector<int> recv_counts, std::vector<int> recv_displs, bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::GatherV, input.bytes());
  Comm* comm = comm_for(b);
  const std::size_t bytes = input.bytes();
  Work w = b->profile().is_native(OpType::GatherV)
               ? comm->gatherv(rank_, std::move(output), std::move(input), root,
                               std::move(recv_counts), std::move(recv_displs), async_op)
               : emulation::gatherv(*comm, rank_, std::move(output), std::move(input), root,
                                    std::move(recv_counts), std::move(recv_displs), async_op);
  return finish_op(std::move(w), OpType::GatherV, bytes, b->name(), false, false);
}

Work Api::scatter(const std::string& backend, Tensor output, Tensor input, int root,
                  bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::Scatter, output.bytes());
  Comm* comm = comm_for(b);
  const std::size_t bytes = output.bytes();
  Work w = b->profile().is_native(OpType::Scatter)
               ? comm->scatter(rank_, std::move(output), std::move(input), root, async_op)
               : emulation::scatter(*comm, rank_, std::move(output), std::move(input), root,
                                    async_op);
  return finish_op(std::move(w), OpType::Scatter, bytes, b->name(), false, false);
}

Work Api::scatterv(const std::string& backend, Tensor output, Tensor input, int root,
                   std::vector<int> send_counts, std::vector<int> send_displs, bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::ScatterV, output.bytes());
  Comm* comm = comm_for(b);
  const std::size_t bytes = output.bytes();
  Work w = b->profile().is_native(OpType::ScatterV)
               ? comm->scatterv(rank_, std::move(output), std::move(input), root,
                                std::move(send_counts), std::move(send_displs), async_op)
               : emulation::scatterv(*comm, rank_, std::move(output), std::move(input), root,
                                     std::move(send_counts), std::move(send_displs), async_op);
  return finish_op(std::move(w), OpType::ScatterV, bytes, b->name(), false, false);
}

Work Api::reduce_scatter(const std::string& backend, Tensor output, Tensor input, ReduceOp op,
                         bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::ReduceScatter, input.bytes());
  const std::size_t bytes = input.bytes();
  Work w = comm_for(b)->reduce_scatter(rank_, std::move(output), std::move(input), op, async_op);
  return finish_op(std::move(w), OpType::ReduceScatter, bytes, b->name(), false, false);
}

Work Api::all_to_all_single(const std::string& backend, Tensor output, Tensor input,
                            bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::AllToAllSingle, input.bytes());
  Comm* comm = comm_for(b);
  const std::size_t bytes = input.bytes();
  if (ctx_->compression().eligible(OpType::AllToAllSingle, input)) {
    Work w = ctx_->compression().all_to_all_single(*comm, rank_, std::move(output),
                                                   std::move(input), async_op);
    return finish_op(std::move(w), OpType::AllToAllSingle, bytes, b->name(), false, true);
  }
  Work w = comm->all_to_all_single(rank_, std::move(output), std::move(input), async_op);
  return finish_op(std::move(w), OpType::AllToAllSingle, bytes, b->name(), false, false);
}

Work Api::all_to_all(const std::string& backend, TensorList outputs, TensorList inputs,
                     bool async_op) {
  pre_call();
  const std::size_t bytes = total_bytes(inputs);
  Backend* b = resolve(backend, OpType::AllToAll, bytes);
  Work w = comm_for(b)->all_to_all(rank_, std::move(outputs), std::move(inputs), async_op);
  return finish_op(std::move(w), OpType::AllToAll, bytes, b->name(), false, false);
}

Work Api::all_to_allv(const std::string& backend, Tensor output, Tensor input,
                      std::vector<int> send_counts, std::vector<int> send_displs,
                      std::vector<int> recv_counts, std::vector<int> recv_displs, bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::AllToAllV, input.bytes());
  Comm* comm = comm_for(b);
  const std::size_t bytes = input.bytes();
  Work w = b->profile().is_native(OpType::AllToAllV)
               ? comm->all_to_allv(rank_, std::move(output), std::move(input),
                                   std::move(send_counts), std::move(send_displs),
                                   std::move(recv_counts), std::move(recv_displs), async_op)
               : emulation::all_to_allv(*comm, rank_, std::move(output), std::move(input),
                                        std::move(send_counts), std::move(send_displs),
                                        std::move(recv_counts), std::move(recv_displs), async_op);
  return finish_op(std::move(w), OpType::AllToAllV, bytes, b->name(), false, false);
}

Work Api::barrier(const std::string& backend, bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::Barrier, 0);
  Work w = comm_for(b)->barrier(rank_, async_op);
  return finish_op(std::move(w), OpType::Barrier, 0, b->name(), false, false);
}

Work Api::send(const std::string& backend, Tensor tensor, int dst, bool async_op) {
  pre_call();
  Backend* b = ctx_->backend(backend);  // "auto" is collective-only
  const std::size_t bytes = tensor.bytes();
  Work w = comm_for(b)->send(rank_, std::move(tensor), dst, async_op);
  return finish_op(std::move(w), OpType::Send, bytes, b->name(), false, false);
}

Work Api::recv(const std::string& backend, Tensor tensor, int src, bool async_op) {
  pre_call();
  Backend* b = ctx_->backend(backend);
  const std::size_t bytes = tensor.bytes();
  Work w = comm_for(b)->recv(rank_, std::move(tensor), src, async_op);
  return finish_op(std::move(w), OpType::Recv, bytes, b->name(), false, false);
}

}  // namespace mcrdl
