#include "src/core/context.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/core/emulation.h"

namespace mcrdl {

// ---------------------------------------------------------------------------
// McrDl
// ---------------------------------------------------------------------------

McrDl::McrDl(ClusterContext* cluster, McrDlOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  MCRDL_REQUIRE(cluster_ != nullptr, "McrDl needs a cluster context");
  fusion_ = std::make_unique<FusionManager>(cluster_, options_.fusion);
  compression_ = std::make_unique<CompressionLayer>(cluster_, options_.compression);
  logger_.set_enabled(options_.logging_enabled);
}

McrDl::~McrDl() = default;

void McrDl::init(const std::vector<std::string>& backend_names) {
  MCRDL_REQUIRE(!backend_names.empty(), "init needs at least one backend");
  MCRDL_CHECK(!initialized_) << "McrDl::init called twice";
  // Install the fault plan before any backend initialises so outages that
  // start at t=0 are visible to the very first operation.
  if (options_.fault.enabled) {
    cluster_->faults().configure(options_.fault.plan);
    failover_ = std::make_unique<fault::FailoverRouter>(
        &cluster_->faults(), options_.fault.retry, options_.fault.breaker_threshold,
        options_.fault.failover);
  }
  for (const auto& name : backend_names) {
    if (backends_.count(name) > 0) {
      throw InvalidArgument("backend '" + name + "' listed twice in init()");
    }
    auto b = make_backend(name, cluster_);
    b->init();
    backend_order_.push_back(name);
    backends_[name] = std::move(b);
  }
  initialized_ = true;
}

void McrDl::finalize() {
  MCRDL_CHECK(initialized_) << "McrDl::finalize before init";
  for (auto& [name, b] : backends_) b->finalize();
  backends_.clear();
  backend_order_.clear();
  if (options_.fault.enabled) {
    failover_.reset();
    cluster_->faults().reset();
  }
  initialized_ = false;
}

std::vector<std::string> McrDl::get_backends() const { return backend_order_; }

bool McrDl::has_backend(const std::string& name) const { return backends_.count(name) > 0; }

Backend* McrDl::backend(const std::string& name) const {
  auto it = backends_.find(name);
  if (it == backends_.end()) {
    throw InvalidArgument("backend '" + name + "' was not passed to McrDl::init");
  }
  return it->second.get();
}

Backend* McrDl::resolve(const std::string& name, OpType op, std::size_t bytes, int world) const {
  MCRDL_CHECK(initialized_) << "MCR-DL is not initialised";
  if (name != "auto") return backend(name);
  if (!tuning_table_.has_value()) {
    throw InvalidArgument(
        "backend 'auto' requires a tuning table — run TuningSuite::generate and "
        "set_tuning_table first");
  }
  const std::string& best = tuning_table_->lookup(op, world, bytes);
  if (auto it = backends_.find(best); it != backends_.end()) return it->second.get();
  // The tuned winner is not among the initialised backends; fall back to the
  // first initialised one rather than failing mid-training.
  MCRDL_LOG_WARN << "tuning table prefers '" << best << "' for " << op_name(op)
                 << " but it is not initialised; using '" << backend_order_.front() << "'";
  return backend(backend_order_.front());
}

Api McrDl::on(int rank) { return Api(this, rank); }

// ---------------------------------------------------------------------------
// Api
// ---------------------------------------------------------------------------

Api::Api(McrDl* ctx, int rank, std::vector<int> group)
    : ctx_(ctx), rank_(rank), group_(std::move(group)) {
  MCRDL_REQUIRE(ctx_ != nullptr, "Api needs a context");
  MCRDL_REQUIRE(rank_ >= 0 && rank_ < ctx_->cluster()->world_size(), "Api rank out of range");
}

Api Api::group(std::vector<int> ranks) const {
  MCRDL_REQUIRE(!ranks.empty(), "group needs at least one rank");
  return Api(ctx_, rank_, std::move(ranks));
}

Comm* Api::comm_for(Backend* b) const {
  return group_.empty() ? b->world() : b->group(group_);
}

int Api::get_rank(const std::string& backend) const {
  return comm_for(ctx_->backend(backend))->group_rank(rank_);
}

int Api::get_size(const std::string& backend) const {
  return comm_for(ctx_->backend(backend))->size();
}

Backend* Api::resolve(const std::string& name, OpType op, std::size_t bytes) const {
  const int world =
      group_.empty() ? ctx_->cluster()->world_size() : static_cast<int>(group_.size());
  return ctx_->resolve(name, op, bytes, world);
}

void Api::pre_call() const {
  if (ctx_->options().per_call_overhead_us > 0.0) {
    ctx_->cluster()->scheduler().sleep_for(ctx_->options().per_call_overhead_us);
  }
}

Work Api::finish_op(Work w, OpType op, std::size_t bytes, const std::string& backend, bool fused,
                    bool compressed, const RouteMeta& meta) {
  if (ctx_->logger().enabled()) {
    CommLogger* logger = &ctx_->logger();
    CommRecord rec;
    rec.rank = rank_;
    rec.op = op;
    rec.backend = backend;
    rec.bytes = bytes;
    rec.start = w->posted_at;
    rec.fused = fused;
    rec.compressed = compressed;
    rec.attempts = meta.attempts;
    rec.rerouted = meta.rerouted;
    if (meta.rerouted) rec.requested_backend = meta.requested;
    rec.fault = meta.fault;
    // Capturing the shared handle keeps it alive until completion; the
    // callback list is cleared when it fires, breaking the cycle.
    w->on_complete([logger, rec, w]() mutable {
      rec.end = w->complete_time();
      // Bill only the execution window when the backend reported one, so
      // compute-overlapped queueing time does not count as communication.
      if (w->exec_start >= 0.0) rec.start = w->exec_start;
      logger->record(std::move(rec));
    });
  }
  return w;
}

Work Api::routed(Backend* preferred, OpType op, std::size_t bytes, const IssueFn& issue) {
  fault::FailoverRouter* router = ctx_->failover();
  if (router == nullptr) {
    // Fault subsystem disabled: issue exactly once on the resolved backend.
    Issued r = issue(preferred, comm_for(preferred));
    return finish_op(std::move(r.w), op, bytes, preferred->name(), r.fused, r.compressed,
                     RouteMeta{});
  }

  // Preference order: the resolved backend first, then init() order. All
  // ranks derive the identical order, and health is per-rank, driven only
  // by the fault verdicts this rank has observed — which are identical
  // across ranks at the same logical op (one stored verdict per
  // rendezvous). Every rank therefore walks the same retry/re-route
  // sequence for the same op, at its own pace, and collectives stay
  // aligned across retries and failover even with stragglers in flight.
  RouteMeta meta;
  meta.requested = preferred->name();
  std::vector<std::string> order;
  order.push_back(preferred->name());
  for (const auto& name : ctx_->get_backends()) {
    if (name != preferred->name()) order.push_back(name);
  }

  std::string current = router->select(preferred->name(), order, rank_);
  if (current != preferred->name()) {
    meta.rerouted = true;
    meta.fault = "unavailable";
    router->report().rerouted++;
  }

  meta.attempts = 0;
  int attempts_on_current = 0;
  for (;;) {
    ++attempts_on_current;
    ++meta.attempts;
    router->report().attempted++;
    Backend* b = ctx_->backend(current);
    try {
      Issued r = issue(b, comm_for(b));
      router->record_success(current, rank_);
      router->report().succeeded++;
      return finish_op(std::move(r.w), op, bytes, current, r.fused, r.compressed, meta);
    } catch (const TransientFault& tf) {
      meta.fault = "transient";
      router->record_failure(current, rank_);
      if (attempts_on_current < router->retry().max_attempts &&
          router->healthy(current, rank_)) {
        const SimTime backoff = router->retry().backoff(attempts_on_current);
        router->report().retried++;
        router->report().backoff_time_us += backoff;
        ctx_->cluster()->scheduler().sleep_for(backoff);
        continue;
      }
      // Retries exhausted (or breaker opened mid-retry): move on if we can,
      // otherwise surface the original fault as the operation's failure.
      try {
        current = router->next_healthy(current, order, rank_);
      } catch (const BackendUnavailable&) {
        router->report().failed++;
        throw tf;
      }
      meta.rerouted = true;
      router->report().rerouted++;
      attempts_on_current = 0;
    } catch (const BackendUnavailable&) {
      meta.fault = "unavailable";
      router->record_failure(current, rank_);
      std::string next;
      try {
        next = router->next_healthy(current, order, rank_);
      } catch (const BackendUnavailable&) {
        router->report().failed++;
        throw;
      }
      current = next;
      meta.rerouted = true;
      router->report().rerouted++;
      attempts_on_current = 0;
    } catch (const TimeoutError&) {
      // A watchdog timeout means peers are wedged mid-collective; re-routing
      // one rank alone cannot realign the group, so it is always fatal.
      router->record_failure(current, rank_);
      router->report().failed++;
      throw;
    }
  }
}

void Api::synchronize() {
  ctx_->fusion().flush_all(rank_);
  for (const auto& name : ctx_->get_backends()) ctx_->backend(name)->synchronize(rank_);
}

void Api::synchronize(const std::string& backend) {
  ctx_->fusion().flush_all(rank_);
  ctx_->backend(backend)->synchronize(rank_);
}

// The issue lambdas below capture tensors and count vectors by value and
// pass copies into the backend calls, so a retry or failover re-invocation
// starts from intact arguments (Tensor is a cheap shared-storage handle).

Work Api::all_reduce(const std::string& backend, Tensor tensor, ReduceOp op, bool async_op) {
  pre_call();
  const std::size_t bytes = tensor.bytes();
  Backend* b = resolve(backend, OpType::AllReduce, bytes);
  return routed(b, OpType::AllReduce, bytes, [this, tensor, op, async_op](Backend*, Comm* comm) {
    if (ctx_->fusion().eligible(tensor)) {
      Work w = ctx_->fusion().all_reduce(comm, rank_, tensor, op);
      if (!async_op) w->wait();
      return Issued{std::move(w), /*fused=*/true, false};
    }
    return Issued{comm->all_reduce(rank_, tensor, op, async_op), false, false};
  });
}

Work Api::broadcast(const std::string& backend, Tensor tensor, int root, bool async_op) {
  pre_call();
  const std::size_t bytes = tensor.bytes();
  Backend* b = resolve(backend, OpType::Broadcast, bytes);
  return routed(b, OpType::Broadcast, bytes, [this, tensor, root, async_op](Backend*, Comm* comm) {
    if (ctx_->compression().eligible(OpType::Broadcast, tensor)) {
      Work w = ctx_->compression().broadcast(*comm, rank_, tensor, root, async_op);
      return Issued{std::move(w), false, /*compressed=*/true};
    }
    return Issued{comm->broadcast(rank_, tensor, root, async_op), false, false};
  });
}

Work Api::reduce(const std::string& backend, Tensor tensor, int root, ReduceOp op,
                 bool async_op) {
  pre_call();
  const std::size_t bytes = tensor.bytes();
  Backend* b = resolve(backend, OpType::Reduce, bytes);
  return routed(b, OpType::Reduce, bytes, [this, tensor, root, op, async_op](Backend*, Comm* comm) {
    return Issued{comm->reduce(rank_, tensor, root, op, async_op), false, false};
  });
}

Work Api::all_gather(const std::string& backend, Tensor output, Tensor input, bool async_op) {
  pre_call();
  const std::size_t bytes = input.bytes();
  Backend* b = resolve(backend, OpType::AllGather, bytes);
  return routed(b, OpType::AllGather, bytes,
                [this, output, input, async_op](Backend*, Comm* comm) {
                  if (ctx_->compression().eligible(OpType::AllGather, input)) {
                    Work w = ctx_->compression().all_gather(*comm, rank_, output, input, async_op);
                    return Issued{std::move(w), false, /*compressed=*/true};
                  }
                  return Issued{comm->all_gather(rank_, output, input, async_op), false, false};
                });
}

Work Api::all_gatherv(const std::string& backend, Tensor output, Tensor input,
                      std::vector<int> recv_counts, std::vector<int> recv_displs, bool async_op) {
  pre_call();
  const std::size_t bytes = input.bytes();
  Backend* b = resolve(backend, OpType::AllGatherV, bytes);
  return routed(b, OpType::AllGatherV, bytes,
                [this, output, input, recv_counts, recv_displs, async_op](Backend* bk, Comm* comm) {
                  Work w = bk->profile().is_native(OpType::AllGatherV)
                               ? comm->all_gatherv(rank_, output, input, recv_counts, recv_displs,
                                                   async_op)
                               : emulation::all_gatherv(*comm, rank_, output, input, recv_counts,
                                                        recv_displs, async_op);
                  return Issued{std::move(w), false, false};
                });
}

Work Api::gather(const std::string& backend, Tensor output, Tensor input, int root,
                 bool async_op) {
  pre_call();
  const std::size_t bytes = input.bytes();
  Backend* b = resolve(backend, OpType::Gather, bytes);
  return routed(b, OpType::Gather, bytes,
                [this, output, input, root, async_op](Backend* bk, Comm* comm) {
                  Work w = bk->profile().is_native(OpType::Gather)
                               ? comm->gather(rank_, output, input, root, async_op)
                               : emulation::gather(*comm, rank_, output, input, root, async_op);
                  return Issued{std::move(w), false, false};
                });
}

Work Api::gatherv(const std::string& backend, Tensor output, Tensor input, int root,
                  std::vector<int> recv_counts, std::vector<int> recv_displs, bool async_op) {
  pre_call();
  const std::size_t bytes = input.bytes();
  Backend* b = resolve(backend, OpType::GatherV, bytes);
  return routed(
      b, OpType::GatherV, bytes,
      [this, output, input, root, recv_counts, recv_displs, async_op](Backend* bk, Comm* comm) {
        Work w = bk->profile().is_native(OpType::GatherV)
                     ? comm->gatherv(rank_, output, input, root, recv_counts, recv_displs,
                                     async_op)
                     : emulation::gatherv(*comm, rank_, output, input, root, recv_counts,
                                          recv_displs, async_op);
        return Issued{std::move(w), false, false};
      });
}

Work Api::scatter(const std::string& backend, Tensor output, Tensor input, int root,
                  bool async_op) {
  pre_call();
  const std::size_t bytes = output.bytes();
  Backend* b = resolve(backend, OpType::Scatter, bytes);
  return routed(b, OpType::Scatter, bytes,
                [this, output, input, root, async_op](Backend* bk, Comm* comm) {
                  Work w = bk->profile().is_native(OpType::Scatter)
                               ? comm->scatter(rank_, output, input, root, async_op)
                               : emulation::scatter(*comm, rank_, output, input, root, async_op);
                  return Issued{std::move(w), false, false};
                });
}

Work Api::scatterv(const std::string& backend, Tensor output, Tensor input, int root,
                   std::vector<int> send_counts, std::vector<int> send_displs, bool async_op) {
  pre_call();
  const std::size_t bytes = output.bytes();
  Backend* b = resolve(backend, OpType::ScatterV, bytes);
  return routed(
      b, OpType::ScatterV, bytes,
      [this, output, input, root, send_counts, send_displs, async_op](Backend* bk, Comm* comm) {
        Work w = bk->profile().is_native(OpType::ScatterV)
                     ? comm->scatterv(rank_, output, input, root, send_counts, send_displs,
                                      async_op)
                     : emulation::scatterv(*comm, rank_, output, input, root, send_counts,
                                           send_displs, async_op);
        return Issued{std::move(w), false, false};
      });
}

Work Api::reduce_scatter(const std::string& backend, Tensor output, Tensor input, ReduceOp op,
                         bool async_op) {
  pre_call();
  const std::size_t bytes = input.bytes();
  Backend* b = resolve(backend, OpType::ReduceScatter, bytes);
  return routed(b, OpType::ReduceScatter, bytes,
                [this, output, input, op, async_op](Backend*, Comm* comm) {
                  return Issued{comm->reduce_scatter(rank_, output, input, op, async_op), false,
                                false};
                });
}

Work Api::all_to_all_single(const std::string& backend, Tensor output, Tensor input,
                            bool async_op) {
  pre_call();
  const std::size_t bytes = input.bytes();
  Backend* b = resolve(backend, OpType::AllToAllSingle, bytes);
  return routed(b, OpType::AllToAllSingle, bytes,
                [this, output, input, async_op](Backend*, Comm* comm) {
                  if (ctx_->compression().eligible(OpType::AllToAllSingle, input)) {
                    Work w = ctx_->compression().all_to_all_single(*comm, rank_, output, input,
                                                                   async_op);
                    return Issued{std::move(w), false, /*compressed=*/true};
                  }
                  return Issued{comm->all_to_all_single(rank_, output, input, async_op), false,
                                false};
                });
}

Work Api::all_to_all(const std::string& backend, TensorList outputs, TensorList inputs,
                     bool async_op) {
  pre_call();
  const std::size_t bytes = total_bytes(inputs);
  Backend* b = resolve(backend, OpType::AllToAll, bytes);
  return routed(b, OpType::AllToAll, bytes, [this, outputs, inputs, async_op](Backend*, Comm* comm) {
    return Issued{comm->all_to_all(rank_, outputs, inputs, async_op), false, false};
  });
}

Work Api::all_to_allv(const std::string& backend, Tensor output, Tensor input,
                      std::vector<int> send_counts, std::vector<int> send_displs,
                      std::vector<int> recv_counts, std::vector<int> recv_displs, bool async_op) {
  pre_call();
  const std::size_t bytes = input.bytes();
  Backend* b = resolve(backend, OpType::AllToAllV, bytes);
  return routed(b, OpType::AllToAllV, bytes,
                [this, output, input, send_counts, send_displs, recv_counts, recv_displs,
                 async_op](Backend* bk, Comm* comm) {
                  Work w = bk->profile().is_native(OpType::AllToAllV)
                               ? comm->all_to_allv(rank_, output, input, send_counts, send_displs,
                                                   recv_counts, recv_displs, async_op)
                               : emulation::all_to_allv(*comm, rank_, output, input, send_counts,
                                                        send_displs, recv_counts, recv_displs,
                                                        async_op);
                  return Issued{std::move(w), false, false};
                });
}

Work Api::barrier(const std::string& backend, bool async_op) {
  pre_call();
  Backend* b = resolve(backend, OpType::Barrier, 0);
  return routed(b, OpType::Barrier, 0, [this, async_op](Backend*, Comm* comm) {
    return Issued{comm->barrier(rank_, async_op), false, false};
  });
}

Work Api::send(const std::string& backend, Tensor tensor, int dst, bool async_op) {
  pre_call();
  Backend* b = ctx_->backend(backend);  // "auto" is collective-only
  const std::size_t bytes = tensor.bytes();
  return routed(b, OpType::Send, bytes, [this, tensor, dst, async_op](Backend*, Comm* comm) {
    return Issued{comm->send(rank_, tensor, dst, async_op), false, false};
  });
}

Work Api::recv(const std::string& backend, Tensor tensor, int src, bool async_op) {
  pre_call();
  Backend* b = ctx_->backend(backend);
  const std::size_t bytes = tensor.bytes();
  return routed(b, OpType::Recv, bytes, [this, tensor, src, async_op](Backend*, Comm* comm) {
    return Issued{comm->recv(rank_, tensor, src, async_op), false, false};
  });
}

}  // namespace mcrdl
