#include "src/core/context.h"

#include <utility>

#include "src/common/logging.h"
#include "src/core/op_pipeline.h"
#include "src/fault/recovery.h"

namespace mcrdl {

// ---------------------------------------------------------------------------
// McrDl
// ---------------------------------------------------------------------------

McrDl::McrDl(ClusterContext* cluster, McrDlOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  MCRDL_REQUIRE(cluster_ != nullptr, "McrDl needs a cluster context");
  fusion_ = std::make_unique<FusionManager>(cluster_, options_.fusion);
  compression_ = std::make_unique<CompressionLayer>(cluster_, options_.compression);
  logger_.set_enabled(options_.logging_enabled);
  pipeline_ = std::make_unique<OpPipeline>(this);
}

McrDl::~McrDl() = default;

void McrDl::init(const std::vector<std::string>& backend_names) {
  MCRDL_REQUIRE(!backend_names.empty(), "init needs at least one backend");
  MCRDL_CHECK(!initialized_) << "McrDl::init called twice";
  // Install the fault plan before any backend initialises so outages that
  // start at t=0 are visible to the very first operation.
  if (options_.fault.enabled) {
    // Warm spares are modelled as rank_loss at t=0: the spare ranks sit out
    // of the initial world (pre-start exclusions applied synchronously by
    // arm()) until a rank_rejoin spec admits them.
    fault::FaultPlan plan = options_.fault.plan;
    for (int r : options_.fault.spare_ranks) {
      MCRDL_REQUIRE(r >= 0 && r < cluster_->world_size(), "spare rank out of range");
      plan.specs.push_back(fault::FaultSpec::lose_rank(r, 0.0));
    }
    cluster_->faults().configure(plan);
    failover_ = std::make_unique<fault::FailoverRouter>(&cluster_->faults(), options_.fault.retry,
                                                        options_.fault.breaker_config(),
                                                        options_.fault.failover);
    // Surface breaker open/half-open/close events as metrics; the hook is
    // purely observational, so routing decisions are untouched.
    failover_->breaker().set_transition_hook(
        [cluster = cluster_](const std::string& backend, int rank, fault::BreakerState to) {
          (void)rank;  // per-backend cardinality; worlds are small and symmetric
          cluster->metrics()
              .counter("breaker_transitions",
                       {{"backend", backend}, {"to", fault::breaker_state_name(to)}})
              .inc();
        });
    // Arm elastic recovery (no-op when the plan has no rank_loss specs), then
    // bind the resilience report so recovery counters surface in it. Order
    // matters: arm() re-disarms first, which clears any previous binding.
    cluster_->faults().recovery().arm(cluster_->world_size());
    cluster_->faults().recovery().bind_report(&failover_->report());
    cluster_->faults().recovery().bind_metrics(&cluster_->metrics());
    // Recovery state (epochs, lost set, resilience counters) checkpoints
    // through the store so a restored run rejects stale-epoch ops exactly
    // like the run that saved it.
    auto& rec = cluster_->faults().recovery();
    checkpoint_.register_section(
        "recovery", [&rec] { return rec.save_state(); },
        [&rec](const std::string& body) { rec.restore_state(body); });
  }
  for (const auto& name : backend_names) {
    if (backends_.count(name) > 0) {
      throw InvalidArgument("backend '" + name + "' listed twice in init()");
    }
    auto b = make_backend(name, cluster_);
    b->init();
    backend_order_.push_back(name);
    backends_[name] = std::move(b);
  }
  // The online tuner becomes the resolution authority behind "auto"; the
  // static table (whenever it is installed) seeds its per-key incumbents.
  if (options_.online_tuning.enabled) {
    tuner_ = std::make_unique<tune::OnlineTuner>(options_.online_tuning, &cluster_->metrics());
    if (tuning_table_.has_value()) tuner_->seed_prior(*tuning_table_);
    // Learned arms/quarantines checkpoint alongside recovery state, so a
    // restored tuner resumes from its incumbents instead of re-exploring.
    tune::OnlineTuner* t = tuner_.get();
    checkpoint_.register_section(
        "tuner", [t] { return t->save_state(); },
        [t](const std::string& body) { t->restore_state(body); });
  }
  // Composite collectives (src/coll/): the chain scheduler plus the launch
  // seam that lets coll — which sits below core — post its sub-operations
  // through the full pipeline.
  if (options_.coll.enabled) {
    MCRDL_REQUIRE(options_.coll.chunks >= 1, "coll.chunks must be >= 1");
    overlap_ = std::make_unique<coll::OverlapScheduler>(&cluster_->scheduler(),
                                                        cluster_->world_size(),
                                                        options_.coll.overlap, options_.coll.chunks);
    if (options_.fault.enabled) {
      // Sub-ops of a chain stamped before a shrink/grow are cancelled by the
      // quiesce drain and never call back; the epoch source lets drive()
      // detect such stale chains, and both hooks poke blocked drivers awake
      // on every epoch bump so they re-examine their chains.
      auto& rec = cluster_->faults().recovery();
      coll::OverlapScheduler* ov = overlap_.get();
      overlap_->set_epoch_source([&rec] { return rec.epoch(); });
      coll_drain_hook_ = rec.register_drain([ov](const std::vector<int>&) { return ov->poke(); });
      coll_grow_hook_ = rec.register_grow("coll", [ov](const std::vector<int>&) { return ov->poke(); });
    }
    launch_ctx_.sched = &cluster_->scheduler();
    launch_ctx_.topo = &cluster_->topology();
    launch_ctx_.overlap = overlap_.get();
    launch_ctx_.dispatch = [this](int rank, const std::vector<int>& group, OpRequest req) {
      req.nested = true;
      return pipeline_->execute(rank, group, std::move(req));
    };
    launch_ctx_.redispatch = [this](int rank, const std::vector<int>& group, OpRequest req) {
      req.nested = false;
      req.async_op = false;
      return pipeline_->execute(rank, group, std::move(req));
    };
  }
  initialized_ = true;
}

void McrDl::finalize() {
  MCRDL_CHECK(initialized_) << "McrDl::finalize before init";
  // Recovery hooks capture the overlap scheduler; unhook before it dies (and
  // before the fault subsystem resets out from under the registrations).
  if (overlap_ != nullptr) {
    if (options_.fault.enabled) {
      auto& rec = cluster_->faults().recovery();
      rec.unregister_drain(coll_drain_hook_);
      rec.unregister_grow(coll_grow_hook_);
      coll_drain_hook_ = coll_grow_hook_ = 0;
    }
    launch_ctx_ = coll::LaunchContext{};
    overlap_.reset();
  }
  for (auto& [name, b] : backends_) b->finalize();
  backends_.clear();
  backend_order_.clear();
  // Checkpoint sections capture raw pointers into subsystems about to be
  // torn down; unregister before resetting either.
  checkpoint_.unregister_section("recovery");
  checkpoint_.unregister_section("tuner");
  if (options_.fault.enabled) {
    failover_.reset();
    cluster_->faults().reset();
  }
  tuner_.reset();
  initialized_ = false;
}

fault::RecoveryManager& McrDl::recovery() const { return cluster_->faults().recovery(); }

std::vector<std::string> McrDl::get_backends() const { return backend_order_; }

bool McrDl::has_backend(const std::string& name) const { return backends_.count(name) > 0; }

Backend* McrDl::backend(const std::string& name) const {
  auto it = backends_.find(name);
  if (it == backends_.end()) {
    throw InvalidArgument("backend '" + name + "' was not passed to McrDl::init");
  }
  return it->second.get();
}

Backend* McrDl::resolve(const std::string& name, OpType op, std::size_t bytes, int world,
                        int rank) const {
  return backend(resolve_string(name, op, bytes, world, rank));
}

std::string McrDl::resolve_string(const std::string& name, OpType op, std::size_t bytes,
                                  int world, int rank) const {
  MCRDL_CHECK(initialized_) << "MCR-DL is not initialised";
  if (name != "auto") return name;
  // Online tuner enabled: it owns "auto". It works from a cold start too, so
  // a static table is optional on this path.
  if (tuner_ != nullptr) {
    // With composites enabled the tuner's arm set grows beyond plain backend
    // names — allreduce only, the one op the composite algorithms implement.
    if (coll_enabled() && options_.coll.tuner_arms && op == OpType::AllReduce) {
      std::vector<std::string> arms = backend_order_;
      for (auto& arm : coll::composite_arms(backend_order_)) arms.push_back(std::move(arm));
      return tuner_->select(op, world, bytes, rank, arms);
    }
    return tuner_->select(op, world, bytes, rank, backend_order_);
  }
  if (!tuning_table_.has_value()) {
    throw InvalidArgument(
        "backend 'auto' requires a tuning table — run TuningSuite::generate and "
        "set_tuning_table first");
  }
  // An op the suite never tuned must not kill the run: resolution falls back
  // to the default (first initialised) backend with a warning and a counter;
  // only direct TuningTable::lookup callers still get the throw.
  if (!tuning_table_->has(op)) {
    cluster_->metrics().counter("tune.fallback", {{"op", op_name(op)}}).inc();
    MCRDL_LOG_WARN << "backend 'auto' requested for " << op_name(op)
                   << " but the tuning table has no entries for it; falling back to '"
                   << backend_order_.front() << "'";
    return backend_order_.front();
  }
  const std::string& best = tuning_table_->lookup(op, world, bytes);
  if (backends_.count(best) > 0) return best;
  // The tuned winner is not among the initialised backends; fall back to the
  // first initialised one rather than failing mid-training.
  MCRDL_LOG_WARN << "tuning table prefers '" << best << "' for " << op_name(op)
                 << " but it is not initialised; using '" << backend_order_.front() << "'";
  return backend_order_.front();
}

void McrDl::validate_composite(coll::CompositeSpec& spec) const {
  if (spec.intra.empty()) spec.intra = backend_order_.front();  // bare "rsag"
  if (!has_backend(spec.intra)) {
    throw InvalidArgument("composite '" + spec.text + "' names backend '" + spec.intra +
                          "' which was not passed to init()");
  }
  if (spec.algo == coll::CompositeAlgo::Hier && !has_backend(spec.inter)) {
    throw InvalidArgument("composite '" + spec.text + "' names backend '" + spec.inter +
                          "' which was not passed to init()");
  }
}

Api McrDl::on(int rank) { return Api(this, rank); }

// ---------------------------------------------------------------------------
// Api — every method packs its arguments into an OpRequest and executes it
// through the OpPipeline; all cross-cutting behaviour (overhead, tuning,
// fusion, compression, logging, fault routing, emulation) lives in the
// pipeline's stages, written once instead of once per operation.
// ---------------------------------------------------------------------------

Api::Api(McrDl* ctx, int rank, std::vector<int> group)
    : ctx_(ctx), rank_(rank), group_(std::move(group)) {
  MCRDL_REQUIRE(ctx_ != nullptr, "Api needs a context");
  MCRDL_REQUIRE(rank_ >= 0 && rank_ < ctx_->cluster()->world_size(), "Api rank out of range");
}

Api Api::group(std::vector<int> ranks) const {
  MCRDL_REQUIRE(!ranks.empty(), "group needs at least one rank");
  return Api(ctx_, rank_, std::move(ranks));
}

Comm* Api::comm_for(Backend* b) const {
  return group_.empty() ? b->world() : b->group(group_);
}

int Api::get_rank(const std::string& backend) const {
  return comm_for(ctx_->backend(backend))->group_rank(rank_);
}

int Api::get_size(const std::string& backend) const {
  return comm_for(ctx_->backend(backend))->size();
}

Work Api::dispatch(OpRequest req) const {
  return ctx_->pipeline().execute(rank_, group_, std::move(req));
}

void Api::synchronize() {
  ctx_->fusion().flush_all(rank_);
  // Drive this rank's composite chains to completion first: their remaining
  // phases post sub-ops the backend synchronize below must also cover.
  if (ctx_->coll_enabled()) ctx_->overlap_scheduler()->drain(rank_);
  for (const auto& name : ctx_->get_backends()) ctx_->backend(name)->synchronize(rank_);
}

void Api::synchronize(const std::string& backend) {
  ctx_->fusion().flush_all(rank_);
  if (ctx_->coll_enabled()) ctx_->overlap_scheduler()->drain(rank_);
  ctx_->backend(backend)->synchronize(rank_);
}

Work Api::all_reduce(const std::string& backend, Tensor tensor, ReduceOp op, bool async_op) {
  OpRequest req;
  req.op = OpType::AllReduce;
  req.backend = backend;
  req.tensor = std::move(tensor);
  req.rop = op;
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::broadcast(const std::string& backend, Tensor tensor, int root, bool async_op) {
  OpRequest req;
  req.op = OpType::Broadcast;
  req.backend = backend;
  req.tensor = std::move(tensor);
  req.root = root;
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::reduce(const std::string& backend, Tensor tensor, int root, ReduceOp op,
                 bool async_op) {
  OpRequest req;
  req.op = OpType::Reduce;
  req.backend = backend;
  req.tensor = std::move(tensor);
  req.root = root;
  req.rop = op;
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::all_gather(const std::string& backend, Tensor output, Tensor input, bool async_op) {
  OpRequest req;
  req.op = OpType::AllGather;
  req.backend = backend;
  req.output = std::move(output);
  req.input = std::move(input);
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::all_gatherv(const std::string& backend, Tensor output, Tensor input,
                      std::vector<int> recv_counts, std::vector<int> recv_displs, bool async_op) {
  OpRequest req;
  req.op = OpType::AllGatherV;
  req.backend = backend;
  req.output = std::move(output);
  req.input = std::move(input);
  req.recv_counts = std::move(recv_counts);
  req.recv_displs = std::move(recv_displs);
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::gather(const std::string& backend, Tensor output, Tensor input, int root,
                 bool async_op) {
  OpRequest req;
  req.op = OpType::Gather;
  req.backend = backend;
  req.output = std::move(output);
  req.input = std::move(input);
  req.root = root;
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::gatherv(const std::string& backend, Tensor output, Tensor input, int root,
                  std::vector<int> recv_counts, std::vector<int> recv_displs, bool async_op) {
  OpRequest req;
  req.op = OpType::GatherV;
  req.backend = backend;
  req.output = std::move(output);
  req.input = std::move(input);
  req.root = root;
  req.recv_counts = std::move(recv_counts);
  req.recv_displs = std::move(recv_displs);
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::scatter(const std::string& backend, Tensor output, Tensor input, int root,
                  bool async_op) {
  OpRequest req;
  req.op = OpType::Scatter;
  req.backend = backend;
  req.output = std::move(output);
  req.input = std::move(input);
  req.root = root;
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::scatterv(const std::string& backend, Tensor output, Tensor input, int root,
                   std::vector<int> send_counts, std::vector<int> send_displs, bool async_op) {
  OpRequest req;
  req.op = OpType::ScatterV;
  req.backend = backend;
  req.output = std::move(output);
  req.input = std::move(input);
  req.root = root;
  req.send_counts = std::move(send_counts);
  req.send_displs = std::move(send_displs);
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::reduce_scatter(const std::string& backend, Tensor output, Tensor input, ReduceOp op,
                         bool async_op) {
  OpRequest req;
  req.op = OpType::ReduceScatter;
  req.backend = backend;
  req.output = std::move(output);
  req.input = std::move(input);
  req.rop = op;
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::all_to_all_single(const std::string& backend, Tensor output, Tensor input,
                            bool async_op) {
  OpRequest req;
  req.op = OpType::AllToAllSingle;
  req.backend = backend;
  req.output = std::move(output);
  req.input = std::move(input);
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::all_to_all(const std::string& backend, TensorList outputs, TensorList inputs,
                     bool async_op) {
  OpRequest req;
  req.op = OpType::AllToAll;
  req.backend = backend;
  req.outputs = std::move(outputs);
  req.inputs = std::move(inputs);
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::all_to_allv(const std::string& backend, Tensor output, Tensor input,
                      std::vector<int> send_counts, std::vector<int> send_displs,
                      std::vector<int> recv_counts, std::vector<int> recv_displs, bool async_op) {
  OpRequest req;
  req.op = OpType::AllToAllV;
  req.backend = backend;
  req.output = std::move(output);
  req.input = std::move(input);
  req.send_counts = std::move(send_counts);
  req.send_displs = std::move(send_displs);
  req.recv_counts = std::move(recv_counts);
  req.recv_displs = std::move(recv_displs);
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::barrier(const std::string& backend, bool async_op) {
  OpRequest req;
  req.op = OpType::Barrier;
  req.backend = backend;
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::send(const std::string& backend, Tensor tensor, int dst, bool async_op) {
  OpRequest req;
  req.op = OpType::Send;
  req.backend = backend;
  req.tensor = std::move(tensor);
  req.peer = dst;
  req.async_op = async_op;
  return dispatch(std::move(req));
}

Work Api::recv(const std::string& backend, Tensor tensor, int src, bool async_op) {
  OpRequest req;
  req.op = OpType::Recv;
  req.backend = backend;
  req.tensor = std::move(tensor);
  req.peer = src;
  req.async_op = async_op;
  return dispatch(std::move(req));
}

}  // namespace mcrdl
