#include "src/core/fusion.h"

#include <algorithm>

namespace mcrdl {

// Shared state between a batch and the Works handed out for its tensors.
struct FusionManager::PendingFusion {
  bool flushed = false;
  Work inner;  // the fused collective, set at flush time
  std::vector<std::function<void()>> deferred_callbacks;
  FusionManager* mgr = nullptr;
  Key key;
};

class FusionManager::FusionWork : public WorkHandle {
 public:
  explicit FusionWork(std::shared_ptr<PendingFusion> pending) : pending_(std::move(pending)) {}

  bool test() const override {
    Work inner;
    {
      std::lock_guard<std::recursive_mutex> lock(pending_->mgr->mu_);
      if (!pending_->flushed) return false;
      inner = pending_->inner;
    }
    return inner->test();
  }

  // The manager lock is released before blocking on the inner Work so other
  // actors (and timeout events) can keep flushing while this one waits.
  void wait() override { force_flush()->wait(); }

  void synchronize() override { force_flush()->synchronize(); }

  SimTime complete_time() const override {
    Work inner;
    {
      std::lock_guard<std::recursive_mutex> lock(pending_->mgr->mu_);
      // An unflushed batch has no completion instant yet; returning one
      // (0.0 used to leak out here) silently corrupts latency accounting.
      // Callers must observe test() == true, wait(), or ask from an
      // on_complete callback before querying.
      MCRDL_CHECK(pending_->flushed)
          << "complete_time() queried on an unflushed fusion batch — the fused collective has "
             "not been issued, so no completion timestamp exists yet";
      inner = pending_->inner;
    }
    return inner->complete_time();
  }

  void on_complete(std::function<void()> fn) override {
    Work inner;
    {
      std::lock_guard<std::recursive_mutex> lock(pending_->mgr->mu_);
      if (!pending_->flushed) {
        pending_->deferred_callbacks.push_back(std::move(fn));
        return;
      }
      inner = pending_->inner;
    }
    inner->on_complete(std::move(fn));
  }

 private:
  // Waiting on a not-yet-flushed fusion forces the flush (the data
  // dependency outranks the timeout). Returns the inner Work to block on.
  Work force_flush() {
    std::lock_guard<std::recursive_mutex> lock(pending_->mgr->mu_);
    if (!pending_->flushed) pending_->mgr->flush_if_pending(pending_->key);
    MCRDL_CHECK(pending_->flushed);
    return pending_->inner;
  }

  std::shared_ptr<PendingFusion> pending_;
};

std::uint32_t FusionManager::compute_admit_mask(const FusionConfig& config) {
  std::uint32_t mask = 0;
  for (const OpType op : config.ops) {
    MCRDL_REQUIRE(op == OpType::AllReduce || op == OpType::Reduce || op == OpType::Broadcast,
                  "only AllReduce, Reduce and Broadcast are bucketable");
    mask |= 1u << static_cast<unsigned>(op);
  }
  return mask;
}

FusionManager::FusionManager(ClusterContext* cluster, FusionConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  admit_mask_.store(compute_admit_mask(config_), std::memory_order_release);
}

void FusionManager::set_config(FusionConfig config) {
  const std::uint32_t mask = compute_admit_mask(config);
  std::lock_guard<std::recursive_mutex> lock(mu_);
  config_ = std::move(config);
  admit_mask_.store(mask, std::memory_order_release);
  // Bump last: a pipeline seeing the new version recompiles against the new
  // mask; one seeing the old version at worst runs one more dispatch on the
  // old plan, whose fusion stage re-checks eligible() anyway.
  version_.fetch_add(1, std::memory_order_acq_rel);
}

bool FusionManager::eligible(OpType op, const Tensor& t) const {
  return config_.enabled && admits(op) && t.defined() && t.bytes() <= config_.max_tensor_bytes;
}

Work FusionManager::submit(Comm* comm, int rank, OpType op, Tensor t, ReduceOp rop, int root) {
  MCRDL_REQUIRE(comm != nullptr, "fusion needs a communicator");
  MCRDL_REQUIRE(eligible(op, t), "tensor is not eligible for fusion");
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Unrooted ops normalize root to -1 so every caller lands in one bucket;
  // rooted ops key on it so different roots never coalesce.
  if (op == OpType::AllReduce) root = -1;
  const Key key{rank, comm, static_cast<int>(op), static_cast<int>(rop), root,
                static_cast<int>(t.dtype())};
  Batch& batch = batches_[key];
  if (batch.pending == nullptr) {
    batch.comm = comm;
    batch.rank = rank;
    batch.op = op;
    batch.rop = rop;
    batch.root = root;
    batch.dtype = t.dtype();
    batch.pending = std::make_shared<PendingFusion>();
    batch.pending->mgr = this;
    batch.pending->key = key;
    // Arm the T timeout from the first tensor's arrival; flush_locked
    // cancels it, so a size-triggered flush leaves no stale closure behind
    // in the scheduler's event queue.
    batch.timer_armed = true;
    const std::uint64_t gen = batch.generation;
    batch.timer_id = cluster_->scheduler().schedule_after(
        config_.flush_timeout_us, [this, key, gen] { on_timeout(key, gen); });
  }
  batch.tensors.push_back(t);
  batch.total_numel += t.numel();
  batch.bytes += t.bytes();
  batch.any_phantom = batch.any_phantom || !t.materialized();
  ++fused_tensor_count_;
  Work w = std::make_shared<FusionWork>(batch.pending);
  w->op = op;
  w->backend_name = comm->backend()->name();
  w->posted_at = cluster_->scheduler().now();
  batch.posted.push_back(w->posted_at);
  if (batch.bytes >= config_.buffer_bytes) flush_locked(key, batch);
  return w;
}

void FusionManager::flush_if_pending(const Key& key) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = batches_.find(key);
  if (it == batches_.end() || it->second.pending == nullptr) return;
  flush_locked(key, it->second);
}

void FusionManager::on_timeout(const Key& key, std::uint64_t generation) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = batches_.find(key);
  if (it == batches_.end() || it->second.pending == nullptr ||
      it->second.generation != generation) {
    return;  // stale timer: the batch already flushed
  }
  ++timeout_flush_count_;
  const int rank = it->second.rank;
  flush_locked(key, it->second);
  if (!config_.cross_backend_overlap) return;
  // The buffer timed out before filling — bandwidth is unsaturated, so
  // flush other backends' pending buffers for this rank to overlap them.
  std::vector<Key> to_flush;
  for (auto& [other_key, other] : batches_) {
    if (other.pending != nullptr && other.rank == rank) to_flush.push_back(other_key);
  }
  for (const auto& k : to_flush) {
    auto oit = batches_.find(k);
    if (oit != batches_.end() && oit->second.pending != nullptr) {
      ++overlap_flush_count_;
      flush_locked(k, oit->second);
    }
  }
}

void FusionManager::flush_locked(const Key& key, Batch& batch) {
  (void)key;  // retained for symmetry with the other per-key entry points
  MCRDL_CHECK(batch.pending != nullptr);
  // Retire the armed timeout. Harmless if this flush IS the timeout firing
  // (cancel of a fired event is a no-op); essential for size-triggered
  // flushes, whose timer closure would otherwise sit in the scheduler's
  // queue as a dead generation-guarded tombstone until its deadline —
  // unboundedly many of them on bucket-heavy workloads. Both engines run
  // timed-event callbacks with their queue lock released, so cancelling from
  // under mu_ cannot deadlock.
  if (batch.timer_armed) cluster_->scheduler().cancel(batch.timer_id);
  auto pending = batch.pending;
  std::vector<Tensor> tensors;
  tensors.swap(batch.tensors);
  std::vector<SimTime> posted;
  posted.swap(batch.posted);
  const std::int64_t total = batch.total_numel;
  const bool phantom = batch.any_phantom;
  Comm* comm = batch.comm;
  const int rank = batch.rank;
  const OpType op = batch.op;
  const ReduceOp rop = batch.rop;
  const int root = batch.root;
  const DType dtype = batch.dtype;

  // Reset the slot so new submissions start a fresh batch.
  ++batch.generation;
  batch.pending = nullptr;
  batch.total_numel = 0;
  batch.bytes = 0;
  batch.any_phantom = false;
  batch.timer_armed = false;
  batch.timer_id = 0;
  ++flush_count_;

  // Pack.
  sim::Device* dev = cluster_->device(rank);
  Tensor fused = phantom ? Tensor::phantom({total}, dtype, dev)
                         : Tensor::zeros({total}, dtype, dev);
  if (!phantom) {
    std::int64_t offset = 0;
    for (const Tensor& t : tensors) {
      fused.view(offset, t.numel()).copy_from(t);
      offset += t.numel();
    }
  }

  Work inner;
  switch (op) {
    case OpType::AllReduce:
      inner = comm->all_reduce(rank, fused, rop, /*async_op=*/true);
      break;
    case OpType::Reduce:
      inner = comm->reduce(rank, fused, root, rop, /*async_op=*/true);
      break;
    case OpType::Broadcast:
      inner = comm->broadcast(rank, fused, root, /*async_op=*/true);
      break;
    default:
      MCRDL_CHECK(false) << "unbucketable op reached flush: " << op_name(op);
  }
  // Slice back at completion, before any waiter resumes. For ops that leave
  // part of the fused buffer untouched (Reduce on a non-root rank), the
  // copy-back restores the caller's own input — exactly what the unbucketed
  // collective would have left in place.
  //
  // The same closure bills every entry's end-to-end latency — completion
  // instant minus that entry's submit instant, the dispatch layer's
  // convention for works without an execution window. Billing here, once per
  // batch, is what lets FinishStage skip its per-op completion closure for
  // fused ops entirely (the bucketed hot path's largest allocation).
  obs::Histogram* latency = &cluster_->metrics().histogram(
      "op_latency_us", {{"backend", comm->backend()->name()}, {"op", op_name(op)}});
  WorkHandle* raw = inner.get();  // alive for the duration of its own callbacks
  inner->on_complete([tensors, fused, posted = std::move(posted), latency, raw]() mutable {
    const SimTime end = raw->complete_time();
    for (const SimTime p : posted) latency->observe(end - p);
    if (!fused.materialized()) return;
    std::int64_t offset = 0;
    for (Tensor& t : tensors) {
      if (t.materialized()) t.copy_from(fused.view(offset, t.numel()));
      offset += t.numel();
    }
  });
  pending->flushed = true;
  pending->inner = inner;
  for (auto& fn : pending->deferred_callbacks) inner->on_complete(std::move(fn));
  pending->deferred_callbacks.clear();
}

void FusionManager::flush_all(int rank) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<Key> keys;
  for (auto& [key, batch] : batches_) {
    if (batch.pending != nullptr && batch.rank == rank) keys.push_back(key);
  }
  for (const auto& key : keys) flush_if_pending(key);
}

}  // namespace mcrdl
