#include "src/core/fusion.h"

#include <algorithm>

namespace mcrdl {

// Shared state between a batch and the Works handed out for its tensors.
struct FusionManager::PendingFusion {
  bool flushed = false;
  Work inner;  // the fused all_reduce, set at flush time
  std::vector<std::function<void()>> deferred_callbacks;
  FusionManager* mgr = nullptr;
  Key key;
};

class FusionManager::FusionWork : public WorkHandle {
 public:
  explicit FusionWork(std::shared_ptr<PendingFusion> pending) : pending_(std::move(pending)) {}

  bool test() const override {
    Work inner;
    {
      std::lock_guard<std::recursive_mutex> lock(pending_->mgr->mu_);
      if (!pending_->flushed) return false;
      inner = pending_->inner;
    }
    return inner->test();
  }

  // The manager lock is released before blocking on the inner Work so other
  // actors (and timeout events) can keep flushing while this one waits.
  void wait() override { force_flush()->wait(); }

  void synchronize() override { force_flush()->synchronize(); }

  SimTime complete_time() const override {
    Work inner;
    {
      std::lock_guard<std::recursive_mutex> lock(pending_->mgr->mu_);
      if (!pending_->flushed) return 0.0;
      inner = pending_->inner;
    }
    return inner->complete_time();
  }

  void on_complete(std::function<void()> fn) override {
    Work inner;
    {
      std::lock_guard<std::recursive_mutex> lock(pending_->mgr->mu_);
      if (!pending_->flushed) {
        pending_->deferred_callbacks.push_back(std::move(fn));
        return;
      }
      inner = pending_->inner;
    }
    inner->on_complete(std::move(fn));
  }

 private:
  // Waiting on a not-yet-flushed fusion forces the flush (the data
  // dependency outranks the timeout). Returns the inner Work to block on.
  Work force_flush() {
    std::lock_guard<std::recursive_mutex> lock(pending_->mgr->mu_);
    if (!pending_->flushed) pending_->mgr->flush_if_pending(pending_->key);
    MCRDL_CHECK(pending_->flushed);
    return pending_->inner;
  }

  std::shared_ptr<PendingFusion> pending_;
};

FusionManager::FusionManager(ClusterContext* cluster, FusionConfig config)
    : cluster_(cluster), config_(config) {}

bool FusionManager::eligible(const Tensor& t) const {
  return config_.enabled && t.defined() && t.bytes() <= config_.max_tensor_bytes;
}

Work FusionManager::all_reduce(Comm* comm, int rank, Tensor t, ReduceOp op) {
  MCRDL_REQUIRE(comm != nullptr, "fusion needs a communicator");
  MCRDL_REQUIRE(eligible(t), "tensor is not eligible for fusion");
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const Key key{rank, comm, static_cast<int>(op), static_cast<int>(t.dtype())};
  Batch& batch = batches_[key];
  if (batch.pending == nullptr) {
    batch.comm = comm;
    batch.rank = rank;
    batch.rop = op;
    batch.dtype = t.dtype();
    batch.pending = std::make_shared<PendingFusion>();
    batch.pending->mgr = this;
    batch.pending->key = key;
    // Arm the T timeout from the first tensor's arrival.
    batch.timer_armed = true;
    const std::uint64_t gen = batch.generation;
    cluster_->scheduler().schedule_after(config_.flush_timeout_us,
                                         [this, key, gen] { on_timeout(key, gen); });
  }
  batch.tensors.push_back(t);
  batch.total_numel += t.numel();
  batch.bytes += t.bytes();
  batch.any_phantom = batch.any_phantom || !t.materialized();
  ++fused_tensor_count_;
  Work w = std::make_shared<FusionWork>(batch.pending);
  w->op = OpType::AllReduce;
  w->backend_name = comm->backend()->name();
  w->posted_at = cluster_->scheduler().now();
  if (batch.bytes >= config_.buffer_bytes) flush_locked(key, batch);
  return w;
}

void FusionManager::flush_if_pending(const Key& key) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = batches_.find(key);
  if (it == batches_.end() || it->second.pending == nullptr) return;
  flush_locked(key, it->second);
}

void FusionManager::on_timeout(const Key& key, std::uint64_t generation) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = batches_.find(key);
  if (it == batches_.end() || it->second.pending == nullptr ||
      it->second.generation != generation) {
    return;  // stale timer: the batch already flushed
  }
  ++timeout_flush_count_;
  const int rank = it->second.rank;
  flush_locked(key, it->second);
  if (!config_.cross_backend_overlap) return;
  // The buffer timed out before filling — bandwidth is unsaturated, so
  // flush other backends' pending buffers for this rank to overlap them.
  std::vector<Key> to_flush;
  for (auto& [other_key, other] : batches_) {
    if (other.pending != nullptr && other.rank == rank) to_flush.push_back(other_key);
  }
  for (const auto& k : to_flush) {
    auto oit = batches_.find(k);
    if (oit != batches_.end() && oit->second.pending != nullptr) {
      ++overlap_flush_count_;
      flush_locked(k, oit->second);
    }
  }
}

void FusionManager::flush_locked(const Key& key, Batch& batch) {
  (void)key;  // retained for symmetry with the other per-key entry points
  MCRDL_CHECK(batch.pending != nullptr);
  auto pending = batch.pending;
  std::vector<Tensor> tensors;
  tensors.swap(batch.tensors);
  const std::int64_t total = batch.total_numel;
  const bool phantom = batch.any_phantom;
  Comm* comm = batch.comm;
  const int rank = batch.rank;
  const ReduceOp rop = batch.rop;
  const DType dtype = batch.dtype;

  // Reset the slot so new all_reduce calls start a fresh batch.
  ++batch.generation;
  batch.pending = nullptr;
  batch.total_numel = 0;
  batch.bytes = 0;
  batch.any_phantom = false;
  batch.timer_armed = false;
  ++flush_count_;

  // Pack.
  sim::Device* dev = cluster_->device(rank);
  Tensor fused = phantom ? Tensor::phantom({total}, dtype, dev)
                         : Tensor::zeros({total}, dtype, dev);
  if (!phantom) {
    std::int64_t offset = 0;
    for (const Tensor& t : tensors) {
      fused.view(offset, t.numel()).copy_from(t);
      offset += t.numel();
    }
  }

  Work inner = comm->all_reduce(rank, fused, rop, /*async_op=*/true);
  // Slice back at completion, before any waiter resumes.
  inner->on_complete([tensors, fused]() mutable {
    if (!fused.materialized()) return;
    std::int64_t offset = 0;
    for (Tensor& t : tensors) {
      if (t.materialized()) t.copy_from(fused.view(offset, t.numel()));
      offset += t.numel();
    }
  });
  pending->flushed = true;
  pending->inner = inner;
  for (auto& fn : pending->deferred_callbacks) inner->on_complete(std::move(fn));
  pending->deferred_callbacks.clear();
}

void FusionManager::flush_all(int rank) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<Key> keys;
  for (auto& [key, batch] : batches_) {
    if (batch.pending != nullptr && batch.rank == rank) keys.push_back(key);
  }
  for (const auto& key : keys) flush_if_pending(key);
}

}  // namespace mcrdl
