// MCR-DL's public interface — the C++ equivalent of the paper's Listing 1.
//
// McrDl is the cluster-wide runtime: it owns the initialised backends, the
// static tuning table behind the "auto" backend string, and the optimisation
// layers (tensor fusion, compression, logging). Api is the thin per-rank
// facade the SPMD program calls; every operation takes the target backend's
// name first, exactly like the paper's API:
//
//   mcr.init({"nccl", "mv2-gdr"});
//   cluster.run_spmd([&](int rank) {
//     Api api = mcr.on(rank);
//     Work h = api.all_reduce("nccl", x, ReduceOp::Sum, /*async_op=*/true);
//     Work g = api.all_to_all_single("mv2-gdr", out, in, /*async_op=*/true);
//     h->wait(); g->wait();
//     api.synchronize();
//   });
//
// Passing "auto" routes the operation through the loaded tuning table
// (Section V-F). Operations a backend lacks natively are emulated
// transparently (Section V-B). Sub-communicators come from Api::group().
//
// Every Api method is a thin constructor of an OpRequest descriptor handed to
// the runtime's OpPipeline (src/core/op_pipeline.h); tuning, fusion,
// compression, fault routing, emulation and logging are pipeline stages, not
// per-op code.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/backends/backend.h"
#include "src/coll/composite.h"
#include "src/core/compression.h"
#include "src/core/fusion.h"
#include "src/core/logger.h"
#include "src/fault/checkpoint.h"
#include "src/fault/failover.h"
#include "src/tune/online_tuner.h"
#include "src/tune/tuning.h"

namespace mcrdl {

struct McrDlOptions {
  FusionConfig fusion;
  CompressionConfig compression;
  bool logging_enabled = false;
  // Host-side cost added to every MCR-DL call; models the thin Python layer
  // over the C++ backbone (paper C3 / Figure 7).
  SimTime per_call_overhead_us = 0.0;
  // Fast dispatch (DESIGN.md §14): arena-recycled OpCalls, precompiled stage
  // plans that elide provably no-op stages, cached metric handles. False
  // falls back to the pre-fast-path shape — a fresh OpCall and every stage
  // per op — kept as the referee; golden traces pin that both shapes produce
  // byte-identical virtual time.
  bool fast_dispatch = true;
  // Opt-in fault injection + retry/failover policies (src/fault/). Disabled
  // by default: no plan is installed and every operation issues exactly once
  // on its resolved backend, bit-identical to a build without the subsystem.
  fault::FaultOptions fault;
  // Opt-in online adaptive tuning (src/tune/online_tuner.h). Disabled by
  // default: "auto" resolves through the static table exactly as before —
  // the golden traces pin that the disabled tuner is byte-identical. When
  // enabled, the tuner becomes the resolution authority behind "auto",
  // seeded by the static table as a prior and fed by observed latencies.
  tune::OnlineTunerConfig online_tuning;
  // Opt-in composite collectives (src/coll/): hierarchical two-level
  // allreduce, reduce-scatter+allgather decomposition, and the overlap
  // scheduler interleaving chunks of independent composites. Disabled by
  // default: composite strings are rejected like unknown backends, the coll
  // pipeline stage is provably no-op, and runs stay byte-identical.
  coll::CollConfig coll;
};

class Api;
class OpPipeline;

class McrDl {
 public:
  explicit McrDl(ClusterContext* cluster, McrDlOptions options = {});
  ~McrDl();
  McrDl(const McrDl&) = delete;
  McrDl& operator=(const McrDl&) = delete;

  // --- lifecycle (Listing 1: init / finalize / get_backends) ---------------
  void init(const std::vector<std::string>& backend_names);
  void finalize();
  bool initialized() const { return initialized_; }
  std::vector<std::string> get_backends() const;
  Backend* backend(const std::string& name) const;
  bool has_backend(const std::string& name) const;

  // --- tuning ("auto" backend) ----------------------------------------------
  void set_tuning_table(TuningTable table) {
    tuning_table_ = std::move(table);
    // The static table is the online tuner's prior regardless of whether it
    // was installed before or after init().
    if (tuner_ != nullptr) tuner_->seed_prior(*tuning_table_);
  }
  const std::optional<TuningTable>& tuning_table() const { return tuning_table_; }
  // Resolves a backend string, dispatching "auto" through the online tuner
  // when enabled, else the static tuning table. `rank` is the caller's
  // global rank (the tuner aligns its per-key decision sequence across
  // ranks with it; irrelevant for static resolution).
  Backend* resolve(const std::string& name, OpType op, std::size_t bytes, int world,
                   int rank = 0) const;
  // The string-level half of resolve(): returns the chosen backend *name*
  // without requiring it to be an initialised backend — with composites
  // enabled the choice may be a composite algorithm string ("hier:nccl+mpi",
  // "rsag"), offered to the online tuner as extra "auto" arms when
  // CollConfig::tuner_arms is set. resolve() is resolve_string() + backend().
  std::string resolve_string(const std::string& name, OpType op, std::size_t bytes, int world,
                             int rank = 0) const;

  // Measurement-driven "auto" resolution; non-null only when
  // options.online_tuning.enabled (created by init()).
  tune::OnlineTuner* online_tuner() const { return tuner_.get(); }

  // --- optimisation layers ----------------------------------------------------
  CommLogger& logger() { return logger_; }
  FusionManager& fusion() { return *fusion_; }
  CompressionLayer& compression() { return *compression_; }
  McrDlOptions& options() { return options_; }

  // Health-aware routing; non-null only when options.fault.enabled.
  fault::FailoverRouter* failover() const { return failover_.get(); }

  // Elastic rank-loss recovery (quiesce -> shrink -> resume, and the grow
  // path quiesce -> grow -> resume). Armed by init() when the fault plan
  // contains rank_loss/rank_rejoin specs or spare ranks; disarmed otherwise.
  fault::RecoveryManager& recovery() const;

  // Deterministic checkpoint/restore of the runtime's restorable state.
  // init() registers a "recovery" section (epochs, lost set, resilience
  // counters) when faults are enabled and a "tuner" section (learned arms,
  // quarantine state) when online tuning is enabled; other subsystems (e.g.
  // the serving scheduler) register their own sections against this store.
  fault::CheckpointStore& checkpoint() { return checkpoint_; }

  // The operation pipeline every Api call executes through. Exposed so
  // callers can inspect the stage order or insert custom stages.
  OpPipeline& pipeline() { return *pipeline_; }

  // --- composite collectives (src/coll/) --------------------------------------
  // True once init() created the coll subsystem (options.coll.enabled).
  bool coll_enabled() const { return overlap_ != nullptr; }
  // Per-rank chain registry/driver; non-null only when coll_enabled().
  coll::OverlapScheduler* overlap_scheduler() const { return overlap_.get(); }
  // The launch seam handed to coll::launch. A reference to a long-lived
  // member: composite phase closures capture it by reference and may run long
  // after the coll stage's frame returned.
  const coll::LaunchContext& coll_launch() const { return launch_ctx_; }
  // Validates a parsed composite against the initialised backends and fills
  // defaults (a bare "rsag" gets the first initialised backend). Throws
  // InvalidArgument when a named backend was not passed to init().
  void validate_composite(coll::CompositeSpec& spec) const;

  ClusterContext* cluster() const { return cluster_; }

  // Per-rank facade over the world communicator.
  Api on(int rank);

 private:
  friend class Api;

  ClusterContext* cluster_;
  McrDlOptions options_;
  bool initialized_ = false;
  std::vector<std::string> backend_order_;
  std::map<std::string, std::unique_ptr<Backend>> backends_;
  std::optional<TuningTable> tuning_table_;
  std::unique_ptr<tune::OnlineTuner> tuner_;
  CommLogger logger_;
  std::unique_ptr<FusionManager> fusion_;
  std::unique_ptr<CompressionLayer> compression_;
  std::unique_ptr<fault::FailoverRouter> failover_;
  fault::CheckpointStore checkpoint_;
  std::unique_ptr<OpPipeline> pipeline_;
  std::unique_ptr<coll::OverlapScheduler> overlap_;
  coll::LaunchContext launch_ctx_;
  // Recovery-hook registrations waking blocked chain drivers on epoch bumps.
  std::uint64_t coll_drain_hook_ = 0;
  std::uint64_t coll_grow_hook_ = 0;
};

// The per-rank API handle (cheap to copy). All peers/roots are expressed in
// the handle's communicator group-rank space; group() rebinds the handle to
// a sub-communicator.
class Api {
 public:
  Api(McrDl* ctx, int rank, std::vector<int> group = {});

  int rank() const { return rank_; }
  McrDl* context() const { return ctx_; }
  // Size of this handle's communicator (the whole cluster unless group()ed).
  int world_size() const {
    return group_.empty() ? ctx_->cluster()->world_size() : static_cast<int>(group_.size());
  }
  // Listing 1: get_rank/get_size take the backend name (all backends share
  // the communicator layout here, as in PyTorch process groups).
  int get_rank(const std::string& backend) const;
  int get_size(const std::string& backend) const;

  // Rebinds to a sub-communicator over the given global ranks.
  Api group(std::vector<int> ranks) const;

  // Completes all outstanding work this rank posted (flushes fusion first).
  void synchronize();
  void synchronize(const std::string& backend);

  // --- Listing 1 operations ---------------------------------------------------
  Work all_reduce(const std::string& backend, Tensor tensor, ReduceOp op = ReduceOp::Sum,
                  bool async_op = false);
  Work broadcast(const std::string& backend, Tensor tensor, int root, bool async_op = false);
  Work reduce(const std::string& backend, Tensor tensor, int root, ReduceOp op = ReduceOp::Sum,
              bool async_op = false);
  Work all_gather(const std::string& backend, Tensor output, Tensor input, bool async_op = false);
  Work all_gatherv(const std::string& backend, Tensor output, Tensor input,
                   std::vector<int> recv_counts, std::vector<int> recv_displs,
                   bool async_op = false);
  Work gather(const std::string& backend, Tensor output, Tensor input, int root,
              bool async_op = false);
  Work gatherv(const std::string& backend, Tensor output, Tensor input, int root,
               std::vector<int> recv_counts, std::vector<int> recv_displs, bool async_op = false);
  Work scatter(const std::string& backend, Tensor output, Tensor input, int root,
               bool async_op = false);
  Work scatterv(const std::string& backend, Tensor output, Tensor input, int root,
                std::vector<int> send_counts, std::vector<int> send_displs,
                bool async_op = false);
  Work reduce_scatter(const std::string& backend, Tensor output, Tensor input,
                      ReduceOp op = ReduceOp::Sum, bool async_op = false);
  Work all_to_all_single(const std::string& backend, Tensor output, Tensor input,
                         bool async_op = false);
  Work all_to_all(const std::string& backend, TensorList outputs, TensorList inputs,
                  bool async_op = false);
  Work all_to_allv(const std::string& backend, Tensor output, Tensor input,
                   std::vector<int> send_counts, std::vector<int> send_displs,
                   std::vector<int> recv_counts, std::vector<int> recv_displs,
                   bool async_op = false);
  Work barrier(const std::string& backend, bool async_op = false);
  Work send(const std::string& backend, Tensor tensor, int dst, bool async_op = false);
  Work recv(const std::string& backend, Tensor tensor, int src, bool async_op = false);

 private:
  Comm* comm_for(Backend* b) const;
  // Packs per-op arguments into the request's common fields and hands it to
  // the runtime's OpPipeline.
  Work dispatch(OpRequest req) const;

  McrDl* ctx_;
  int rank_;
  std::vector<int> group_;  // empty = world
};

}  // namespace mcrdl
