#include "src/core/composite_work.h"

#include <utility>

namespace mcrdl {

CompositeWork::CompositeWork(sim::Scheduler* sched, std::vector<Work> parts,
                             std::function<void()> finalize)
    : sched_(sched),
      parts_(std::move(parts)),
      finalize_(std::move(finalize)),
      remaining_(static_cast<int>(parts_.size())),
      done_cond_(sched) {}

void CompositeWork::arm() {
  // The self-anchor keeps the composite alive while part callbacks are armed
  // even if the caller drops its handle; every terminal path releases it.
  // Part callbacks capture a weak_ptr — a shared capture would close a
  // reference cycle (part holds callback, callback holds composite, composite
  // holds part) that a part failing or cancelling, which *drops* its callback
  // list without firing it, could leave uncollectable alongside any
  // on_complete closure that captures this composite's own handle.
  self_ = shared_from_this();
  if (parts_.empty()) {
    part_done();  // degenerate composite: finalize immediately
    return;
  }
  std::weak_ptr<CompositeWork> weak = self_;
  for (auto& p : parts_) {
    p->on_complete([weak] {
      if (auto self = weak.lock()) self->part_done();
    });
  }
}

void CompositeWork::part_done() {
  if (remaining_ > 0 && --remaining_ > 0) return;
  if (done_) return;
  if (finalize_) finalize_();
  done_ = true;
  complete_time_ = sched_->now();
  auto callbacks = std::move(callbacks_);
  callbacks_.clear();
  // Terminal path: release everything that could pin memory past completion —
  // the parts (and the tensors their closures hold), the finalize closure,
  // and the self-anchor. Destroying the anchor last keeps `this` valid while
  // the callbacks run even if the caller already dropped its handle.
  parts_.clear();
  finalize_ = nullptr;
  auto anchor = std::move(self_);
  for (auto& fn : callbacks) fn();
  done_cond_.notify_all();
}

void CompositeWork::cancel() {
  if (done_) return;
  done_ = true;
  complete_time_ = sched_->now();
  // Mirror the engine's fail/cancel discipline: completion callbacks are
  // dropped, never fired — clearing the list here breaks the cycle with any
  // closure capturing this composite's own handle (the finish stage's merged
  // completion closure does exactly that).
  callbacks_.clear();
  parts_.clear();
  finalize_ = nullptr;
  auto anchor = std::move(self_);
  done_cond_.notify_all();
}

void CompositeWork::wait() {
  done_cond_.wait([&] { return done_; });
}

void CompositeWork::on_complete(std::function<void()> fn) {
  if (done_) {
    fn();
    return;
  }
  callbacks_.push_back(std::move(fn));
}

Work make_composite(sim::Scheduler* sched, std::vector<Work> parts,
                    std::function<void()> finalize) {
  auto w = std::make_shared<CompositeWork>(sched, std::move(parts), std::move(finalize));
  w->arm();
  return w;
}

}  // namespace mcrdl
