#include "src/core/composite_work.h"

namespace mcrdl {

CompositeWork::CompositeWork(sim::Scheduler* sched, std::vector<Work> parts,
                             std::function<void()> finalize)
    : sched_(sched),
      parts_(std::move(parts)),
      finalize_(std::move(finalize)),
      remaining_(static_cast<int>(parts_.size())),
      done_cond_(sched) {}

void CompositeWork::arm() {
  if (parts_.empty()) {
    part_done();  // degenerate composite: finalize immediately
    return;
  }
  // Each callback holds shared ownership so the composite survives even if
  // the caller drops its handle before completion.
  auto self = shared_from_this();
  for (auto& p : parts_) {
    p->on_complete([self] { self->part_done(); });
  }
}

void CompositeWork::part_done() {
  if (remaining_ > 0 && --remaining_ > 0) return;
  if (done_) return;
  if (finalize_) finalize_();
  done_ = true;
  complete_time_ = sched_->now();
  auto callbacks = std::move(callbacks_);
  callbacks_.clear();
  for (auto& fn : callbacks) fn();
  done_cond_.notify_all();
}

void CompositeWork::wait() {
  done_cond_.wait([&] { return done_; });
}

void CompositeWork::on_complete(std::function<void()> fn) {
  if (done_) {
    fn();
    return;
  }
  callbacks_.push_back(std::move(fn));
}

Work make_composite(sim::Scheduler* sched, std::vector<Work> parts,
                    std::function<void()> finalize) {
  auto w = std::make_shared<CompositeWork>(sched, std::move(parts), std::move(finalize));
  w->arm();
  return w;
}

}  // namespace mcrdl
