#include "src/core/logger.h"

#include <algorithm>

namespace mcrdl {

void CommLogger::record(CommRecord record) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  by_rank_[record.rank].push_back(std::move(record));
}

void CommLogger::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  by_rank_.clear();
}

std::vector<CommRecord> CommLogger::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CommRecord> merged;
  std::size_t total = 0;
  for (const auto& [rank, bucket] : by_rank_) total += bucket.size();
  merged.reserve(total);
  // std::map iterates in ascending rank order, which is the canonical order.
  for (const auto& [rank, bucket] : by_rank_) {
    merged.insert(merged.end(), bucket.begin(), bucket.end());
  }
  return merged;
}

SimTime CommLogger::interval_union(std::vector<std::pair<SimTime, SimTime>> intervals) {
  if (intervals.empty()) return 0.0;
  std::sort(intervals.begin(), intervals.end());
  SimTime total = 0.0;
  SimTime cur_start = intervals.front().first;
  SimTime cur_end = intervals.front().second;
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    const auto& [s, e] = intervals[i];
    if (s > cur_end) {
      total += cur_end - cur_start;
      cur_start = s;
      cur_end = e;
    } else {
      cur_end = std::max(cur_end, e);
    }
  }
  total += cur_end - cur_start;
  return total;
}

SimTime CommLogger::comm_time(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<SimTime, SimTime>> intervals;
  auto it = by_rank_.find(rank);
  if (it != by_rank_.end()) {
    for (const auto& r : it->second) intervals.emplace_back(r.start, r.end);
  }
  return interval_union(std::move(intervals));
}

std::map<std::string, SimTime> CommLogger::time_by_op(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, SimTime> out;
  auto it = by_rank_.find(rank);
  if (it != by_rank_.end()) {
    for (const auto& r : it->second) out[op_name(r.op)] += r.end - r.start;
  }
  return out;
}

std::map<std::string, SimTime> CommLogger::time_by_backend(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, SimTime> out;
  auto it = by_rank_.find(rank);
  if (it != by_rank_.end()) {
    for (const auto& r : it->second) out[r.backend] += r.end - r.start;
  }
  return out;
}

std::size_t CommLogger::bytes_moved(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  auto it = by_rank_.find(rank);
  if (it != by_rank_.end()) {
    for (const auto& r : it->second) total += r.bytes;
  }
  return total;
}

int CommLogger::op_count(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_rank_.find(rank);
  return it == by_rank_.end() ? 0 : static_cast<int>(it->second.size());
}

}  // namespace mcrdl
