#include "src/core/logger.h"

#include <algorithm>

namespace mcrdl {

void CommLogger::record(CommRecord record) {
  if (!enabled_) return;
  records_.push_back(std::move(record));
}

SimTime CommLogger::interval_union(std::vector<std::pair<SimTime, SimTime>> intervals) {
  if (intervals.empty()) return 0.0;
  std::sort(intervals.begin(), intervals.end());
  SimTime total = 0.0;
  SimTime cur_start = intervals.front().first;
  SimTime cur_end = intervals.front().second;
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    const auto& [s, e] = intervals[i];
    if (s > cur_end) {
      total += cur_end - cur_start;
      cur_start = s;
      cur_end = e;
    } else {
      cur_end = std::max(cur_end, e);
    }
  }
  total += cur_end - cur_start;
  return total;
}

SimTime CommLogger::comm_time(int rank) const {
  std::vector<std::pair<SimTime, SimTime>> intervals;
  for (const auto& r : records_) {
    if (r.rank == rank) intervals.emplace_back(r.start, r.end);
  }
  return interval_union(std::move(intervals));
}

std::map<std::string, SimTime> CommLogger::time_by_op(int rank) const {
  std::map<std::string, SimTime> out;
  for (const auto& r : records_) {
    if (r.rank == rank) out[op_name(r.op)] += r.end - r.start;
  }
  return out;
}

std::map<std::string, SimTime> CommLogger::time_by_backend(int rank) const {
  std::map<std::string, SimTime> out;
  for (const auto& r : records_) {
    if (r.rank == rank) out[r.backend] += r.end - r.start;
  }
  return out;
}

std::size_t CommLogger::bytes_moved(int rank) const {
  std::size_t total = 0;
  for (const auto& r : records_) {
    if (r.rank == rank) total += r.bytes;
  }
  return total;
}

int CommLogger::op_count(int rank) const {
  int count = 0;
  for (const auto& r : records_) count += (r.rank == rank);
  return count;
}

}  // namespace mcrdl
