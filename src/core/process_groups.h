// Process-group topology helpers for the hybrid-parallel schemes the paper
// targets (Section III-A): given a world laid out as
// (data-parallel x tensor-parallel) or with expert-parallel slices, build
// the rank lists each rank's collectives run over. Mirrors the group
// bookkeeping in Megatron/DeepSpeed.
#pragma once

#include <vector>

#include "src/common/status.h"
#include "src/net/topology.h"

namespace mcrdl {

// Rank layout: tensor-parallel ranks are contiguous (rank = dp * tp + t).
class ProcessGroups {
 public:
  ProcessGroups(int world, int tensor_parallel, int expert_parallel = 1);

  int world() const { return world_; }
  int tensor_parallel() const { return tp_; }
  int data_parallel() const { return world_ / tp_; }
  int expert_parallel() const { return ep_; }

  // The TP group containing `rank` (size tensor_parallel, same node when
  // tp <= gpus-per-node under the block layout).
  std::vector<int> tp_group(int rank) const;
  // The DP group containing `rank` (ranks with the same TP index).
  std::vector<int> dp_group(int rank) const;
  // The expert-parallel group containing `rank`: consecutive slices of the
  // DP dimension of size expert_parallel (DeepSpeed-MoE style).
  std::vector<int> ep_group(int rank) const;

  // All groups of each kind (for setup loops / debugging).
  std::vector<std::vector<int>> all_tp_groups() const;
  std::vector<std::vector<int>> all_dp_groups() const;

 private:
  void check_rank(int rank) const;

  int world_;
  int tp_;
  int ep_;
};

// The canonical two-level decomposition of a rank list: one communicator per
// occupied node plus the leader group that stitches the nodes together.
// Every hierarchical collective (src/coll/) and the recovery rebuild path
// derive their subgroups through this instead of hand-slicing ranks. The
// primitive lives in src/net/ (below both coll and core); this is the
// core-facing spelling.
using NodeGroups = net::NodePartition;

// Partitions `ranks` into node-local groups and leaders under `topo`.
NodeGroups node_groups(const net::Topology& topo, const std::vector<int>& ranks);

// The intra-node subgroup of `ranks` containing `rank` (always includes
// `rank` itself; singleton when it is alone on its node).
std::vector<int> intra_node_group(const net::Topology& topo, const std::vector<int>& ranks,
                                  int rank);

// The inter-node subgroup of `ranks`: one leader (lowest rank) per occupied
// node. Singleton when every rank shares a node.
std::vector<int> inter_node_group(const net::Topology& topo, const std::vector<int>& ranks);

// Result of rebuilding a hybrid-parallel layout after permanent rank loss
// (src/fault/recovery.h): the survivors renumbered densely into a smaller
// world, with flags recording which parallelism dimensions survived intact.
struct ShrunkGroups {
  ProcessGroups groups;          // layout over the shrunk world
  std::vector<int> survivors;    // old global rank per new rank (ascending)
  std::vector<int> old_to_new;   // old global rank -> new rank, -1 if lost
  bool tp_preserved = true;      // old TP degree still divides the new world
  bool ep_preserved = true;      // old EP degree still divides the new DP
  // Node-aligned subgroups over the survivors (global ranks); populated only
  // by the topology-aware shrink/rebuild overloads, empty otherwise.
  NodeGroups nodes;
};

// Shrinks `old` to the ranks not listed in `lost`. The old tensor-parallel
// degree is kept when the surviving world is still divisible by it, else TP
// collapses to 1 (a lost rank tears a hole in some TP block, so block-local
// groups cannot be preserved in general); likewise EP against the new DP
// degree. Requires at least one survivor.
ShrunkGroups shrink_process_groups(const ProcessGroups& old, const std::vector<int>& lost);
// Topology-aware variant: additionally derives the survivors' node-aligned
// subgroups (ShrunkGroups::nodes) through node_groups(), so hierarchical
// collectives keep correct intra/inter splits after the shrink.
ShrunkGroups shrink_process_groups(const ProcessGroups& old, const std::vector<int>& lost,
                                   const net::Topology& topo);

// Rebuilds the hybrid-parallel layout over whatever part of the *original*
// world is currently alive — the grow-path entry point. `lost` is the
// post-grow lost set (possibly empty: everyone rejoined). Shrinking from the
// original layout rather than from the last shrunk one means grow is exact:
// after a full rejoin the TP/DP/EP groups are byte-for-byte the seed layout,
// not an approximation recovered through intermediate collapses.
ShrunkGroups rebuild_process_groups(const ProcessGroups& original, const std::vector<int>& lost);
// Topology-aware variant, mirroring the shrink overload.
ShrunkGroups rebuild_process_groups(const ProcessGroups& original, const std::vector<int>& lost,
                                    const net::Topology& topo);

}  // namespace mcrdl
