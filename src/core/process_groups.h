// Process-group topology helpers for the hybrid-parallel schemes the paper
// targets (Section III-A): given a world laid out as
// (data-parallel x tensor-parallel) or with expert-parallel slices, build
// the rank lists each rank's collectives run over. Mirrors the group
// bookkeeping in Megatron/DeepSpeed.
#pragma once

#include <vector>

#include "src/common/status.h"

namespace mcrdl {

// Rank layout: tensor-parallel ranks are contiguous (rank = dp * tp + t).
class ProcessGroups {
 public:
  ProcessGroups(int world, int tensor_parallel, int expert_parallel = 1);

  int world() const { return world_; }
  int tensor_parallel() const { return tp_; }
  int data_parallel() const { return world_ / tp_; }
  int expert_parallel() const { return ep_; }

  // The TP group containing `rank` (size tensor_parallel, same node when
  // tp <= gpus-per-node under the block layout).
  std::vector<int> tp_group(int rank) const;
  // The DP group containing `rank` (ranks with the same TP index).
  std::vector<int> dp_group(int rank) const;
  // The expert-parallel group containing `rank`: consecutive slices of the
  // DP dimension of size expert_parallel (DeepSpeed-MoE style).
  std::vector<int> ep_group(int rank) const;

  // All groups of each kind (for setup loops / debugging).
  std::vector<std::vector<int>> all_tp_groups() const;
  std::vector<std::vector<int>> all_dp_groups() const;

 private:
  void check_rank(int rank) const;

  int world_;
  int tp_;
  int ep_;
};

// Result of rebuilding a hybrid-parallel layout after permanent rank loss
// (src/fault/recovery.h): the survivors renumbered densely into a smaller
// world, with flags recording which parallelism dimensions survived intact.
struct ShrunkGroups {
  ProcessGroups groups;          // layout over the shrunk world
  std::vector<int> survivors;    // old global rank per new rank (ascending)
  std::vector<int> old_to_new;   // old global rank -> new rank, -1 if lost
  bool tp_preserved = true;      // old TP degree still divides the new world
  bool ep_preserved = true;      // old EP degree still divides the new DP
};

// Shrinks `old` to the ranks not listed in `lost`. The old tensor-parallel
// degree is kept when the surviving world is still divisible by it, else TP
// collapses to 1 (a lost rank tears a hole in some TP block, so block-local
// groups cannot be preserved in general); likewise EP against the new DP
// degree. Requires at least one survivor.
ShrunkGroups shrink_process_groups(const ProcessGroups& old, const std::vector<int>& lost);

// Rebuilds the hybrid-parallel layout over whatever part of the *original*
// world is currently alive — the grow-path entry point. `lost` is the
// post-grow lost set (possibly empty: everyone rejoined). Shrinking from the
// original layout rather than from the last shrunk one means grow is exact:
// after a full rejoin the TP/DP/EP groups are byte-for-byte the seed layout,
// not an approximation recovered through intermediate collapses.
ShrunkGroups rebuild_process_groups(const ProcessGroups& original, const std::vector<int>& lost);

}  // namespace mcrdl
