// Process-group topology helpers for the hybrid-parallel schemes the paper
// targets (Section III-A): given a world laid out as
// (data-parallel x tensor-parallel) or with expert-parallel slices, build
// the rank lists each rank's collectives run over. Mirrors the group
// bookkeeping in Megatron/DeepSpeed.
#pragma once

#include <vector>

#include "src/common/status.h"

namespace mcrdl {

// Rank layout: tensor-parallel ranks are contiguous (rank = dp * tp + t).
class ProcessGroups {
 public:
  ProcessGroups(int world, int tensor_parallel, int expert_parallel = 1);

  int world() const { return world_; }
  int tensor_parallel() const { return tp_; }
  int data_parallel() const { return world_ / tp_; }
  int expert_parallel() const { return ep_; }

  // The TP group containing `rank` (size tensor_parallel, same node when
  // tp <= gpus-per-node under the block layout).
  std::vector<int> tp_group(int rank) const;
  // The DP group containing `rank` (ranks with the same TP index).
  std::vector<int> dp_group(int rank) const;
  // The expert-parallel group containing `rank`: consecutive slices of the
  // DP dimension of size expert_parallel (DeepSpeed-MoE style).
  std::vector<int> ep_group(int rank) const;

  // All groups of each kind (for setup loops / debugging).
  std::vector<std::vector<int>> all_tp_groups() const;
  std::vector<std::vector<int>> all_dp_groups() const;

 private:
  void check_rank(int rank) const;

  int world_;
  int tp_;
  int ep_;
};

}  // namespace mcrdl
