#include "src/core/op_pipeline.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/core/context.h"
#include "src/core/emulation.h"
#include "src/fault/recovery.h"
#include "src/tune/online_tuner.h"

namespace mcrdl {

int OpCall::world_size() const {
  return group.empty() ? ctx->cluster()->world_size() : static_cast<int>(group.size());
}

Comm* OpCall::comm_for(Backend* b) const {
  return group.empty() ? b->world() : b->group(group);
}

namespace {

// --- overhead: per-call host-side cost (paper C3 / Figure 7) ----------------

class OverheadStage : public OpStage {
 public:
  const char* name() const override { return "overhead"; }
  Work run(OpCall& c, const OpNext& next) override {
    if (c.ctx->options().per_call_overhead_us > 0.0) {
      c.ctx->cluster()->scheduler().sleep_for(c.ctx->options().per_call_overhead_us);
    }
    return next();
  }
};

// --- resolve: backend string -> Backend*, "auto" via the tuning table -------

class ResolveStage : public OpStage {
 public:
  const char* name() const override { return "resolve"; }
  Work run(OpCall& c, const OpNext& next) override {
    c.bytes = c.req.payload_bytes();
    if (c.req.op == OpType::Send || c.req.op == OpType::Recv) {
      // "auto" is collective-only; p2p resolves the literal name.
      c.resolved = c.ctx->backend(c.req.backend);
    } else {
      c.resolved = c.ctx->resolve(c.req.backend, c.req.op, c.bytes, c.world_size(), c.rank);
    }
    c.requested = c.resolved->name();
    return next();
  }
};

// --- fusion: admission for small all_reduce tensors (paper V-C) -------------
//
// Admission is decided once, before routing: eligibility depends only on the
// fusion config and the tensor, never on which backend an attempt lands on.

class FusionStage : public OpStage {
 public:
  const char* name() const override { return "fusion"; }
  Work run(OpCall& c, const OpNext& next) override {
    c.admit_fusion = c.req.op == OpType::AllReduce && c.ctx->fusion().eligible(c.req.tensor);
    return next();
  }
};

// --- compression: admission by op/dtype/size (paper V-E) --------------------

class CompressionStage : public OpStage {
 public:
  const char* name() const override { return "compression"; }
  Work run(OpCall& c, const OpNext& next) override {
    const Tensor& payload = c.req.op == OpType::Broadcast ? c.req.tensor : c.req.input;
    c.admit_compression = c.ctx->compression().eligible(c.req.op, payload);
    return next();
  }
};

// --- finish: CommLogger record attached on completion (paper V-D) -----------
//
// Listed before routing so that, on the unwinding completion path, it sees
// the final outcome of the whole retry/failover loop: the backend the op
// completed on, total attempts, and the last injected fault.

class FinishStage : public OpStage {
 public:
  const char* name() const override { return "finish"; }
  Work run(OpCall& c, const OpNext& next) override {
    Work w = next();
    // Always-on metrics, independent of the (opt-in) CommLogger: one
    // completion count per op/backend pair, plus an end-to-end latency
    // histogram billed with the logger's convention (execution window when
    // the backend reported one, posted-at otherwise).
    obs::MetricsRegistry& metrics = c.ctx->cluster()->metrics();
    const obs::Labels labels{{"backend", c.completed_on}, {"op", op_name(c.req.op)}};
    metrics.counter("pipeline_ops", labels).inc();
    obs::Histogram* latency = &metrics.histogram("op_latency_us", labels);
    w->on_complete([latency, start = w->posted_at, w]() {
      latency->observe(w->complete_time() - (w->exec_start >= 0.0 ? w->exec_start : start));
    });
    // Online-tuner feedback: every plain collective completion — whatever
    // backend string the caller passed — teaches the tuner about the backend
    // it actually completed on. Fused/compressed completions are skipped
    // (their latency reflects the optimisation, not the backend), as is p2p
    // ("auto" is collective-only). Pure observation: nothing moves in
    // virtual time, and with the tuner disabled this block is dead code.
    if (tune::OnlineTuner* tuner = c.ctx->online_tuner();
        tuner != nullptr && c.req.op != OpType::Send && c.req.op != OpType::Recv && !c.fused &&
        !c.compressed) {
      w->on_complete([tuner, op = c.req.op, world = c.world_size(), bytes = c.bytes,
                      backend = c.completed_on, start = w->posted_at, w]() {
        tuner->observe(op, world, bytes, backend,
                       w->complete_time() - (w->exec_start >= 0.0 ? w->exec_start : start));
      });
    }
    if (c.ctx->logger().enabled()) {
      CommLogger* logger = &c.ctx->logger();
      CommRecord rec;
      rec.rank = c.rank;
      rec.op = c.req.op;
      rec.backend = c.completed_on;
      rec.bytes = c.bytes;
      rec.start = w->posted_at;
      rec.fused = c.fused;
      rec.compressed = c.compressed;
      rec.attempts = c.attempts;
      rec.rerouted = c.rerouted;
      // Always recorded — also when the op ran where it was asked to — so
      // traces never carry stale routing info.
      rec.requested_backend = c.requested;
      rec.fault = c.fault;
      rec.epoch = c.req.epoch;
      rec.recovered = c.recovered;
      // Capturing the shared handle keeps it alive until completion; the
      // callback list is cleared when it fires, breaking the cycle.
      w->on_complete([logger, rec, w]() mutable {
        rec.end = w->complete_time();
        // Bill only the execution window when the backend reported one, so
        // compute-overlapped queueing time does not count as communication.
        if (w->exec_start >= 0.0) rec.start = w->exec_start;
        logger->record(std::move(rec));
      });
    }
    return w;
  }
};

// --- recover: elastic rank-loss recovery (src/fault/recovery.h) -------------
//
// Listed between `finish` and `route` so that, on the unwinding completion
// path, the logging stage sees the final outcome of the replay loop. Each
// pass stamps the request with the current recovery epoch and lets the rest
// of the pipeline run; when a permanent rank loss surfaces as RankLostError,
// the call parks until the epoch advances (quiesce -> shrink has completed),
// remaps its communicator/root/peer onto the survivors and replays. With
// recovery disarmed the stage is a pure pass-through — no scheduler
// interaction, no allocation — so fault-free runs stay byte-identical.

class RecoverStage : public OpStage {
 public:
  const char* name() const override { return "recover"; }
  Work run(OpCall& c, const OpNext& next) override {
    fault::FaultInjector& faults = c.ctx->cluster()->faults();
    fault::RecoveryManager& rec = faults.recovery();
    if (!rec.armed()) return next();
    // The caller's group/root/peer index the membership it was issued under;
    // every replay remaps them from these originals onto the survivors, so
    // repeated losses compose (epoch 2 remaps from the epoch-0 view, not the
    // epoch-1 one).
    const std::vector<int> original_group = c.group;
    const int original_root = c.req.root;
    const int original_peer = c.req.peer;
    int prior_attempts = 0;
    for (;;) {
      const std::uint64_t epoch = rec.epoch();
      c.req.epoch = epoch;
      if (epoch > 0) remap(c, rec, original_group, original_root, original_peer);
      try {
        Work w = next();
        c.attempts += prior_attempts;
        if (c.recovered) {
          rec.note_recovered();
          c.ctx->cluster()->metrics().counter("ops_recovered", {{"backend", c.completed_on}}).inc();
        }
        return w;
      } catch (const RankLostError&) {
        // The casualty itself never replays: let the loss surface to the
        // workload so the dying rank's actor unwinds.
        if (faults.rank_lost(c.rank)) throw;
        prior_attempts += c.attempts;
        c.recovered = true;
        c.fault = "rank_lost";
        // Park until the cluster moved past the epoch this attempt ran
        // under; replaying at the same epoch would be doomed immediately
        // (the loss event may not even have fired yet — the join was doomed
        // from the fault plan).
        rec.wait_epoch_past(epoch);
      }
    }
  }

 private:
  // Collectives whose buffer layout is a function of the communicator size.
  // Their outputs were sized for the old world, so a replay on a smaller
  // group cannot produce what the caller allocated for — the loss is
  // unrecoverable at this layer and surfaces as RankLostError.
  static bool shape_coupled(OpType op) {
    switch (op) {
      case OpType::AllGather:
      case OpType::AllGatherV:
      case OpType::Gather:
      case OpType::GatherV:
      case OpType::Scatter:
      case OpType::ScatterV:
      case OpType::ReduceScatter:
      case OpType::AllToAllSingle:
      case OpType::AllToAll:
      case OpType::AllToAllV:
        return true;
      default:
        return false;
    }
  }

  static void remap(OpCall& c, fault::RecoveryManager& rec,
                    const std::vector<int>& original_group, int original_root,
                    int original_peer) {
    std::vector<int> members = original_group;
    if (members.empty()) {
      const int world = c.ctx->cluster()->world_size();
      members.reserve(static_cast<std::size_t>(world));
      for (int r = 0; r < world; ++r) members.push_back(r);
    }
    const std::vector<int> shrunk = rec.shrink_group(members);
    if (shrunk.empty()) {
      throw RankLostError(std::string("cannot replay ") + op_name(c.req.op) +
                          ": every member of its communicator was permanently lost");
    }
    if (shrunk.size() != members.size() && shape_coupled(c.req.op)) {
      throw RankLostError(std::string(op_name(c.req.op)) +
                          " buffers are laid out for the pre-loss communicator size; not "
                          "replayable across a shrink — reshard and reissue");
    }
    const auto remap_index = [&](int index, const char* role) {
      MCRDL_CHECK(index >= 0 && index < static_cast<int>(members.size()))
          << role << " index " << index << " out of range for group of " << members.size();
      const int global = members[static_cast<std::size_t>(index)];
      const auto it = std::find(shrunk.begin(), shrunk.end(), global);
      if (it == shrunk.end()) {
        throw RankLostError(std::string(role) + " rank " + std::to_string(global) + " of " +
                            op_name(c.req.op) + " was permanently lost; unrecoverable");
      }
      return static_cast<int>(it - shrunk.begin());
    };
    switch (c.req.op) {
      case OpType::Broadcast:
      case OpType::Reduce:
      case OpType::Gather:
      case OpType::GatherV:
      case OpType::Scatter:
      case OpType::ScatterV:
        c.req.root = remap_index(original_root, "root");
        break;
      case OpType::Send:
      case OpType::Recv:
        c.req.peer = remap_index(original_peer, "peer");
        break;
      default:
        break;
    }
    c.group = shrunk;
    // Re-resolve for the shrunk world: tuning tables are keyed on message
    // size *and* world size, so "auto" may legitimately pick a different
    // backend after the shrink.
    if (c.req.op == OpType::Send || c.req.op == OpType::Recv) {
      c.resolved = c.ctx->backend(c.req.backend);
    } else {
      c.resolved = c.ctx->resolve(c.req.backend, c.req.op, c.bytes, c.world_size(), c.rank);
    }
    c.requested = c.resolved->name();
  }
};

// --- route: fault-aware retry/backoff/failover (src/fault/) -----------------

class RouteStage : public OpStage {
 public:
  const char* name() const override { return "route"; }
  Work run(OpCall& c, const OpNext& next) override {
    fault::FailoverRouter* router = c.ctx->failover();
    if (router == nullptr) {
      // Fault subsystem disabled: issue exactly once on the resolved backend.
      c.attempt_backend = c.resolved;
      Work w = next();
      c.completed_on = c.resolved->name();
      return w;
    }

    // Preference order: the resolved backend first, then init() order. All
    // ranks derive the identical order, and health is per-rank, driven only
    // by the fault verdicts this rank has observed — which are identical
    // across ranks at the same logical op (one stored verdict per
    // rendezvous). Every rank therefore walks the same retry/re-route
    // sequence for the same op, at its own pace, and collectives stay
    // aligned across retries and failover even with stragglers in flight.
    std::vector<std::string> order;
    order.push_back(c.requested);
    for (const auto& name : c.ctx->get_backends()) {
      if (name != c.requested) order.push_back(name);
    }

    obs::MetricsRegistry& metrics = c.ctx->cluster()->metrics();
    // Age the preferred backend's breaker toward its half-open probe before
    // selecting, so the op that crosses the probe threshold becomes the
    // probe itself. Collectives only: every rank issues the same collective
    // sequence, so the skip counts — and the resulting probe op — line up
    // across ranks, which rank-asymmetric p2p traffic would break.
    if (c.req.op != OpType::Send && c.req.op != OpType::Recv) {
      router->age_breaker(c.requested, c.rank);
    }

    std::string current = router->select(c.requested, order, c.rank);
    if (current != c.requested) {
      c.rerouted = true;
      c.fault = "unavailable";
      router->report().rerouted++;
      router->report().by_backend[c.requested].rerouted++;
      metrics.counter("failover_reroutes", {{"backend", c.requested}}).inc();
    }

    c.attempts = 0;
    int attempts_on_current = 0;
    for (;;) {
      ++attempts_on_current;
      ++c.attempts;
      router->report().attempted++;
      c.attempt_backend = c.ctx->backend(current);
      try {
        Work w = next();
        router->record_success(current, c.rank);
        router->report().succeeded++;
        c.completed_on = current;
        return w;
      } catch (const TransientFault& tf) {
        c.fault = "transient";
        router->record_failure(current, c.rank);
        if (attempts_on_current < router->retry().max_attempts &&
            router->healthy(current, c.rank)) {
          // Rank-keyed overload decorrelates retry storms when jitter is
          // enabled; with jitter_seed == 0 (default) it is the plain schedule.
          const SimTime backoff = router->retry().backoff(attempts_on_current, c.rank);
          router->report().retried++;
          router->report().backoff_time_us += backoff;
          metrics.counter("failover_retries", {{"backend", current}}).inc();
          c.ctx->cluster()->scheduler().sleep_for(backoff);
          continue;
        }
        // Retries exhausted (or breaker opened mid-retry): move on if we can,
        // otherwise surface the original fault as the operation's failure.
        std::string failed_backend = current;
        try {
          current = router->next_healthy(current, order, c.rank);
        } catch (const BackendUnavailable&) {
          router->report().failed++;
          router->report().by_backend[failed_backend].failed++;
          metrics.counter("failover_failures", {{"backend", failed_backend}}).inc();
          throw tf;
        }
        c.rerouted = true;
        router->report().rerouted++;
        router->report().by_backend[failed_backend].rerouted++;
        metrics.counter("failover_reroutes", {{"backend", failed_backend}}).inc();
        attempts_on_current = 0;
      } catch (const BackendUnavailable&) {
        c.fault = "unavailable";
        router->record_failure(current, c.rank);
        std::string next_backend;
        try {
          next_backend = router->next_healthy(current, order, c.rank);
        } catch (const BackendUnavailable&) {
          router->report().failed++;
          router->report().by_backend[current].failed++;
          metrics.counter("failover_failures", {{"backend", current}}).inc();
          throw;
        }
        c.rerouted = true;
        router->report().rerouted++;
        router->report().by_backend[current].rerouted++;
        metrics.counter("failover_reroutes", {{"backend", current}}).inc();
        current = next_backend;
        attempts_on_current = 0;
      } catch (const TimeoutError&) {
        // A watchdog timeout means peers are wedged mid-collective; re-routing
        // one rank alone cannot realign the group, so it is always fatal.
        router->record_failure(current, c.rank);
        router->report().failed++;
        router->report().by_backend[current].failed++;
        metrics.counter("failover_failures", {{"backend", current}}).inc();
        throw;
      }
    }
  }
};

// --- issue: the terminal stage — hand the request to a backend (paper V-B) --
//
// Runs once per routing attempt. The fused/compressed admissions were fixed
// upstream; whether the op runs natively or through an emulation recipe is
// decided here because it depends on the current attempt's backend profile.

class IssueStage : public OpStage {
 public:
  const char* name() const override { return "issue"; }
  Work run(OpCall& c, const OpNext&) override {
    // Stale-epoch guard: after an elastic shrink every live communicator was
    // rebuilt over the survivors. An op still stamped with an older epoch
    // would rendezvous against torn-down state and deadlock the new groups —
    // reject it here so the recover stage replays it instead.
    fault::RecoveryManager& recovery = c.ctx->cluster()->faults().recovery();
    if (recovery.armed() && c.req.epoch != recovery.epoch()) {
      recovery.note_stale_rejection();
      throw RankLostError("stale-epoch operation rejected: " + std::string(op_name(c.req.op)) +
                          " was stamped epoch " + std::to_string(c.req.epoch) +
                          " but the cluster is at epoch " + std::to_string(recovery.epoch()) +
                          " after rank loss; replay on the shrunk communicator");
    }
    Backend* b = c.attempt_backend;
    Comm* comm = c.comm_for(b);
    c.fused = false;
    c.compressed = false;
    if (c.admit_fusion) {
      Work w = c.ctx->fusion().all_reduce(comm, c.rank, c.req.tensor, c.req.rop);
      if (!c.req.async_op) w->wait();
      c.fused = true;
      return w;
    }
    if (c.admit_compression) {
      c.compressed = true;
      switch (c.req.op) {
        case OpType::Broadcast:
          return c.ctx->compression().broadcast(*comm, c.rank, c.req.tensor, c.req.root,
                                                c.req.async_op);
        case OpType::AllGather:
          return c.ctx->compression().all_gather(*comm, c.rank, c.req.output, c.req.input,
                                                 c.req.async_op);
        case OpType::AllToAllSingle:
          return c.ctx->compression().all_to_all_single(*comm, c.rank, c.req.output, c.req.input,
                                                        c.req.async_op);
        default:
          MCRDL_CHECK(false) << "compression admitted unsupported op " << op_name(c.req.op);
      }
    }
    if (b->profile().is_native(c.req.op)) return comm->issue(c.rank, c.req);
    return emulation::issue(*comm, c.rank, c.req);
  }
};

}  // namespace

OpPipeline::OpPipeline(McrDl* ctx) : ctx_(ctx) {
  MCRDL_REQUIRE(ctx_ != nullptr, "OpPipeline needs a context");
  stages_.push_back(std::make_unique<OverheadStage>());
  stages_.push_back(std::make_unique<ResolveStage>());
  stages_.push_back(std::make_unique<FusionStage>());
  stages_.push_back(std::make_unique<CompressionStage>());
  stages_.push_back(std::make_unique<FinishStage>());
  stages_.push_back(std::make_unique<RecoverStage>());
  stages_.push_back(std::make_unique<RouteStage>());
  stages_.push_back(std::make_unique<IssueStage>());
  rebuild_stage_histograms();
}

OpPipeline::~OpPipeline() = default;

Work OpPipeline::execute(int rank, const std::vector<int>& group, OpRequest req) {
  OpCall call;
  call.ctx = ctx_;
  call.rank = rank;
  call.group = group;
  call.req = std::move(req);
  call.stage_child_us.assign(stages_.size(), 0.0);
  return invoke(0, call);
}

// Resolves the `pipeline_stage_us{stage=...}` histogram of every stage up
// front (registry references are stable). Runs at construction and after
// each insert_* — setup-time only, so invoke() reads the vector with no
// lock even when every rank's actor executes the pipeline concurrently.
void OpPipeline::rebuild_stage_histograms() {
  stage_hist_.assign(stages_.size(), nullptr);
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    stage_hist_[i] = &ctx_->cluster()->metrics().histogram("pipeline_stage_us",
                                                           {{"stage", stages_[i]->name()}});
  }
}

// Each stage's histogram records its *exclusive* virtual time: the chain is
// linear (stage i only invokes stage i+1, possibly several times for
// retries), so exclusive time is this invocation's total minus the time its
// child invocations accumulated into stage_child_us[index]. Reading now()
// is side-effect-free, so the instrumentation cannot move a virtual-time
// stamp — the golden-trace tests pin this.
Work OpPipeline::invoke(std::size_t index, OpCall& call) {
  MCRDL_CHECK(index < stages_.size()) << "pipeline ran off the end — missing terminal stage?";
  sim::Scheduler& sched = ctx_->cluster()->scheduler();
  const SimTime start = sched.now();
  const double child_before = call.stage_child_us[index];
  const auto settle = [&]() {
    const double total = sched.now() - start;
    if (index > 0) call.stage_child_us[index - 1] += total;
    return total - (call.stage_child_us[index] - child_before);
  };
  try {
    Work w = stages_[index]->run(call, [this, index, &call]() { return invoke(index + 1, call); });
    stage_hist_[index]->observe(settle());
    return w;
  } catch (...) {
    // Failed attempts still credit their time to the parent so the routing
    // stage's exclusive time stays exact; only completed invocations are
    // observed in the histogram.
    settle();
    throw;
  }
}

std::vector<std::string> OpPipeline::stage_names() const {
  std::vector<std::string> names;
  names.reserve(stages_.size());
  for (const auto& s : stages_) names.emplace_back(s->name());
  return names;
}

std::size_t OpPipeline::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (name == stages_[i]->name()) return i;
  }
  throw InvalidArgument("OpPipeline has no stage named '" + name + "'");
}

void OpPipeline::insert_before(const std::string& name, std::unique_ptr<OpStage> stage) {
  MCRDL_REQUIRE(stage != nullptr, "insert_before needs a stage");
  stages_.insert(stages_.begin() + static_cast<std::ptrdiff_t>(index_of(name)), std::move(stage));
  rebuild_stage_histograms();
}

void OpPipeline::insert_after(const std::string& name, std::unique_ptr<OpStage> stage) {
  MCRDL_REQUIRE(stage != nullptr, "insert_after needs a stage");
  stages_.insert(stages_.begin() + static_cast<std::ptrdiff_t>(index_of(name)) + 1,
                 std::move(stage));
  rebuild_stage_histograms();
}

}  // namespace mcrdl
