#include "src/core/op_pipeline.h"

#include <algorithm>
#include <map>
#include <shared_mutex>
#include <utility>

#include "src/common/logging.h"
#include "src/core/context.h"
#include "src/core/emulation.h"
#include "src/fault/recovery.h"
#include "src/tune/online_tuner.h"

namespace mcrdl {

int OpCall::world_size() const {
  return group.empty() ? ctx->cluster()->world_size() : static_cast<int>(group.size());
}

Comm* OpCall::comm_for(Backend* b) const {
  return group.empty() ? b->world() : b->group(group);
}

void OpCall::recycle() {
  ctx = nullptr;
  rank = 0;
  group.clear();
  req.recycle();
  bytes = 0;
  resolved = nullptr;
  requested.clear();
  admit_fusion = false;
  admit_compression = false;
  attempt_backend = nullptr;
  attempts = 1;
  rerouted = false;
  fault.clear();
  completed_on.clear();
  recovered = false;
  fused = false;
  compressed = false;
  is_composite = false;
  composite.algo = coll::CompositeAlgo::Hier;
  composite.intra.clear();
  composite.inter.clear();
  composite.text.clear();
  fast = false;
  plan = nullptr;
  // stage_child_us keeps its buffer; execute() re-sizes it per dispatch.
}

Work OpNext::operator()() const { return pipeline_->invoke(pos_, *call_); }

namespace {

// --- overhead: per-call host-side cost (paper C3 / Figure 7) ----------------

class OverheadStage : public OpStage {
 public:
  const char* name() const override { return "overhead"; }
  Work run(OpCall& c, const OpNext& next) override {
    // Nested sub-ops of a composite pay no host overhead of their own: the
    // caller made ONE MCR-DL call, billed on the parent's pass through here.
    if (!c.req.nested && c.ctx->options().per_call_overhead_us > 0.0) {
      c.ctx->cluster()->scheduler().sleep_for(c.ctx->options().per_call_overhead_us);
    }
    return next();
  }
  bool provably_noop(const StagePlanInputs& in) const override { return !in.overhead_on; }
};

// --- resolve: backend string -> Backend*, "auto" via the tuning table -------

class ResolveStage : public OpStage {
 public:
  const char* name() const override { return "resolve"; }
  Work run(OpCall& c, const OpNext& next) override {
    c.bytes = c.req.payload_bytes();
    if (c.req.op == OpType::Send || c.req.op == OpType::Recv) {
      // "auto" is collective-only; p2p resolves the literal name.
      c.resolved = c.ctx->backend(c.req.backend);
      c.requested = c.resolved->name();
      return next();
    }
    const std::string choice =
        c.ctx->resolve_string(c.req.backend, c.req.op, c.bytes, c.world_size(), c.rank);
    // With composites enabled the choice may be an algorithm string rather
    // than a backend — either passed explicitly or picked by the tuner from
    // its composite arms. `resolved` stays null; the coll stage launches it.
    // Nested sub-ops always name concrete backends (no composite recursion).
    if (c.ctx->coll_enabled() && !c.req.nested) {
      if (auto spec = coll::parse(choice)) {
        if (c.req.op != OpType::AllReduce) {
          throw InvalidArgument("composite '" + choice + "' implements all_reduce only, not " +
                                op_name(c.req.op));
        }
        c.ctx->validate_composite(*spec);
        c.is_composite = true;
        c.composite = std::move(*spec);
        c.requested = c.composite.text;
        return next();
      }
    }
    c.resolved = c.ctx->backend(choice);
    c.requested = c.resolved->name();
    return next();
  }
};

// --- fusion: bucketing admission for small collectives (paper V-C) ----------
//
// Admission is decided once, before routing: eligibility depends only on the
// fusion config, the op and the tensor, never on which backend an attempt
// lands on.

class FusionStage : public OpStage {
 public:
  const char* name() const override { return "fusion"; }
  Work run(OpCall& c, const OpNext& next) override {
    // Composites and their nested sub-ops never bucket: a fused sub-op would
    // complete only at the next flush, stalling the chain's phase progression.
    c.admit_fusion = !c.req.nested && !c.is_composite &&
                     c.ctx->fusion().eligible(c.req.op, c.req.tensor);
    return next();
  }
  bool provably_noop(const StagePlanInputs& in) const override {
    return !in.fusion_on || !in.ctx->fusion().admits(in.op);
  }
};

// --- compression: admission by op/dtype/size (paper V-E) --------------------

class CompressionStage : public OpStage {
 public:
  const char* name() const override { return "compression"; }
  Work run(OpCall& c, const OpNext& next) override {
    const Tensor& payload = c.req.op == OpType::Broadcast ? c.req.tensor : c.req.input;
    // Nested sub-ops carry slices of an uncompressed parent payload; lossy
    // per-leg compression would compound across the composite's levels.
    c.admit_compression = !c.req.nested && !c.is_composite &&
                          c.ctx->compression().eligible(c.req.op, payload);
    return next();
  }
  bool provably_noop(const StagePlanInputs& in) const override {
    return !in.compression_on || !CompressionLayer::op_supported(in.op);
  }
};

// --- finish: CommLogger record attached on completion (paper V-D) -----------
//
// Listed before routing so that, on the unwinding completion path, it sees
// the final outcome of the whole retry/failover loop: the backend the op
// completed on, total attempts, and the last injected fault.

class FinishStage : public OpStage {
 public:
  const char* name() const override { return "finish"; }
  Work run(OpCall& c, const OpNext& next) override {
    Work w = next();
    // Always-on metrics, independent of the (opt-in) CommLogger: one
    // completion count per op/backend pair, plus an end-to-end latency
    // histogram billed with the logger's convention (execution window when
    // the backend reported one, posted-at otherwise). Fast-path calls use
    // the per-(backend, op) handle cache; the slow path rebuilds the label
    // maps per call, as the pre-fast-path dispatch did.
    obs::MetricsRegistry& metrics = c.ctx->cluster()->metrics();
    obs::Counter* ops = nullptr;
    obs::Histogram* latency = nullptr;
    if (c.fast) {
      const Handles& h = cached(c.completed_on, c.req.op, metrics);
      ops = h.ops;
      latency = h.latency;
    } else {
      const obs::Labels labels{{"backend", c.completed_on}, {"op", op_name(c.req.op)}};
      ops = &metrics.counter("pipeline_ops", labels);
      latency = &metrics.histogram("op_latency_us", labels);
    }
    ops->inc();
    // Bucketed ops bill latency differently: the fusion layer observes every
    // entry's end-to-end latency in ONE batch-level closure at flush
    // completion (src/core/fusion.cc), so the common bucketed dispatch — no
    // tuner (always skipped for fused ops) and no logger — registers no
    // per-op completion closure at all. With the logger enabled a closure is
    // still built for the trace record, but its latency handle is nulled so
    // the histogram is never fed twice.
    if (c.fused) {
      if (!c.ctx->logger().enabled()) return w;
      latency = nullptr;
    }
    // Online-tuner feedback: every plain collective completion — whatever
    // backend string the caller passed — teaches the tuner about the backend
    // it actually completed on. Fused/compressed completions are skipped
    // (their latency reflects the optimisation, not the backend), as is p2p
    // ("auto" is collective-only). Pure observation: nothing moves in
    // virtual time, and with the tuner disabled this block is dead code.
    tune::OnlineTuner* tuner = c.ctx->online_tuner();
    // Nested sub-ops of a composite are also skipped: the parent composite's
    // completion is the one that teaches the tuner about its arm — crediting
    // each leg separately would double-count the composite's latency.
    if (tuner != nullptr && (c.req.op == OpType::Send || c.req.op == OpType::Recv || c.fused ||
                             c.compressed || c.req.nested)) {
      tuner = nullptr;
    }
    CommLogger* logger = c.ctx->logger().enabled() ? &c.ctx->logger() : nullptr;
    if (tuner == nullptr && logger == nullptr && w->test()) {
      // Already complete (synchronous issue): observe inline instead of
      // allocating a completion closure that would fire immediately.
      latency->observe(w->complete_time() - (w->exec_start >= 0.0 ? w->exec_start : w->posted_at));
      return w;
    }
    // One merged completion callback instead of three: a single closure
    // allocation carries the latency observation, the optional tuner
    // feedback and the optional trace record. Capturing the shared handle
    // keeps it alive until completion; every completion path — finish as
    // well as fail/cancel — clears the callback list, so the self-reference
    // cannot keep a never-firing Work alive.
    Completion done;
    done.w = w;
    done.latency = latency;
    done.tuner = tuner;
    if (tuner != nullptr) {
      done.op = c.req.op;
      done.world = c.world_size();
      done.bytes = c.bytes;
      done.backend = c.completed_on;
    }
    done.logger = logger;
    if (logger != nullptr) {
      CommRecord& rec = done.rec;
      rec.rank = c.rank;
      rec.op = c.req.op;
      rec.backend = c.completed_on;
      rec.bytes = c.bytes;
      rec.start = w->posted_at;
      rec.fused = c.fused;
      rec.compressed = c.compressed;
      rec.attempts = c.attempts;
      rec.rerouted = c.rerouted;
      // Always recorded — also when the op ran where it was asked to — so
      // traces never carry stale routing info.
      rec.requested_backend = c.requested;
      rec.fault = c.fault;
      rec.epoch = c.req.epoch;
      rec.recovered = c.recovered;
    }
    w->on_complete([d = std::move(done)]() mutable {
      const SimTime start = d.w->exec_start >= 0.0 ? d.w->exec_start : d.w->posted_at;
      const SimTime end = d.w->complete_time();
      if (d.latency != nullptr) d.latency->observe(end - start);
      if (d.tuner != nullptr) d.tuner->observe(d.op, d.world, d.bytes, d.backend, end - start);
      if (d.logger != nullptr) {
        d.rec.end = end;
        // Bill only the execution window when the backend reported one, so
        // compute-overlapped queueing time does not count as communication.
        if (d.w->exec_start >= 0.0) d.rec.start = d.w->exec_start;
        d.logger->record(std::move(d.rec));
      }
    });
    return w;
  }

 private:
  struct Handles {
    obs::Counter* ops = nullptr;
    obs::Histogram* latency = nullptr;
  };
  struct Completion {
    Work w;
    obs::Histogram* latency = nullptr;
    tune::OnlineTuner* tuner = nullptr;
    OpType op = OpType::Barrier;
    int world = 0;
    std::size_t bytes = 0;
    std::string backend;
    CommLogger* logger = nullptr;
    CommRecord rec;
  };

  // Registry references are stable for its lifetime, so handles are resolved
  // once per (backend, op) pair and the per-call label-map construction —
  // four small-map node allocations per dispatch — disappears from the hot
  // path. Backend names are SSO-short, so cache lookups do not allocate.
  const Handles& cached(const std::string& backend, OpType op, obs::MetricsRegistry& metrics) {
    const std::pair<std::string, int> key{backend, static_cast<int>(op)};
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    const obs::Labels labels{{"backend", backend}, {"op", op_name(op)}};
    Handles h{&metrics.counter("pipeline_ops", labels),
              &metrics.histogram("op_latency_us", labels)};
    std::unique_lock<std::shared_mutex> lock(mu_);
    return cache_.emplace(key, h).first->second;
  }

  std::shared_mutex mu_;
  std::map<std::pair<std::string, int>, Handles> cache_;
};

// --- recover: elastic rank-loss recovery (src/fault/recovery.h) -------------
//
// Listed between `finish` and `route` so that, on the unwinding completion
// path, the logging stage sees the final outcome of the replay loop. Each
// pass stamps the request with the current recovery epoch and lets the rest
// of the pipeline run; when a permanent rank loss surfaces as RankLostError,
// the call parks until the epoch advances (quiesce -> shrink has completed),
// remaps its communicator/root/peer onto the survivors and replays. With
// recovery disarmed the stage is a pure pass-through — no scheduler
// interaction, no allocation — so fault-free runs stay byte-identical (and
// the plan compiler elides it outright on the fast path).

class RecoverStage : public OpStage {
 public:
  const char* name() const override { return "recover"; }
  bool provably_noop(const StagePlanInputs& in) const override { return !in.recovery_armed; }
  Work run(OpCall& c, const OpNext& next) override {
    fault::FaultInjector& faults = c.ctx->cluster()->faults();
    fault::RecoveryManager& rec = faults.recovery();
    if (!rec.armed()) return next();
    // Nested sub-ops keep the epoch their parent composite stamped: a loss
    // mid-chain must fail the whole chain (whose parent frame — or recover
    // closure — replays the composite), not silently replay one leg on a
    // communicator the other legs no longer match.
    if (c.req.nested) return next();
    // The caller's group/root/peer index the membership it was issued under;
    // every replay remaps them from these originals onto the survivors, so
    // repeated losses compose (epoch 2 remaps from the epoch-0 view, not the
    // epoch-1 one).
    const std::vector<int> original_group = c.group;
    const int original_root = c.req.root;
    const int original_peer = c.req.peer;
    int prior_attempts = 0;
    for (;;) {
      const std::uint64_t epoch = rec.epoch();
      c.req.epoch = epoch;
      if (epoch > 0) remap(c, rec, original_group, original_root, original_peer);
      try {
        Work w = next();
        c.attempts += prior_attempts;
        if (c.recovered) {
          rec.note_recovered();
          c.ctx->cluster()->metrics().counter("ops_recovered", {{"backend", c.completed_on}}).inc();
        }
        return w;
      } catch (const RankLostError&) {
        // The casualty itself never replays: let the loss surface to the
        // workload so the dying rank's actor unwinds.
        if (faults.rank_lost(c.rank)) throw;
        prior_attempts += c.attempts;
        c.recovered = true;
        c.fault = "rank_lost";
        // Park until the cluster moved past the epoch this attempt ran
        // under; replaying at the same epoch would be doomed immediately
        // (the loss event may not even have fired yet — the join was doomed
        // from the fault plan).
        rec.wait_epoch_past(epoch);
      }
    }
  }

 private:
  // Collectives whose buffer layout is a function of the communicator size.
  // Their outputs were sized for the old world, so a replay on a smaller
  // group cannot produce what the caller allocated for — the loss is
  // unrecoverable at this layer and surfaces as RankLostError.
  static bool shape_coupled(OpType op) {
    switch (op) {
      case OpType::AllGather:
      case OpType::AllGatherV:
      case OpType::Gather:
      case OpType::GatherV:
      case OpType::Scatter:
      case OpType::ScatterV:
      case OpType::ReduceScatter:
      case OpType::AllToAllSingle:
      case OpType::AllToAll:
      case OpType::AllToAllV:
        return true;
      default:
        return false;
    }
  }

  static void remap(OpCall& c, fault::RecoveryManager& rec,
                    const std::vector<int>& original_group, int original_root,
                    int original_peer) {
    std::vector<int> members = original_group;
    if (members.empty()) {
      const int world = c.ctx->cluster()->world_size();
      members.reserve(static_cast<std::size_t>(world));
      for (int r = 0; r < world; ++r) members.push_back(r);
    }
    const std::vector<int> shrunk = rec.shrink_group(members);
    if (shrunk.empty()) {
      throw RankLostError(std::string("cannot replay ") + op_name(c.req.op) +
                          ": every member of its communicator was permanently lost");
    }
    if (shrunk.size() != members.size() && shape_coupled(c.req.op)) {
      throw RankLostError(std::string(op_name(c.req.op)) +
                          " buffers are laid out for the pre-loss communicator size; not "
                          "replayable across a shrink — reshard and reissue");
    }
    const auto remap_index = [&](int index, const char* role) {
      MCRDL_CHECK(index >= 0 && index < static_cast<int>(members.size()))
          << role << " index " << index << " out of range for group of " << members.size();
      const int global = members[static_cast<std::size_t>(index)];
      const auto it = std::find(shrunk.begin(), shrunk.end(), global);
      if (it == shrunk.end()) {
        throw RankLostError(std::string(role) + " rank " + std::to_string(global) + " of " +
                            op_name(c.req.op) + " was permanently lost; unrecoverable");
      }
      return static_cast<int>(it - shrunk.begin());
    };
    switch (c.req.op) {
      case OpType::Broadcast:
      case OpType::Reduce:
      case OpType::Gather:
      case OpType::GatherV:
      case OpType::Scatter:
      case OpType::ScatterV:
        c.req.root = remap_index(original_root, "root");
        break;
      case OpType::Send:
      case OpType::Recv:
        c.req.peer = remap_index(original_peer, "peer");
        break;
      default:
        break;
    }
    c.group = shrunk;
    // A composite keeps its algorithm across the replay (stable choice, like
    // a concrete backend string would be) and re-derives its subgroups from
    // the shrunk membership at launch — nothing to re-resolve here.
    if (c.is_composite) return;
    // Re-resolve for the shrunk world: tuning tables are keyed on message
    // size *and* world size, so "auto" may legitimately pick a different
    // backend after the shrink.
    if (c.req.op == OpType::Send || c.req.op == OpType::Recv) {
      c.resolved = c.ctx->backend(c.req.backend);
    } else {
      c.resolved = c.ctx->resolve(c.req.backend, c.req.op, c.bytes, c.world_size(), c.rank);
    }
    c.requested = c.resolved->name();
  }
};

// --- coll: composite collective launch (src/coll/, DESIGN.md §15) -----------
//
// Terminal for composite calls: the resolve stage parsed the algorithm
// string, this stage hands the call to coll::launch, which chains nested
// sub-operations back through the full pipeline (each leg re-enters at the
// top with req.nested set, so fault routing, metrics and traces see every
// leg individually). Plain calls pass straight through to route/issue; with
// the subsystem disabled the stage is provably no-op and elided.

class CollStage : public OpStage {
 public:
  const char* name() const override { return "coll"; }
  bool provably_noop(const StagePlanInputs& in) const override { return !in.coll_on; }
  Work run(OpCall& c, const OpNext& next) override {
    if (!c.is_composite) return next();
    // Stale-epoch guard, mirroring the issue stage: a composite stamped
    // before a shrink would chain sub-ops against torn-down communicators.
    // Rejecting here bounces the whole composite back to the recover stage.
    fault::RecoveryManager& recovery = c.ctx->cluster()->faults().recovery();
    if (recovery.armed() && c.req.epoch != recovery.epoch()) {
      recovery.note_stale_rejection();
      throw RankLostError("stale-epoch composite rejected: " + c.composite.text +
                          " was stamped epoch " + std::to_string(c.req.epoch) +
                          " but the cluster is at epoch " + std::to_string(recovery.epoch()) +
                          " after rank loss; replay on the shrunk communicator");
    }
    Work w = coll::launch(c.ctx->coll_launch(), c.composite, c.rank, c.group, c.req);
    c.completed_on = c.composite.text;
    // Synchronous composites drive their chain to completion right here, so
    // a rank loss surfaces as RankLostError inside this pipeline frame and
    // the recover stage above parks, remaps and replays the whole composite.
    if (!c.req.async_op) w->wait();
    return w;
  }
};

// --- route: fault-aware retry/backoff/failover (src/fault/) -----------------

class RouteStage : public OpStage {
 public:
  const char* name() const override { return "route"; }
  Work run(OpCall& c, const OpNext& next) override {
    fault::FailoverRouter* router = c.ctx->failover();
    if (router == nullptr) {
      // Fault subsystem disabled: issue exactly once on the resolved backend.
      c.attempt_backend = c.resolved;
      Work w = next();
      c.completed_on = c.resolved->name();
      return w;
    }

    // Preference order: the resolved backend first, then init() order. All
    // ranks derive the identical order, and health is per-rank, driven only
    // by the fault verdicts this rank has observed — which are identical
    // across ranks at the same logical op (one stored verdict per
    // rendezvous). Every rank therefore walks the same retry/re-route
    // sequence for the same op, at its own pace, and collectives stay
    // aligned across retries and failover even with stragglers in flight.
    std::vector<std::string> order;
    order.push_back(c.requested);
    for (const auto& name : c.ctx->get_backends()) {
      if (name != c.requested) order.push_back(name);
    }

    obs::MetricsRegistry& metrics = c.ctx->cluster()->metrics();
    // Age the preferred backend's breaker toward its half-open probe before
    // selecting, so the op that crosses the probe threshold becomes the
    // probe itself. Collectives only: every rank issues the same collective
    // sequence, so the skip counts — and the resulting probe op — line up
    // across ranks, which rank-asymmetric p2p traffic would break.
    if (c.req.op != OpType::Send && c.req.op != OpType::Recv) {
      router->age_breaker(c.requested, c.rank);
    }

    std::string current = router->select(c.requested, order, c.rank);
    if (current != c.requested) {
      c.rerouted = true;
      c.fault = "unavailable";
      router->report().rerouted++;
      router->report().by_backend[c.requested].rerouted++;
      metrics.counter("failover_reroutes", {{"backend", c.requested}}).inc();
    }

    c.attempts = 0;
    int attempts_on_current = 0;
    for (;;) {
      ++attempts_on_current;
      ++c.attempts;
      router->report().attempted++;
      c.attempt_backend = c.ctx->backend(current);
      try {
        Work w = next();
        router->record_success(current, c.rank);
        router->report().succeeded++;
        c.completed_on = current;
        return w;
      } catch (const TransientFault& tf) {
        c.fault = "transient";
        router->record_failure(current, c.rank);
        if (attempts_on_current < router->retry().max_attempts &&
            router->healthy(current, c.rank)) {
          // Rank-keyed overload decorrelates retry storms when jitter is
          // enabled; with jitter_seed == 0 (default) it is the plain schedule.
          const SimTime backoff = router->retry().backoff(attempts_on_current, c.rank);
          router->report().retried++;
          router->report().backoff_time_us += backoff;
          metrics.counter("failover_retries", {{"backend", current}}).inc();
          c.ctx->cluster()->scheduler().sleep_for(backoff);
          continue;
        }
        // Retries exhausted (or breaker opened mid-retry): move on if we can,
        // otherwise surface the original fault as the operation's failure.
        std::string failed_backend = current;
        try {
          current = router->next_healthy(current, order, c.rank);
        } catch (const BackendUnavailable&) {
          router->report().failed++;
          router->report().by_backend[failed_backend].failed++;
          metrics.counter("failover_failures", {{"backend", failed_backend}}).inc();
          throw tf;
        }
        c.rerouted = true;
        router->report().rerouted++;
        router->report().by_backend[failed_backend].rerouted++;
        metrics.counter("failover_reroutes", {{"backend", failed_backend}}).inc();
        attempts_on_current = 0;
      } catch (const BackendUnavailable&) {
        c.fault = "unavailable";
        router->record_failure(current, c.rank);
        std::string next_backend;
        try {
          next_backend = router->next_healthy(current, order, c.rank);
        } catch (const BackendUnavailable&) {
          router->report().failed++;
          router->report().by_backend[current].failed++;
          metrics.counter("failover_failures", {{"backend", current}}).inc();
          throw;
        }
        c.rerouted = true;
        router->report().rerouted++;
        router->report().by_backend[current].rerouted++;
        metrics.counter("failover_reroutes", {{"backend", current}}).inc();
        current = next_backend;
        attempts_on_current = 0;
      } catch (const TimeoutError&) {
        // A watchdog timeout means peers are wedged mid-collective; re-routing
        // one rank alone cannot realign the group, so it is always fatal.
        router->record_failure(current, c.rank);
        router->report().failed++;
        router->report().by_backend[current].failed++;
        metrics.counter("failover_failures", {{"backend", current}}).inc();
        throw;
      }
    }
  }
};

// --- issue: the terminal stage — hand the request to a backend (paper V-B) --
//
// Runs once per routing attempt. The fused/compressed admissions were fixed
// upstream; whether the op runs natively or through an emulation recipe is
// decided here because it depends on the current attempt's backend profile.

class IssueStage : public OpStage {
 public:
  const char* name() const override { return "issue"; }
  Work run(OpCall& c, const OpNext&) override {
    // Stale-epoch guard: after an elastic shrink every live communicator was
    // rebuilt over the survivors. An op still stamped with an older epoch
    // would rendezvous against torn-down state and deadlock the new groups —
    // reject it here so the recover stage replays it instead.
    fault::RecoveryManager& recovery = c.ctx->cluster()->faults().recovery();
    if (recovery.armed() && c.req.epoch != recovery.epoch()) {
      recovery.note_stale_rejection();
      throw RankLostError("stale-epoch operation rejected: " + std::string(op_name(c.req.op)) +
                          " was stamped epoch " + std::to_string(c.req.epoch) +
                          " but the cluster is at epoch " + std::to_string(recovery.epoch()) +
                          " after rank loss; replay on the shrunk communicator");
    }
    Backend* b = c.attempt_backend;
    Comm* comm = c.comm_for(b);
    c.fused = false;
    c.compressed = false;
    if (c.admit_fusion) {
      Work w = c.ctx->fusion().submit(comm, c.rank, c.req.op, c.req.tensor, c.req.rop, c.req.root);
      if (!c.req.async_op) w->wait();
      c.fused = true;
      return w;
    }
    if (c.admit_compression) {
      c.compressed = true;
      switch (c.req.op) {
        case OpType::Broadcast:
          return c.ctx->compression().broadcast(*comm, c.rank, c.req.tensor, c.req.root,
                                                c.req.async_op);
        case OpType::AllGather:
          return c.ctx->compression().all_gather(*comm, c.rank, c.req.output, c.req.input,
                                                 c.req.async_op);
        case OpType::AllToAllSingle:
          return c.ctx->compression().all_to_all_single(*comm, c.rank, c.req.output, c.req.input,
                                                        c.req.async_op);
        default:
          MCRDL_CHECK(false) << "compression admitted unsupported op " << op_name(c.req.op);
      }
    }
    if (b->profile().is_native(c.req.op)) return comm->issue(c.rank, c.req);
    return emulation::issue(*comm, c.rank, c.req);
  }
};

}  // namespace

// RAII lease of an arena OpCall: releases (recycles) the slot on every exit
// path, including exceptions unwinding out of the stage chain. Safe because
// nothing keeps a reference to the OpCall past execute() — completion
// closures copy the fields they need.
class OpPipeline::ArenaLease {
 public:
  ArenaLease(OpPipeline* pipeline, int rank)
      : pipeline_(pipeline), rank_(rank), call_(pipeline->arena_acquire(rank)) {}
  ~ArenaLease() { pipeline_->arena_release(rank_, call_); }
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;
  OpCall& call() { return *call_; }

 private:
  OpPipeline* pipeline_;
  int rank_;
  OpCall* call_;
};

OpPipeline::OpPipeline(McrDl* ctx) : ctx_(ctx) {
  MCRDL_REQUIRE(ctx_ != nullptr, "OpPipeline needs a context");
  stages_.push_back(std::make_unique<OverheadStage>());
  stages_.push_back(std::make_unique<ResolveStage>());
  stages_.push_back(std::make_unique<FusionStage>());
  stages_.push_back(std::make_unique<CompressionStage>());
  stages_.push_back(std::make_unique<FinishStage>());
  stages_.push_back(std::make_unique<RecoverStage>());
  stages_.push_back(std::make_unique<CollStage>());
  stages_.push_back(std::make_unique<RouteStage>());
  stages_.push_back(std::make_unique<IssueStage>());
  rebuild_stage_histograms();
  pool_count_ = static_cast<std::size_t>(std::max(0, ctx_->cluster()->world_size()));
  pools_ = std::make_unique<RankPool[]>(pool_count_);
}

OpPipeline::~OpPipeline() = default;

Work OpPipeline::execute(int rank, const std::vector<int>& group, OpRequest req) {
  const PlanTable* table = plan_table();
  if (!ctx_->options().fast_dispatch) {
    // Slow path — the pre-fast-path dispatch shape, kept as the referee: a
    // fresh OpCall per op, every stage invoked, per-call label maps in the
    // finish stage. Golden traces pin that both shapes are byte-identical.
    OpCall call;
    call.ctx = ctx_;
    call.rank = rank;
    call.group = group;
    call.req = std::move(req);
    call.plan = &table->full;
    call.stage_child_us.assign(table->full.seq.size(), 0.0);
    return invoke(0, call);
  }
  const StagePlan& plan =
      table->plans[static_cast<std::size_t>(req.op) * kMaskCount + config_mask()];
  ArenaLease lease(this, rank);
  OpCall& call = lease.call();
  call.ctx = ctx_;
  call.rank = rank;
  call.fast = true;
  call.plan = &plan;
  // Copy-assign (not move) into the recycled slot so its container capacity
  // is reused instead of replaced.
  call.group = group;
  call.req = req;
  call.stage_child_us.assign(plan.seq.size(), 0.0);
  Work w = invoke(0, call);
  // Elided stages observe exactly what their no-op invocation would have:
  // zero exclusive virtual time, once per completed op.
  for (const std::uint8_t idx : plan.skipped) stage_hist_[idx]->observe(0.0);
  return w;
}

// Resolves the `pipeline_stage_us{stage=...}` histogram of every stage up
// front (registry references are stable). Runs at construction and after
// each insert_* — setup-time only, so invoke() reads the vector with no
// lock even when every rank's actor executes the pipeline concurrently.
void OpPipeline::rebuild_stage_histograms() {
  stage_hist_.assign(stages_.size(), nullptr);
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    stage_hist_[i] = &ctx_->cluster()->metrics().histogram("pipeline_stage_us",
                                                           {{"stage", stages_[i]->name()}});
  }
}

// Each stage's histogram records its *exclusive* virtual time: the chain is
// linear (plan position p only invokes position p+1, possibly several times
// for retries), so exclusive time is this invocation's total minus the time
// its child invocations accumulated into stage_child_us[pos]. Reading now()
// is side-effect-free, so the instrumentation cannot move a virtual-time
// stamp — the golden-trace tests pin this.
Work OpPipeline::invoke(std::size_t pos, OpCall& call) {
  const StagePlan& plan = *call.plan;
  MCRDL_CHECK(pos < plan.seq.size()) << "pipeline ran off the end — missing terminal stage?";
  const std::size_t index = plan.seq[pos];
  sim::Scheduler& sched = ctx_->cluster()->scheduler();
  const SimTime start = sched.now();
  const double child_before = call.stage_child_us[pos];
  const auto settle = [&]() {
    const double total = sched.now() - start;
    if (pos > 0) call.stage_child_us[pos - 1] += total;
    return total - (call.stage_child_us[pos] - child_before);
  };
  try {
    Work w = stages_[index]->run(call, OpNext(this, &call, pos + 1));
    stage_hist_[index]->observe(settle());
    return w;
  } catch (...) {
    // Failed attempts still credit their time to the parent so the routing
    // stage's exclusive time stays exact; only completed invocations are
    // observed in the histogram.
    settle();
    throw;
  }
}

// ---------------------------------------------------------------------------
// Stage plans
// ---------------------------------------------------------------------------

unsigned OpPipeline::config_mask() const {
  unsigned mask = 0;
  if (ctx_->options().per_call_overhead_us > 0.0) mask |= kMaskOverhead;
  if (ctx_->fusion().config().enabled) mask |= kMaskFusion;
  if (ctx_->compression().config().enabled) mask |= kMaskCompression;
  if (ctx_->cluster()->faults().recovery().armed()) mask |= kMaskRecovery;
  if (ctx_->coll_enabled()) mask |= kMaskColl;
  return mask;
}

std::uint64_t OpPipeline::config_version() const {
  return static_cast<std::uint64_t>(ctx_->fusion().config_version()) |
         (static_cast<std::uint64_t>(ctx_->compression().config_version()) << 32);
}

const OpPipeline::PlanTable* OpPipeline::plan_table() {
  const std::uint64_t version = config_version();
  const PlanTable* table = plans_.load(std::memory_order_acquire);
  if (table != nullptr && table->config_version == version) return table;
  return recompile_plans(version);
}

// Compiles the plan of every (op, dynamic-toggle mask) pair by asking each
// stage whether it is provably a no-op under that snapshot. Rare: runs on
// first dispatch, after insert_*, and when a fusion/compression set_config
// bumps its version. Superseded tables are retired, not freed, so plan
// pointers held by in-flight calls stay valid across a recompile.
const OpPipeline::PlanTable* OpPipeline::recompile_plans(std::uint64_t version) {
  std::lock_guard<std::mutex> lock(plan_mu_);
  const PlanTable* current = plans_.load(std::memory_order_acquire);
  if (current != nullptr && current->config_version == version) return current;
  auto table = std::make_unique<PlanTable>();
  table->config_version = version;
  table->full.seq.resize(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    table->full.seq[i] = static_cast<std::uint8_t>(i);
  }
  table->plans.resize(kOpCount * kMaskCount);
  for (std::size_t op = 0; op < kOpCount; ++op) {
    for (std::size_t mask = 0; mask < kMaskCount; ++mask) {
      StagePlanInputs in;
      in.ctx = ctx_;
      in.op = static_cast<OpType>(op);
      in.overhead_on = (mask & kMaskOverhead) != 0;
      in.fusion_on = (mask & kMaskFusion) != 0;
      in.compression_on = (mask & kMaskCompression) != 0;
      in.recovery_armed = (mask & kMaskRecovery) != 0;
      in.coll_on = (mask & kMaskColl) != 0;
      StagePlan& plan = table->plans[op * kMaskCount + mask];
      for (std::size_t i = 0; i < stages_.size(); ++i) {
        if (stages_[i]->provably_noop(in)) {
          plan.skipped.push_back(static_cast<std::uint8_t>(i));
        } else {
          plan.seq.push_back(static_cast<std::uint8_t>(i));
        }
      }
    }
  }
  const PlanTable* out = table.get();
  plan_history_.push_back(std::move(table));
  plans_.store(out, std::memory_order_release);
  return out;
}

std::vector<std::string> OpPipeline::active_stage_names(OpType op) {
  const PlanTable* table = plan_table();
  const StagePlan& plan =
      table->plans[static_cast<std::size_t>(op) * kMaskCount + config_mask()];
  std::vector<std::string> names;
  names.reserve(plan.seq.size());
  for (const std::uint8_t idx : plan.seq) names.emplace_back(stages_[idx]->name());
  return names;
}

// ---------------------------------------------------------------------------
// Dispatch arena
// ---------------------------------------------------------------------------

OpCall* OpPipeline::arena_acquire(int rank) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= pool_count_) return new OpCall();
  RankPool& pool = pools_[static_cast<std::size_t>(rank)];
  if (pool.free.empty()) {
    pool.created.fetch_add(1, std::memory_order_relaxed);
    return new OpCall();
  }
  OpCall* call = pool.free.back().release();
  pool.free.pop_back();
  return call;
}

void OpPipeline::arena_release(int rank, OpCall* call) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= pool_count_) {
    delete call;
    return;
  }
  call->recycle();
  pools_[static_cast<std::size_t>(rank)].free.emplace_back(call);
}

std::size_t OpPipeline::arena_slots() const {
  std::size_t total = 0;
  for (std::size_t r = 0; r < pool_count_; ++r) {
    total += pools_[r].created.load(std::memory_order_relaxed);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Stage-list introspection and setup
// ---------------------------------------------------------------------------

std::vector<std::string> OpPipeline::stage_names() const {
  std::vector<std::string> names;
  names.reserve(stages_.size());
  for (const auto& s : stages_) names.emplace_back(s->name());
  return names;
}

std::size_t OpPipeline::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (name == stages_[i]->name()) return i;
  }
  throw InvalidArgument("OpPipeline has no stage named '" + name + "'");
}

void OpPipeline::insert_before(const std::string& name, std::unique_ptr<OpStage> stage) {
  MCRDL_REQUIRE(stage != nullptr, "insert_before needs a stage");
  MCRDL_CHECK(stages_.size() < 255) << "OpPipeline stage limit reached";
  stages_.insert(stages_.begin() + static_cast<std::ptrdiff_t>(index_of(name)), std::move(stage));
  rebuild_stage_histograms();
  // Stage indices moved: invalidate compiled plans (in-flight calls keep
  // their retired tables; this is a setup-time API).
  std::lock_guard<std::mutex> lock(plan_mu_);
  plans_.store(nullptr, std::memory_order_release);
}

void OpPipeline::insert_after(const std::string& name, std::unique_ptr<OpStage> stage) {
  MCRDL_REQUIRE(stage != nullptr, "insert_after needs a stage");
  MCRDL_CHECK(stages_.size() < 255) << "OpPipeline stage limit reached";
  stages_.insert(stages_.begin() + static_cast<std::ptrdiff_t>(index_of(name)) + 1,
                 std::move(stage));
  rebuild_stage_histograms();
  std::lock_guard<std::mutex> lock(plan_mu_);
  plans_.store(nullptr, std::memory_order_release);
}

}  // namespace mcrdl
