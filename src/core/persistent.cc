#include "src/core/persistent.h"

namespace mcrdl {

PersistentAllReduce::PersistentAllReduce(Comm* comm, int rank, Tensor tensor, ReduceOp op)
    : comm_(comm), rank_(rank), tensor_(std::move(tensor)), op_(op) {
  MCRDL_REQUIRE(comm_ != nullptr, "persistent collective needs a communicator");
  MCRDL_REQUIRE(tensor_.defined(), "persistent collective needs a bound tensor");
  (void)comm_->group_rank(rank_);  // validates membership at plan time
}

Work PersistentAllReduce::launch(bool async_op) {
  ++launches_;
  const double discount =
      comm_->backend()->profile().launch_overhead_us * (1.0 - kPersistentLaunchFraction);
  return comm_->all_reduce(rank_, tensor_, op_, async_op, discount);
}

}  // namespace mcrdl
