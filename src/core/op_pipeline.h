// The composable operation pipeline behind the MCR-DL facade.
//
// Every Listing-1 call is packed into an OpRequest (src/backends/op_request.h)
// and executed by the OpPipeline, a middleware chain of OpStages. A stage
// receives the in-flight OpCall plus a `next` continuation; it may adjust the
// call, invoke `next()` zero or more times (the fault stage re-invokes it per
// retry/failover attempt), and post-process the returned Work. The request
// path runs through the stages in list order; the completion path unwinds in
// reverse, so the logging stage — though listed before routing — observes the
// final outcome of the whole retry loop.
//
// Built-in order (OpPipeline::stage_names()):
//
//   overhead     per-call host overhead (paper C3)
//   resolve      backend-string resolution; "auto" -> tuning table (V-F)
//   fusion       fusion admission for small all_reduce tensors (V-C)
//   compression  compression admission by op/dtype/size (V-E)
//   finish       attaches the CommLogger record on completion (V-D)
//   recover      elastic rank-loss recovery: epoch stamp + replay (src/fault/)
//   route        fault-aware retry/backoff/failover (src/fault/)
//   issue        terminal: fused / compressed / native / emulated issue (V-B)
//
// To add a layer (per-op metrics, batching, persistent-collective caching...),
// implement OpStage and call insert_before/insert_after with a neighbour's
// name — no per-op code needed, the stage sees every operation.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/backends/op_request.h"
#include "src/backends/work.h"
#include "src/obs/metrics.h"

namespace mcrdl {

class Api;
class Backend;
class Comm;
class McrDl;

// The mutable state of one operation travelling through the pipeline.
struct OpCall {
  McrDl* ctx = nullptr;
  int rank = 0;                  // caller's global rank
  std::vector<int> group;        // empty = world communicator
  OpRequest req;

  // Filled by the resolve stage.
  std::size_t bytes = 0;         // payload size (tuning/logging convention)
  Backend* resolved = nullptr;   // preferred backend after "auto" resolution
  std::string requested;         // its name; CommRecord.requested_backend

  // Filled by the admission stages.
  bool admit_fusion = false;
  bool admit_compression = false;

  // Maintained by the routing stage across attempts.
  Backend* attempt_backend = nullptr;  // backend for the current attempt
  int attempts = 1;
  bool rerouted = false;
  std::string fault;             // last injected failure: "", "transient",
                                 // "unavailable", "rank_lost"
  std::string completed_on;      // backend name the op finally completed on

  // Maintained by the recover stage: true once the op was replayed on a
  // shrunk communicator after a rank loss (req.epoch carries the epoch).
  bool recovered = false;

  // Outcome of the current issue attempt (reset by the issue stage).
  bool fused = false;
  bool compressed = false;

  // Virtual time spent inside downstream stages, indexed by stage; the
  // pipeline uses it to compute each stage's *exclusive* time for the
  // `pipeline_stage_us` histograms (sized by execute()).
  std::vector<double> stage_child_us;

  // Size of the call's communicator (group or world).
  int world_size() const;
  // The group/world communicator of `b` for this call.
  Comm* comm_for(Backend* b) const;
};

// Continuation invoking the remainder of the pipeline on the current call.
using OpNext = std::function<Work()>;

class OpStage {
 public:
  virtual ~OpStage() = default;
  virtual const char* name() const = 0;
  virtual Work run(OpCall& call, const OpNext& next) = 0;
};

class OpPipeline {
 public:
  explicit OpPipeline(McrDl* ctx);
  ~OpPipeline();
  OpPipeline(const OpPipeline&) = delete;
  OpPipeline& operator=(const OpPipeline&) = delete;

  // Runs `req` through all stages on behalf of `rank`; `group` empty = world.
  Work execute(int rank, const std::vector<int>& group, OpRequest req);

  // Stage names in request-path order.
  std::vector<std::string> stage_names() const;
  // Insert a custom stage relative to an existing one (by name); throws
  // InvalidArgument if no stage has that name. Setup-time API: the stage
  // list (and its histogram cache) is read lock-free by every rank's actor,
  // so stages must be in place before operations start flowing.
  void insert_before(const std::string& name, std::unique_ptr<OpStage> stage);
  void insert_after(const std::string& name, std::unique_ptr<OpStage> stage);

 private:
  Work invoke(std::size_t index, OpCall& call);
  std::size_t index_of(const std::string& name) const;
  void rebuild_stage_histograms();

  McrDl* ctx_;
  std::vector<std::unique_ptr<OpStage>> stages_;
  // `pipeline_stage_us{stage=...}` histogram per stage, parallel to stages_;
  // resolved eagerly at construction/insert time (registry references are
  // stable) so the per-invocation read takes no lock.
  std::vector<obs::Histogram*> stage_hist_;
};

}  // namespace mcrdl
