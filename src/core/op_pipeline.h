// The composable operation pipeline behind the MCR-DL facade.
//
// Every Listing-1 call is packed into an OpRequest (src/backends/op_request.h)
// and executed by the OpPipeline, a middleware chain of OpStages. A stage
// receives the in-flight OpCall plus a `next` continuation; it may adjust the
// call, invoke `next()` zero or more times (the fault stage re-invokes it per
// retry/failover attempt), and post-process the returned Work. The request
// path runs through the stages in list order; the completion path unwinds in
// reverse, so the logging stage — though listed before routing — observes the
// final outcome of the whole retry loop.
//
// Built-in order (OpPipeline::stage_names()):
//
//   overhead     per-call host overhead (paper C3)
//   resolve      backend-string resolution; "auto" -> tuning table (V-F)
//   fusion       bucketing admission for small collectives (V-C)
//   compression  compression admission by op/dtype/size (V-E)
//   finish       attaches the CommLogger record on completion (V-D)
//   recover      elastic rank-loss recovery: epoch stamp + replay (src/fault/)
//   route        fault-aware retry/backoff/failover (src/fault/)
//   issue        terminal: fused / compressed / native / emulated issue (V-B)
//
// To add a layer (per-op metrics, batching, persistent-collective caching...),
// implement OpStage and call insert_before/insert_after with a neighbour's
// name — no per-op code needed, the stage sees every operation.
//
// Hot path (DESIGN.md §14). Dispatch has two shapes selected by
// McrDlOptions::fast_dispatch:
//
//   fast (default) — the OpCall comes from a per-rank arena (container
//   capacity survives recycling, so steady-state dispatch allocates
//   nothing), the op runs a precompiled StagePlan that omits provably no-op
//   stages, and the finish stage uses cached metric handles instead of
//   building label maps per call.
//
//   slow — the pre-fast-path shape: a fresh OpCall per op, every stage
//   invoked, labels built per call. Kept as the referee: golden-trace tests
//   pin that both shapes produce byte-identical virtual time, and the
//   `hotpath` benchmark reports the two as its before/after series.
//
// Skipped stages cannot move virtual time by construction (that is the
// compile rule), and each one still gets a 0.0 observation into its
// `pipeline_stage_us` histogram — exactly what its no-op invocation would
// have recorded — so per-stage metrics are identical under both shapes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/backends/op_request.h"
#include "src/backends/work.h"
#include "src/coll/spec.h"
#include "src/obs/metrics.h"

namespace mcrdl {

class Api;
class Backend;
class Comm;
class McrDl;
class OpPipeline;

// One precompiled pass over the stage list for a given (op, config) pair:
// the stage indices to run, in order, plus the provably no-op stages that
// were elided (each still receives a 0.0 histogram observation per op).
struct StagePlan {
  std::vector<std::uint8_t> seq;
  std::vector<std::uint8_t> skipped;
};

// The config snapshot the plan compiler hands to OpStage::provably_noop.
// The four booleans are the dynamic toggles re-read on every dispatch (they
// index the plan table); everything else a stage wants to inspect is
// reachable through ctx.
struct StagePlanInputs {
  McrDl* ctx = nullptr;
  OpType op = OpType::Barrier;
  bool overhead_on = false;
  bool fusion_on = false;
  bool compression_on = false;
  bool recovery_armed = false;
  bool coll_on = false;
};

// The mutable state of one operation travelling through the pipeline.
struct OpCall {
  McrDl* ctx = nullptr;
  int rank = 0;                  // caller's global rank
  std::vector<int> group;        // empty = world communicator
  OpRequest req;

  // Filled by the resolve stage.
  std::size_t bytes = 0;         // payload size (tuning/logging convention)
  Backend* resolved = nullptr;   // preferred backend after "auto" resolution
  std::string requested;         // its name; CommRecord.requested_backend

  // Filled by the resolve stage when the choice is a composite algorithm
  // ("hier:...", "rsag..."): `resolved` stays null and the coll stage hands
  // the call to coll::launch instead of the route/issue tail.
  bool is_composite = false;
  coll::CompositeSpec composite;

  // Filled by the admission stages.
  bool admit_fusion = false;
  bool admit_compression = false;

  // Maintained by the routing stage across attempts.
  Backend* attempt_backend = nullptr;  // backend for the current attempt
  int attempts = 1;
  bool rerouted = false;
  std::string fault;             // last injected failure: "", "transient",
                                 // "unavailable", "rank_lost"
  std::string completed_on;      // backend name the op finally completed on

  // Maintained by the recover stage: true once the op was replayed on a
  // shrunk communicator after a rank loss (req.epoch carries the epoch).
  bool recovered = false;

  // Outcome of the current issue attempt (reset by the issue stage).
  bool fused = false;
  bool compressed = false;

  // True when this call is on the arena fast path (cached metric handles in
  // the finish stage); false reproduces the pre-fast-path dispatch shape.
  bool fast = false;

  // The compiled stage sequence this call runs (owned by the pipeline's
  // plan table, which outlives every in-flight call).
  const StagePlan* plan = nullptr;

  // Virtual time spent inside downstream stages, indexed by *plan position*;
  // the pipeline uses it to compute each stage's *exclusive* time for the
  // `pipeline_stage_us` histograms (sized by execute()).
  std::vector<double> stage_child_us;

  // Size of the call's communicator (group or world).
  int world_size() const;
  // The group/world communicator of `b` for this call.
  Comm* comm_for(Backend* b) const;

  // Keep-capacity reset for arena reuse: drops tensor/backend references and
  // clears strings/vectors without freeing their buffers.
  void recycle();
};

// Continuation invoking the remainder of the pipeline on the current call.
// A plain (pipeline, call, position) triple — constructing and copying one
// never allocates, unlike the std::function it replaced (whose three-word
// capture exceeded the small-buffer optimisation on every stage hop).
class OpNext {
 public:
  Work operator()() const;

 private:
  friend class OpPipeline;
  OpNext(OpPipeline* pipeline, OpCall* call, std::size_t pos)
      : pipeline_(pipeline), call_(call), pos_(pos) {}

  OpPipeline* pipeline_;
  OpCall* call_;
  std::size_t pos_;
};

class OpStage {
 public:
  virtual ~OpStage() = default;
  virtual const char* name() const = 0;
  virtual Work run(OpCall& call, const OpNext& next) = 0;
  // True if, under the given config snapshot, run() would provably neither
  // move virtual time nor change the call — the plan compiler elides such
  // stages from the fast path. Default false: custom stages always run.
  virtual bool provably_noop(const StagePlanInputs& in) const {
    (void)in;
    return false;
  }
};

class OpPipeline {
 public:
  explicit OpPipeline(McrDl* ctx);
  ~OpPipeline();
  OpPipeline(const OpPipeline&) = delete;
  OpPipeline& operator=(const OpPipeline&) = delete;

  // Runs `req` through all stages on behalf of `rank`; `group` empty = world.
  Work execute(int rank, const std::vector<int>& group, OpRequest req);

  // Stage names in request-path order.
  std::vector<std::string> stage_names() const;
  // The stages a fast-path dispatch of `op` would actually run under the
  // current configuration (plan introspection for tests and tools).
  std::vector<std::string> active_stage_names(OpType op);
  // Insert a custom stage relative to an existing one (by name); throws
  // InvalidArgument if no stage has that name. Setup-time API: the stage
  // list (and its histogram/plan caches) is read lock-free by every rank's
  // actor, so stages must be in place before operations start flowing.
  void insert_before(const std::string& name, std::unique_ptr<OpStage> stage);
  void insert_after(const std::string& name, std::unique_ptr<OpStage> stage);

  // Total OpCall slots the dispatch arena has ever created (diagnostic: a
  // steady-state workload holds this constant after warm-up).
  std::size_t arena_slots() const;

 private:
  friend class OpNext;

  // The full compiled plan set for one config fingerprint. Immutable once
  // published; superseded tables are retired (not freed) until the pipeline
  // dies, so a plan pointer held by an in-flight call can never dangle.
  struct PlanTable {
    std::uint64_t config_version = 0;
    StagePlan full;                // every stage, no skips (slow path)
    std::vector<StagePlan> plans;  // [op * kMaskCount + mask]
  };
  class ArenaLease;
  struct RankPool {
    std::vector<std::unique_ptr<OpCall>> free;
    std::atomic<std::uint64_t> created{0};
  };

  static constexpr std::size_t kOpCount = static_cast<std::size_t>(OpType::Barrier) + 1;
  static constexpr unsigned kMaskOverhead = 1u << 0;
  static constexpr unsigned kMaskFusion = 1u << 1;
  static constexpr unsigned kMaskCompression = 1u << 2;
  static constexpr unsigned kMaskRecovery = 1u << 3;
  static constexpr unsigned kMaskColl = 1u << 4;
  static constexpr std::size_t kMaskCount = 1u << 5;

  Work invoke(std::size_t pos, OpCall& call);
  std::size_t index_of(const std::string& name) const;
  void rebuild_stage_histograms();

  // Cheap per-dispatch reads of the dynamic config toggles.
  unsigned config_mask() const;
  std::uint64_t config_version() const;
  // The current plan table, recompiling first if the config version moved.
  const PlanTable* plan_table();
  const PlanTable* recompile_plans(std::uint64_t version);

  OpCall* arena_acquire(int rank);
  void arena_release(int rank, OpCall* call);

  McrDl* ctx_;
  std::vector<std::unique_ptr<OpStage>> stages_;
  // `pipeline_stage_us{stage=...}` histogram per stage, parallel to stages_;
  // resolved eagerly at construction/insert time (registry references are
  // stable) so the per-invocation read takes no lock.
  std::vector<obs::Histogram*> stage_hist_;

  // Published plan table (lock-free reads); plan_mu_ serialises recompiles
  // and plan_history_ keeps superseded tables alive for in-flight calls.
  std::atomic<const PlanTable*> plans_{nullptr};
  std::mutex plan_mu_;
  std::vector<std::unique_ptr<const PlanTable>> plan_history_;

  // Per-rank OpCall recycling pools, sized once at construction. A rank's
  // pool is touched only by that rank's actor (reentrant dispatch nests on
  // the same thread), so the free lists need no lock even under
  // ParallelShards; `created` is atomic only for the arena_slots()
  // diagnostic. Ranks outside [0, pool_count_) — impossible in a fixed
  // world, conceivable under exotic elastic configs — dispatch with an
  // unpooled heap OpCall instead.
  std::unique_ptr<RankPool[]> pools_;
  std::size_t pool_count_ = 0;
};

}  // namespace mcrdl
