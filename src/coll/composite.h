// Composite collective algorithms: assembling a collective out of
// sub-operations over topology-derived subgroups.
//
// coll sits *below* core in the library layering (core's pipeline owns a
// coll stage), so it cannot call the pipeline directly. LaunchContext
// inverts the dependency: the runtime (McrDl) hands coll two dispatch
// closures — one posting *nested* sub-operations through the full pipeline
// (so fusion admission, fault routing, stale-epoch guards, metrics and
// traces all see them), one re-dispatching a top-level request for elastic
// replay — plus the topology the subgroups are derived from.
//
// launch() builds the phase chain for a parsed CompositeSpec:
//
//   hier:  1. intra-node Reduce to each node leader on spec.intra
//          2. AllReduce over the leaders on spec.inter (non-leaders post
//             nothing and fall through)
//          3. intra-node Broadcast from the leader on spec.intra
//
//   rsag:  1. ReduceScatter of the (zero-padded) payload on spec.intra
//          2. AllGather of the reduced blocks on spec.intra
//          finalize: slice the unpadded prefix back into the caller's tensor
//
// Subgroups come from net::node_partition over the *launch-time* group, so a
// composite replayed after an elastic shrink derives correct intra/inter
// splits from the remapped membership with no extra bookkeeping. With
// overlap enabled the payload is split into chunks — one chain each — whose
// phases the OverlapScheduler interleaves; the returned ChainGroupWork
// completes when every chunk has.
//
// Both algorithms run their phases on private scratch and publish into the
// caller's tensor only in the success-path finalize, which makes elastic
// recovery op-granularity even under chunking: any failing chunk rewinds
// the whole payload via a shared pristine restore and (async) replays the
// whole payload via a shared run-once recover — never individual slices.
// See the recovery-granularity note in chain.h.
#pragma once

#include <functional>
#include <vector>

#include "src/backends/op_request.h"
#include "src/backends/work.h"
#include "src/coll/chain.h"
#include "src/coll/spec.h"
#include "src/net/topology.h"
#include "src/sim/scheduler.h"

namespace mcrdl::coll {

struct LaunchContext {
  sim::Scheduler* sched = nullptr;
  const net::Topology* topo = nullptr;
  OverlapScheduler* overlap = nullptr;
  // Posts one nested sub-operation through the full pipeline on behalf of
  // `rank` over `group` (global ranks) and returns its Work. The runtime
  // marks the request nested; callers here set async_op and epoch.
  std::function<Work(int rank, const std::vector<int>& group, OpRequest req)> dispatch;
  // Re-dispatches a top-level request (synchronous, not nested) through the
  // full pipeline — the elastic-replay path for async composites whose
  // parent pipeline frame has already returned.
  std::function<Work(int rank, const std::vector<int>& group, OpRequest req)> redispatch;
};

// Launches `spec` for `rank` over `group` (empty = world) on behalf of
// `req` (an AllReduce; spec backends must already be validated/filled by the
// runtime). Returns without waiting; the caller decides sync vs async.
Work launch(const LaunchContext& ctx, const CompositeSpec& spec, int rank,
            const std::vector<int>& group, const OpRequest& req);

}  // namespace mcrdl::coll
