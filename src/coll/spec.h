// Composite collective algorithm strings (DESIGN.md §15).
//
// MCR-DL's backend strings name *where* an operation runs ("nccl", "mpi",
// "auto"). Composite strings additionally name *how*: an algorithm assembled
// from several sub-operations on (possibly different) backends — the paper's
// mix-and-match idea applied inside a single collective. Two families exist:
//
//   "hier:<intra>+<inter>"  Two-level hierarchical allreduce: an intra-node
//                           reduce to each node leader on <intra>, an
//                           allreduce over the leaders on <inter>, and an
//                           intra-node broadcast back on <intra>. The two
//                           backends are independently selectable, so NVLink
//                           traffic can ride NCCL while the NIC hop rides
//                           MPI — one rank-list shape per level, costed by
//                           the same CommShape machinery as any flat op.
//
//   "rsag[:<backend>]"      Ring-style decomposition of allreduce into
//                           reduce-scatter + allgather on one backend (the
//                           default backend when omitted). Exposes the
//                           classic bandwidth-optimal two-phase form as a
//                           first-class algorithm choice.
//
// Composite strings are accepted anywhere a backend string is (including as
// online-tuner arms behind "auto") once CollConfig::enabled is set; with the
// subsystem disabled they are rejected exactly like any unknown backend name,
// so default-config runs stay byte-identical.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace mcrdl::coll {

// Opt-in configuration (surfaced as McrDlOptions::coll).
struct CollConfig {
  // Accept composite algorithm strings in the resolve stage. Off by default:
  // composite strings then fail resolution as unknown backends and the
  // pipeline's coll stage is provably no-op (elided on the fast path).
  bool enabled = false;
  // Interleave chunks of independent composites: a composite allreduce is
  // split into `chunks` slices whose phases progress concurrently, so one
  // slice's inter-node hop overlaps another's intra-node work.
  bool overlap = false;
  int chunks = 4;
  // Offer composite algorithms as additional "auto" arms to the online tuner
  // (requires online_tuning.enabled to matter).
  bool tuner_arms = false;
};

enum class CompositeAlgo { Hier, Rsag };

// A parsed composite algorithm string. Backend fields hold whatever the
// string named; validation against the initialised backend set (and filling
// in the default for a bare "rsag") happens at resolve time, where the
// runtime knows what init() loaded.
struct CompositeSpec {
  CompositeAlgo algo = CompositeAlgo::Hier;
  std::string intra;  // hier: intra-node backend; rsag: the single backend
  std::string inter;  // hier only
  std::string text;   // canonical string form (used as the tuner arm / label)
};

// Parses a composite algorithm string; nullopt when `name` is not in a
// composite grammar at all (a plain backend name). Malformed composite
// strings ("hier:", "hier:a") throw InvalidArgument — they were unmistakably
// meant as composites, so silently treating them as backend names would turn
// a typo into a confusing unknown-backend error downstream.
std::optional<CompositeSpec> parse(const std::string& name);

// One registry row per composite family, for tooling (mcrdl_info).
struct CompositeInfo {
  std::string pattern;
  std::string description;
};
const std::vector<CompositeInfo>& registered_composites();

// The composite arm strings offered to the online tuner for a given
// initialised backend set: every ordered backend pair as "hier:a+b" plus one
// "rsag:<b>" per backend. Deterministic order (follows `backends`).
std::vector<std::string> composite_arms(const std::vector<std::string>& backends);

}  // namespace mcrdl::coll
