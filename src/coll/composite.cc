#include "src/coll/composite.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "src/common/status.h"

namespace mcrdl::coll {

namespace {

// Scratch with the payload's storage mode: materialized composites do real
// reduction math on real buffers, phantom (paper-scale) ones stay
// metadata-only through the very same phase structure.
Tensor scratch_like(const Tensor& like, std::int64_t numel) {
  if (like.materialized()) return Tensor::zeros({numel}, like.dtype(), like.device());
  return Tensor::phantom({numel}, like.dtype(), like.device());
}

// The phases of a two-level hierarchical allreduce of `tensor` for `rank`
// over `members`. In-place: the intra reduce accumulates into the leader's
// buffer, the leader allreduce combines across nodes, the broadcast fans the
// result back out — each level a first-class pipeline op on its own backend.
std::vector<ChainPhase> hier_phases(const LaunchContext& ctx, const CompositeSpec& spec,
                                    int rank, const net::NodePartition& part, Tensor tensor,
                                    ReduceOp rop, std::uint64_t epoch) {
  std::vector<int> intra;
  for (const auto& node : part.intra) {
    if (std::find(node.begin(), node.end(), rank) != node.end()) intra = node;
  }
  MCRDL_REQUIRE(!intra.empty(), "rank is not a member of the composite's group");
  const bool leader = intra.front() == rank;
  const std::vector<int> leaders = part.leaders;

  std::vector<ChainPhase> phases;
  if (intra.size() > 1) {
    phases.push_back([&ctx, spec, rank, intra, tensor, rop, epoch] {
      OpRequest req;
      req.op = OpType::Reduce;
      req.backend = spec.intra;
      req.tensor = tensor;
      req.root = 0;  // group-rank of the leader (lowest rank, sorted first)
      req.rop = rop;
      req.async_op = true;
      req.epoch = epoch;
      return std::vector<Work>{ctx.dispatch(rank, intra, std::move(req))};
    });
  }
  if (leaders.size() > 1) {
    if (leader) {
      phases.push_back([&ctx, spec, rank, leaders, tensor, rop, epoch] {
        OpRequest req;
        req.op = OpType::AllReduce;
        req.backend = spec.inter;
        req.tensor = tensor;
        req.rop = rop;
        req.async_op = true;
        req.epoch = epoch;
        return std::vector<Work>{ctx.dispatch(rank, leaders, std::move(req))};
      });
    } else {
      // Non-leaders sit the inter-node hop out; the empty phase keeps the
      // phase indices aligned so the closing broadcast is everyone's phase 3.
      phases.push_back([] { return std::vector<Work>{}; });
    }
  }
  if (intra.size() > 1) {
    phases.push_back([&ctx, spec, rank, intra, tensor, epoch] {
      OpRequest req;
      req.op = OpType::Broadcast;
      req.backend = spec.intra;
      req.tensor = tensor;
      req.root = 0;
      req.async_op = true;
      req.epoch = epoch;
      return std::vector<Work>{ctx.dispatch(rank, intra, std::move(req))};
    });
  }
  return phases;
}

// Ring-style decomposition: reduce-scatter the zero-padded payload, then
// allgather the reduced blocks; the finalize closure slices the unpadded
// prefix back. Padding copies are data movement only — no virtual time.
std::vector<ChainPhase> rsag_phases(const LaunchContext& ctx, const CompositeSpec& spec,
                                    int rank, const std::vector<int>& members, Tensor tensor,
                                    ReduceOp rop, std::uint64_t epoch,
                                    std::function<void()>* finalize) {
  const auto n = static_cast<std::int64_t>(members.size());
  const std::int64_t numel = tensor.numel();
  const std::int64_t block = (numel + n - 1) / n;
  Tensor padded_in = scratch_like(tensor, block * n);
  Tensor block_out = scratch_like(tensor, block);
  Tensor padded_out = scratch_like(tensor, block * n);
  padded_in.view(0, numel).copy_from(tensor);

  std::vector<ChainPhase> phases;
  phases.push_back([&ctx, spec, rank, members, block_out, padded_in, rop, epoch] {
    OpRequest req;
    req.op = OpType::ReduceScatter;
    req.backend = spec.intra;
    req.output = block_out;
    req.input = padded_in;
    req.rop = rop;
    req.async_op = true;
    req.epoch = epoch;
    return std::vector<Work>{ctx.dispatch(rank, members, std::move(req))};
  });
  phases.push_back([&ctx, spec, rank, members, padded_out, block_out, epoch] {
    OpRequest req;
    req.op = OpType::AllGather;
    req.backend = spec.intra;
    req.output = padded_out;
    req.input = block_out;
    req.async_op = true;
    req.epoch = epoch;
    return std::vector<Work>{ctx.dispatch(rank, members, std::move(req))};
  });
  *finalize = [tensor, padded_out, numel]() mutable { tensor.copy_from(padded_out.view(0, numel)); };
  return phases;
}

std::shared_ptr<ChainWork> launch_chunk(const LaunchContext& ctx, const CompositeSpec& spec,
                                        int rank, const std::vector<int>& members,
                                        const net::NodePartition& part, Tensor slice,
                                        ReduceOp rop, std::uint64_t epoch,
                                        std::function<void()> restore,
                                        std::function<void()> recover) {
  std::vector<ChainPhase> phases;
  std::function<void()> finalize;
  if (spec.algo == CompositeAlgo::Hier) {
    // Phases run on a private working copy, never the caller's slice. A
    // failed chain's *started* sub-ops still deliver after the epoch bump
    // (the quiesce only cancels pending rendezvous), and an in-place chain
    // would let those late deliveries clobber payload bytes behind the
    // pristine restore. Success publishes once, in the finalize under the
    // chain lock — the same contract as rsag's slice-back copy. The copies
    // are data movement only (no virtual time), so timings are unchanged.
    Tensor work = scratch_like(slice, slice.numel());
    work.copy_from(slice);
    phases = hier_phases(ctx, spec, rank, part, work, rop, epoch);
    finalize = [slice, work]() mutable { slice.copy_from(work); };
  } else {
    phases = rsag_phases(ctx, spec, rank, members, slice, rop, epoch, &finalize);
  }
  auto chain = ctx.overlap->make_chain(rank, epoch, std::move(phases), std::move(finalize));
  chain->op = OpType::AllReduce;
  chain->backend_name = spec.text;
  chain->posted_at = ctx.sched->now();
  if (restore) chain->set_restore(std::move(restore));
  if (recover) chain->set_recover(std::move(recover));
  return chain;
}

}  // namespace

Work launch(const LaunchContext& ctx, const CompositeSpec& spec, int rank,
            const std::vector<int>& group, const OpRequest& req) {
  MCRDL_REQUIRE(ctx.sched != nullptr && ctx.topo != nullptr && ctx.overlap != nullptr &&
                    ctx.dispatch && ctx.redispatch,
                "composite launch needs a fully wired LaunchContext");
  MCRDL_REQUIRE(req.op == OpType::AllReduce, "composite algorithms support all_reduce only");
  MCRDL_REQUIRE(!spec.intra.empty(), "composite spec backends must be resolved before launch");
  std::vector<int> members = group;
  if (members.empty()) {
    members.reserve(static_cast<std::size_t>(ctx.topo->world_size()));
    for (int r = 0; r < ctx.topo->world_size(); ++r) members.push_back(r);
  }
  // The casualty's own replay arrives with a remapped group that no longer
  // contains it; surface the same retriable error a flat engine raises so
  // the caller's rank-loss handling stays uniform across op kinds.
  if (std::find(members.begin(), members.end(), rank) == members.end()) {
    throw RankLostError("rank " + std::to_string(rank) +
                        " is not in the remapped composite group; declared lost");
  }
  // Launch-time derivation: after an elastic shrink the recover stage hands
  // us the remapped group, and the partition of *that* list is exactly the
  // post-loss two-level shape — no cached subgroups to invalidate.
  const net::NodePartition part = net::node_partition(*ctx.topo, members);

  const Tensor& tensor = req.tensor;
  if (members.size() <= 1) {
    // A single-member allreduce is the identity: a zero-phase chain that
    // completes on the spot, so callers still get a well-formed handle.
    auto chain = ctx.overlap->make_chain(rank, req.epoch, {}, {});
    chain->op = OpType::AllReduce;
    chain->backend_name = spec.text;
    chain->posted_at = ctx.sched->now();
    return chain;
  }
  const std::int64_t numel = tensor.numel();
  std::int64_t chunks = ctx.overlap->chunks();
  chunks = std::max<std::int64_t>(
      1, std::min<std::int64_t>(chunks, std::max<std::int64_t>(1, numel)));

  // Elastic-replay closures — shared by every chunk chain so recovery stays
  // op-granularity whatever the launch shape, exactly like a flat op: either
  // the whole tensor keeps the pre-loss reduction or the whole tensor is
  // replayed on the survivors. Per-chunk restores would be wrong under
  // chunking: chunk chains that completed before the loss can no longer be
  // failed (their restore already ran out in maybe_complete), yet their
  // slices hold published full-world sums which a whole-tensor replay would
  // re-reduce into survivors*old_sum. So any failing chunk restores the
  // *whole* payload from one pristine copy, rewinding completed siblings
  // too. Re-running the restore is idempotent (it re-copies the same
  // original bytes), and it cannot itself be clobbered: both algorithms run
  // their phases on private scratch, so the only writers of the payload are
  // success-path finalizes (under the chain lock, before the loss) and this
  // restore. Unchunked launches need no restore at all — a failed chain's
  // finalize never ran, so the payload still holds the caller's bytes.
  std::function<void()> restore;
  Tensor payload = tensor;  // non-const handle onto the same storage
  if (tensor.materialized() && chunks > 1) {
    Tensor pristine = scratch_like(tensor, numel);
    pristine.copy_from(tensor);
    restore = [payload, pristine]() mutable { payload.copy_from(pristine); };
  }
  std::function<void()> recover;
  if (req.async_op) {
    // The parent pipeline frame returns before a failure can surface, so the
    // chains carry their own replay: re-dispatch the whole tensor — with the
    // same composite string — as a fresh synchronous top-level op whose
    // recover stage parks, remaps and replays. The flag makes the replay
    // fire exactly once when several chunk chains failed; the later chunks'
    // wait() then just completes their handles against the replayed data.
    auto replayed = std::make_shared<std::atomic<bool>>(false);
    recover = [redispatch = ctx.redispatch, spec, rank, members, payload, rop = req.rop,
               replayed] {
      if (replayed->exchange(true)) return;
      OpRequest r;
      r.op = OpType::AllReduce;
      r.backend = spec.text;
      r.tensor = payload;
      r.rop = rop;
      redispatch(rank, members, std::move(r));
    };
  }
  if (chunks == 1) {
    return launch_chunk(ctx, spec, rank, members, part, tensor, req.rop, req.epoch,
                        std::move(restore), std::move(recover));
  }
  const std::int64_t base = numel / chunks;
  const std::int64_t rem = numel % chunks;
  std::vector<std::shared_ptr<ChainWork>> parts;
  std::int64_t offset = 0;
  for (std::int64_t i = 0; i < chunks; ++i) {
    const std::int64_t size = base + (i < rem ? 1 : 0);
    if (size == 0) continue;
    parts.push_back(launch_chunk(ctx, spec, rank, members, part, tensor.view(offset, size),
                                 req.rop, req.epoch, restore, recover));
    offset += size;
  }
  auto group_work = std::make_shared<ChainGroupWork>(std::move(parts));
  group_work->arm();
  group_work->op = OpType::AllReduce;
  group_work->backend_name = spec.text;
  group_work->posted_at = ctx.sched->now();
  return group_work;
}

}  // namespace mcrdl::coll
