// Chained sub-operation works and the overlap scheduler driving them.
//
// A composite collective is a *chain*: an ordered list of phases, where each
// phase posts one or more asynchronous sub-operations (through the full
// OpPipeline, so fusion admission, fault routing, metrics and traces all see
// them) and the next phase may start only once every sub-op of the previous
// one completed. Nobody owns a thread for this: progress is cooperative.
// Completion callbacks of sub-ops run in event context (they must not block)
// and only update counters; the actual *posting* of the next phase — which
// may sleep, e.g. under launch-delay fault injection — happens in actor
// context inside OverlapScheduler::drive(), entered from ChainWork::wait(),
// Api::synchronize() or the coll pipeline stage's inline wait.
//
// Overlap (CollConfig::overlap): drive() advances every registered chain of
// the rank, not just the one being waited on, so independent composites —
// e.g. the chunks of one large allreduce, or gradient buckets of different
// layers — interleave: one chunk's inter-node hop proceeds while another's
// intra-node reduce is still on the NVLink backend. With overlap off, only
// the waited-on chain advances (drain still advances everything; SPMD
// programs wait in a consistent order, so this cannot deadlock across
// ranks).
//
// Lock discipline (the part that keeps virtual time deadlock-free):
//   * each rank has one slot {mutex, chain list, generation, SimCondition};
//   * sub-ops are posted with the slot mutex RELEASED — posting can block in
//     actor context, and completion callbacks take the same mutex;
//   * completion callbacks are registered without the mutex held (they may
//     fire inline when the sub-op already completed);
//   * waiting uses a generation counter: the driver snapshots `gen` under
//     the lock, and blocks on "gen changed" — SimCondition's re-check after
//     token registration closes the lost-wakeup window.
//
// Failure: a sub-op posting that throws (stale-epoch bounce, exhausted
// retries) stores the error on the chain. The waited-on chain rethrows it
// from wait(); if the chain carries a recover closure (async composites,
// whose parent pipeline frame is long gone), wait() instead re-dispatches
// the original request synchronously through the full pipeline — whose
// recover stage parks, remaps and replays exactly like any flat op. A
// recovery-epoch bump also fails every chain stamped with the old epoch
// (their in-flight sub-ops were cancelled by the quiesce drain and will
// never call back); the runtime pokes the scheduler on each bump so blocked
// drivers wake and observe this.
//
// Recovery granularity: chunked composites recover at *op* granularity, the
// same contract flat ops give — after a loss the tensor is either entirely
// the pre-loss full-world result (every chunk completed) or entirely the
// shrunk-group replay (any chunk failed). Two mechanisms enforce it: every
// chunk chain shares one whole-tensor restore (any failing chunk rewinds the
// published slices of completed siblings, see set_restore) and one run-once
// whole-tensor recover (the replay re-dispatches the full original payload,
// never individual slices). Phases themselves operate on private scratch, so
// a failed chain's started sub-ops — which the quiesce lets deliver after the
// epoch bump — can never write the user payload behind that restore.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/backends/work.h"
#include "src/sim/scheduler.h"

namespace mcrdl::coll {

class OverlapScheduler;

// One phase of a chain: runs in actor context, posts its sub-ops (async) and
// returns their works. An empty result is a legal no-participation phase
// (e.g. a non-leader during the inter-node hop of a hierarchical allreduce).
using ChainPhase = std::function<std::vector<Work>()>;

class ChainWork : public WorkHandle, public std::enable_shared_from_this<ChainWork> {
 public:
  // Use OverlapScheduler::make_chain(); the constructor is public only for
  // make_shared. All mutable state is guarded by the owning scheduler's
  // per-rank slot mutex.
  ChainWork(OverlapScheduler* owner, int rank, std::uint64_t epoch,
            std::vector<ChainPhase> phases, std::function<void()> finalize);

  bool test() const override { return done_.load(std::memory_order_acquire); }
  // Drives this rank's chains until this one completes. Rethrows a stored
  // failure — unless a recover closure is installed, in which case the
  // original request is re-dispatched synchronously and the chain completes
  // through the replay.
  void wait() override;
  void synchronize() override { wait(); }
  SimTime complete_time() const override { return complete_time_; }
  void on_complete(std::function<void()> fn) override;

  // The recovery epoch this chain was issued under (sub-ops are stamped with
  // it; an epoch bump fails the chain for replay).
  std::uint64_t epoch() const { return epoch_; }
  // Installs the elastic-replay closure used by wait() after a rank-loss
  // failure. Only set for async composites; synchronous ones propagate into
  // the parent pipeline frame whose recover stage is still on the stack.
  void set_recover(std::function<void()> fn);
  // Installs the input-restore closure run when the chain is failed for
  // replay. Chain phases run on private scratch and publish into the user
  // payload only through the success-path finalize, so a *single* chain never
  // needs this; it exists for chunked composites, where sibling chunks that
  // completed before a loss already published full-world slices that the
  // whole-tensor replay would re-reduce. The closure rewinds the whole
  // payload to its pre-launch bytes (shared by all chunks, idempotent).
  void set_restore(std::function<void()> fn);

 private:
  friend class OverlapScheduler;

  OverlapScheduler* owner_;
  int rank_;
  std::uint64_t epoch_;

  // --- guarded by the owner's slot mutex for rank_ -------------------------
  std::vector<ChainPhase> phases_;
  std::size_t next_phase_ = 0;
  // Incomplete sub-ops of the posted phase; kPosting while a phase closure
  // is executing (so a concurrent driver cannot double-post it).
  int outstanding_ = 0;
  std::function<void()> finalize_;
  std::vector<std::function<void()>> callbacks_;
  std::exception_ptr error_;
  std::function<void()> recover_;
  std::function<void()> restore_;

  std::atomic<bool> done_{false};
  SimTime complete_time_ = 0.0;
};

// Aggregate over the chunk-chains of one overlapped composite. Not a
// CompositeWork: CompositeWork::wait blocks on a condition without driving
// anything, which would deadlock a chain that needs its waiter to post the
// next phase. This wait() drives each chunk (and, with overlap on, all of
// them interleave while the first is being waited on).
class ChainGroupWork : public WorkHandle, public std::enable_shared_from_this<ChainGroupWork> {
 public:
  explicit ChainGroupWork(std::vector<std::shared_ptr<ChainWork>> chains);
  // Registers completion counting on the chunks; call exactly once on a
  // shared_ptr-owned instance.
  void arm();

  bool test() const override { return done_.load(std::memory_order_acquire); }
  void wait() override;
  void synchronize() override { wait(); }
  SimTime complete_time() const override { return complete_time_; }
  void on_complete(std::function<void()> fn) override;

 private:
  void part_done();
  // Idempotent transition to done; also called at the end of wait() so the
  // group completes even when a chunk's part callback was dropped by an
  // errored-chain prune and the chunk later finished through elastic replay.
  void complete_now();

  std::vector<std::shared_ptr<ChainWork>> chains_;
  mutable std::mutex mu_;
  int remaining_ = 0;
  std::vector<std::function<void()>> callbacks_;
  std::atomic<bool> done_{false};
  SimTime complete_time_ = 0.0;
  // Keeps the group alive while part callbacks are armed even if the caller
  // drops its handle; cleared on completion (see core/composite_work.h for
  // the leak shape this avoids).
  std::shared_ptr<ChainGroupWork> self_;
};

// Per-rank registry and cooperative driver for every live chain. One per
// McrDl runtime (created when CollConfig::enabled).
class OverlapScheduler {
 public:
  OverlapScheduler(sim::Scheduler* sched, int world, bool overlap, int chunks);
  OverlapScheduler(const OverlapScheduler&) = delete;
  OverlapScheduler& operator=(const OverlapScheduler&) = delete;

  sim::Scheduler* scheduler() const { return sched_; }
  bool overlap_enabled() const { return overlap_; }
  // Chunk count for overlapped composites (1 when overlap is disabled: the
  // chunking exists only to create independent chains to interleave).
  int chunks() const { return overlap_ ? chunks_ : 1; }

  // Epoch source for stale-chain detection; unset means "epochs never move".
  void set_epoch_source(std::function<std::uint64_t()> fn) { epoch_fn_ = std::move(fn); }
  std::uint64_t current_epoch() const { return epoch_fn_ ? epoch_fn_() : 0; }

  // Builds, registers and returns a chain. A chain with no phases completes
  // immediately (single-rank composites degenerate to this).
  std::shared_ptr<ChainWork> make_chain(int rank, std::uint64_t epoch,
                                        std::vector<ChainPhase> phases,
                                        std::function<void()> finalize);

  // Drives every chain of `rank` to a terminal state (Api::synchronize).
  // Chains failed by rank loss are dropped, mirroring how the engines'
  // synchronize tolerates RankLostError; other errors propagate.
  void drain(int rank);

  // Wakes every blocked driver (recovery epoch bump: cancelled sub-ops will
  // never call back, so drivers must re-examine their chains). Safe from
  // event context. Returns 0 — it cancels nothing itself.
  std::uint64_t poke();

  // Live (registered) chains of a rank; diagnostics and tests.
  std::size_t live_chains(int rank) const;

 private:
  friend class ChainWork;

  static constexpr int kPosting = -1;

  struct Slot {
    mutable std::mutex mu;
    std::vector<std::shared_ptr<ChainWork>> chains;
    std::uint64_t gen = 0;
    std::unique_ptr<sim::SimCondition> cond;
  };

  Slot& slot(int rank) const;
  // Drives until `target` reaches a terminal state (nullptr: until every
  // registered chain has). Rethrows the target's stored error.
  void drive(int rank, const std::shared_ptr<ChainWork>& target);
  void post_next_phase(int rank, const std::shared_ptr<ChainWork>& ch);
  void part_done(int rank, const std::weak_ptr<ChainWork>& ch);
  void maybe_complete(int rank, const std::shared_ptr<ChainWork>& ch);
  static void fail_locked(ChainWork& ch, std::exception_ptr err);
  static void prune_locked(Slot& slot, bool include_errored);

  sim::Scheduler* sched_;
  bool overlap_;
  int chunks_;
  std::function<std::uint64_t()> epoch_fn_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace mcrdl::coll
