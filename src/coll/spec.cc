#include "src/coll/spec.h"

#include "src/common/status.h"

namespace mcrdl::coll {

std::optional<CompositeSpec> parse(const std::string& name) {
  if (name.rfind("hier", 0) == 0 && (name.size() == 4 || name[4] == ':')) {
    if (name.size() <= 5) {
      throw InvalidArgument("composite 'hier' needs two backends: hier:<intra>+<inter>");
    }
    const std::string body = name.substr(5);
    const std::size_t plus = body.find('+');
    if (plus == std::string::npos || plus == 0 || plus + 1 >= body.size()) {
      throw InvalidArgument("malformed composite '" + name +
                            "': expected hier:<intra>+<inter>");
    }
    CompositeSpec spec;
    spec.algo = CompositeAlgo::Hier;
    spec.intra = body.substr(0, plus);
    spec.inter = body.substr(plus + 1);
    spec.text = name;
    return spec;
  }
  if (name.rfind("rsag", 0) == 0 && (name.size() == 4 || name[4] == ':')) {
    CompositeSpec spec;
    spec.algo = CompositeAlgo::Rsag;
    if (name.size() > 4) {
      spec.intra = name.substr(5);
      if (spec.intra.empty()) {
        throw InvalidArgument("malformed composite '" + name + "': expected rsag[:<backend>]");
      }
    }
    spec.text = name;
    return spec;
  }
  return std::nullopt;
}

const std::vector<CompositeInfo>& registered_composites() {
  static const std::vector<CompositeInfo> infos = {
      {"hier:<intra>+<inter>",
       "two-level hierarchical allreduce: intra-node reduce on <intra>, leader "
       "allreduce on <inter>, intra-node broadcast on <intra>"},
      {"rsag[:<backend>]",
       "allreduce as reduce-scatter + allgather on one backend (default "
       "backend when omitted)"},
  };
  return infos;
}

std::vector<std::string> composite_arms(const std::vector<std::string>& backends) {
  std::vector<std::string> arms;
  for (const auto& intra : backends) {
    for (const auto& inter : backends) {
      arms.push_back("hier:" + intra + "+" + inter);
    }
  }
  for (const auto& b : backends) arms.push_back("rsag:" + b);
  return arms;
}

}  // namespace mcrdl::coll
