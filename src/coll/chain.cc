#include "src/coll/chain.h"

#include <algorithm>
#include <utility>

#include "src/common/status.h"

namespace mcrdl::coll {

// ---------------------------------------------------------------------------
// ChainWork
// ---------------------------------------------------------------------------

ChainWork::ChainWork(OverlapScheduler* owner, int rank, std::uint64_t epoch,
                     std::vector<ChainPhase> phases, std::function<void()> finalize)
    : owner_(owner), rank_(rank), epoch_(epoch), phases_(std::move(phases)),
      finalize_(std::move(finalize)) {
  MCRDL_REQUIRE(owner_ != nullptr, "ChainWork needs an OverlapScheduler");
}

void ChainWork::wait() {
  if (done_.load(std::memory_order_acquire)) return;
  try {
    owner_->drive(rank_, shared_from_this());
    return;
  } catch (const RankLostError&) {
    std::function<void()> recover;
    {
      std::lock_guard<std::mutex> lock(owner_->slot(rank_).mu);
      recover = std::move(recover_);
      recover_ = nullptr;
    }
    if (!recover) throw;
    // Re-dispatch the original request synchronously through the full
    // pipeline; its recover stage parks until the epoch advances, remaps the
    // group onto the survivors and replays — the casualty's own replay
    // rethrows there, exactly like a flat op's.
    recover();
  }
  // The replay completed the operation; transition this handle so callers
  // and registered completion observers see one finished op.
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard<std::mutex> lock(owner_->slot(rank_).mu);
    error_ = nullptr;
    phases_.clear();
    finalize_ = nullptr;
    callbacks = std::move(callbacks_);
    callbacks_.clear();
    complete_time_ = owner_->scheduler()->now();
    done_.store(true, std::memory_order_release);
  }
  for (auto& fn : callbacks) fn();
}

void ChainWork::on_complete(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(owner_->slot(rank_).mu);
    if (!done_.load(std::memory_order_relaxed)) {
      callbacks_.push_back(std::move(fn));
      return;
    }
  }
  fn();  // already complete: fire inline, as every WorkHandle does
}

void ChainWork::set_recover(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(owner_->slot(rank_).mu);
  recover_ = std::move(fn);
}

void ChainWork::set_restore(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(owner_->slot(rank_).mu);
  restore_ = std::move(fn);
}

// ---------------------------------------------------------------------------
// ChainGroupWork
// ---------------------------------------------------------------------------

ChainGroupWork::ChainGroupWork(std::vector<std::shared_ptr<ChainWork>> chains)
    : chains_(std::move(chains)) {
  MCRDL_REQUIRE(!chains_.empty(), "ChainGroupWork needs at least one chain");
}

void ChainGroupWork::arm() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MCRDL_CHECK(self_ == nullptr && remaining_ == 0) << "ChainGroupWork::arm called twice";
    remaining_ = static_cast<int>(chains_.size());
    self_ = shared_from_this();
  }
  // Weak captures: the chunk callbacks must not keep the group alive on
  // their own (the chain would otherwise anchor the group which anchors the
  // chain list — the self-capture leak shape); self_ is the one deliberate
  // anchor, cleared on completion.
  for (auto& ch : chains_) {
    ch->on_complete([weak = std::weak_ptr<ChainGroupWork>(shared_from_this())] {
      if (auto strong = weak.lock()) strong->part_done();
    });
  }
}

void ChainGroupWork::part_done() {
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (remaining_ > 0) last = (--remaining_ == 0);
  }
  if (last) complete_now();
}

void ChainGroupWork::complete_now() {
  std::vector<std::function<void()>> callbacks;
  std::shared_ptr<ChainGroupWork> anchor;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_.load(std::memory_order_relaxed)) return;
    for (const auto& ch : chains_) {
      complete_time_ = std::max(complete_time_, ch->complete_time());
    }
    callbacks = std::move(callbacks_);
    callbacks_.clear();
    anchor = std::move(self_);  // released after the lock
    self_ = nullptr;
    done_.store(true, std::memory_order_release);
  }
  for (auto& fn : callbacks) fn();
}

void ChainGroupWork::wait() {
  for (auto& ch : chains_) ch->wait();
  complete_now();
}

void ChainGroupWork::on_complete(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!done_.load(std::memory_order_relaxed)) {
      callbacks_.push_back(std::move(fn));
      return;
    }
  }
  fn();
}

// ---------------------------------------------------------------------------
// OverlapScheduler
// ---------------------------------------------------------------------------

OverlapScheduler::OverlapScheduler(sim::Scheduler* sched, int world, bool overlap, int chunks)
    : sched_(sched), overlap_(overlap), chunks_(chunks) {
  MCRDL_REQUIRE(sched_ != nullptr, "OverlapScheduler needs a scheduler");
  MCRDL_REQUIRE(world >= 1, "OverlapScheduler needs a positive world size");
  MCRDL_REQUIRE(chunks_ >= 1, "overlap chunk count must be >= 1");
  slots_.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    auto s = std::make_unique<Slot>();
    s->cond = std::make_unique<sim::SimCondition>(sched_);
    slots_.push_back(std::move(s));
  }
}

OverlapScheduler::Slot& OverlapScheduler::slot(int rank) const {
  MCRDL_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < slots_.size(),
                "rank out of range for OverlapScheduler");
  return *slots_[static_cast<std::size_t>(rank)];
}

std::shared_ptr<ChainWork> OverlapScheduler::make_chain(int rank, std::uint64_t epoch,
                                                        std::vector<ChainPhase> phases,
                                                        std::function<void()> finalize) {
  auto ch = std::make_shared<ChainWork>(this, rank, epoch, std::move(phases),
                                        std::move(finalize));
  Slot& s = slot(rank);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.chains.push_back(ch);
    ++s.gen;
  }
  // Zero-phase degenerate case (single-rank composite): complete on the spot.
  maybe_complete(rank, ch);
  return ch;
}

void OverlapScheduler::drain(int rank) { drive(rank, nullptr); }

std::uint64_t OverlapScheduler::poke() {
  for (auto& s : slots_) {
    {
      std::lock_guard<std::mutex> lock(s->mu);
      ++s->gen;
    }
    s->cond->notify_all();
  }
  return 0;
}

std::size_t OverlapScheduler::live_chains(int rank) const {
  Slot& s = slot(rank);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.chains.size();
}

void OverlapScheduler::fail_locked(ChainWork& ch, std::exception_ptr err) {
  if (ch.done_.load(std::memory_order_relaxed) || ch.error_ != nullptr) return;
  ch.error_ = std::move(err);
  // Unpostable from here on; callbacks_ are kept so a successful elastic
  // replay (ChainWork::wait's recover path) still fires them.
  ch.phases_.clear();
  ch.next_phase_ = 0;
  ch.outstanding_ = 0;
  ch.finalize_ = nullptr;
  if (ch.restore_) {
    // Completed phases already mutated the payload in place (e.g. the intra
    // reduce accumulated into the leader's buffer); put the original bytes
    // back so the replay reduces each contribution exactly once.
    auto restore = std::move(ch.restore_);
    ch.restore_ = nullptr;
    restore();
  }
}

void OverlapScheduler::prune_locked(Slot& s, bool include_errored) {
  auto it = std::remove_if(s.chains.begin(), s.chains.end(),
                           [include_errored](const std::shared_ptr<ChainWork>& ch) {
                             if (ch->done_.load(std::memory_order_relaxed)) return true;
                             if (ch->error_ != nullptr && include_errored) {
                               // Dropped, not replayed: break the potential
                               // chain -> callback -> chain cycle.
                               ch->callbacks_.clear();
                               return true;
                             }
                             return false;
                           });
  s.chains.erase(it, s.chains.end());
}

void OverlapScheduler::drive(int rank, const std::shared_ptr<ChainWork>& target) {
  Slot& s = slot(rank);
  for (;;) {
    std::vector<std::shared_ptr<ChainWork>> to_post;
    std::uint64_t seen = 0;
    bool block = false;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      if (target != nullptr) {
        if (target->error_ != nullptr) break;  // rethrown below, outside the lock
        if (target->done_.load(std::memory_order_acquire)) {
          prune_locked(s, /*include_errored=*/false);
          return;
        }
      }
      // An epoch bump failed-and-cancelled every in-flight sub-op of the old
      // epoch's chains; their completion callbacks will never fire, so fail
      // the chains here for replay instead of blocking forever.
      const std::uint64_t epoch = current_epoch();
      for (auto& ch : s.chains) {
        if (ch->epoch_ != epoch) {
          fail_locked(*ch, std::make_exception_ptr(RankLostError(
                               "composite chain stamped epoch " + std::to_string(ch->epoch_) +
                               " bounced at epoch " + std::to_string(epoch) +
                               " after rank loss; replay on the new communicator")));
        }
      }
      if (target != nullptr && target->error_ != nullptr) break;
      prune_locked(s, /*include_errored=*/target == nullptr);
      if (target == nullptr && s.chains.empty()) return;
      for (auto& ch : s.chains) {
        if (ch->error_ != nullptr) continue;
        if (target != nullptr && !overlap_ && ch != target) continue;
        if (ch->outstanding_ == 0 && ch->next_phase_ < ch->phases_.size()) {
          to_post.push_back(ch);
        }
      }
      if (to_post.empty()) {
        seen = s.gen;
        block = true;
      }
    }
    if (!block) {
      for (auto& ch : to_post) {
        try {
          post_next_phase(rank, ch);
        } catch (const RankLostError&) {
          // The error is stored on the chain. The waited-on chain rethrows
          // below; a bystander chain's owner observes it on its own wait(),
          // and a drain drops it like the engines' synchronize does.
          if (target != nullptr && ch == target) break;
        }
      }
      continue;
    }
    s.cond->wait([&s, seen] {
      std::lock_guard<std::mutex> lock(s.mu);
      return s.gen != seen;
    });
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    err = target->error_;
    s.chains.erase(std::remove(s.chains.begin(), s.chains.end(), target), s.chains.end());
  }
  MCRDL_CHECK(err != nullptr) << "drive broke out without a stored error";
  std::rethrow_exception(err);
}

void OverlapScheduler::post_next_phase(int rank, const std::shared_ptr<ChainWork>& ch) {
  Slot& s = slot(rank);
  ChainPhase phase;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (ch->done_.load(std::memory_order_relaxed) || ch->error_ != nullptr ||
        ch->outstanding_ != 0 || ch->next_phase_ >= ch->phases_.size()) {
      return;
    }
    phase = std::move(ch->phases_[ch->next_phase_]);
    ch->outstanding_ = kPosting;
  }
  std::vector<Work> works;
  try {
    // Actor context, slot mutex released: the phase posts async sub-ops and
    // may legitimately block (launch-delay injection sleeps in submit).
    works = phase();
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(s.mu);
      ch->outstanding_ = 0;
      fail_locked(*ch, std::current_exception());
      ++s.gen;
    }
    s.cond->notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(s.mu);
    ++ch->next_phase_;
    ch->outstanding_ = static_cast<int>(works.size());
    ++s.gen;
  }
  // Registered without the mutex: a sub-op that already completed fires the
  // callback inline on this thread, and the callback itself takes the mutex.
  for (auto& w : works) {
    w->on_complete([this, rank, weak = std::weak_ptr<ChainWork>(ch)] { part_done(rank, weak); });
  }
  if (works.empty()) maybe_complete(rank, ch);
  s.cond->notify_all();
}

void OverlapScheduler::part_done(int rank, const std::weak_ptr<ChainWork>& weak) {
  std::shared_ptr<ChainWork> ch = weak.lock();
  if (ch == nullptr) return;
  Slot& s = slot(rank);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!ch->done_.load(std::memory_order_relaxed) && ch->error_ == nullptr &&
        ch->outstanding_ > 0) {
      --ch->outstanding_;
    }
    ++s.gen;
  }
  maybe_complete(rank, ch);
  s.cond->notify_all();
}

void OverlapScheduler::maybe_complete(int rank, const std::shared_ptr<ChainWork>& ch) {
  Slot& s = slot(rank);
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (ch->done_.load(std::memory_order_relaxed) || ch->error_ != nullptr) return;
    if (ch->outstanding_ != 0 || ch->next_phase_ < ch->phases_.size()) return;
    // Finalize (slice-back copies — pure data movement, no virtual time)
    // under the lock so no observer sees done before the data is in place.
    if (ch->finalize_) {
      auto finalize = std::move(ch->finalize_);
      ch->finalize_ = nullptr;
      finalize();
    }
    ch->phases_.clear();
    ch->recover_ = nullptr;
    ch->restore_ = nullptr;
    callbacks = std::move(ch->callbacks_);
    ch->callbacks_.clear();
    ch->complete_time_ = sched_->now();
    ch->done_.store(true, std::memory_order_release);
    ++s.gen;
  }
  // Completion observers (metrics, logger, tuner, chunk-group counting) fire
  // outside the lock; they may re-enter on_complete of other works.
  for (auto& fn : callbacks) fn();
  s.cond->notify_all();
}

}  // namespace mcrdl::coll
