// Thread-slot identity for sharded execution (DESIGN.md §11).
//
// When the simulator runs under the ParallelShards execution model, several
// accumulating subsystems (obs::MetricsRegistry, net::LinkUsage) stripe
// their state per shard so concurrent actors never write the same cell. The
// stripe index is a thread-local set by the execution engine:
//
//   slot 0            — the serial engine, the epoch controller thread, and
//                       any code outside run() (tools, tests, main)
//   slot 1..kMaxShards — actor threads owned by shard (slot-1)
//
// Striped readers merge slots in index order, so for a fixed shard count the
// merged value is reproducible run to run.
#pragma once

namespace mcrdl {

// Upper bound on ParallelShards worker shards; one extra slot (index 0) is
// reserved for serial/controller/main-thread writes.
inline constexpr int kMaxShards = 16;
inline constexpr int kShardSlots = kMaxShards + 1;

namespace detail {
inline thread_local int t_shard_slot = 0;
}  // namespace detail

// The calling thread's stripe index in [0, kShardSlots).
inline int shard_slot() { return detail::t_shard_slot; }

// Installs the stripe index for the calling thread (execution-engine use).
inline void set_shard_slot(int slot) { detail::t_shard_slot = slot; }

}  // namespace mcrdl
