// Unit conventions used throughout the simulator and cost models.
//
// * Virtual time is a `double` measured in MICROSECONDS.
// * Sizes are `std::size_t` BYTES.
// * Bandwidths are GB/s (1e9 bytes per second); `gbps_to_bytes_per_us`
//   converts to the internal bytes-per-microsecond representation.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mcrdl {

using SimTime = double;  // microseconds of virtual time

inline constexpr SimTime kMicrosecond = 1.0;
inline constexpr SimTime kMillisecond = 1e3;
inline constexpr SimTime kSecond = 1e6;

inline constexpr std::size_t kKiB = std::size_t{1} << 10;
inline constexpr std::size_t kMiB = std::size_t{1} << 20;
inline constexpr std::size_t kGiB = std::size_t{1} << 30;

// Converts a link bandwidth in GB/s into bytes per microsecond of virtual
// time, the unit the cost models compute with.
constexpr double gbps_to_bytes_per_us(double gb_per_s) { return gb_per_s * 1e3; }

// Transfer time in µs for `bytes` over a `gb_per_s` link (pure β term).
constexpr SimTime transfer_time_us(std::size_t bytes, double gb_per_s) {
  return static_cast<double>(bytes) / gbps_to_bytes_per_us(gb_per_s);
}

}  // namespace mcrdl
