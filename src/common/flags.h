// A small command-line flag parser for the CLI tools (tools/). Flags are
// `--name=value` or `--name value`; `--help` support and typed accessors
// with defaults. Unknown flags are errors so typos fail loudly.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace mcrdl {

class Flags {
 public:
  // Declares a flag before parsing; declaration order is help order.
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  // Parses argv; throws InvalidArgument on unknown/malformed flags.
  // Returns false if --help was requested (help text already printed).
  bool parse(int argc, char** argv);

  const std::string& get(const std::string& name) const;
  int get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  // Comma-separated list accessors.
  std::vector<std::string> get_list(const std::string& name) const;
  std::vector<std::size_t> get_size_list(const std::string& name) const;

  std::string help(const std::string& program) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
  };
  std::vector<std::string> order_;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
};

// Parses "4k", "16m", "1g" size suffixes (binary units) or plain bytes.
std::size_t parse_size(const std::string& text);

}  // namespace mcrdl
