// Human-readable formatting helpers plus a fixed-width text table printer
// used by the benchmark binaries to reproduce the paper's tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mcrdl {

// "4 KiB", "1 MiB", "256 B" — message-size labels matching the paper's axes.
std::string format_bytes(std::size_t bytes);

// "12.3 us", "4.56 ms", "1.23 s" from a microsecond count.
std::string format_time_us(double us);

// "12.3%", one decimal.
std::string format_percent(double fraction);

// Fixed-width monospace table, rendered with a header rule. Benchmarks use
// this to print rows in the same layout as the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcrdl
