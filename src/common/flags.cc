#include "src/common/flags.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace mcrdl {

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  MCRDL_REQUIRE(specs_.count(name) == 0, "flag defined twice: " + name);
  order_.push_back(name);
  specs_[name] = Spec{default_value, help};
  values_[name] = default_value;
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", help(argv[0]).c_str());
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw InvalidArgument("unexpected positional argument: " + arg);
    }
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      name = arg.substr(2);
      if (i + 1 >= argc) throw InvalidArgument("flag --" + name + " needs a value");
      value = argv[++i];
    }
    if (specs_.count(name) == 0) throw InvalidArgument("unknown flag: --" + name);
    values_[name] = value;
  }
  return true;
}

const std::string& Flags::get(const std::string& name) const {
  auto it = values_.find(name);
  MCRDL_REQUIRE(it != values_.end(), "flag not defined: " + name);
  return it->second;
}

int Flags::get_int(const std::string& name) const {
  const std::string& v = get(name);
  try {
    std::size_t pos = 0;
    const int out = std::stoi(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing characters");
    return out;
  } catch (const std::exception&) {
    throw InvalidArgument("flag --" + name + " is not an integer: " + v);
  }
}

double Flags::get_double(const std::string& name) const {
  try {
    return std::stod(get(name));
  } catch (const std::exception&) {
    throw InvalidArgument("flag --" + name + " is not a number: " + get(name));
  }
}

bool Flags::get_bool(const std::string& name) const {
  std::string v = get(name);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw InvalidArgument("flag --" + name + " is not a boolean: " + get(name));
}

std::vector<std::string> Flags::get_list(const std::string& name) const {
  std::vector<std::string> out;
  std::istringstream in(get(name));
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<std::size_t> Flags::get_size_list(const std::string& name) const {
  std::vector<std::size_t> out;
  for (const auto& item : get_list(name)) out.push_back(parse_size(item));
  return out;
}

std::string Flags::help(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [--flag=value ...]\n\nflags:\n";
  for (const auto& name : order_) {
    const Spec& spec = specs_.at(name);
    out << "  --" << name;
    if (!spec.default_value.empty()) out << " (default: " << spec.default_value << ")";
    out << "\n      " << spec.help << "\n";
  }
  return out.str();
}

std::size_t parse_size(const std::string& text) {
  MCRDL_REQUIRE(!text.empty(), "empty size");
  std::size_t multiplier = 1;
  std::string digits = text;
  const char suffix = static_cast<char>(std::tolower(static_cast<unsigned char>(text.back())));
  if (suffix == 'k' || suffix == 'm' || suffix == 'g') {
    multiplier = suffix == 'k' ? (std::size_t{1} << 10)
                               : suffix == 'm' ? (std::size_t{1} << 20) : (std::size_t{1} << 30);
    digits = text.substr(0, text.size() - 1);
  }
  try {
    return static_cast<std::size_t>(std::stoull(digits)) * multiplier;
  } catch (const std::exception&) {
    throw InvalidArgument("malformed size: " + text);
  }
}

}  // namespace mcrdl
