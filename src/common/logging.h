// Minimal leveled logger for the library.
//
// Logging is off by default (level = Warn) so tests and benchmarks stay
// quiet; set MCRDL_LOG_LEVEL=debug|info|warn|error in the environment or
// call set_log_level() to change it.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace mcrdl {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace mcrdl

#define MCRDL_LOG(level) ::mcrdl::detail::LogLine(::mcrdl::LogLevel::level, __FILE__, __LINE__)
#define MCRDL_LOG_DEBUG MCRDL_LOG(Debug)
#define MCRDL_LOG_INFO MCRDL_LOG(Info)
#define MCRDL_LOG_WARN MCRDL_LOG(Warn)
#define MCRDL_LOG_ERROR MCRDL_LOG(Error)
