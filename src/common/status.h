// Error handling primitives shared by every MCR-DL module.
//
// The library follows a simple contract: programmer errors (API misuse,
// violated invariants) throw `mcrdl::Error`; simulated-system conditions
// that a caller may legitimately want to observe (e.g. deadlock detected by
// the virtual-time scheduler) throw dedicated subclasses so tests and
// applications can catch them specifically.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mcrdl {

// Base class for all errors raised by the MCR-DL library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Raised when a public API is called with invalid arguments.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

// Raised when the virtual-time scheduler proves that every live actor is
// blocked with no pending timed event — a genuine distributed deadlock.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

// Raised when an operation is attempted on a backend that was not
// initialised, or after finalize().
class BackendStateError : public Error {
 public:
  explicit BackendStateError(const std::string& what) : Error(what) {}
};

// Raised when a communication library is asked for an operation it does not
// implement natively (e.g. NCCL gatherv). MCR-DL's emulation layer catches
// this and synthesises the operation from native primitives.
class UnsupportedOperation : public Error {
 public:
  explicit UnsupportedOperation(const std::string& what) : Error(what) {}
};

// Raised when ranks disagree about the collective being issued at the same
// sequence position on one communicator (the misuse that silently hangs
// real NCCL programs).
class CollectiveMismatch : public Error {
 public:
  explicit CollectiveMismatch(const std::string& what) : Error(what) {}
};

// Raised when a rendezvous watchdog fires: a collective waited longer than
// its (virtual-time) deadline for peers that never arrived. The message
// names who arrived and who is missing, turning a would-be hang into a
// diagnosable timeout (see src/fault/watchdog.h).
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

// Raised when an operation targets a backend that is out of service — a
// permanent injected outage or an opened circuit breaker. The failover
// router catches this and re-routes to the next healthy backend
// (src/fault/failover.h).
class BackendUnavailable : public Error {
 public:
  explicit BackendUnavailable(const std::string& what) : Error(what) {}
};

// Raised for an injected transient operation failure (a flapping NIC, a
// dropped completion). Retryable: the retry policy re-issues the operation
// with exponential backoff before giving up (src/fault/policy.h).
class TransientFault : public Error {
 public:
  explicit TransientFault(const std::string& what) : Error(what) {}
};

// Raised when a collective or p2p operation involves a rank that is
// permanently gone (injected rank_loss fault). Unlike TimeoutError this is
// retriable *across an epoch boundary*: the elastic recovery layer
// (src/fault/recovery.h) catches it, waits for the cluster to shrink to the
// survivors, and replays the operation on the new communicator. Without
// recovery armed it surfaces to the application as a permanent failure.
class RankLostError : public Error {
 public:
  explicit RankLostError(const std::string& what) : Error(what) {}
};

namespace detail {

// Stream-style message builder used by the CHECK macros below.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

// Binds below operator<< so the whole streamed message is built before the
// throw fires: `CheckThrower{...} & (builder << a << b)`.
struct CheckThrower {
  const char* expr;
  const char* file;
  int line;

  [[noreturn]] void operator&(const MessageBuilder& mb) const {
    std::ostringstream out;
    out << "MCRDL_CHECK failed: (" << expr << ") at " << file << ":" << line;
    const std::string msg = mb.str();
    if (!msg.empty()) out << " — " << msg;
    throw Error(out.str());
  }
};

}  // namespace detail

}  // namespace mcrdl

// Always-on invariant check. Usage:
//   MCRDL_CHECK(rank < world_size) << "rank out of range: " << rank;
#define MCRDL_CHECK(expr)                                                     \
  if (expr) {                                                                 \
  } else                                                                      \
    ::mcrdl::detail::CheckThrower{#expr, __FILE__, __LINE__} &                \
        ::mcrdl::detail::MessageBuilder()

// Argument validation for public entry points; throws InvalidArgument.
#define MCRDL_REQUIRE(expr, msg)                                                       \
  do {                                                                                 \
    if (!(expr)) {                                                                     \
      std::ostringstream out_;                                                         \
      out_ << "invalid argument: " << msg << " [" << #expr << "]";                     \
      throw ::mcrdl::InvalidArgument(out_.str());                                      \
    }                                                                                  \
  } while (0)
