// Deterministic random number generation.
//
// Every stochastic component in the simulator derives its stream from a
// SplitMix64 generator seeded explicitly, so a given (seed, topology,
// workload) triple always reproduces the identical virtual-time trace.
#pragma once

#include <cstdint>

namespace mcrdl {

// SplitMix64: tiny, fast, and statistically solid for simulation use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0); }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  // Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n == 0 ? 0 : next_u64() % n; }

  // Derives an independent child stream; used to give each rank / component
  // its own generator from one master seed.
  Rng split(std::uint64_t salt) {
    Rng child(state_ ^ (salt * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull));
    (void)child.next_u64();
    return child;
  }

 private:
  std::uint64_t state_;
};

}  // namespace mcrdl
