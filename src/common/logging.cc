#include "src/common/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace mcrdl {
namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> level = [] {
    const char* env = std::getenv("MCRDL_LOG_LEVEL");
    if (env != nullptr) return static_cast<int>(parse_log_level(env));
    return static_cast<int>(LogLevel::Warn);
  }();
  return level;
}

std::mutex& output_mutex() {
  static std::mutex m;
  return m;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return LogLevel::Warn;
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line) : enabled_(level >= log_level()) {
  if (!enabled_) return;
  const char* base = std::strrchr(file, '/');
  stream_ << "[mcrdl " << level_name(level) << " " << (base != nullptr ? base + 1 : file) << ":"
          << line << "] ";
}

LogLine::~LogLine() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(output_mutex());
  std::cerr << stream_.str() << "\n";
}

}  // namespace detail
}  // namespace mcrdl
