#include "src/common/format.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mcrdl {

std::string format_bytes(std::size_t bytes) {
  char buf[64];
  if (bytes >= (std::size_t{1} << 30) && bytes % (std::size_t{1} << 30) == 0) {
    std::snprintf(buf, sizeof(buf), "%zu GiB", bytes >> 30);
  } else if (bytes >= (std::size_t{1} << 20) && bytes % (std::size_t{1} << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "%zu MiB", bytes >> 20);
  } else if (bytes >= (std::size_t{1} << 10) && bytes % (std::size_t{1} << 10) == 0) {
    std::snprintf(buf, sizeof(buf), "%zu KiB", bytes >> 10);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

std::string format_time_us(double us) {
  char buf[64];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f s", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f us", us);
  }
  return buf;
}

std::string format_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) out << std::string(widths[c] + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace mcrdl
