// Resilience policies: how the runtime *responds* to injected (or real)
// faults, as opposed to src/fault/injector.h which decides when they occur.
//
// Two standard mechanisms:
//
//   * RetryPolicy — bounded retry with exponential backoff for
//     TransientFault. Backoff is charged to virtual time by the caller
//     (Api::routed sleeps on the scheduler), so retries are visible in the
//     simulated timeline exactly like they would be on a wall clock.
//   * CircuitBreaker — N *consecutive* failures on a backend mark it
//     unhealthy. Both the counts and the resulting health are tracked per
//     (backend, rank): a rank's routing decisions must depend only on the
//     fault verdicts *it* has observed, which are identical across ranks at
//     the same logical operation (one verdict per rendezvous). Global
//     health would let a fast rank's trip — recorded while retrying a
//     *later* op — leak into a straggling rank's retry of an earlier op,
//     desyncing the per-communicator sequence numbers the engines key
//     rendezvous on (observed as a virtual-time deadlock). Once open, a
//     breaker stays open: reopening mid-run would desync sequences the
//     same way.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "src/common/units.h"

namespace mcrdl::fault {

// Exponential backoff schedule for transient-fault retries.
struct RetryPolicy {
  int max_attempts = 3;             // total attempts per backend (first + retries)
  SimTime base_backoff_us = 50.0;   // backoff before the first retry
  double backoff_multiplier = 2.0;  // growth per subsequent retry

  // Virtual-time backoff charged before retry number `attempt` (1-based:
  // attempt 1 is the first retry).
  SimTime backoff(int attempt) const {
    SimTime b = base_backoff_us;
    for (int i = 1; i < attempt; ++i) b *= backoff_multiplier;
    return b;
  }
};

// Per-backend consecutive-failure tracker. Deterministic and allocation-light;
// shared by every rank of a cluster (the simulator is single-batoned, so no
// locking is needed beyond the scheduler's own serialisation).
class CircuitBreaker {
 public:
  explicit CircuitBreaker(int threshold = 3);

  // Records one failed attempt by `rank` on `backend`. Returns true if this
  // failure tripped the breaker (backend newly unhealthy for `rank`).
  bool record_failure(const std::string& backend, int rank);
  // A successful attempt resets `rank`'s consecutive count for `backend`.
  void record_success(const std::string& backend, int rank);

  bool healthy(const std::string& backend, int rank) const {
    return open_.count({backend, rank}) == 0;
  }
  int threshold() const { return threshold_; }
  // Consecutive failures recorded for (backend, rank); for introspection.
  int consecutive_failures(const std::string& backend, int rank) const;

 private:
  int threshold_;
  std::map<std::pair<std::string, int>, int> consecutive_;
  std::set<std::pair<std::string, int>> open_;
};

}  // namespace mcrdl::fault
