// Resilience policies: how the runtime *responds* to injected (or real)
// faults, as opposed to src/fault/injector.h which decides when they occur.
//
// Two standard mechanisms:
//
//   * RetryPolicy — bounded retry with exponential backoff for
//     TransientFault. Backoff is charged to virtual time by the caller
//     (the route stage sleeps on the scheduler), so retries are visible in
//     the simulated timeline exactly like they would be on a wall clock.
//   * CircuitBreaker — a per-(backend, rank) three-state machine:
//
//         Closed ──threshold consecutive failures──▶ Open
//         Open ──probe_after_ops denied routes / allow_probe()──▶ HalfOpen
//         HalfOpen ──cooldown consecutive successes──▶ Closed
//         HalfOpen ──any failure──▶ Open  (skip count restarts)
//
//     Both the counts and the health are tracked per (backend, rank): a
//     rank's routing decisions must depend only on the fault verdicts *it*
//     has observed, which are identical across ranks at the same logical
//     operation (one verdict per rendezvous). Global health would let a
//     fast rank's trip — recorded while retrying a *later* op — leak into
//     a straggling rank's retry of an earlier op, desyncing the
//     per-communicator sequence numbers the engines key rendezvous on
//     (observed as a virtual-time deadlock).
//
//     Probe admission follows the same rule: it is driven by the count of
//     operations that *preferred* the open backend and were routed away
//     (note_skipped), never by raw virtual time. Every rank resolves the
//     same preferred backend for the same logical op, so skip counts — and
//     therefore the Open→HalfOpen transition — line up across ranks, while
//     a wall-clock cooldown would let a straggler probe a different
//     logical op than its peers and desync sequences.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "src/common/units.h"

namespace mcrdl::fault {

// Exponential backoff schedule for transient-fault retries, with optional
// deterministic full jitter: after a shared outage every rank's retry timer
// expires together, and the synchronized storm re-collides on whatever
// capacity is left. Seeded per-(rank, attempt) jitter decorrelates the
// schedules while keeping replays byte-identical for a fixed seed.
struct RetryPolicy {
  int max_attempts = 3;             // total attempts per backend (first + retries)
  SimTime base_backoff_us = 50.0;   // backoff before the first retry
  double backoff_multiplier = 2.0;  // growth per subsequent retry
  // 0 disables jitter (the exact exponential schedule below); any other
  // value enables full jitter — backoff drawn uniformly from (0, window]
  // where window is the exponential backoff for that attempt.
  std::uint64_t jitter_seed = 0;

  // Virtual-time backoff charged before retry number `attempt` (1-based:
  // attempt 1 is the first retry). The exponential window, jitter-free.
  SimTime backoff(int attempt) const {
    SimTime b = base_backoff_us;
    for (int i = 1; i < attempt; ++i) b *= backoff_multiplier;
    return b;
  }

  // The backoff `rank` actually sleeps before retry `attempt`: the
  // exponential window when jitter is disabled, otherwise a full-jitter
  // draw from a stream derived only from (jitter_seed, rank, attempt) — no
  // shared rng state, so two ranks retrying concurrently can never perturb
  // each other's draws and replay order cannot change the schedule.
  SimTime backoff(int attempt, int rank) const;
};

enum class BreakerState { Closed, Open, HalfOpen };

// Human-readable state name ("closed" / "open" / "half_open"); used as a
// metrics label by the transition hook installed in McrDl::init.
const char* breaker_state_name(BreakerState state);

struct BreakerConfig {
  int threshold = 3;        // consecutive failures before Closed -> Open
  int cooldown = 2;         // consecutive half-open successes before -> Closed
  // Denied routes (ops that preferred this backend while open) before an
  // automatic Open -> HalfOpen probe; <= 0 disables automatic probing
  // (allow_probe() remains available).
  int probe_after_ops = 8;
};

// Invoked on every state transition, after the state changed. Purely
// observational — the obs layer counts open/half-open/close events with it.
using BreakerTransitionHook =
    std::function<void(const std::string& backend, int rank, BreakerState to)>;

// Per-(backend, rank) three-state breaker. Deterministic and
// allocation-light; shared by every rank of a cluster (the simulator is
// single-batoned, so no locking is needed beyond the scheduler's own
// serialisation).
class CircuitBreaker {
 public:
  explicit CircuitBreaker(int threshold = 3) : CircuitBreaker(BreakerConfig{threshold, 2, 8}) {}
  explicit CircuitBreaker(BreakerConfig config);

  // Records one failed attempt by `rank` on `backend`. Returns true if this
  // failure tripped the breaker (Closed reaching the threshold, or a failed
  // half-open probe re-opening it).
  bool record_failure(const std::string& backend, int rank);
  // A successful attempt: resets the consecutive-failure count when Closed;
  // when HalfOpen, counts toward `cooldown` and closes the breaker once
  // enough consecutive probes succeeded.
  void record_success(const std::string& backend, int rank);

  // An operation preferring `backend` was routed elsewhere while the
  // breaker was open. After `probe_after_ops` such denials the breaker
  // moves to HalfOpen, so the next preferring op becomes the probe. No-op
  // unless Open.
  void note_skipped(const std::string& backend, int rank);
  // Explicit Open -> HalfOpen transition; returns false (and does nothing)
  // unless the breaker is currently Open.
  bool allow_probe(const std::string& backend, int rank);

  // True unless Open: half-open breakers admit traffic (the probe).
  bool healthy(const std::string& backend, int rank) const;
  BreakerState state(const std::string& backend, int rank) const;

  int threshold() const { return config_.threshold; }
  const BreakerConfig& config() const { return config_; }
  // Consecutive failures recorded for (backend, rank); for introspection.
  int consecutive_failures(const std::string& backend, int rank) const;

  void set_transition_hook(BreakerTransitionHook hook) { hook_ = std::move(hook); }

 private:
  struct Entry {
    BreakerState state = BreakerState::Closed;
    int failures = 0;   // consecutive failures (Closed) / last streak (Open)
    int skipped = 0;    // denied routes since the breaker opened
    int successes = 0;  // consecutive half-open probe successes
  };

  void transition(const std::string& backend, int rank, Entry& entry, BreakerState to);

  BreakerConfig config_;
  std::map<std::pair<std::string, int>, Entry> entries_;
  BreakerTransitionHook hook_;
};

}  // namespace mcrdl::fault
