// Deterministic fault injection (the chaos half of MCR-DL's resilience
// story).
//
// A FaultPlan is a declarative list of FaultSpecs — transient op failures,
// permanent backend outages, link degradation, rank slowdowns and straggler
// delays — plus a seed and an optional rendezvous-watchdog deadline. The
// FaultInjector evaluates the plan at well-defined injection points:
//
//   * CollectiveEngine / P2pEngine consult `should_fail` exactly once per
//     rendezvous (at creation) so every participating rank observes the
//     same verdict — an injected failure fails the whole collective on all
//     ranks, the way a NIC flap fails a real NCCL call everywhere.
//   * `backend_unavailable` models a crashed/permanently wedged backend
//     from a virtual-time instant onward.
//   * `link_beta_scale` plugs into net::CostModel so degraded links slow
//     operations down in *virtual time* rather than raising exceptions.
//   * `rank_delay` / `rank_launch_scale` stretch one rank's host-side
//     launch path, producing genuine stragglers the rendezvous must wait
//     for.
//
// All decisions derive from one seeded SplitMix64 stream, so a given
// (plan, workload) pair replays the identical fault sequence every run.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/fault/watchdog.h"
#include "src/net/comm_types.h"
#include "src/sim/scheduler.h"

namespace mcrdl::fault {

// Which part of the topology a LinkDegradation spec slows down.
enum class LinkScope { All, IntraNode, InterNode };

enum class FaultKind {
  Transient,         // an op attempt fails with probability p
  Outage,            // backend permanently out of service from `from_us`
  LinkDegradation,   // β on matching links multiplied by `factor` (> 1 = slower)
  RankSlowdown,      // one rank's launch latency scaled by `factor` (> 1)
  Straggler,         // one rank delayed by `delay_us` per operation
  RankLoss,          // rank permanently gone from `from_us` (elastic recovery)
  RankRejoin,        // previously lost rank re-admitted at `from_us` (grow-back)
};

const char* fault_kind_name(FaultKind kind);
const char* link_scope_name(LinkScope scope);

constexpr SimTime kNoEnd = std::numeric_limits<double>::infinity();

// One declarative fault. Use the factory helpers; the raw fields exist so
// plans can round-trip through the text format.
struct FaultSpec {
  FaultKind kind = FaultKind::Transient;
  std::string backend;          // "" matches every backend
  bool any_op = true;           // when false, only `op` is affected
  OpType op = OpType::AllReduce;
  int rank = -1;                // -1 matches every rank (slowdown/straggler)
  double probability = 0.0;     // Transient
  SimTime from_us = 0.0;        // window start (Outage: outage instant)
  SimTime until_us = kNoEnd;    // window end (exclusive)
  double factor = 1.0;          // LinkDegradation β multiplier / slowdown scale
  LinkScope scope = LinkScope::All;
  SimTime delay_us = 0.0;       // Straggler per-op delay

  bool matches_backend(const std::string& name) const {
    return backend.empty() || backend == name;
  }
  bool matches_op(OpType o) const { return any_op || op == o; }
  bool active_at(SimTime now) const { return now >= from_us && now < until_us; }

  static FaultSpec transient(std::string backend, double probability,
                             SimTime from_us = 0.0, SimTime until_us = kNoEnd);
  static FaultSpec transient_op(std::string backend, OpType op, double probability,
                                SimTime from_us = 0.0, SimTime until_us = kNoEnd);
  static FaultSpec outage(std::string backend, SimTime from_us);
  static FaultSpec degrade_links(std::string backend, double beta_factor,
                                 LinkScope scope = LinkScope::All, SimTime from_us = 0.0,
                                 SimTime until_us = kNoEnd);
  static FaultSpec slow_rank(int rank, double scale, SimTime from_us = 0.0,
                             SimTime until_us = kNoEnd);
  static FaultSpec straggler(int rank, SimTime delay_us, SimTime from_us = 0.0,
                             SimTime until_us = kNoEnd);
  // Permanent loss of one rank at a virtual-time instant. Several specs with
  // the same `at_us` model a node going down and are recovered as one epoch.
  static FaultSpec lose_rank(int rank, SimTime at_us);
  // Re-admission of a previously lost rank at a virtual-time instant (the
  // grow half of elasticity). Several specs with the same `at_us` model a
  // node coming back and are admitted as one grow epoch. A rejoin at the
  // same instant as a loss wins: the rank is alive from that instant on.
  static FaultSpec rejoin_rank(int rank, SimTime at_us);
};

// A complete chaos scenario: the specs plus the seed that makes transient
// decisions reproducible and the rendezvous-watchdog deadline (0 disables
// the watchdog). Serialises to a line-oriented text format:
//
//   # comment
//   seed 42
//   watchdog 500000
//   transient <backend|*> <op|*> <p> [from] [until]
//   outage <backend> <from_us>
//   degrade <backend|*> <all|intra|inter> <beta_factor> [from] [until]
//   slowdown <rank> <scale> [from] [until]
//   straggler <rank> <delay_us> [from] [until]
//   rank_loss <rank> <at_us>
//   rank_rejoin <rank> <at_us>
struct FaultPlan {
  std::uint64_t seed = 0x5eedf00dULL;
  SimTime watchdog_deadline_us = 0.0;
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty() && watchdog_deadline_us == 0.0; }

  std::string serialize() const;
  static FaultPlan parse(const std::string& text);
  void save(const std::string& path) const;
  static FaultPlan load(const std::string& path);
};

// β multipliers handed to net::CostModel (net::CostModel::set_fault_scale).
struct BetaScale {
  double intra = 1.0;
  double inter = 1.0;
  bool identity() const { return intra == 1.0 && inter == 1.0; }
};

// Counters the chaos tooling reports; incremented at the injection points.
struct InjectionStats {
  std::uint64_t transient_injected = 0;   // doomed rendezvous / p2p ops
  std::uint64_t outage_rejections = 0;    // ops refused on a dead backend
  std::uint64_t watchdog_timeouts = 0;    // rendezvous deadlines fired
  std::uint64_t straggler_delays = 0;     // per-rank submit delays applied
  SimTime delay_injected_us = 0.0;        // total straggler/slowdown time
  std::uint64_t rank_loss_rejections = 0; // ops doomed for involving a lost rank
};

// The per-cluster decision engine. Lives on ClusterContext (always present,
// disabled by default) so engines and cost models can hold a stable pointer
// regardless of when — or whether — a plan is installed.
class RecoveryManager;

class FaultInjector {
 public:
  explicit FaultInjector(sim::Scheduler* sched);
  ~FaultInjector();  // out-of-line: RecoveryManager is incomplete here
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs a plan (resets the rng stream and stats). An empty plan with a
  // watchdog deadline still enables the watchdog.
  void configure(FaultPlan plan);
  // Returns to the disabled, fault-free state.
  void reset();
  bool enabled() const { return enabled_; }
  const FaultPlan& plan() const { return plan_; }

  // --- decision queries ----------------------------------------------------
  // True once a matching Outage spec's instant has passed.
  bool backend_unavailable(const std::string& backend) const;
  // One verdict per collective/p2p instance; consumes the seeded stream
  // only when a matching transient spec is active.
  bool should_fail(const std::string& backend, OpType op);
  // Product of active LinkDegradation factors for each link class.
  BetaScale link_beta_scale(const std::string& backend, OpType op) const;
  // Multiplier (>= 1) on `rank`'s host-side launch latency.
  double rank_launch_scale(int global_rank) const;
  // Fixed straggler delay charged to `rank` at operation submit.
  SimTime rank_delay(int global_rank) const;
  SimTime watchdog_deadline_us() const { return enabled_ ? plan_.watchdog_deadline_us : 0.0; }
  // True while the latest RankLoss/RankRejoin event for this rank whose
  // instant has passed is a loss (a rejoin at the same instant wins the
  // tie). Engines classify rendezvous against this so every joiner observes
  // loss and rejoin identically, even before the recovery event for that
  // instant has been dispatched.
  bool rank_lost(int global_rank) const;
  // The subset of `global_ranks` that is lost at the current instant.
  std::vector<int> lost_members(const std::vector<int>& global_ranks) const;
  // Whether the installed plan declares any permanent rank losses at all
  // (time-independent; used by tooling to pick the elastic code path).
  bool has_rank_loss() const;
  // Whether the installed plan declares any rank rejoins (time-independent).
  bool has_rank_rejoin() const;

  // Bookkeeping from the injection points.
  void note_transient() { ++stats_.transient_injected; }
  void note_outage_rejection() { ++stats_.outage_rejections; }
  void note_watchdog_timeout() { ++stats_.watchdog_timeouts; }
  void note_injected_delay(SimTime us) {
    ++stats_.straggler_delays;
    stats_.delay_injected_us += us;
  }
  void note_rank_loss_rejection() { ++stats_.rank_loss_rejections; }

  const InjectionStats& stats() const { return stats_; }
  sim::Scheduler* scheduler() const { return sched_; }
  Watchdog& watchdog() { return watchdog_; }
  // The elastic-recovery state machine for this cluster (src/fault/recovery.h).
  // Always present; disarmed (and zero-cost) until a plan with rank_loss
  // specs is installed and armed by McrDl::init.
  RecoveryManager& recovery() { return *recovery_; }

 private:
  SimTime now() const { return sched_->now(); }

  sim::Scheduler* sched_;
  bool enabled_ = false;
  FaultPlan plan_;
  Rng rng_;
  InjectionStats stats_;
  Watchdog watchdog_{sched_};
  std::unique_ptr<RecoveryManager> recovery_;
};

}  // namespace mcrdl::fault
