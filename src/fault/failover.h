// Backend failover routing — the payoff of mix-and-match communication.
//
// MCR-DL already routes each operation to the backend the tuning table (or
// static preference) says is fastest. The FailoverRouter layers *health* on
// top of that ordering: when the preferred backend is unavailable (injected
// outage or opened circuit breaker), the op is deterministically re-routed
// to the next-best healthy backend in the same preference order, and the
// decision is surfaced through CommRecord's `rerouted`/`attempts` fields so
// Chrome traces show failover visually.
//
// The router also owns the resilience bookkeeping a chaos run reports: how
// many ops were attempted, retried, rerouted, or ultimately failed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/fault/injector.h"
#include "src/fault/policy.h"

namespace mcrdl::fault {

// Aggregate outcome of a (chaos) run, printed by tools/mcrdl_chaos.cc.
struct ResilienceReport {
  std::uint64_t attempted = 0;       // operation issues, including retries
  std::uint64_t succeeded = 0;       // operations that eventually completed
  std::uint64_t retried = 0;         // retry attempts after a transient fault
  std::uint64_t rerouted = 0;        // operations moved to another backend
  std::uint64_t failed = 0;          // operations that exhausted every option
  std::uint64_t breakers_tripped = 0;
  SimTime backoff_time_us = 0.0;     // virtual time charged to retry backoff

  // --- elastic recovery (src/fault/recovery.h) ------------------------------
  // Mirrored from RecoveryStats by the bound RecoveryManager; all zero (and
  // omitted from to_string) when no rank_loss fault is in play.
  std::uint64_t ranks_lost = 0;        // ranks permanently lost
  std::uint64_t epochs = 0;            // recovery epochs completed
  std::uint64_t recovered = 0;         // ops replayed onto a shrunk communicator
  std::uint64_t stale_rejections = 0;  // old-epoch ops bounced before issue
  // Grow-back half (all zero — and omitted from to_string — unless a
  // rank_rejoin spec or a checkpoint restore is in play).
  std::uint64_t ranks_rejoined = 0;       // lost ranks re-admitted by grow events
  std::uint64_t grow_events = 0;          // quiesce->grow->resume cycles completed
  std::uint64_t checkpoint_restores = 0;  // CheckpointStore restores applied

  // Per-backend failure/reroute breakdown, filled by the route stage.
  struct BackendCounters {
    std::uint64_t failed = 0;    // attempts that errored on this backend
    std::uint64_t rerouted = 0;  // ops moved *away* from this backend
    std::uint64_t grow_drained = 0;  // pending ops reset-for-replay by grow events
  };
  std::map<std::string, BackendCounters> by_backend;

  std::string to_string() const;
};

// Opt-in fault configuration carried on McrDlOptions.
struct FaultOptions {
  bool enabled = false;       // master switch; false = zero behavior change
  FaultPlan plan;             // what to inject (may be empty: policies only)
  RetryPolicy retry;          // transient-fault retry schedule
  int breaker_threshold = 3;  // consecutive failures before a backend opens
  int breaker_cooldown = 2;   // half-open successes before a backend closes
  // Denied routes before an open breaker half-opens for a probe; <= 0
  // keeps tripped breakers open for the life of the run.
  int breaker_probe_after_ops = 8;
  bool failover = true;       // re-route on unhealthy backends ("auto" routing)
  // Warm spares: global ranks excluded from the initial world (modelled as
  // rank_loss at t=0) that a later rank_rejoin spec can grow onto. The run
  // starts on world minus spares; capacity returns via the grow path.
  std::vector<int> spare_ranks;

  BreakerConfig breaker_config() const {
    return BreakerConfig{breaker_threshold, breaker_cooldown, breaker_probe_after_ops};
  }
};

// Health-aware routing over a fixed preference order. One instance per
// McrDl context; shared by all ranks (the single-baton scheduler serialises
// access).
class FailoverRouter {
 public:
  FailoverRouter(FaultInjector* injector, RetryPolicy retry, BreakerConfig breaker,
                 bool failover_enabled);
  // Legacy shape: default cooldown/probe cadence with an explicit threshold.
  FailoverRouter(FaultInjector* injector, RetryPolicy retry, int breaker_threshold,
                 bool failover_enabled)
      : FailoverRouter(injector, retry, BreakerConfig{breaker_threshold, 2, 8},
                       failover_enabled) {}

  // True when `rank` may still issue on `backend` (its breaker is closed).
  // Deliberately *not* a live outage check: outages are observed through
  // the per-rendezvous verdict (BackendUnavailable at issue), which every
  // rank sees at the same logical operation. Routing off live injector
  // time would let ranks at different virtual times — stragglers — make
  // different decisions for the same op and desync sequence numbers.
  bool healthy(const std::string& backend, int rank) const;

  // Picks the backend `rank` issues on: `preferred` when healthy, otherwise
  // the first healthy entry of `order`. Throws BackendUnavailable when
  // nothing is healthy (or when failover is disabled and `preferred` is
  // down).
  std::string select(const std::string& preferred, const std::vector<std::string>& order,
                     int rank) const;

  // After `failed` errored out for `rank`: the next healthy backend
  // strictly after it in `order` (entries before `failed` were already
  // preferred and are reconsidered only if healthy — tuning order wins,
  // then static order). Throws BackendUnavailable when no healthy
  // candidate remains.
  std::string next_healthy(const std::string& failed, const std::vector<std::string>& order,
                           int rank) const;

  void record_success(const std::string& backend, int rank);
  // Returns true if this failure tripped the backend's breaker.
  bool record_failure(const std::string& backend, int rank);

  // An op preferring `backend` is about to route: ages the breaker toward
  // its half-open probe when the backend is open (see CircuitBreaker::
  // note_skipped). Called by the route stage for collectives only — p2p
  // traffic is rank-asymmetric, and aging on it would desync the skip
  // counts that keep probes aligned across ranks.
  void age_breaker(const std::string& backend, int rank);

  const RetryPolicy& retry() const { return retry_; }
  bool failover_enabled() const { return failover_; }
  CircuitBreaker& breaker() { return breaker_; }
  FaultInjector* injector() const { return injector_; }

  ResilienceReport& report() { return report_; }
  const ResilienceReport& report() const { return report_; }

 private:
  FaultInjector* injector_;  // may be null (policies without injection)
  RetryPolicy retry_;
  CircuitBreaker breaker_;
  bool failover_;
  ResilienceReport report_;
  std::set<std::string> tripped_backends_;  // report each backend's trip once
};

}  // namespace mcrdl::fault
