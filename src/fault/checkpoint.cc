#include "src/fault/checkpoint.h"

#include <fstream>
#include <sstream>

#include "src/common/status.h"

namespace mcrdl::fault {

namespace {

// Counts the newline-terminated lines of `body`; a trailing fragment without
// a newline counts as one line (save() normalizes it back with one).
std::size_t count_lines(const std::string& body) {
  std::size_t lines = 0;
  bool open = false;
  for (char c : body) {
    if (c == '\n') {
      ++lines;
      open = false;
    } else {
      open = true;
    }
  }
  return lines + (open ? 1 : 0);
}

void append_section(std::ostringstream& out, const std::string& name, const std::string& body) {
  out << "section " << name << " " << count_lines(body) << "\n";
  out << body;
  if (!body.empty() && body.back() != '\n') out << "\n";
}

}  // namespace

void CheckpointStore::register_section(std::string name, SaveFn save, RestoreFn restore) {
  MCRDL_REQUIRE(!name.empty(), "checkpoint section name must be non-empty");
  MCRDL_REQUIRE(name.find_first_of(" \t\n\r") == std::string::npos,
                "checkpoint section name must not contain whitespace: \"" + name + "\"");
  MCRDL_REQUIRE(save != nullptr && restore != nullptr,
                "checkpoint section needs both save and restore hooks");
  sections_[std::move(name)] = Section{std::move(save), std::move(restore)};
}

void CheckpointStore::unregister_section(const std::string& name) { sections_.erase(name); }

bool CheckpointStore::has_section(const std::string& name) const {
  return sections_.count(name) > 0;
}

std::string CheckpointStore::save() const {
  std::ostringstream out;
  out << kCheckpointMagic << " " << kCheckpointVersion << "\n";
  // Merge live and retained sections in sorted name order; a live section
  // shadows a retained body of the same name (the running component is the
  // truth once it has restored).
  auto live = sections_.begin();
  auto kept = retained_.begin();
  while (live != sections_.end() || kept != retained_.end()) {
    if (kept == retained_.end() || (live != sections_.end() && live->first <= kept->first)) {
      if (kept != retained_.end() && kept->first == live->first) ++kept;
      append_section(out, live->first, live->second.save());
      ++live;
    } else {
      append_section(out, kept->first, kept->second);
      ++kept;
    }
  }
  return out.str();
}

void CheckpointStore::restore(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  MCRDL_REQUIRE(static_cast<bool>(std::getline(in, line)), "checkpoint: empty input");
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    MCRDL_REQUIRE(static_cast<bool>(header >> magic >> version) && magic == kCheckpointMagic,
                  "checkpoint: bad header \"" + line + "\"");
    MCRDL_REQUIRE(version == kCheckpointVersion,
                  "checkpoint: unsupported version " + std::to_string(version));
  }
  std::map<std::string, std::string> bodies;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string verb, name;
    std::size_t lines = 0;
    MCRDL_REQUIRE(static_cast<bool>(fields >> verb >> name >> lines) && verb == "section",
                  "checkpoint: expected section line, got \"" + line + "\"");
    std::string body;
    for (std::size_t i = 0; i < lines; ++i) {
      std::string body_line;
      MCRDL_REQUIRE(static_cast<bool>(std::getline(in, body_line)),
                    "checkpoint: section \"" + name + "\" truncated");
      body += body_line;
      body += '\n';
    }
    MCRDL_REQUIRE(bodies.emplace(name, std::move(body)).second,
                  "checkpoint: duplicate section \"" + name + "\"");
  }
  // Dispatch only after the whole file parsed, so a truncated checkpoint
  // never half-restores.
  retained_.clear();
  for (auto& [name, body] : bodies) {
    auto it = sections_.find(name);
    if (it != sections_.end()) {
      it->second.restore(body);
    } else {
      retained_[name] = std::move(body);
    }
  }
  ++restores_;
}

void CheckpointStore::save_file(const std::string& path) const {
  std::ofstream out(path);
  MCRDL_REQUIRE(out.good(), "cannot open checkpoint for writing: " + path);
  out << save();
}

void CheckpointStore::restore_file(const std::string& path) {
  std::ifstream in(path);
  MCRDL_REQUIRE(in.good(), "cannot open checkpoint: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  restore(buf.str());
}

std::vector<std::string> CheckpointStore::retained() const {
  std::vector<std::string> names;
  names.reserve(retained_.size());
  for (const auto& [name, body] : retained_) names.push_back(name);
  return names;
}

}  // namespace mcrdl::fault
