// CheckpointStore — deterministic, versioned, text round-trippable snapshots
// of restorable runtime state (the save/restore half of elastic grow-back).
//
// The store itself knows nothing about tuners, schedulers, or process
// groups: components register named *sections* (a SaveFn producing a text
// body and a RestoreFn consuming one), which keeps src/fault below every
// layer that checkpoints through it. McrDl::init wires the standard
// sections ("recovery", "tuner", "groups"); anything else — e.g. the serve
// scheduler's admission queues — can register its own.
//
// Format (line-oriented, sections sorted by name so save() is a pure
// function of the registered state):
//
//   mcrdl-checkpoint 1
//   section <name> <line-count>
//   <line-count body lines>
//   section <name> <line-count>
//   ...
//
// Round-trip contract: save() → restore() → save() is byte-identical, which
// is what makes checkpoints diffable and lets CI smoke-test them with
// `cmp`. Two rules follow: section bodies must themselves serialize
// deterministically (sorted maps, pinned float precision), and restore-side
// counters (how many restores happened) are never part of a body. Sections
// present in a checkpoint but not registered are retained verbatim and
// re-emitted on the next save — a checkpoint from a build with more
// subsystems survives passing through an older one.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace mcrdl::fault {

inline constexpr const char* kCheckpointMagic = "mcrdl-checkpoint";
inline constexpr int kCheckpointVersion = 1;

class CheckpointStore {
 public:
  // Produces the section's body: zero or more newline-terminated lines.
  using SaveFn = std::function<std::string()>;
  // Applies a body captured by the matching SaveFn. Throws (InvalidArgument)
  // on malformed bodies; the store lets the exception propagate.
  using RestoreFn = std::function<void(const std::string& body)>;

  // Registers (or replaces) a section. `name` must be non-empty and contain
  // no whitespace — it is a token on the `section` line.
  void register_section(std::string name, SaveFn save, RestoreFn restore);
  void unregister_section(const std::string& name);
  bool has_section(const std::string& name) const;

  // Serializes every registered section (plus retained unknown sections) in
  // sorted name order.
  std::string save() const;
  // Parses `text`, dispatching each section body to its registered
  // RestoreFn; unknown sections are retained for the next save(). Throws
  // InvalidArgument on version/format errors. Counts one restore.
  void restore(const std::string& text);

  void save_file(const std::string& path) const;
  void restore_file(const std::string& path);

  std::uint64_t restores() const { return restores_; }
  // Names of sections seen by restore() without a registered RestoreFn.
  std::vector<std::string> retained() const;

 private:
  struct Section {
    SaveFn save;
    RestoreFn restore;
  };

  std::map<std::string, Section> sections_;   // sorted → deterministic output
  std::map<std::string, std::string> retained_;  // unknown sections, verbatim
  std::uint64_t restores_ = 0;
};

}  // namespace mcrdl::fault
