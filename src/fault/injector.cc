#include "src/fault/injector.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "src/common/status.h"
#include "src/fault/recovery.h"

namespace mcrdl::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::Transient: return "transient";
    case FaultKind::Outage: return "outage";
    case FaultKind::LinkDegradation: return "degrade";
    case FaultKind::RankSlowdown: return "slowdown";
    case FaultKind::Straggler: return "straggler";
    case FaultKind::RankLoss: return "rank_loss";
    case FaultKind::RankRejoin: return "rank_rejoin";
  }
  return "?";
}

const char* link_scope_name(LinkScope scope) {
  switch (scope) {
    case LinkScope::All: return "all";
    case LinkScope::IntraNode: return "intra";
    case LinkScope::InterNode: return "inter";
  }
  return "?";
}

// --- FaultSpec factories -----------------------------------------------------

FaultSpec FaultSpec::transient(std::string backend, double probability, SimTime from_us,
                               SimTime until_us) {
  MCRDL_REQUIRE(probability >= 0.0 && probability <= 1.0, "probability must be in [0, 1]");
  FaultSpec s;
  s.kind = FaultKind::Transient;
  s.backend = std::move(backend);
  s.probability = probability;
  s.from_us = from_us;
  s.until_us = until_us;
  return s;
}

FaultSpec FaultSpec::transient_op(std::string backend, OpType op, double probability,
                                  SimTime from_us, SimTime until_us) {
  FaultSpec s = transient(std::move(backend), probability, from_us, until_us);
  s.any_op = false;
  s.op = op;
  return s;
}

FaultSpec FaultSpec::outage(std::string backend, SimTime from_us) {
  MCRDL_REQUIRE(!backend.empty(), "an outage must name a backend");
  FaultSpec s;
  s.kind = FaultKind::Outage;
  s.backend = std::move(backend);
  s.from_us = from_us;
  return s;
}

FaultSpec FaultSpec::degrade_links(std::string backend, double beta_factor, LinkScope scope,
                                   SimTime from_us, SimTime until_us) {
  MCRDL_REQUIRE(beta_factor > 0.0, "degradation factor must be positive");
  FaultSpec s;
  s.kind = FaultKind::LinkDegradation;
  s.backend = std::move(backend);
  s.factor = beta_factor;
  s.scope = scope;
  s.from_us = from_us;
  s.until_us = until_us;
  return s;
}

FaultSpec FaultSpec::slow_rank(int rank, double scale, SimTime from_us, SimTime until_us) {
  MCRDL_REQUIRE(scale >= 1.0, "slowdown scale must be >= 1");
  FaultSpec s;
  s.kind = FaultKind::RankSlowdown;
  s.rank = rank;
  s.factor = scale;
  s.from_us = from_us;
  s.until_us = until_us;
  return s;
}

FaultSpec FaultSpec::straggler(int rank, SimTime delay_us, SimTime from_us, SimTime until_us) {
  MCRDL_REQUIRE(delay_us >= 0.0, "straggler delay must be >= 0");
  FaultSpec s;
  s.kind = FaultKind::Straggler;
  s.rank = rank;
  s.delay_us = delay_us;
  s.from_us = from_us;
  s.until_us = until_us;
  return s;
}

FaultSpec FaultSpec::lose_rank(int rank, SimTime at_us) {
  MCRDL_REQUIRE(rank >= 0, "rank_loss must name a concrete rank");
  MCRDL_REQUIRE(at_us >= 0.0, "rank_loss instant must be >= 0");
  FaultSpec s;
  s.kind = FaultKind::RankLoss;
  s.rank = rank;
  s.from_us = at_us;
  return s;
}

FaultSpec FaultSpec::rejoin_rank(int rank, SimTime at_us) {
  MCRDL_REQUIRE(rank >= 0, "rank_rejoin must name a concrete rank");
  MCRDL_REQUIRE(at_us >= 0.0, "rank_rejoin instant must be >= 0");
  FaultSpec s;
  s.kind = FaultKind::RankRejoin;
  s.rank = rank;
  s.from_us = at_us;
  return s;
}

// --- FaultPlan text format ---------------------------------------------------

namespace {

std::string time_token(SimTime t) {
  if (t == kNoEnd) return "inf";
  std::ostringstream out;
  out << t;
  return out.str();
}

SimTime parse_time_token(const std::string& tok) {
  if (tok == "inf") return kNoEnd;
  return std::stod(tok);
}

std::string backend_token(const std::string& backend) {
  return backend.empty() ? "*" : backend;
}

std::string parse_backend_token(const std::string& tok) { return tok == "*" ? "" : tok; }

[[noreturn]] void parse_fail(int line_no, const std::string& line, const std::string& why) {
  std::ostringstream out;
  out << "fault plan line " << line_no << ": " << why << " — \"" << line << "\"";
  throw InvalidArgument(out.str());
}

}  // namespace

std::string FaultPlan::serialize() const {
  std::ostringstream out;
  out << "seed " << seed << "\n";
  if (watchdog_deadline_us > 0.0) out << "watchdog " << watchdog_deadline_us << "\n";
  for (const FaultSpec& s : specs) {
    switch (s.kind) {
      case FaultKind::Transient:
        out << "transient " << backend_token(s.backend) << " " << (s.any_op ? "*" : op_name(s.op))
            << " " << s.probability << " " << time_token(s.from_us) << " "
            << time_token(s.until_us) << "\n";
        break;
      case FaultKind::Outage:
        out << "outage " << s.backend << " " << s.from_us << "\n";
        break;
      case FaultKind::LinkDegradation:
        out << "degrade " << backend_token(s.backend) << " " << link_scope_name(s.scope) << " "
            << s.factor << " " << time_token(s.from_us) << " " << time_token(s.until_us) << "\n";
        break;
      case FaultKind::RankSlowdown:
        out << "slowdown " << s.rank << " " << s.factor << " " << time_token(s.from_us) << " "
            << time_token(s.until_us) << "\n";
        break;
      case FaultKind::Straggler:
        out << "straggler " << s.rank << " " << s.delay_us << " " << time_token(s.from_us) << " "
            << time_token(s.until_us) << "\n";
        break;
      case FaultKind::RankLoss:
        out << "rank_loss " << s.rank << " " << s.from_us << "\n";
        break;
      case FaultKind::RankRejoin:
        out << "rank_rejoin " << s.rank << " " << s.from_us << "\n";
        break;
    }
  }
  return out.str();
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string verb;
    if (!(fields >> verb)) continue;  // blank / comment-only line

    std::vector<std::string> toks;
    std::string tok;
    while (fields >> tok) toks.push_back(tok);
    auto window = [&](std::size_t i, FaultSpec& s) {
      if (toks.size() > i) s.from_us = parse_time_token(toks[i]);
      if (toks.size() > i + 1) s.until_us = parse_time_token(toks[i + 1]);
    };

    try {
      if (verb == "seed") {
        if (toks.size() != 1) parse_fail(line_no, line, "seed takes one value");
        plan.seed = std::stoull(toks[0]);
      } else if (verb == "watchdog") {
        if (toks.size() != 1) parse_fail(line_no, line, "watchdog takes one deadline (us)");
        plan.watchdog_deadline_us = std::stod(toks[0]);
      } else if (verb == "transient") {
        if (toks.size() < 3 || toks.size() > 5)
          parse_fail(line_no, line, "expected: transient <backend|*> <op|*> <p> [from] [until]");
        FaultSpec s;
        if (toks[1] == "*") {
          s = FaultSpec::transient(parse_backend_token(toks[0]), std::stod(toks[2]));
        } else {
          OpType op;
          if (!op_from_name(toks[1], op)) parse_fail(line_no, line, "unknown op \"" + toks[1] + "\"");
          s = FaultSpec::transient_op(parse_backend_token(toks[0]), op, std::stod(toks[2]));
        }
        window(3, s);
        plan.specs.push_back(std::move(s));
      } else if (verb == "outage") {
        if (toks.size() != 2) parse_fail(line_no, line, "expected: outage <backend> <from_us>");
        plan.specs.push_back(FaultSpec::outage(toks[0], std::stod(toks[1])));
      } else if (verb == "degrade") {
        if (toks.size() < 3 || toks.size() > 5)
          parse_fail(line_no, line,
                     "expected: degrade <backend|*> <all|intra|inter> <factor> [from] [until]");
        LinkScope scope;
        if (toks[1] == "all") scope = LinkScope::All;
        else if (toks[1] == "intra") scope = LinkScope::IntraNode;
        else if (toks[1] == "inter") scope = LinkScope::InterNode;
        else parse_fail(line_no, line, "unknown link scope \"" + toks[1] + "\"");
        FaultSpec s = FaultSpec::degrade_links(parse_backend_token(toks[0]), std::stod(toks[2]), scope);
        window(3, s);
        plan.specs.push_back(std::move(s));
      } else if (verb == "slowdown") {
        if (toks.size() < 2 || toks.size() > 4)
          parse_fail(line_no, line, "expected: slowdown <rank> <scale> [from] [until]");
        FaultSpec s = FaultSpec::slow_rank(std::stoi(toks[0]), std::stod(toks[1]));
        window(2, s);
        plan.specs.push_back(std::move(s));
      } else if (verb == "straggler") {
        if (toks.size() < 2 || toks.size() > 4)
          parse_fail(line_no, line, "expected: straggler <rank> <delay_us> [from] [until]");
        FaultSpec s = FaultSpec::straggler(std::stoi(toks[0]), std::stod(toks[1]));
        window(2, s);
        plan.specs.push_back(std::move(s));
      } else if (verb == "rank_loss") {
        if (toks.size() != 2) parse_fail(line_no, line, "expected: rank_loss <rank> <at_us>");
        plan.specs.push_back(FaultSpec::lose_rank(std::stoi(toks[0]), std::stod(toks[1])));
      } else if (verb == "rank_rejoin") {
        if (toks.size() != 2) parse_fail(line_no, line, "expected: rank_rejoin <rank> <at_us>");
        plan.specs.push_back(FaultSpec::rejoin_rank(std::stoi(toks[0]), std::stod(toks[1])));
      } else {
        parse_fail(line_no, line, "unknown directive \"" + verb + "\"");
      }
    } catch (const InvalidArgument&) {
      throw;
    } catch (const std::exception& e) {  // std::stod / std::stoull failures
      parse_fail(line_no, line, e.what());
    }
  }
  return plan;
}

void FaultPlan::save(const std::string& path) const {
  std::ofstream out(path);
  MCRDL_REQUIRE(out.good(), "cannot open fault plan for writing: " + path);
  out << serialize();
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path);
  MCRDL_REQUIRE(in.good(), "cannot open fault plan: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

// --- FaultInjector -----------------------------------------------------------

FaultInjector::FaultInjector(sim::Scheduler* sched) : sched_(sched) {
  MCRDL_CHECK(sched_ != nullptr) << "FaultInjector needs a scheduler for virtual time";
  recovery_ = std::make_unique<RecoveryManager>(sched_, this);
}

FaultInjector::~FaultInjector() = default;

void FaultInjector::configure(FaultPlan plan) {
  plan_ = std::move(plan);
  rng_ = Rng(plan_.seed);
  stats_ = InjectionStats{};
  enabled_ = true;
  // A new plan starts recovery from scratch; McrDl::init re-arms it when the
  // plan declares rank losses.
  recovery_->disarm();
}

void FaultInjector::reset() {
  plan_ = FaultPlan{};
  stats_ = InjectionStats{};
  enabled_ = false;
  recovery_->disarm();
}

bool FaultInjector::backend_unavailable(const std::string& backend) const {
  if (!enabled_) return false;
  const SimTime t = now();
  for (const FaultSpec& s : plan_.specs) {
    if (s.kind == FaultKind::Outage && s.matches_backend(backend) && t >= s.from_us) return true;
  }
  return false;
}

bool FaultInjector::should_fail(const std::string& backend, OpType op) {
  if (!enabled_) return false;
  const SimTime t = now();
  // Combine independent matching specs: P(fail) = 1 - Π(1 - p_i). The rng is
  // consumed exactly once per op with at least one active matching spec, so
  // the decision sequence depends only on (seed, op sequence), not on time.
  double survive = 1.0;
  bool any = false;
  for (const FaultSpec& s : plan_.specs) {
    if (s.kind != FaultKind::Transient) continue;
    if (!s.matches_backend(backend) || !s.matches_op(op) || !s.active_at(t)) continue;
    any = true;
    survive *= 1.0 - s.probability;
  }
  if (!any) return false;
  return rng_.next_double() < 1.0 - survive;
}

BetaScale FaultInjector::link_beta_scale(const std::string& backend, OpType op) const {
  BetaScale scale;
  if (!enabled_) return scale;
  (void)op;  // degradation is link-level, not op-level, but kept for symmetry
  const SimTime t = now();
  for (const FaultSpec& s : plan_.specs) {
    if (s.kind != FaultKind::LinkDegradation) continue;
    if (!s.matches_backend(backend) || !s.active_at(t)) continue;
    // factor multiplies β (time per byte): factor > 1 slows the link down.
    if (s.scope == LinkScope::All || s.scope == LinkScope::IntraNode) scale.intra *= s.factor;
    if (s.scope == LinkScope::All || s.scope == LinkScope::InterNode) scale.inter *= s.factor;
  }
  return scale;
}

double FaultInjector::rank_launch_scale(int global_rank) const {
  if (!enabled_) return 1.0;
  const SimTime t = now();
  double scale = 1.0;
  for (const FaultSpec& s : plan_.specs) {
    if (s.kind != FaultKind::RankSlowdown) continue;
    if (s.rank != -1 && s.rank != global_rank) continue;
    if (!s.active_at(t)) continue;
    scale *= s.factor;
  }
  return scale;
}

bool FaultInjector::rank_lost(int global_rank) const {
  if (!enabled_) return false;
  const SimTime t = now();
  // The latest event whose instant has passed decides; a rejoin at the same
  // instant as a loss wins the tie (loss-then-rejoin at t is "alive at t"),
  // independent of spec order in the plan.
  SimTime best = -1.0;
  bool lost = false;
  for (const FaultSpec& s : plan_.specs) {
    if (s.rank != global_rank || t < s.from_us) continue;
    if (s.kind == FaultKind::RankLoss) {
      if (s.from_us > best) {
        best = s.from_us;
        lost = true;
      }
    } else if (s.kind == FaultKind::RankRejoin) {
      if (s.from_us >= best) {
        best = s.from_us;
        lost = false;
      }
    }
  }
  return lost;
}

std::vector<int> FaultInjector::lost_members(const std::vector<int>& global_ranks) const {
  std::vector<int> out;
  if (!enabled_) return out;
  for (int r : global_ranks) {
    if (rank_lost(r)) out.push_back(r);
  }
  return out;
}

bool FaultInjector::has_rank_loss() const {
  if (!enabled_) return false;
  for (const FaultSpec& s : plan_.specs) {
    if (s.kind == FaultKind::RankLoss) return true;
  }
  return false;
}

bool FaultInjector::has_rank_rejoin() const {
  if (!enabled_) return false;
  for (const FaultSpec& s : plan_.specs) {
    if (s.kind == FaultKind::RankRejoin) return true;
  }
  return false;
}

SimTime FaultInjector::rank_delay(int global_rank) const {
  if (!enabled_) return 0.0;
  const SimTime t = now();
  SimTime delay = 0.0;
  for (const FaultSpec& s : plan_.specs) {
    if (s.kind != FaultKind::Straggler) continue;
    if (s.rank != -1 && s.rank != global_rank) continue;
    if (!s.active_at(t)) continue;
    delay += s.delay_us;
  }
  return delay;
}

}  // namespace mcrdl::fault
