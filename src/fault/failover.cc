#include "src/fault/failover.h"

#include <algorithm>

#include "src/common/status.h"

namespace mcrdl::fault {

std::string ResilienceReport::to_string() const {
  std::ostringstream out;
  out << "resilience report:\n"
      << "  operations succeeded : " << succeeded << "\n"
      << "  issue attempts       : " << attempted << "\n"
      << "  retries (transient)  : " << retried << "\n"
      << "  rerouted (failover)  : " << rerouted << "\n"
      << "  failed permanently   : " << failed << "\n"
      << "  breakers tripped     : " << breakers_tripped << "\n"
      << "  backoff virtual time : " << backoff_time_us << " us\n";
  // Elastic-recovery block only when a rank was actually lost, so transient
  // and outage reports keep the exact format they always had.
  if (ranks_lost > 0 || epochs > 0 || recovered > 0) {
    out << "  ranks lost           : " << ranks_lost << "\n"
        << "  recovery epochs      : " << epochs << "\n"
        << "  recovered ops        : " << recovered << "\n"
        << "  stale-epoch rejects  : " << stale_rejections << "\n";
  }
  // Grow-back block only when capacity actually came back (or a checkpoint
  // was restored), so shrink-only reports keep their exact format.
  if (ranks_rejoined > 0 || grow_events > 0 || checkpoint_restores > 0) {
    out << "  ranks rejoined       : " << ranks_rejoined << "\n"
        << "  grow events          : " << grow_events << "\n"
        << "  checkpoint restores  : " << checkpoint_restores << "\n";
  }
  if (!by_backend.empty()) {
    std::size_t width = 0;
    for (const auto& [name, counters] : by_backend) width = std::max(width, name.size());
    out << "  per-backend:\n";
    for (const auto& [name, counters] : by_backend) {
      out << "    " << name << std::string(width - name.size(), ' ') << " : failed "
          << counters.failed << ", rerouted away " << counters.rerouted;
      if (counters.grow_drained > 0) out << ", grow drained " << counters.grow_drained;
      out << "\n";
    }
  }
  return out.str();
}

FailoverRouter::FailoverRouter(FaultInjector* injector, RetryPolicy retry, BreakerConfig breaker,
                               bool failover_enabled)
    : injector_(injector), retry_(retry), breaker_(breaker), failover_(failover_enabled) {}

bool FailoverRouter::healthy(const std::string& backend, int rank) const {
  return breaker_.healthy(backend, rank);
}

std::string FailoverRouter::select(const std::string& preferred,
                                   const std::vector<std::string>& order, int rank) const {
  if (healthy(preferred, rank)) return preferred;
  if (!failover_) {
    throw BackendUnavailable("backend '" + preferred +
                             "' is out of service and failover is disabled");
  }
  for (const std::string& candidate : order) {
    if (candidate != preferred && healthy(candidate, rank)) return candidate;
  }
  throw BackendUnavailable("no healthy backend available (preferred '" + preferred + "')");
}

std::string FailoverRouter::next_healthy(const std::string& failed,
                                         const std::vector<std::string>& order, int rank) const {
  if (!failover_) {
    throw BackendUnavailable("backend '" + failed + "' failed and failover is disabled");
  }
  // Prefer backends after the failed one in the order; wrap to earlier
  // entries only as a last resort (they were skipped for a reason, but a
  // reason that may have been health that has since not changed — still
  // better than failing the op outright).
  auto it = std::find(order.begin(), order.end(), failed);
  const std::size_t start = it == order.end() ? 0 : (it - order.begin()) + 1;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::string& candidate = order[(start + i) % order.size()];
    if (candidate != failed && healthy(candidate, rank)) return candidate;
  }
  throw BackendUnavailable("no healthy backend to fail over to (failed '" + failed + "')");
}

void FailoverRouter::record_success(const std::string& backend, int rank) {
  breaker_.record_success(backend, rank);
}

bool FailoverRouter::record_failure(const std::string& backend, int rank) {
  const bool tripped = breaker_.record_failure(backend, rank);
  // Every rank trips its own breaker (health is per-rank so routing stays
  // sequence-aligned), but the report counts each backend's loss once —
  // re-trips after a failed half-open probe included.
  if (tripped && tripped_backends_.insert(backend).second) ++report_.breakers_tripped;
  return tripped;
}

void FailoverRouter::age_breaker(const std::string& backend, int rank) {
  breaker_.note_skipped(backend, rank);
}

}  // namespace mcrdl::fault
