// Elastic recovery: quiesce, shrink, and resume after permanent rank loss —
// plus the grow half: quiesce, grow, resume when lost ranks rejoin.
//
// A permanent rank (or whole-node) outage used to end a run: the watchdog
// would name the missing ranks and every waiter unwound with a TimeoutError.
// The RecoveryManager instead turns each injected `rank_loss` instant into a
// deterministic three-phase state machine, executed under the baton at the
// loss's virtual-time instant:
//
//   * Quiesce — a cluster-wide, barrier-free drain: every registered engine
//     cancels its pending rendezvous/p2p ops that involve a lost rank, so
//     waiters unwind with a retriable RankLostError instead of a generic
//     timeout. Rendezvous whose wire phase already started are left alone —
//     packets in flight deliver, consistently, on every survivor.
//   * Shrink — the survivor set and the epoch counter advance. Every
//     OpRequest is stamped with the epoch it was issued under; the issue
//     stage rejects stale-epoch ops (they re-enter the recover stage and are
//     replayed), so stragglers from the old epoch can never deadlock the new
//     one.
//   * Resume — epoch waiters wake; the pipeline's `recover` stage remaps
//     each failed op's group/root/peer onto the survivors, re-resolves the
//     backend for the new world size, and re-issues.
//
// Grow-back (`rank_rejoin` specs) mirrors shrink with the phases
// Quiesce→Grow→Resume: registered grow hooks reset per-engine sequence and
// matching state on communicators whose membership includes a rejoined rank
// (their rendezvous counters drifted while the rank was dead), the rank
// leaves the lost set, the epoch advances, and waiters wake into the
// enlarged world. Warm spares are rank_loss specs at t=0: they are applied
// synchronously at arm() as pre-start exclusions (one epoch bump, no drain,
// no scheduled event) so the workload starts on the shrunk world and later
// grows onto the spares.
//
// The manager is owned by the FaultInjector (always present per cluster) but
// stays disarmed — and therefore zero-cost and byte-identical in behaviour —
// unless the installed FaultPlan contains at least one rank_loss or
// rank_rejoin spec.
//
// Layering: src/fault must not depend on src/backends, so engines register
// drain hooks as plain callbacks (register_drain/unregister_drain,
// register_grow/unregister_grow) instead of the manager knowing about
// rendezvous tables.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/fault/failover.h"
#include "src/net/comm_types.h"
#include "src/sim/scheduler.h"

namespace mcrdl::obs {
class MetricsRegistry;
}  // namespace mcrdl::obs

namespace mcrdl::fault {

class FaultInjector;

enum class RecoveryPhase { Idle, Quiesce, Shrink, Grow, Resume };
const char* recovery_phase_name(RecoveryPhase phase);

// Human-readable diagnostic for an operation doomed by permanent rank loss;
// names the dead ranks so logs read like the watchdog's timeout messages.
std::string describe_rank_loss(OpType op, const std::string& backend,
                               const std::vector<int>& lost_global);

// Counters the recovery state machine maintains (mirrored into the bound
// ResilienceReport so chaos tooling prints them).
struct RecoveryStats {
  std::uint64_t ranks_lost = 0;        // total ranks permanently lost
  std::uint64_t epochs = 0;            // completed shrink + grow recovery cycles
  std::uint64_t quiesced_ops = 0;      // in-flight ops cancelled during drains
  std::uint64_t recovered_ops = 0;     // ops successfully replayed on a new epoch
  std::uint64_t stale_rejections = 0;  // old-epoch ops bounced at the issue stage
  std::uint64_t ranks_rejoined = 0;    // lost ranks re-admitted by grow events
  std::uint64_t grow_events = 0;       // completed quiesce->grow->resume cycles
  std::uint64_t checkpoint_restores = 0;  // restore_state() calls on this manager
  std::uint64_t rejoins_rejected = 0;  // rejoin of a rank that was not lost
};

class RecoveryManager {
 public:
  // A drain hook cancels the engine's pending work involving any rank in
  // `lost` and returns how many operations it cancelled.
  using DrainFn = std::function<std::uint64_t(const std::vector<int>& lost)>;
  // A grow hook resets the engine's per-communicator sequencing/matching
  // state for communicators whose membership includes a rank in `rejoined`
  // and returns how many pending operations it cancelled for replay.
  using GrowFn = std::function<std::uint64_t(const std::vector<int>& rejoined)>;

  RecoveryManager(sim::Scheduler* sched, FaultInjector* injector);
  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  // Scans the injector's installed plan for rank_loss/rank_rejoin specs and
  // schedules one combined event per distinct instant (simultaneous losses —
  // a node going down — are processed as one epoch; a loss and a rejoin at
  // the same instant process the loss first). rank_loss specs at t=0 are
  // warm-spare exclusions applied synchronously here, before any actor runs.
  // Stays disarmed when the plan has neither spec kind, so arming is free
  // for every other fault scenario.
  void arm(int world_size);
  // Cancels scheduled loss events and returns to Idle. Registered drain
  // hooks are kept: they belong to engine lifetime, not plan lifetime.
  void disarm();
  bool armed() const { return armed_; }

  // --- epoch state ----------------------------------------------------------
  std::uint64_t epoch() const { return epoch_; }
  RecoveryPhase phase() const { return phase_; }
  bool lost(int global_rank) const { return lost_.count(global_rank) > 0; }
  const std::vector<int>& survivors() const { return survivors_; }
  std::vector<int> lost_ranks() const { return {lost_.begin(), lost_.end()}; }
  // `members` with the lost ranks removed (order preserved).
  std::vector<int> shrink_group(const std::vector<int>& members) const;

  // --- quiesce hooks --------------------------------------------------------
  std::uint64_t register_drain(DrainFn fn);
  void unregister_drain(std::uint64_t id);
  // Grow hooks are keyed by the registering backend's name so drained-for-
  // replay counts can be attributed per backend in the ResilienceReport.
  std::uint64_t register_grow(std::string backend, GrowFn fn);
  void unregister_grow(std::uint64_t id);

  // The loss event itself. Runs under the baton (never throws, never
  // blocks): drains every engine, advances the epoch, wakes epoch waiters.
  // Also callable from actor context (tests inject mid-run losses directly).
  void on_rank_loss(const std::vector<int>& ranks);

  // The grow event: rejoining ranks that are currently lost leave the lost
  // set after grow hooks reset communicator state; never-lost or duplicate
  // rejoins are counted as rejected and change nothing. Advances the epoch
  // (once per event with at least one admitted rank) and wakes epoch
  // waiters, so in-flight ops on the smaller world are rejected and
  // replayed exactly like shrink does.
  void on_rank_rejoin(const std::vector<int>& ranks);

  // Blocks the calling actor until the epoch advances past `epoch` — the
  // recover stage parks here after a RankLostError so replays can never spin
  // at the same epoch before the loss event has been processed.
  void wait_epoch_past(std::uint64_t epoch);

  // --- bookkeeping ----------------------------------------------------------
  void note_recovered();
  void note_stale_rejection();
  const RecoveryStats& stats() const { return stats_; }
  // Mirrors ranks_lost/epochs/recovered/stale counts into `report` (pass
  // nullptr to detach). The report outlives chaos runs; the manager pushes
  // updates at every state change.
  void bind_report(ResilienceReport* report);
  // Records grow/restore events as `recovery_grow_*` counters in `registry`
  // (pass nullptr to detach). Purely observational.
  void bind_metrics(obs::MetricsRegistry* registry);

  // --- checkpoint (fault::CheckpointStore section body) ---------------------
  // Deterministic line-oriented snapshot of the elastic state: world size,
  // epoch, lost set, and counters. The restore count itself is deliberately
  // not serialized so save→restore→save round-trips byte-identically.
  std::string save_state() const;
  // Restores a save_state() body into this manager (arming it if the
  // snapshot carries a non-trivial world), bumps checkpoint_restores, and
  // wakes epoch waiters. Throws InvalidArgument on malformed bodies.
  void restore_state(const std::string& body);

 private:
  void push_report();

  sim::Scheduler* sched_;
  FaultInjector* injector_;
  bool armed_ = false;
  std::uint64_t epoch_ = 0;
  RecoveryPhase phase_ = RecoveryPhase::Idle;
  int world_size_ = 0;
  std::vector<int> survivors_;
  std::set<int> lost_;
  std::map<std::uint64_t, DrainFn> drains_;
  struct GrowHook {
    std::string backend;
    GrowFn fn;
  };
  std::map<std::uint64_t, GrowHook> grows_;
  std::uint64_t next_drain_id_ = 1;
  std::vector<std::uint64_t> loss_events_;
  RecoveryStats stats_;
  std::map<std::string, std::uint64_t> grow_drained_;  // per-backend, for the report
  ResilienceReport* report_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  sim::SimCondition epoch_cond_;
};

}  // namespace mcrdl::fault
