// Rendezvous watchdog: turns would-be collective hangs into diagnosable
// TimeoutErrors.
//
// The scheduler's global deadlock detection only fires when *every* actor is
// blocked with no pending timed event — a rank that spins, or a cluster
// where unrelated work keeps ticking, can leave a half-joined collective
// waiting forever. The watchdog gives each rendezvous its own virtual-time
// deadline: when it fires before every participant has arrived, the
// rendezvous is marked failed with a TimeoutError that names who arrived
// and who is missing, and every waiter unwinds.
//
// Scheduler-safety contract: timed-event callbacks run under the baton with
// the scheduler mid-dispatch; an exception escaping one corrupts scheduler
// state. The watchdog therefore never throws from its timer — it marks the
// rendezvous failed and notifies; the TimeoutError is thrown from actor
// context inside Rendezvous::wait_done().
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/net/comm_types.h"
#include "src/sim/scheduler.h"

namespace mcrdl::fault {

// Builds the human-readable timeout diagnostic: which global ranks reached
// the rendezvous and which never arrived.
std::string describe_timeout(OpType op, const std::string& backend, SimTime waited_us,
                             const std::vector<int>& arrived_global,
                             const std::vector<int>& missing_global);

// Thin wrapper over the scheduler's timer facility that counts fired
// deadlines. One per FaultInjector; the engines arm one deadline per
// rendezvous and cancel it on completion.
class Watchdog {
 public:
  explicit Watchdog(sim::Scheduler* sched) : sched_(sched) {}

  // Arms `on_deadline` to fire after `deadline_us` of virtual time. The
  // callback runs under the baton and MUST NOT throw or block — mark state
  // and notify a SimCondition instead. Returns the timer id for disarm().
  std::uint64_t arm(SimTime deadline_us, std::function<void()> on_deadline);
  // Cancels a pending deadline; no-op (and no virtual-time effect) if it
  // already fired — the scheduler pops cancelled events without advancing
  // time, so disarmed watchdogs leave the timeline untouched.
  void disarm(std::uint64_t timer_id);

  std::uint64_t fired() const { return fired_; }
  sim::Scheduler* scheduler() const { return sched_; }

 private:
  sim::Scheduler* sched_;
  std::uint64_t fired_ = 0;
};

}  // namespace mcrdl::fault
