#include "src/fault/recovery.h"

#include <algorithm>
#include <sstream>

#include "src/common/status.h"
#include "src/fault/injector.h"

namespace mcrdl::fault {

const char* recovery_phase_name(RecoveryPhase phase) {
  switch (phase) {
    case RecoveryPhase::Idle: return "idle";
    case RecoveryPhase::Quiesce: return "quiesce";
    case RecoveryPhase::Shrink: return "shrink";
    case RecoveryPhase::Resume: return "resume";
  }
  return "?";
}

std::string describe_rank_loss(OpType op, const std::string& backend,
                               const std::vector<int>& lost_global) {
  std::ostringstream out;
  out << "rank loss: " << op_name(op) << " on backend '" << backend
      << "' involves permanently lost ranks: [";
  for (std::size_t i = 0; i < lost_global.size(); ++i) {
    if (i > 0) out << ", ";
    out << lost_global[i];
  }
  out << "]; retriable on the shrunk communicator once recovery completes";
  return out.str();
}

RecoveryManager::RecoveryManager(sim::Scheduler* sched, FaultInjector* injector)
    : sched_(sched), injector_(injector), epoch_cond_(sched) {
  MCRDL_CHECK(sched_ != nullptr) << "RecoveryManager needs a scheduler";
  MCRDL_CHECK(injector_ != nullptr) << "RecoveryManager needs its owning injector";
}

void RecoveryManager::arm(int world_size) {
  disarm();
  MCRDL_REQUIRE(world_size >= 1, "recovery world size must be >= 1");
  world_size_ = world_size;
  survivors_.clear();
  for (int r = 0; r < world_size_; ++r) survivors_.push_back(r);
  lost_.clear();
  epoch_ = 0;
  stats_ = RecoveryStats{};
  // Group the plan's rank_loss specs by instant: every spec sharing a
  // from_us is one loss event (a node dying takes all its ranks at once and
  // costs one epoch, not one per rank).
  std::map<SimTime, std::vector<int>> by_instant;
  for (const FaultSpec& s : injector_->plan().specs) {
    if (s.kind != FaultKind::RankLoss) continue;
    MCRDL_REQUIRE(s.rank >= 0 && s.rank < world_size_, "rank_loss rank out of range");
    by_instant[s.from_us].push_back(s.rank);
  }
  if (by_instant.empty()) return;  // nothing permanent planned: stay disarmed
  armed_ = true;
  for (auto& [at, ranks] : by_instant) {
    loss_events_.push_back(
        sched_->schedule_at(at, [this, ranks = ranks] { on_rank_loss(ranks); }));
  }
  push_report();
}

void RecoveryManager::disarm() {
  for (std::uint64_t id : loss_events_) sched_->cancel(id);
  loss_events_.clear();
  armed_ = false;
  phase_ = RecoveryPhase::Idle;
  epoch_ = 0;
  lost_.clear();
  survivors_.clear();
  world_size_ = 0;
  report_ = nullptr;
  // drains_ survives: engines register for their own lifetime, not a plan's.
}

std::vector<int> RecoveryManager::shrink_group(const std::vector<int>& members) const {
  std::vector<int> out;
  out.reserve(members.size());
  for (int r : members) {
    if (lost_.count(r) == 0) out.push_back(r);
  }
  return out;
}

std::uint64_t RecoveryManager::register_drain(DrainFn fn) {
  MCRDL_CHECK(fn != nullptr);
  const std::uint64_t id = next_drain_id_++;
  drains_[id] = std::move(fn);
  return id;
}

void RecoveryManager::unregister_drain(std::uint64_t id) { drains_.erase(id); }

void RecoveryManager::on_rank_loss(const std::vector<int>& ranks) {
  std::vector<int> newly;
  for (int r : ranks) {
    if (lost_.count(r) == 0) newly.push_back(r);
  }
  if (newly.empty()) return;
  // Quiesce: drain against the *cumulative* lost set, so an op straddling
  // two loss instants is cancelled even if only the earlier casualty is in
  // its membership.
  std::vector<int> all_lost(lost_.begin(), lost_.end());
  all_lost.insert(all_lost.end(), newly.begin(), newly.end());
  std::sort(all_lost.begin(), all_lost.end());
  phase_ = RecoveryPhase::Quiesce;
  for (auto& [id, fn] : drains_) stats_.quiesced_ops += fn(all_lost);
  // Shrink: survivors and the epoch advance atomically (under the baton).
  phase_ = RecoveryPhase::Shrink;
  for (int r : newly) lost_.insert(r);
  survivors_.erase(std::remove_if(survivors_.begin(), survivors_.end(),
                                  [&](int r) { return lost_.count(r) > 0; }),
                   survivors_.end());
  stats_.ranks_lost += newly.size();
  ++epoch_;
  ++stats_.epochs;
  // Resume: epoch waiters (parked replays) wake into the new epoch.
  phase_ = RecoveryPhase::Resume;
  push_report();
  epoch_cond_.notify_all();
}

void RecoveryManager::wait_epoch_past(std::uint64_t epoch) {
  epoch_cond_.wait([&] { return epoch_ > epoch; });
}

void RecoveryManager::note_recovered() {
  ++stats_.recovered_ops;
  push_report();
}

void RecoveryManager::note_stale_rejection() {
  ++stats_.stale_rejections;
  push_report();
}

void RecoveryManager::bind_report(ResilienceReport* report) {
  report_ = report;
  push_report();
}

void RecoveryManager::push_report() {
  if (report_ == nullptr) return;
  report_->ranks_lost = stats_.ranks_lost;
  report_->epochs = stats_.epochs;
  report_->recovered = stats_.recovered_ops;
  report_->stale_rejections = stats_.stale_rejections;
}

}  // namespace mcrdl::fault
