#include "src/fault/recovery.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/common/status.h"
#include "src/fault/injector.h"
#include "src/obs/metrics.h"

namespace mcrdl::fault {

const char* recovery_phase_name(RecoveryPhase phase) {
  switch (phase) {
    case RecoveryPhase::Idle: return "idle";
    case RecoveryPhase::Quiesce: return "quiesce";
    case RecoveryPhase::Shrink: return "shrink";
    case RecoveryPhase::Grow: return "grow";
    case RecoveryPhase::Resume: return "resume";
  }
  return "?";
}

std::string describe_rank_loss(OpType op, const std::string& backend,
                               const std::vector<int>& lost_global) {
  std::ostringstream out;
  out << "rank loss: " << op_name(op) << " on backend '" << backend
      << "' involves permanently lost ranks: [";
  for (std::size_t i = 0; i < lost_global.size(); ++i) {
    if (i > 0) out << ", ";
    out << lost_global[i];
  }
  out << "]; retriable on the shrunk communicator once recovery completes";
  return out.str();
}

RecoveryManager::RecoveryManager(sim::Scheduler* sched, FaultInjector* injector)
    : sched_(sched), injector_(injector), epoch_cond_(sched) {
  MCRDL_CHECK(sched_ != nullptr) << "RecoveryManager needs a scheduler";
  MCRDL_CHECK(injector_ != nullptr) << "RecoveryManager needs its owning injector";
}

void RecoveryManager::arm(int world_size) {
  disarm();
  MCRDL_REQUIRE(world_size >= 1, "recovery world size must be >= 1");
  world_size_ = world_size;
  survivors_.clear();
  for (int r = 0; r < world_size_; ++r) survivors_.push_back(r);
  lost_.clear();
  epoch_ = 0;
  stats_ = RecoveryStats{};
  grow_drained_.clear();
  // Group the plan's rank_loss/rank_rejoin specs by instant: every spec
  // sharing a from_us is one combined event (a node dying or returning takes
  // all its ranks at once and costs one epoch, not one per rank). Losses at
  // t=0 are warm spares: excluded here, synchronously, so the first op of
  // the run already maps onto the shrunk world instead of failing into a
  // recovery wait that nothing would ever satisfy.
  struct Planned {
    std::vector<int> losses;
    std::vector<int> rejoins;
  };
  std::map<SimTime, Planned> by_instant;
  std::vector<int> spares;
  for (const FaultSpec& s : injector_->plan().specs) {
    if (s.kind == FaultKind::RankLoss) {
      MCRDL_REQUIRE(s.rank >= 0 && s.rank < world_size_, "rank_loss rank out of range");
      if (s.from_us == 0.0) {
        spares.push_back(s.rank);
      } else {
        by_instant[s.from_us].losses.push_back(s.rank);
      }
    } else if (s.kind == FaultKind::RankRejoin) {
      MCRDL_REQUIRE(s.rank >= 0 && s.rank < world_size_, "rank_rejoin rank out of range");
      by_instant[s.from_us].rejoins.push_back(s.rank);
    }
  }
  if (by_instant.empty() && spares.empty()) return;  // nothing elastic: stay disarmed
  armed_ = true;
  if (!spares.empty()) {
    std::set<int> uniq(spares.begin(), spares.end());
    for (int r : uniq) lost_.insert(r);
    survivors_.erase(std::remove_if(survivors_.begin(), survivors_.end(),
                                    [&](int r) { return lost_.count(r) > 0; }),
                     survivors_.end());
    stats_.ranks_lost += uniq.size();
    // One epoch bump (not counted as a recovery cycle) so the pipeline's
    // recover stage remaps groups onto the survivors from the first op on.
    ++epoch_;
  }
  for (auto& [at, ev] : by_instant) {
    loss_events_.push_back(sched_->schedule_at(
        at, [this, losses = ev.losses, rejoins = ev.rejoins] {
          // Loss first: a loss and a rejoin at the same instant observe the
          // same order as FaultInjector::rank_lost's tie rule (rejoin wins).
          if (!losses.empty()) on_rank_loss(losses);
          if (!rejoins.empty()) on_rank_rejoin(rejoins);
        }));
  }
  push_report();
}

void RecoveryManager::disarm() {
  for (std::uint64_t id : loss_events_) sched_->cancel(id);
  loss_events_.clear();
  armed_ = false;
  phase_ = RecoveryPhase::Idle;
  epoch_ = 0;
  lost_.clear();
  survivors_.clear();
  world_size_ = 0;
  report_ = nullptr;
  metrics_ = nullptr;
  grow_drained_.clear();
  // drains_/grows_ survive: engines register for their own lifetime, not a
  // plan's.
}

std::vector<int> RecoveryManager::shrink_group(const std::vector<int>& members) const {
  std::vector<int> out;
  out.reserve(members.size());
  for (int r : members) {
    if (lost_.count(r) == 0) out.push_back(r);
  }
  return out;
}

std::uint64_t RecoveryManager::register_drain(DrainFn fn) {
  MCRDL_CHECK(fn != nullptr);
  const std::uint64_t id = next_drain_id_++;
  drains_[id] = std::move(fn);
  return id;
}

void RecoveryManager::unregister_drain(std::uint64_t id) { drains_.erase(id); }

std::uint64_t RecoveryManager::register_grow(std::string backend, GrowFn fn) {
  MCRDL_CHECK(fn != nullptr);
  const std::uint64_t id = next_drain_id_++;
  grows_[id] = GrowHook{std::move(backend), std::move(fn)};
  return id;
}

void RecoveryManager::unregister_grow(std::uint64_t id) { grows_.erase(id); }

void RecoveryManager::on_rank_loss(const std::vector<int>& ranks) {
  std::vector<int> newly;
  for (int r : ranks) {
    if (lost_.count(r) == 0) newly.push_back(r);
  }
  if (newly.empty()) return;
  // Quiesce: drain against the *cumulative* lost set, so an op straddling
  // two loss instants is cancelled even if only the earlier casualty is in
  // its membership.
  std::vector<int> all_lost(lost_.begin(), lost_.end());
  all_lost.insert(all_lost.end(), newly.begin(), newly.end());
  std::sort(all_lost.begin(), all_lost.end());
  phase_ = RecoveryPhase::Quiesce;
  for (auto& [id, fn] : drains_) stats_.quiesced_ops += fn(all_lost);
  // Shrink: survivors and the epoch advance atomically (under the baton).
  phase_ = RecoveryPhase::Shrink;
  for (int r : newly) lost_.insert(r);
  survivors_.erase(std::remove_if(survivors_.begin(), survivors_.end(),
                                  [&](int r) { return lost_.count(r) > 0; }),
                   survivors_.end());
  stats_.ranks_lost += newly.size();
  ++epoch_;
  ++stats_.epochs;
  // Resume: epoch waiters (parked replays) wake into the new epoch.
  phase_ = RecoveryPhase::Resume;
  push_report();
  epoch_cond_.notify_all();
}

void RecoveryManager::on_rank_rejoin(const std::vector<int>& ranks) {
  std::vector<int> newly;
  std::set<int> seen;
  for (int r : ranks) {
    if (lost_.count(r) > 0 && seen.insert(r).second) {
      newly.push_back(r);
    } else {
      // Never lost, already rejoined, or a duplicate within this event.
      ++stats_.rejoins_rejected;
      if (metrics_ != nullptr) metrics_->counter("recovery_grow_rejects").inc();
    }
  }
  if (newly.empty()) {
    push_report();
    return;
  }
  std::sort(newly.begin(), newly.end());
  // Quiesce: grow hooks reset communicator sequencing/matching state wherever
  // membership includes a returning rank — the full-world communicators
  // drifted while the rank was dead (survivors consumed sequence numbers on
  // doomed joins that the dead rank never saw), so their pending work is
  // cancelled for replay and counters restart aligned at zero.
  phase_ = RecoveryPhase::Quiesce;
  for (auto& [id, hook] : grows_) {
    const std::uint64_t n = hook.fn(newly);
    if (n > 0) {
      grow_drained_[hook.backend] += n;
      stats_.quiesced_ops += n;
      if (metrics_ != nullptr)
        metrics_->counter("recovery_grow_drained", {{"backend", hook.backend}}).inc(n);
    }
  }
  // Grow: the lost set shrinks, survivors regain the ranks, and the epoch
  // advances atomically (under the baton) — in-flight ops stamped with the
  // old epoch are stale-rejected and replayed on the enlarged world, exactly
  // the shrink discipline run in reverse.
  phase_ = RecoveryPhase::Grow;
  for (int r : newly) lost_.erase(r);
  survivors_.insert(survivors_.end(), newly.begin(), newly.end());
  std::sort(survivors_.begin(), survivors_.end());
  stats_.ranks_rejoined += newly.size();
  ++stats_.grow_events;
  ++epoch_;
  ++stats_.epochs;
  if (metrics_ != nullptr) {
    metrics_->counter("recovery_grow_events").inc();
    metrics_->counter("recovery_grow_ranks_rejoined").inc(newly.size());
  }
  // Resume: epoch waiters (parked replays) wake into the grown epoch.
  phase_ = RecoveryPhase::Resume;
  push_report();
  epoch_cond_.notify_all();
}

void RecoveryManager::wait_epoch_past(std::uint64_t epoch) {
  epoch_cond_.wait([&] { return epoch_ > epoch; });
}

void RecoveryManager::note_recovered() {
  ++stats_.recovered_ops;
  push_report();
}

void RecoveryManager::note_stale_rejection() {
  ++stats_.stale_rejections;
  push_report();
}

void RecoveryManager::bind_report(ResilienceReport* report) {
  report_ = report;
  push_report();
}

void RecoveryManager::bind_metrics(obs::MetricsRegistry* registry) { metrics_ = registry; }

std::string RecoveryManager::save_state() const {
  std::ostringstream out;
  out << "world " << world_size_ << "\n";
  out << "epoch " << epoch_ << "\n";
  out << "lost";
  for (int r : lost_) out << " " << r;
  out << "\n";
  out << "stats " << stats_.ranks_lost << " " << stats_.epochs << " " << stats_.quiesced_ops
      << " " << stats_.recovered_ops << " " << stats_.stale_rejections << " "
      << stats_.ranks_rejoined << " " << stats_.grow_events << " " << stats_.rejoins_rejected
      << "\n";
  return out.str();
}

void RecoveryManager::restore_state(const std::string& body) {
  int world = 0;
  std::uint64_t epoch = 0;
  std::set<int> lost;
  RecoveryStats stats;
  bool saw_world = false, saw_epoch = false, saw_lost = false, saw_stats = false;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string verb;
    if (!(fields >> verb)) continue;
    if (verb == "world") {
      MCRDL_REQUIRE(static_cast<bool>(fields >> world) && world >= 1,
                    "recovery checkpoint: bad world line");
      saw_world = true;
    } else if (verb == "epoch") {
      MCRDL_REQUIRE(static_cast<bool>(fields >> epoch), "recovery checkpoint: bad epoch line");
      saw_epoch = true;
    } else if (verb == "lost") {
      int r;
      while (fields >> r) lost.insert(r);
      saw_lost = true;
    } else if (verb == "stats") {
      MCRDL_REQUIRE(
          static_cast<bool>(fields >> stats.ranks_lost >> stats.epochs >> stats.quiesced_ops >>
                            stats.recovered_ops >> stats.stale_rejections >>
                            stats.ranks_rejoined >> stats.grow_events >> stats.rejoins_rejected),
          "recovery checkpoint: bad stats line");
      saw_stats = true;
    } else {
      throw InvalidArgument("recovery checkpoint: unknown line \"" + line + "\"");
    }
  }
  MCRDL_REQUIRE(saw_world && saw_epoch && saw_lost && saw_stats,
                "recovery checkpoint: missing world/epoch/lost/stats line");
  for (int r : lost)
    MCRDL_REQUIRE(r >= 0 && r < world, "recovery checkpoint: lost rank out of range");
  world_size_ = world;
  epoch_ = epoch;
  lost_ = std::move(lost);
  survivors_.clear();
  for (int r = 0; r < world_size_; ++r) {
    if (lost_.count(r) == 0) survivors_.push_back(r);
  }
  const std::uint64_t restores = stats_.checkpoint_restores + 1;
  stats_ = stats;
  stats_.checkpoint_restores = restores;
  armed_ = true;
  if (metrics_ != nullptr) metrics_->counter("recovery_checkpoint_restores").inc();
  push_report();
  epoch_cond_.notify_all();
}

void RecoveryManager::push_report() {
  if (report_ == nullptr) return;
  report_->ranks_lost = stats_.ranks_lost;
  report_->epochs = stats_.epochs;
  report_->recovered = stats_.recovered_ops;
  report_->stale_rejections = stats_.stale_rejections;
  report_->ranks_rejoined = stats_.ranks_rejoined;
  report_->grow_events = stats_.grow_events;
  report_->checkpoint_restores = stats_.checkpoint_restores;
  for (const auto& [backend, drained] : grow_drained_)
    report_->by_backend[backend].grow_drained = drained;
}

}  // namespace mcrdl::fault
