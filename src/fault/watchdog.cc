#include "src/fault/watchdog.h"

#include <sstream>

namespace mcrdl::fault {

namespace {

void append_ranks(std::ostringstream& out, const std::vector<int>& ranks) {
  if (ranks.empty()) {
    out << "none";
    return;
  }
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i > 0) out << ", ";
    out << ranks[i];
  }
}

}  // namespace

std::string describe_timeout(OpType op, const std::string& backend, SimTime waited_us,
                             const std::vector<int>& arrived_global,
                             const std::vector<int>& missing_global) {
  std::ostringstream out;
  out << "rendezvous watchdog: " << op_name(op) << " on backend '" << backend << "' timed out after "
      << waited_us << " us of virtual time; arrived ranks: [";
  append_ranks(out, arrived_global);
  out << "], missing ranks: [";
  append_ranks(out, missing_global);
  out << "]";
  return out.str();
}

std::uint64_t Watchdog::arm(SimTime deadline_us, std::function<void()> on_deadline) {
  return sched_->schedule_after(deadline_us, [this, fn = std::move(on_deadline)] {
    ++fired_;
    fn();
  });
}

void Watchdog::disarm(std::uint64_t timer_id) { sched_->cancel(timer_id); }

}  // namespace mcrdl::fault
