#include "src/fault/policy.h"

#include "src/common/status.h"

namespace mcrdl::fault {

CircuitBreaker::CircuitBreaker(int threshold) : threshold_(threshold) {
  MCRDL_REQUIRE(threshold >= 1, "circuit breaker threshold must be >= 1");
}

bool CircuitBreaker::record_failure(const std::string& backend, int rank) {
  const int count = ++consecutive_[{backend, rank}];
  if (count >= threshold_ && open_.count({backend, rank}) == 0) {
    open_.insert({backend, rank});
    return true;
  }
  return false;
}

void CircuitBreaker::record_success(const std::string& backend, int rank) {
  auto it = consecutive_.find({backend, rank});
  if (it != consecutive_.end()) it->second = 0;
}

int CircuitBreaker::consecutive_failures(const std::string& backend, int rank) const {
  auto it = consecutive_.find({backend, rank});
  return it == consecutive_.end() ? 0 : it->second;
}

}  // namespace mcrdl::fault
