#include "src/fault/policy.h"

#include "src/common/rng.h"
#include "src/common/status.h"

namespace mcrdl::fault {

SimTime RetryPolicy::backoff(int attempt, int rank) const {
  const SimTime window = backoff(attempt);
  if (jitter_seed == 0) return window;
  // One child stream per (rank, attempt): the draw depends on nothing but
  // the seed and those two coordinates, so concurrent retries on other
  // ranks — or a different interleaving on replay — cannot move it. Salt
  // mixes the coordinates injectively for the attempt counts in play.
  Rng stream = Rng(jitter_seed).split(
      static_cast<std::uint64_t>(rank) * 0x9e3779b97f4a7c15ull +
      static_cast<std::uint64_t>(attempt));
  // Full jitter over (0, window]: never zero, so a retry always yields the
  // baton and the trace keeps a visible backoff edge.
  return window * (1.0 - stream.next_double());
}

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  MCRDL_REQUIRE(config_.threshold >= 1, "circuit breaker threshold must be >= 1");
  MCRDL_REQUIRE(config_.cooldown >= 1, "circuit breaker cooldown must be >= 1");
}

void CircuitBreaker::transition(const std::string& backend, int rank, Entry& entry,
                                BreakerState to) {
  entry.state = to;
  if (hook_) hook_(backend, rank, to);
}

bool CircuitBreaker::record_failure(const std::string& backend, int rank) {
  Entry& entry = entries_[{backend, rank}];
  ++entry.failures;
  switch (entry.state) {
    case BreakerState::Closed:
      if (entry.failures >= config_.threshold) {
        entry.skipped = 0;
        transition(backend, rank, entry, BreakerState::Open);
        return true;
      }
      return false;
    case BreakerState::HalfOpen:
      // A failed probe re-opens immediately: the backend proved it is still
      // sick, so it goes back to aging toward the next probe window.
      entry.skipped = 0;
      entry.successes = 0;
      transition(backend, rank, entry, BreakerState::Open);
      return true;
    case BreakerState::Open:
      return false;
  }
  return false;
}

void CircuitBreaker::record_success(const std::string& backend, int rank) {
  auto it = entries_.find({backend, rank});
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  switch (entry.state) {
    case BreakerState::Closed:
      entry.failures = 0;
      break;
    case BreakerState::HalfOpen:
      if (++entry.successes >= config_.cooldown) {
        entry.failures = 0;
        entry.skipped = 0;
        entry.successes = 0;
        transition(backend, rank, entry, BreakerState::Closed);
      }
      break;
    case BreakerState::Open:
      // Successes cannot arrive for an open backend through routing; an
      // out-of-band success does not close the breaker (probe first).
      break;
  }
}

void CircuitBreaker::note_skipped(const std::string& backend, int rank) {
  auto it = entries_.find({backend, rank});
  if (it == entries_.end() || it->second.state != BreakerState::Open) return;
  if (config_.probe_after_ops <= 0) return;
  Entry& entry = it->second;
  if (++entry.skipped >= config_.probe_after_ops) {
    entry.skipped = 0;
    entry.successes = 0;
    transition(backend, rank, entry, BreakerState::HalfOpen);
  }
}

bool CircuitBreaker::allow_probe(const std::string& backend, int rank) {
  auto it = entries_.find({backend, rank});
  if (it == entries_.end() || it->second.state != BreakerState::Open) return false;
  it->second.skipped = 0;
  it->second.successes = 0;
  transition(backend, rank, it->second, BreakerState::HalfOpen);
  return true;
}

bool CircuitBreaker::healthy(const std::string& backend, int rank) const {
  return state(backend, rank) != BreakerState::Open;
}

BreakerState CircuitBreaker::state(const std::string& backend, int rank) const {
  auto it = entries_.find({backend, rank});
  return it == entries_.end() ? BreakerState::Closed : it->second.state;
}

int CircuitBreaker::consecutive_failures(const std::string& backend, int rank) const {
  auto it = entries_.find({backend, rank});
  return it == entries_.end() ? 0 : it->second.failures;
}

}  // namespace mcrdl::fault
