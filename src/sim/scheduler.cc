#include "src/sim/scheduler.h"

#include "src/sim/parallel_shards.h"
#include "src/sim/serial_baton.h"

namespace mcrdl::sim {

std::unique_ptr<ExecutionModel> make_execution_model(const ExecutionConfig& config) {
  if (config.kind == ExecutionModelKind::ParallelShards) {
    return std::make_unique<ParallelShards>(config.threads);
  }
  return std::make_unique<SerialBaton>();
}

// ---------------------------------------------------------------------------
// Engine-agnostic actor-side primitives
// ---------------------------------------------------------------------------

void Scheduler::sleep_until(SimTime t) {
  WaitToken token = prepare_wait();
  schedule_at(t, [this, token] { try_wake(token, WakeReason::Normal); });
  commit_wait();
}

void Scheduler::yield() { sleep_until(now()); }

// ---------------------------------------------------------------------------
// SimCondition
// ---------------------------------------------------------------------------

void SimCondition::wait() {
  Scheduler::WaitToken token = sched_->prepare_wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    waiters_.push_back(token);
  }
  sched_->commit_wait();
}

void SimCondition::notify_all() {
  // Stale tokens (actors force-woken earlier) fail the generation check
  // inside try_wake and are dropped harmlessly.
  std::vector<Scheduler::WaitToken> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    waiters.swap(waiters_);
  }
  for (const auto& token : waiters) sched_->try_wake(token, WakeReason::Normal);
}

}  // namespace mcrdl::sim
