#include "src/sim/device.h"

#include <utility>

namespace mcrdl::sim {

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

void Event::synchronize() {
  host_waiters_.wait([&] { return complete_; });
}

void Event::reset() {
  MCRDL_CHECK(stream_waiters_.empty()) << "reset of an Event with stalled stream waiters";
  complete_ = false;
  completion_time_ = 0.0;
}

void Event::on_complete(std::function<void()> fn) {
  if (complete_) {
    fn();
    return;
  }
  callbacks_.push_back(std::move(fn));
}

void Event::mark_complete(SimTime t) {
  complete_ = true;
  completion_time_ = t;
  auto callbacks = std::move(callbacks_);
  callbacks_.clear();
  for (auto& fn : callbacks) fn();
  host_waiters_.notify_all();
  std::vector<Stream*> waiters;
  waiters.swap(stream_waiters_);
  for (Stream* s : waiters) s->resume();
}

// ---------------------------------------------------------------------------
// StreamGate
// ---------------------------------------------------------------------------

void StreamGate::open() {
  if (open_) return;
  open_ = true;
  std::vector<Stream*> waiters;
  waiters.swap(waiters_);
  for (Stream* s : waiters) s->resume();
}

// ---------------------------------------------------------------------------
// Stream
// ---------------------------------------------------------------------------

Stream::Stream(Scheduler* sched, Device* device, std::string name)
    : sched_(sched), device_(device), name_(std::move(name)), quiescent_(sched) {}

Stream::~Stream() {
  // Ops still queued at teardown will never execute, so their Record events
  // will never complete. Those events' callbacks often close over the Work
  // that owns the event (Event -> callback -> Work -> Event), a cycle only
  // completion would break — drop the callbacks so a program that ends with
  // an undrained stream does not leak its in-flight completion chains.
  for (Op& op : queue_) {
    if (op.event != nullptr && !op.event->complete()) op.event->drop_callbacks();
  }
}

void Stream::launch_kernel(SimTime duration, std::function<void()> on_complete,
                           std::string label) {
  MCRDL_REQUIRE(duration >= 0.0, "kernel duration must be non-negative");
  Op op;
  op.kind = Op::Kind::Kernel;
  op.duration = duration;
  op.fn = std::move(on_complete);
  op.label = std::move(label);
  enqueue(std::move(op));
}

void Stream::record_event(const std::shared_ptr<Event>& event) {
  MCRDL_REQUIRE(event != nullptr, "record_event with null event");
  Op op;
  op.kind = Op::Kind::Record;
  op.event = event;
  enqueue(std::move(op));
}

void Stream::wait_event(std::shared_ptr<Event> event) {
  MCRDL_REQUIRE(event != nullptr, "wait_event with null event");
  Op op;
  op.kind = Op::Kind::WaitEvent;
  op.event = std::move(event);
  enqueue(std::move(op));
}

void Stream::wait_gate(std::shared_ptr<StreamGate> gate) {
  MCRDL_REQUIRE(gate != nullptr, "wait_gate with null gate");
  Op op;
  op.kind = Op::Kind::Gate;
  op.gate = std::move(gate);
  enqueue(std::move(op));
}

void Stream::add_callback(std::function<void()> fn) {
  MCRDL_REQUIRE(fn != nullptr, "add_callback with null function");
  Op op;
  op.kind = Op::Kind::Callback;
  op.fn = std::move(fn);
  enqueue(std::move(op));
}

void Stream::synchronize() {
  quiescent_.wait([&] { return idle(); });
}

void Stream::enqueue(Op op) {
  queue_.push_back(std::move(op));
  if (state_ == State::Idle && !pumping_) pump();
}

void Stream::resume() {
  MCRDL_CHECK(state_ == State::Stalled) << "resume of a stream that is not stalled";
  state_ = State::Idle;
  if (!pumping_) pump();
}

void Stream::pump() {
  struct PumpGuard {
    bool& flag;
    explicit PumpGuard(bool& f) : flag(f) { flag = true; }
    ~PumpGuard() { flag = false; }
  } guard(pumping_);

  while (!queue_.empty()) {
    Op& front = queue_.front();
    switch (front.kind) {
      case Op::Kind::Kernel: {
        state_ = State::Running;
        busy_time_ += front.duration;
        auto fn = std::move(front.fn);
        SimTime end = sched_->now() + front.duration;
        queue_.pop_front();
        sched_->schedule_at(end, [this, fn = std::move(fn)] {
          if (fn) fn();
          state_ = State::Idle;
          pump();
        });
        return;  // stream occupied until the completion event fires
      }
      case Op::Kind::Record: {
        front.event->mark_complete(sched_->now());
        queue_.pop_front();
        break;
      }
      case Op::Kind::WaitEvent: {
        if (front.event->complete()) {
          queue_.pop_front();
          break;
        }
        state_ = State::Stalled;
        front.event->add_stream_waiter(this);
        return;
      }
      case Op::Kind::Gate: {
        if (front.gate->is_open()) {
          queue_.pop_front();
          break;
        }
        state_ = State::Stalled;
        front.gate->add_waiter(this);
        return;
      }
      case Op::Kind::Callback: {
        auto fn = std::move(front.fn);
        queue_.pop_front();
        fn();  // may enqueue further ops on this stream; loop re-examines
        break;
      }
    }
  }
  state_ = State::Idle;
  quiescent_.notify_all();
}

// ---------------------------------------------------------------------------
// Device
// ---------------------------------------------------------------------------

Device::Device(Scheduler* sched, int global_id, int node_id, int local_id)
    : sched_(sched), global_id_(global_id), node_id_(node_id), local_id_(local_id) {
  default_stream_ = create_stream("default");
}

Stream* Device::create_stream(std::string name) {
  streams_.push_back(std::make_unique<Stream>(sched_, this, std::move(name)));
  return streams_.back().get();
}

void Device::compute(SimTime duration, std::string label) {
  default_stream_->launch_kernel(duration, {}, std::move(label));
}

}  // namespace mcrdl::sim
