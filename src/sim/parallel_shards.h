// ParallelShards — the concurrent execution engine (DESIGN.md §11).
//
// Actors are partitioned into S shards (actor id modulo S, fixed at run());
// each shard runs at most one of its actors at a time, but the S shards run
// concurrently on real cores. Virtual time advances under a conservative
// lockstep barrier driven by the controller thread (the run() caller):
//
//   event phase  — all shards quiescent. The controller drains due timed
//                  events serially in (time, seq) order — exactly the serial
//                  engine's order — until some actor becomes runnable, and
//                  advances the global clock as it goes. Wakes performed
//                  here only enqueue the actor on its owning shard.
//   actor phase  — the controller kicks every shard with runnable work and
//                  waits for global quiescence. Runnable actors execute
//                  concurrently (one per shard); cross-shard wakes post to
//                  the target's shard queue and start it immediately if the
//                  shard is idle. No timed event fires in this phase, so the
//                  clock is frozen: every actor in an epoch observes the
//                  same virtual instant, never one another shard hasn't
//                  reached.
//
// The phases alternate until no live actor remains. Because virtual
// timestamps in the cost model depend only on virtual time (never on which
// shard ran first), default-config traces are byte-identical to SerialBaton;
// tests/core/parallel_identity_test and the ci.sh scale smoke enforce this.
//
// Wait protocol difference vs the baton: between prepare_wait() and
// commit_wait() the actor keeps running while another shard may already
// deliver the wake. try_wake() records it as a pending wake (same
// generation check as ever) and commit_wait() consumes it without blocking —
// under the baton that window is atomic and the case cannot arise.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "src/sim/execution_model.h"

namespace mcrdl::sim {

class ParallelShards final : public ExecutionModel {
 public:
  explicit ParallelShards(int threads);
  ~ParallelShards() override;
  ParallelShards(const ParallelShards&) = delete;
  ParallelShards& operator=(const ParallelShards&) = delete;

  void spawn(std::string name, std::function<void()> fn) override;
  void run() override;
  SimTime now() const override { return now_.load(std::memory_order_relaxed); }

  WaitToken prepare_wait() override;
  void commit_wait() override;
  bool try_wake(const WaitToken& token, WakeReason reason) override;

  std::uint64_t schedule_at(SimTime t, std::function<void()> fn) override;
  void cancel(std::uint64_t event_id) override;

  std::string current_actor_name() const override;
  int current_actor_id() const override;
  bool running() const override { return running_.load(std::memory_order_relaxed); }
  std::uint64_t events_fired() const override {
    return events_fired_.load(std::memory_order_relaxed);
  }
  std::uint64_t pending_events() const override;

  ExecutionModelKind kind() const override { return ExecutionModelKind::ParallelShards; }
  int shard_count() const override { return shard_count_; }
  std::uint64_t barrier_epochs() const override {
    return epochs_.load(std::memory_order_relaxed);
  }

 private:
  // One run queue + "shard baton": at most one of the shard's actors is
  // Running at any time (`running`), the rest queue FIFO.
  struct Shard {
    std::mutex mu;
    std::deque<detail::Actor*> run_queue;
    detail::Actor* running = nullptr;
  };

  void actor_main(detail::Actor* self);
  // Pops the next runnable actor of `s` (if any) into s.running and notifies
  // it. Called with s.mu held.
  static void hand_over_locked(Shard& s);
  // Runs one actor phase: kicks idle shards with queued work, then blocks
  // until every actor is blocked or done again.
  void actor_phase();
  // Fires due timed events in (t, seq) order until some actor becomes
  // runnable; declares deadlock if the queue drains with live actors left.
  void event_phase();
  void declare_deadlock();
  // Rebuilds events_ without its cancelled tombstones once they dominate the
  // queue; called with events_mu_ held.
  void maybe_purge_cancelled_locked();
  void record_error(std::exception_ptr err);
  void force_wake_all(WakeReason reason);
  void inc_active();
  void dec_active();
  int active() const;

  const int requested_threads_;
  int shard_count_ = 1;
  std::vector<std::unique_ptr<detail::Actor>> actors_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Timed-event queue; guarded by events_mu_ (actors schedule concurrently,
  // only the controller fires).
  mutable std::mutex events_mu_;
  std::priority_queue<std::shared_ptr<detail::TimedEvent>,
                      std::vector<std::shared_ptr<detail::TimedEvent>>, detail::TimedEventOrder>
      events_;
  std::map<std::uint64_t, std::weak_ptr<detail::TimedEvent>> events_by_id_;
  std::uint64_t next_event_seq_ = 0;
  // Cancelled events still sitting in events_ as tombstones (their closures
  // are already freed at cancel time); guarded by events_mu_.
  std::size_t cancelled_in_queue_ = 0;

  // Controller/quiescence bookkeeping. active_ counts actors that are
  // Running or Runnable; live_ counts actors that are not Done.
  mutable std::mutex ctl_mu_;
  std::condition_variable ctl_cv_;
  int active_ = 0;
  int live_ = 0;

  // Error funnel (first failing actor wins, like the serial engine).
  std::mutex err_mu_;
  std::exception_ptr first_error_;
  std::string deadlock_message_;

  std::atomic<SimTime> now_{0.0};
  std::atomic<std::uint64_t> events_fired_{0};
  std::atomic<std::uint64_t> epochs_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> aborting_{false};
  // True only while the controller has handed execution to the shards; a
  // wake landing outside the actor phase must enqueue without starting the
  // actor (the controller kicks shards at the next phase start).
  std::atomic<bool> in_actor_phase_{false};
};

}  // namespace mcrdl::sim
