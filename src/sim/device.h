// Simulated device runtime: Device / Stream / Event with CUDA semantics.
//
// A Stream is an in-order queue of operations. Kernels occupy the stream for
// a virtual-time duration; Record/Wait of Events reproduce cudaEventRecord /
// cudaStreamWaitEvent ordering; Gates let collective backends stall a stream
// until an all-ranks rendezvous completes (the moment every participant's
// stream has reached its gate). Host code interacts through synchronize()
// calls that suspend the calling actor in virtual time.
//
// All methods must be called under the scheduler baton (i.e. from actor code
// or timed-event callbacks); see src/sim/scheduler.h for the threading
// contract.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/sim/scheduler.h"

namespace mcrdl::sim {

class Stream;

// CUDA-event analogue. An Event is complete once a Record operation for it
// has been executed by its stream; both host actors and other streams can
// wait on it.
class Event {
 public:
  explicit Event(Scheduler* sched) : sched_(sched), host_waiters_(sched) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool complete() const { return complete_; }
  // Virtual time at which the event completed; only valid when complete().
  SimTime completion_time() const { return completion_time_; }

  // Host-side blocking wait (cudaEventSynchronize).
  void synchronize();

  // Re-arms the event for another Record (cudaEventRecord overwrites).
  void reset();

  // Runs fn at completion (immediately if already complete). Callbacks run
  // under the baton, before host waiters resume.
  void on_complete(std::function<void()> fn);

  // Discards pending callbacks without running them. Teardown-only: a
  // never-completed event will never fire them, and a callback capturing the
  // Work that owns this event (the dispatch layer's completion closures do)
  // forms a reference cycle only completion would break — a program that
  // drops in-flight work and tears down would leak it otherwise.
  void drop_callbacks() { callbacks_.clear(); }

  // --- stream-internal interface ---
  void mark_complete(SimTime t);
  void add_stream_waiter(Stream* s) { stream_waiters_.push_back(s); }

 private:
  Scheduler* sched_;
  bool complete_ = false;
  SimTime completion_time_ = 0.0;
  SimCondition host_waiters_;
  std::vector<Stream*> stream_waiters_;
  std::vector<std::function<void()>> callbacks_;
};

// A gate a stream can be told to wait behind; collective rendezvous objects
// open gates when the operation's completion time arrives. Unlike an Event,
// a Gate is one-shot and not recorded by any stream.
class StreamGate {
 public:
  explicit StreamGate(Scheduler* sched) : sched_(sched) {}
  StreamGate(const StreamGate&) = delete;
  StreamGate& operator=(const StreamGate&) = delete;

  bool is_open() const { return open_; }
  void open();
  void add_waiter(Stream* s) { waiters_.push_back(s); }

 private:
  [[maybe_unused]] Scheduler* sched_;
  bool open_ = false;
  std::vector<Stream*> waiters_;
};

class Device;

// In-order execution queue on a device.
class Stream {
 public:
  Stream(Scheduler* sched, Device* device, std::string name);
  // Drops the callbacks of events still queued for Record: they can never
  // complete once the stream is gone, and their callbacks may close over the
  // Works that own them (see Event::drop_callbacks).
  ~Stream();
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  // Enqueues a kernel that occupies the stream for `duration` virtual µs;
  // on_complete (optional) runs at the kernel's completion time — backends
  // use it to apply the data effect of a transfer or reduction.
  void launch_kernel(SimTime duration, std::function<void()> on_complete = {},
                     std::string label = {});

  // cudaEventRecord: the event completes when the stream reaches this point.
  void record_event(const std::shared_ptr<Event>& event);

  // cudaStreamWaitEvent: stalls the stream until the event is complete.
  void wait_event(std::shared_ptr<Event> event);

  // Stalls the stream behind a rendezvous gate.
  void wait_gate(std::shared_ptr<StreamGate> gate);

  // Runs fn the moment the stream reaches this point (zero duration). Used
  // by collective backends to timestamp stream-side arrival at a rendezvous.
  void add_callback(std::function<void()> fn);

  // Host-side blocking wait until every queued operation has finished.
  void synchronize();

  bool idle() const { return queue_.empty() && state_ == State::Idle; }
  Device* device() const { return device_; }
  const std::string& name() const { return name_; }
  // Total virtual time this stream has spent executing kernels.
  SimTime busy_time() const { return busy_time_; }

  // --- event/gate-internal interface ---
  // Called when a stalled-on dependency becomes ready.
  void resume();

 private:
  enum class State { Idle, Running, Stalled };
  struct Op {
    enum class Kind { Kernel, Record, WaitEvent, Gate, Callback };
    Kind kind;
    SimTime duration = 0.0;
    std::function<void()> fn;
    std::shared_ptr<Event> event;
    std::shared_ptr<StreamGate> gate;
    std::string label;
  };

  void enqueue(Op op);
  void pump();

  Scheduler* sched_;
  Device* device_;
  std::string name_;
  std::deque<Op> queue_;
  State state_ = State::Idle;
  bool pumping_ = false;
  SimTime busy_time_ = 0.0;
  SimCondition quiescent_;
};

// A simulated GPU. Owns its streams; `global_id` is the rank-visible device
// index, (node_id, local_id) locate it in the cluster topology.
class Device {
 public:
  Device(Scheduler* sched, int global_id, int node_id, int local_id);
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int global_id() const { return global_id_; }
  int node_id() const { return node_id_; }
  int local_id() const { return local_id_; }

  Stream* default_stream() { return default_stream_; }
  Stream* create_stream(std::string name);
  const std::vector<std::unique_ptr<Stream>>& streams() const { return streams_; }

  Scheduler* scheduler() { return sched_; }

  // Convenience: run a compute kernel of `duration` on the default stream.
  void compute(SimTime duration, std::string label = {});

 private:
  Scheduler* sched_;
  int global_id_;
  int node_id_;
  int local_id_;
  std::vector<std::unique_ptr<Stream>> streams_;
  Stream* default_stream_ = nullptr;
};

}  // namespace mcrdl::sim
