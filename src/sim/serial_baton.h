// SerialBaton — the original baton-passing execution engine (DESIGN.md §11).
//
// Every actor is an OS thread, but exactly one executes at any instant: a
// "baton" is handed from actor to actor, so all simulated state is
// implicitly protected and every run is deterministic. Virtual time only
// advances when every actor is blocked: the blocking actor drains the timed
// event queue until some actor becomes runnable again; if none can, the
// system has genuinely deadlocked and every actor is woken with
// DeadlockError.
//
// This engine is the golden-trace referee: ParallelShards must reproduce its
// default-config output byte for byte.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "src/sim/execution_model.h"

namespace mcrdl::sim {

class SerialBaton final : public ExecutionModel {
 public:
  SerialBaton() = default;
  ~SerialBaton() override;
  SerialBaton(const SerialBaton&) = delete;
  SerialBaton& operator=(const SerialBaton&) = delete;

  void spawn(std::string name, std::function<void()> fn) override;
  void run() override;
  SimTime now() const override { return now_; }

  WaitToken prepare_wait() override;
  void commit_wait() override;
  bool try_wake(const WaitToken& token, WakeReason reason) override;

  std::uint64_t schedule_at(SimTime t, std::function<void()> fn) override;
  void cancel(std::uint64_t event_id) override;

  std::string current_actor_name() const override;
  int current_actor_id() const override;
  bool running() const override { return running_; }
  std::uint64_t events_fired() const override { return events_fired_; }
  std::uint64_t pending_events() const override;

  ExecutionModelKind kind() const override { return ExecutionModelKind::SerialBaton; }
  int shard_count() const override { return 1; }
  std::uint64_t barrier_epochs() const override { return 0; }

 private:
  bool try_wake_locked(const WaitToken& token, WakeReason reason);
  void force_wake_all_locked(WakeReason reason);
  void actor_main(detail::Actor* self);
  // Hands the baton onwards when an actor exits; called with mu_ held.
  void pass_baton_and_exit(std::unique_lock<std::mutex>& lock);
  // Drains timed events until some actor is runnable; declares deadlock if
  // the system is exhausted while live actors remain blocked.
  void dispatch_until_runnable_locked(std::unique_lock<std::mutex>& lock, bool exiting);
  void declare_deadlock_locked();
  // Rebuilds events_ without its cancelled tombstones once they dominate the
  // queue; called with mu_ held.
  void maybe_purge_cancelled_locked();

  mutable std::mutex mu_;
  std::condition_variable main_cv_;

  std::vector<std::unique_ptr<detail::Actor>> actors_;
  std::deque<detail::Actor*> run_queue_;
  std::priority_queue<std::shared_ptr<detail::TimedEvent>,
                      std::vector<std::shared_ptr<detail::TimedEvent>>, detail::TimedEventOrder>
      events_;
  std::map<std::uint64_t, std::weak_ptr<detail::TimedEvent>> events_by_id_;

  detail::Actor* current_ = nullptr;
  SimTime now_ = 0.0;
  std::uint64_t next_event_seq_ = 0;
  std::uint64_t events_fired_ = 0;
  // Cancelled events still sitting in events_ as tombstones (their closures
  // are already freed at cancel time).
  std::size_t cancelled_in_queue_ = 0;
  int live_actors_ = 0;
  bool running_ = false;
  bool aborting_ = false;
  std::string deadlock_message_;
  std::exception_ptr first_error_;
};

}  // namespace mcrdl::sim
