#include "src/sim/serial_baton.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"

namespace mcrdl::sim {

// ---------------------------------------------------------------------------
// Actor lifecycle
// ---------------------------------------------------------------------------

SerialBaton::~SerialBaton() {
  for (auto& a : actors_) {
    if (a->thread.joinable()) a->thread.join();
  }
}

void SerialBaton::spawn(std::string name, std::function<void()> fn) {
  MCRDL_CHECK(!running_) << "spawn() after run() started";
  actors_.push_back(std::make_unique<detail::Actor>(std::move(name), std::move(fn),
                                                    static_cast<int>(actors_.size())));
}

void SerialBaton::run() {
  MCRDL_CHECK(!running_) << "run() called twice";
  MCRDL_CHECK(!actors_.empty()) << "run() with no actors";
  {
    std::unique_lock<std::mutex> lock(mu_);
    running_ = true;
    live_actors_ = static_cast<int>(actors_.size());
    for (auto& a : actors_) {
      a->thread = std::thread([this, actor = a.get()] { actor_main(actor); });
      run_queue_.push_back(a.get());
    }
    current_ = run_queue_.front();
    run_queue_.pop_front();
    current_->cv.notify_one();
    main_cv_.wait(lock, [&] { return live_actors_ == 0; });
  }
  for (auto& a : actors_) a->thread.join();
  running_ = false;
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void SerialBaton::actor_main(detail::Actor* self) {
  bool skip = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    self->cv.wait(lock, [&] { return current_ == self; });
    self->state = detail::ActorState::Running;
    skip = aborting_ || self->wake_reason != WakeReason::Normal;
  }
  try {
    if (!skip) self->fn();
  } catch (const SimAborted&) {
    // Unwound because another actor already failed; not the root cause.
  } catch (...) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
    aborting_ = true;
    force_wake_all_locked(WakeReason::Abort);
  }
  std::unique_lock<std::mutex> lock(mu_);
  self->done = true;
  --live_actors_;
  pass_baton_and_exit(lock);
}

// ---------------------------------------------------------------------------
// Wait/wake machinery
// ---------------------------------------------------------------------------

WaitToken SerialBaton::prepare_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  MCRDL_CHECK(current_ != nullptr) << "prepare_wait outside actor context";
  detail::Actor* self = current_;
  ++self->wait_gen;
  return WaitToken{self, self->wait_gen};
}

bool SerialBaton::try_wake(const WaitToken& token, WakeReason reason) {
  std::unique_lock<std::mutex> lock(mu_);
  return try_wake_locked(token, reason);
}

bool SerialBaton::try_wake_locked(const WaitToken& token, WakeReason reason) {
  detail::Actor* a = token.actor;
  if (a->state != detail::ActorState::Blocked || a->wait_gen != token.gen) return false;
  a->state = detail::ActorState::Runnable;
  a->wake_reason = reason;
  run_queue_.push_back(a);
  return true;
}

void SerialBaton::force_wake_all_locked(WakeReason reason) {
  for (auto& a : actors_) {
    if (a->state == detail::ActorState::Blocked) {
      try_wake_locked(WaitToken{a.get(), a->wait_gen}, reason);
    }
  }
}

void SerialBaton::commit_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  detail::Actor* self = current_;
  MCRDL_CHECK(self != nullptr) << "commit_wait outside actor context";
  current_ = nullptr;
  self->state = detail::ActorState::Blocked;

  dispatch_until_runnable_locked(lock, /*exiting=*/false);

  MCRDL_CHECK(!run_queue_.empty());
  detail::Actor* next = run_queue_.front();
  run_queue_.pop_front();
  if (next != self) {
    current_ = next;
    next->cv.notify_one();
    self->cv.wait(lock, [&] { return current_ == self; });
  } else {
    current_ = self;
  }
  self->state = detail::ActorState::Running;
  WakeReason reason = self->wake_reason;
  self->wake_reason = WakeReason::Normal;
  if (reason == WakeReason::Deadlock) {
    lock.unlock();
    throw DeadlockError(deadlock_message_);
  }
  if (reason == WakeReason::Abort || aborting_) {
    lock.unlock();
    throw SimAborted("simulation aborted: another actor failed");
  }
}

void SerialBaton::pass_baton_and_exit(std::unique_lock<std::mutex>& lock) {
  detail::Actor* self = current_;
  MCRDL_CHECK(self != nullptr);
  self->state = detail::ActorState::Done;
  current_ = nullptr;
  if (live_actors_ == 0) {
    main_cv_.notify_all();
    return;
  }
  dispatch_until_runnable_locked(lock, /*exiting=*/true);
  if (run_queue_.empty()) {
    // Every remaining actor vanished during dispatch (cannot normally
    // happen, but keep the main thread from hanging).
    main_cv_.notify_all();
    return;
  }
  detail::Actor* next = run_queue_.front();
  run_queue_.pop_front();
  current_ = next;
  next->cv.notify_one();
}

void SerialBaton::dispatch_until_runnable_locked(std::unique_lock<std::mutex>& lock,
                                                 bool exiting) {
  for (;;) {
    if (!run_queue_.empty()) return;
    while (!events_.empty() && events_.top()->cancelled) {
      events_.pop();
      --cancelled_in_queue_;
    }
    if (!events_.empty()) {
      auto ev = events_.top();
      events_.pop();
      events_by_id_.erase(ev->seq);
      now_ = std::max(now_, ev->t);
      ++events_fired_;
      lock.unlock();
      ev->fn();  // runs under the baton; may wake actors / schedule events
      lock.lock();
      continue;
    }
    if (exiting && live_actors_ == 0) return;
    // Live actors exist, none runnable, no pending events: deadlock.
    declare_deadlock_locked();
    return;
  }
}

void SerialBaton::declare_deadlock_locked() {
  std::ostringstream msg;
  msg << "virtual-time deadlock at t=" << now_ << "us; blocked actors:";
  for (auto& a : actors_) {
    if (a->state == detail::ActorState::Blocked) msg << " " << a->name;
  }
  deadlock_message_ = msg.str();
  MCRDL_LOG_WARN << deadlock_message_;
  if (!first_error_) first_error_ = std::make_exception_ptr(DeadlockError(deadlock_message_));
  aborting_ = true;
  force_wake_all_locked(WakeReason::Deadlock);
}

// ---------------------------------------------------------------------------
// Timed events and introspection
// ---------------------------------------------------------------------------

std::uint64_t SerialBaton::schedule_at(SimTime t, std::function<void()> fn) {
  std::unique_lock<std::mutex> lock(mu_);
  auto ev = std::make_shared<detail::TimedEvent>();
  ev->t = std::max(t, now_);
  ev->seq = next_event_seq_++;
  ev->fn = std::move(fn);
  events_.push(ev);
  events_by_id_[ev->seq] = ev;
  return ev->seq;
}

void SerialBaton::cancel(std::uint64_t event_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = events_by_id_.find(event_id);
  if (it == events_by_id_.end()) return;
  if (auto ev = it->second.lock()) {
    ev->cancelled = true;
    // Free the closure now — tombstones in the priority queue must not pin
    // captured state (Works, tensors) until their deadline passes.
    ev->fn = nullptr;
    ++cancelled_in_queue_;
  }
  events_by_id_.erase(it);
  maybe_purge_cancelled_locked();
}

std::uint64_t SerialBaton::pending_events() const {
  std::unique_lock<std::mutex> lock(mu_);
  return events_.size() - cancelled_in_queue_;
}

void SerialBaton::maybe_purge_cancelled_locked() {
  // Tombstones surface cheaply at the queue head during normal dispatch;
  // only rebuild when they are both numerous and the majority, so cancel
  // stays amortized O(log n) on cancel-heavy workloads (fusion flush timers)
  // without pathological queue growth in between.
  if (cancelled_in_queue_ <= 64 || cancelled_in_queue_ * 2 <= events_.size()) return;
  std::vector<std::shared_ptr<detail::TimedEvent>> live;
  live.reserve(events_.size() - cancelled_in_queue_);
  while (!events_.empty()) {
    if (!events_.top()->cancelled) live.push_back(events_.top());
    events_.pop();
  }
  for (auto& ev : live) events_.push(std::move(ev));
  cancelled_in_queue_ = 0;
}

std::string SerialBaton::current_actor_name() const {
  std::unique_lock<std::mutex> lock(mu_);
  return current_ != nullptr ? current_->name : std::string();
}

int SerialBaton::current_actor_id() const {
  std::unique_lock<std::mutex> lock(mu_);
  return current_ != nullptr ? current_->id : -1;
}

}  // namespace mcrdl::sim
