// Virtual-time cooperative scheduler — the execution substrate for the whole
// simulated cluster.
//
// Model
// -----
// Every simulated rank (and nothing else) is an *actor*: an OS thread that
// runs user code. The Scheduler is a thin facade over an ExecutionModel
// engine (execution_model.h, DESIGN.md §11):
//
//   SerialBaton (default) — exactly one actor executes at any instant; a
//   "baton" is handed from actor to actor, so all simulated state is
//   implicitly protected by the baton and every run is deterministic.
//
//   ParallelShards — actors are partitioned into per-shard run queues that
//   execute concurrently under a conservative virtual-time barrier; shared
//   simulated state (engines, metrics, traces) is made shard-safe
//   explicitly. Default-config output is byte-identical to SerialBaton.
//
// Virtual time only advances when every actor is blocked: the engine drains
// the timed-event queue (device kernel completions, fusion timeouts, link
// transfers) until some actor becomes runnable again. If every live actor is
// blocked and no timed event is pending, the system has genuinely
// deadlocked; the scheduler wakes all actors with DeadlockError. This is the
// property that lets the mixed-backend tests distinguish naive
// synchronisation (which deadlocks) from MCR-DL's ordering (which doesn't).
//
// Threading contract: Scheduler public methods are callable from actor
// threads or from timed-event callbacks (which run serialized — under the
// baton, or on the ParallelShards controller thread between actor phases).
// Timed-event callbacks must not block. Code outside run() may only call
// spawn()/run().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/sim/execution_model.h"

namespace mcrdl::sim {

class Scheduler {
 public:
  // Identifies one suspension of one actor; handed to wake sources.
  using WaitToken = sim::WaitToken;

  Scheduler() : Scheduler(ExecutionConfig::serial()) {}
  explicit Scheduler(const ExecutionConfig& config)
      : config_(config), impl_(make_execution_model(config)) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Registers an actor. Must be called before run().
  void spawn(std::string name, std::function<void()> fn) {
    impl_->spawn(std::move(name), std::move(fn));
  }

  // Runs the simulation until every actor returns. Rethrows the first actor
  // exception (including DeadlockError) after all threads have unwound.
  void run() { impl_->run(); }

  // Current virtual time in microseconds.
  SimTime now() const { return impl_->now(); }

  // --- actor-side blocking primitives ------------------------------------
  void sleep_until(SimTime t);
  void sleep_for(SimTime dt) { sleep_until(now() + dt); }
  // Gives every other actor runnable at the current virtual time a chance to
  // run before this actor continues.
  void yield();

  // --- low-level wait protocol (used by SimCondition and the device
  // runtime; most code should use SimCondition instead) --------------------
  // prepare_wait() marks the start of a suspension and returns the token the
  // wake source must present; the caller registers the token somewhere and
  // then calls commit_wait(), which blocks until try_wake() is called with a
  // matching token. try_wake returns false for stale tokens.
  WaitToken prepare_wait() { return impl_->prepare_wait(); }
  void commit_wait() { impl_->commit_wait(); }
  bool try_wake(const WaitToken& token, WakeReason reason) {
    return impl_->try_wake(token, reason);
  }

  // --- timed events -------------------------------------------------------
  // Schedules fn at virtual time t (clamped to now if in the past). Returns
  // an id usable with cancel(). fn runs serialized with respect to all
  // actors and must not block.
  std::uint64_t schedule_at(SimTime t, std::function<void()> fn) {
    return impl_->schedule_at(t, std::move(fn));
  }
  std::uint64_t schedule_after(SimTime dt, std::function<void()> fn) {
    return impl_->schedule_at(now() + dt, std::move(fn));
  }
  // Cancels a pending event; no-op if it already fired.
  void cancel(std::uint64_t event_id) { impl_->cancel(event_id); }

  // Name of the actor executing on the calling thread ("" outside actor
  // context). Returned by value: a reference into actor state would dangle
  // or race once shards run concurrently.
  std::string current_actor_name() const { return impl_->current_actor_name(); }
  // Index of the current actor in spawn order (-1 outside actor context).
  int current_actor_id() const { return impl_->current_actor_id(); }
  bool running() const { return impl_->running(); }

  // Number of timed events that have fired so far (diagnostic).
  std::uint64_t events_fired() const { return impl_->events_fired(); }
  // Number of live (not fired, not cancelled) timed events in the queue.
  std::uint64_t pending_events() const { return impl_->pending_events(); }

  // --- execution-model introspection --------------------------------------
  const ExecutionConfig& execution_config() const { return config_; }
  ExecutionModelKind execution_kind() const { return impl_->kind(); }
  int shard_count() const { return impl_->shard_count(); }
  std::uint64_t barrier_epochs() const { return impl_->barrier_epochs(); }

 private:
  ExecutionConfig config_;
  std::unique_ptr<ExecutionModel> impl_;
};

// A condition variable in virtual time. wait() suspends the calling actor
// until another actor (or a timed event) calls notify_all(); the predicate
// overload loops like std::condition_variable::wait. The waiter list has its
// own lock so concurrent shards can wait/notify safely.
class SimCondition {
 public:
  explicit SimCondition(Scheduler* sched) : sched_(sched) {}
  SimCondition(const SimCondition&) = delete;
  SimCondition& operator=(const SimCondition&) = delete;

  void wait();

  // Predicate form. The predicate is re-checked *after* the wait token is
  // registered, which closes the lost-wakeup window under ParallelShards: a
  // notifier that flips the condition between the first check and the
  // registration is either observed by the re-check (skip the block) or
  // lands on the registered token (pending-wake / normal wake). Abandoned
  // tokens are neutralized by the next prepare_wait's generation bump.
  template <typename Pred>
  void wait(Pred pred) {
    while (!pred()) {
      Scheduler::WaitToken token = sched_->prepare_wait();
      {
        std::lock_guard<std::mutex> lock(mu_);
        waiters_.push_back(token);
      }
      if (pred()) continue;
      sched_->commit_wait();
    }
  }

  void notify_all();

  bool has_waiters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !waiters_.empty();
  }

 private:
  Scheduler* sched_;
  mutable std::mutex mu_;
  std::vector<Scheduler::WaitToken> waiters_;
};

}  // namespace mcrdl::sim
