// Virtual-time cooperative scheduler — the execution substrate for the whole
// simulated cluster.
//
// Model
// -----
// Every simulated rank (and nothing else) is an *actor*: an OS thread that
// runs user code. Exactly one actor executes at any instant — a "baton" is
// handed from actor to actor — so all simulated state (tensors, streams,
// rendezvous objects) is implicitly protected by the baton, needs no locking
// of its own, and every run is deterministic.
//
// Virtual time only advances when every actor is blocked: the blocking actor
// drains the timed-event queue (device kernel completions, fusion timeouts,
// link transfers) until some actor becomes runnable again. If every live
// actor is blocked and no timed event is pending, the system has genuinely
// deadlocked; the scheduler wakes all actors with DeadlockError. This is the
// property that lets the mixed-backend tests distinguish naive
// synchronisation (which deadlocks) from MCR-DL's ordering (which doesn't).
//
// Threading contract: Scheduler public methods are callable from actor
// threads or from timed-event callbacks (which run on the thread that is
// draining the queue, still under the baton). Timed-event callbacks must not
// block. Code outside run() may only call spawn()/run().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace mcrdl::sim {

class Scheduler;

// Reason an actor was made runnable again; Abort/Deadlock cause the wait
// primitive to throw once the actor regains the baton.
enum class WakeReason { Normal, Abort, Deadlock };

// Raised inside actors that are force-unwound because another actor failed.
class SimAborted : public Error {
 public:
  explicit SimAborted(const std::string& what) : Error(what) {}
};

namespace detail {

enum class ActorState { Runnable, Running, Blocked, Done };

struct Actor {
  Actor(std::string name_, std::function<void()> fn_, int id_)
      : name(std::move(name_)), fn(std::move(fn_)), id(id_) {}

  std::string name;
  std::function<void()> fn;
  int id = -1;
  std::thread thread;
  std::condition_variable cv;
  ActorState state = ActorState::Runnable;
  bool done = false;
  WakeReason wake_reason = WakeReason::Normal;
  // Incremented on every suspension; wake sources capture the generation so
  // stale wakeups (cancelled timers, force-woken condition entries) are
  // rejected.
  std::uint64_t wait_gen = 0;
};

}  // namespace detail

class Scheduler {
 public:
  // Identifies one suspension of one actor; handed to wake sources.
  struct WaitToken {
    detail::Actor* actor = nullptr;
    std::uint64_t gen = 0;
  };

  Scheduler() = default;
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Registers an actor. Must be called before run().
  void spawn(std::string name, std::function<void()> fn);

  // Runs the simulation until every actor returns. Rethrows the first actor
  // exception (including DeadlockError) after all threads have unwound.
  void run();

  // Current virtual time in microseconds.
  SimTime now() const { return now_; }

  // --- actor-side blocking primitives ------------------------------------
  void sleep_until(SimTime t);
  void sleep_for(SimTime dt) { sleep_until(now_ + dt); }
  // Gives every other actor runnable at the current virtual time a chance to
  // run before this actor continues.
  void yield();

  // --- low-level wait protocol (used by SimCondition and the device
  // runtime; most code should use SimCondition instead) --------------------
  // prepare_wait() marks the start of a suspension and returns the token the
  // wake source must present; the caller registers the token somewhere and
  // then calls commit_wait(), which blocks until try_wake() is called with a
  // matching token. try_wake returns false for stale tokens.
  WaitToken prepare_wait();
  void commit_wait();
  bool try_wake(const WaitToken& token, WakeReason reason);

  // --- timed events -------------------------------------------------------
  // Schedules fn at virtual time t (clamped to now if in the past). Returns
  // an id usable with cancel(). fn runs under the baton and must not block.
  std::uint64_t schedule_at(SimTime t, std::function<void()> fn);
  std::uint64_t schedule_after(SimTime dt, std::function<void()> fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }
  // Cancels a pending event; no-op if it already fired.
  void cancel(std::uint64_t event_id);

  // Name of the actor currently holding the baton ("" outside run()).
  const std::string& current_actor_name() const;
  // Index of the current actor in spawn order (-1 outside run()).
  int current_actor_id() const;
  bool running() const { return running_; }

  // Number of timed events that have fired so far (diagnostic).
  std::uint64_t events_fired() const { return events_fired_; }

 private:
  struct TimedEvent {
    SimTime t = 0.0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    bool cancelled = false;
  };
  struct EventOrder {
    bool operator()(const std::shared_ptr<TimedEvent>& a,
                    const std::shared_ptr<TimedEvent>& b) const {
      if (a->t != b->t) return a->t > b->t;
      return a->seq > b->seq;  // FIFO among simultaneous events
    }
  };

  bool try_wake_locked(const WaitToken& token, WakeReason reason);
  void force_wake_all_locked(WakeReason reason);
  void actor_main(detail::Actor* self);
  // Hands the baton onwards when an actor exits; called with mu_ held.
  void pass_baton_and_exit(std::unique_lock<std::mutex>& lock);
  // Drains timed events until some actor is runnable; declares deadlock if
  // the system is exhausted while live actors remain blocked.
  void dispatch_until_runnable_locked(std::unique_lock<std::mutex>& lock, bool exiting);
  void declare_deadlock_locked();

  mutable std::mutex mu_;
  std::condition_variable main_cv_;

  std::vector<std::unique_ptr<detail::Actor>> actors_;
  std::deque<detail::Actor*> run_queue_;
  std::priority_queue<std::shared_ptr<TimedEvent>, std::vector<std::shared_ptr<TimedEvent>>,
                      EventOrder>
      events_;
  std::map<std::uint64_t, std::weak_ptr<TimedEvent>> events_by_id_;

  detail::Actor* current_ = nullptr;
  SimTime now_ = 0.0;
  std::uint64_t next_event_seq_ = 0;
  std::uint64_t events_fired_ = 0;
  int live_actors_ = 0;
  bool running_ = false;
  bool aborting_ = false;
  std::string deadlock_message_;
  std::exception_ptr first_error_;
};

// A condition variable in virtual time. wait() suspends the calling actor
// until another actor (or a timed event) calls notify_all(); the predicate
// overload loops like std::condition_variable::wait.
class SimCondition {
 public:
  explicit SimCondition(Scheduler* sched) : sched_(sched) {}
  SimCondition(const SimCondition&) = delete;
  SimCondition& operator=(const SimCondition&) = delete;

  void wait();

  template <typename Pred>
  void wait(Pred pred) {
    while (!pred()) wait();
  }

  void notify_all();

  bool has_waiters() const { return !waiters_.empty(); }

 private:
  Scheduler* sched_;
  std::vector<Scheduler::WaitToken> waiters_;
};

}  // namespace mcrdl::sim
