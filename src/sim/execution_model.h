// The ExecutionModel seam (DESIGN.md §11): the Scheduler facade delegates to
// one of two interchangeable execution engines.
//
//   SerialBaton    — the original baton-passing engine. Exactly one actor
//                    executes at any instant; all simulated state is
//                    implicitly protected by the baton. This is the
//                    golden-trace referee and the default.
//   ParallelShards — actors are partitioned into per-shard run queues that
//                    execute concurrently. Virtual time advances in lockstep
//                    epochs: a serialized event phase (the controller thread
//                    drains due timed events) alternates with a concurrent
//                    actor phase (each shard runs at most one actor at a
//                    time) under a conservative barrier, so no actor ever
//                    observes a virtual clock ahead of another shard.
//
// Both engines speak the same wait-token protocol, so SimCondition, the
// device runtime, and the backends are engine-agnostic. The paper-facing
// contract is that default-config traces are byte-identical across engines
// (enforced by tests/core/parallel_identity_test and the ci.sh scale smoke).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "src/common/shard_slot.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace mcrdl::sim {

// Reason an actor was made runnable again; Abort/Deadlock cause the wait
// primitive to throw once the actor regains control.
enum class WakeReason { Normal, Abort, Deadlock };

// Raised inside actors that are force-unwound because another actor failed.
class SimAborted : public Error {
 public:
  explicit SimAborted(const std::string& what) : Error(what) {}
};

namespace detail {

enum class ActorState { Runnable, Running, Blocked, Done };

struct Actor {
  Actor(std::string name_, std::function<void()> fn_, int id_)
      : name(std::move(name_)), fn(std::move(fn_)), id(id_) {}

  std::string name;
  std::function<void()> fn;
  int id = -1;
  std::thread thread;
  std::condition_variable cv;
  ActorState state = ActorState::Runnable;
  bool done = false;
  WakeReason wake_reason = WakeReason::Normal;
  // Incremented on every suspension; wake sources capture the generation so
  // stale wakeups (cancelled timers, force-woken condition entries) are
  // rejected.
  std::uint64_t wait_gen = 0;

  // --- ParallelShards only -----------------------------------------------
  // Owning shard (fixed at run(); actor id modulo shard count).
  int shard = 0;
  // True between prepare_wait() and commit_wait(). Under the serial engine
  // the baton makes that window atomic; under shards a concurrent waker that
  // hits the window records a pending wake instead of losing it.
  bool wait_prepared = false;
  bool pending_wake = false;
};

// A pending timed-event callback, ordered by (time, sequence) so that
// simultaneous events fire FIFO in scheduling order under both engines.
struct TimedEvent {
  SimTime t = 0.0;
  std::uint64_t seq = 0;
  std::function<void()> fn;
  bool cancelled = false;
};
struct TimedEventOrder {
  bool operator()(const std::shared_ptr<TimedEvent>& a,
                  const std::shared_ptr<TimedEvent>& b) const {
    if (a->t != b->t) return a->t > b->t;
    return a->seq > b->seq;  // FIFO among simultaneous events
  }
};

}  // namespace detail

// Identifies one suspension of one actor; handed to wake sources.
struct WaitToken {
  detail::Actor* actor = nullptr;
  std::uint64_t gen = 0;
};

enum class ExecutionModelKind { SerialBaton, ParallelShards };

inline const char* execution_model_name(ExecutionModelKind kind) {
  return kind == ExecutionModelKind::SerialBaton ? "serial" : "parallel";
}

// How to execute the simulation. `threads` is the shard count and only
// matters for ParallelShards; it is clamped to [1, kMaxShards] and further
// to the actor count at run().
struct ExecutionConfig {
  ExecutionModelKind kind = ExecutionModelKind::SerialBaton;
  int threads = 1;

  static ExecutionConfig serial() { return {}; }
  static ExecutionConfig parallel(int threads) {
    ExecutionConfig cfg;
    cfg.kind = ExecutionModelKind::ParallelShards;
    cfg.threads = threads < 1 ? 1 : (threads > kMaxShards ? kMaxShards : threads);
    return cfg;
  }
  // Tool-facing: --threads N with N <= 1 means the serial referee.
  static ExecutionConfig from_threads(int threads) {
    return threads <= 1 ? serial() : parallel(threads);
  }

  std::string describe() const {
    if (kind == ExecutionModelKind::SerialBaton) return "serial (baton)";
    return "parallel (" + std::to_string(threads) + " shards)";
  }
};

// Engine interface behind the Scheduler facade. See scheduler.h for the
// semantics of each operation; the facade forwards one-to-one.
class ExecutionModel {
 public:
  virtual ~ExecutionModel() = default;

  virtual void spawn(std::string name, std::function<void()> fn) = 0;
  virtual void run() = 0;
  virtual SimTime now() const = 0;

  virtual WaitToken prepare_wait() = 0;
  virtual void commit_wait() = 0;
  virtual bool try_wake(const WaitToken& token, WakeReason reason) = 0;

  virtual std::uint64_t schedule_at(SimTime t, std::function<void()> fn) = 0;
  virtual void cancel(std::uint64_t event_id) = 0;

  virtual std::string current_actor_name() const = 0;
  virtual int current_actor_id() const = 0;
  virtual bool running() const = 0;
  virtual std::uint64_t events_fired() const = 0;
  // Live (scheduled, not yet fired, not cancelled) timed events currently in
  // the queue. Cancelled tombstones are excluded: regression tests use this
  // to pin that cancel-heavy workloads (fusion flush timers) do not grow the
  // queue without bound.
  virtual std::uint64_t pending_events() const = 0;

  virtual ExecutionModelKind kind() const = 0;
  // Number of concurrent shards (1 for the serial engine).
  virtual int shard_count() const = 0;
  // Number of distinct virtual instants the barrier has stepped through
  // (0 for the serial engine, which has no barrier).
  virtual std::uint64_t barrier_epochs() const = 0;
};

std::unique_ptr<ExecutionModel> make_execution_model(const ExecutionConfig& config);

}  // namespace mcrdl::sim
