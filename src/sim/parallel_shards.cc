#include "src/sim/parallel_shards.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"

namespace mcrdl::sim {

namespace {

// Which engine+actor the calling thread belongs to. Actor threads of one
// ParallelShards instance never execute code of another, but engines can
// nest (a tool's outer scheduler hosting an inner cluster), so the engine
// pointer disambiguates.
struct ThreadContext {
  ParallelShards* engine = nullptr;
  detail::Actor* actor = nullptr;
};
thread_local ThreadContext t_ctx;

}  // namespace

ParallelShards::ParallelShards(int threads)
    : requested_threads_(std::max(1, std::min(threads, kMaxShards))) {}

ParallelShards::~ParallelShards() {
  for (auto& a : actors_) {
    if (a->thread.joinable()) a->thread.join();
  }
}

void ParallelShards::spawn(std::string name, std::function<void()> fn) {
  MCRDL_CHECK(!running_.load()) << "spawn() after run() started";
  actors_.push_back(std::make_unique<detail::Actor>(std::move(name), std::move(fn),
                                                    static_cast<int>(actors_.size())));
}

// ---------------------------------------------------------------------------
// Controller loop
// ---------------------------------------------------------------------------

void ParallelShards::run() {
  MCRDL_CHECK(!running_.load()) << "run() called twice";
  MCRDL_CHECK(!actors_.empty()) << "run() with no actors";
  running_.store(true);

  shard_count_ = std::min(requested_threads_, static_cast<int>(actors_.size()));
  shards_.clear();
  for (int i = 0; i < shard_count_; ++i) shards_.push_back(std::make_unique<Shard>());
  {
    std::lock_guard<std::mutex> lk(ctl_mu_);
    live_ = static_cast<int>(actors_.size());
    active_ = live_;
  }
  for (auto& a : actors_) {
    a->shard = a->id % shard_count_;
    shards_[a->shard]->run_queue.push_back(a.get());
  }
  for (auto& a : actors_) {
    a->thread = std::thread([this, actor = a.get()] { actor_main(actor); });
  }

  for (;;) {
    if (active() > 0) actor_phase();
    {
      std::lock_guard<std::mutex> lk(ctl_mu_);
      if (live_ == 0) break;
    }
    event_phase();
  }

  for (auto& a : actors_) a->thread.join();
  running_.store(false);
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(err_mu_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ParallelShards::actor_phase() {
  in_actor_phase_.store(true);
  for (auto& sp : shards_) {
    Shard& s = *sp;
    detail::Actor* start = nullptr;
    {
      std::lock_guard<std::mutex> lk(s.mu);
      if (s.running == nullptr && !s.run_queue.empty()) {
        s.running = s.run_queue.front();
        s.run_queue.pop_front();
        start = s.running;
      }
    }
    if (start != nullptr) start->cv.notify_one();
  }
  {
    std::unique_lock<std::mutex> lk(ctl_mu_);
    ctl_cv_.wait(lk, [&] { return active_ == 0; });
  }
  in_actor_phase_.store(false);
}

void ParallelShards::event_phase() {
  for (;;) {
    std::shared_ptr<detail::TimedEvent> ev;
    {
      std::lock_guard<std::mutex> lk(events_mu_);
      while (!events_.empty() && events_.top()->cancelled) {
        events_.pop();
        --cancelled_in_queue_;
      }
      if (!events_.empty()) {
        ev = events_.top();
        events_.pop();
        events_by_id_.erase(ev->seq);
      }
    }
    if (!ev) {
      // Live actors exist, none runnable, no pending events: deadlock.
      declare_deadlock();
      return;
    }
    if (ev->t > now_.load(std::memory_order_relaxed)) {
      now_.store(ev->t, std::memory_order_relaxed);
      epochs_.fetch_add(1, std::memory_order_relaxed);
    }
    events_fired_.fetch_add(1, std::memory_order_relaxed);
    try {
      ev->fn();  // serialized on the controller; may wake actors / schedule events
    } catch (const SimAborted&) {
    } catch (...) {
      record_error(std::current_exception());
      aborting_.store(true);
      force_wake_all(WakeReason::Abort);
    }
    // Drain the whole virtual instant before handing control back: every
    // event due at now_ fires (still serialized, in (t,seq) order) so all
    // actors waking at this instant enter the same actor phase and run
    // concurrently. Returning at the first wake instead would run them one
    // per phase — correct, but with no parallelism to speak of.
    if (active() > 0) {
      std::lock_guard<std::mutex> lk(events_mu_);
      while (!events_.empty() && events_.top()->cancelled) {
        events_.pop();
        --cancelled_in_queue_;
      }
      if (events_.empty() ||
          events_.top()->t > now_.load(std::memory_order_relaxed)) {
        return;
      }
    }
  }
}

void ParallelShards::declare_deadlock() {
  std::ostringstream msg;
  msg << "virtual-time deadlock at t=" << now_.load() << "us; blocked actors:";
  for (auto& a : actors_) {
    std::lock_guard<std::mutex> lk(shards_[a->shard]->mu);
    if (a->state == detail::ActorState::Blocked) msg << " " << a->name;
  }
  std::string text = msg.str();
  MCRDL_LOG_WARN << text;
  {
    std::lock_guard<std::mutex> lk(err_mu_);
    deadlock_message_ = text;
    if (!first_error_) first_error_ = std::make_exception_ptr(DeadlockError(text));
  }
  aborting_.store(true);
  force_wake_all(WakeReason::Deadlock);
}

void ParallelShards::record_error(std::exception_ptr err) {
  std::lock_guard<std::mutex> lk(err_mu_);
  if (!first_error_) first_error_ = err;
}

void ParallelShards::force_wake_all(WakeReason reason) {
  for (auto& a : actors_) {
    WaitToken token;
    {
      std::lock_guard<std::mutex> lk(shards_[a->shard]->mu);
      if (a->state != detail::ActorState::Blocked) continue;
      token = WaitToken{a.get(), a->wait_gen};
    }
    try_wake(token, reason);
  }
}

// ---------------------------------------------------------------------------
// Actor lifecycle
// ---------------------------------------------------------------------------

void ParallelShards::actor_main(detail::Actor* self) {
  set_shard_slot(self->shard + 1);
  Shard& s = *shards_[self->shard];
  bool skip = false;
  {
    std::unique_lock<std::mutex> lk(s.mu);
    self->cv.wait(lk, [&] { return s.running == self; });
    self->state = detail::ActorState::Running;
    skip = aborting_.load() || self->wake_reason != WakeReason::Normal;
    self->wake_reason = WakeReason::Normal;
  }
  t_ctx = ThreadContext{this, self};
  try {
    if (!skip) self->fn();
  } catch (const SimAborted&) {
    // Unwound because another actor already failed; not the root cause.
  } catch (...) {
    record_error(std::current_exception());
    aborting_.store(true);
    force_wake_all(WakeReason::Abort);
  }
  t_ctx = ThreadContext{};
  {
    std::lock_guard<std::mutex> lk(s.mu);
    self->state = detail::ActorState::Done;
    self->done = true;
    hand_over_locked(s);
  }
  {
    std::lock_guard<std::mutex> lk(ctl_mu_);
    --live_;
    if (--active_ == 0) ctl_cv_.notify_all();
  }
}

void ParallelShards::hand_over_locked(Shard& s) {
  detail::Actor* next = nullptr;
  if (!s.run_queue.empty()) {
    next = s.run_queue.front();
    s.run_queue.pop_front();
  }
  s.running = next;
  if (next != nullptr) next->cv.notify_one();
}

// ---------------------------------------------------------------------------
// Wait/wake machinery
// ---------------------------------------------------------------------------

WaitToken ParallelShards::prepare_wait() {
  MCRDL_CHECK(t_ctx.engine == this && t_ctx.actor != nullptr)
      << "prepare_wait outside actor context";
  detail::Actor* self = t_ctx.actor;
  std::lock_guard<std::mutex> lk(shards_[self->shard]->mu);
  ++self->wait_gen;
  self->wait_prepared = true;
  self->pending_wake = false;
  return WaitToken{self, self->wait_gen};
}

void ParallelShards::commit_wait() {
  MCRDL_CHECK(t_ctx.engine == this && t_ctx.actor != nullptr)
      << "commit_wait outside actor context";
  detail::Actor* self = t_ctx.actor;
  Shard& s = *shards_[self->shard];
  WakeReason reason = WakeReason::Normal;
  {
    std::unique_lock<std::mutex> lk(s.mu);
    self->wait_prepared = false;
    if (self->pending_wake) {
      // The wake arrived between prepare and commit; consume it in place.
      self->pending_wake = false;
      reason = self->wake_reason;
      self->wake_reason = WakeReason::Normal;
    } else {
      self->state = detail::ActorState::Blocked;
      hand_over_locked(s);
      lk.unlock();
      dec_active();
      lk.lock();
      self->cv.wait(lk, [&] { return s.running == self; });
      self->state = detail::ActorState::Running;
      reason = self->wake_reason;
      self->wake_reason = WakeReason::Normal;
    }
  }
  if (reason == WakeReason::Deadlock) {
    std::string message;
    {
      std::lock_guard<std::mutex> lk(err_mu_);
      message = deadlock_message_;
    }
    throw DeadlockError(message);
  }
  if (reason == WakeReason::Abort || aborting_.load()) {
    throw SimAborted("simulation aborted: another actor failed");
  }
}

bool ParallelShards::try_wake(const WaitToken& token, WakeReason reason) {
  detail::Actor* a = token.actor;
  Shard& s = *shards_[a->shard];
  detail::Actor* start = nullptr;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (a->wait_gen != token.gen) return false;
    if (a->state == detail::ActorState::Blocked) {
      a->state = detail::ActorState::Runnable;
      a->wake_reason = reason;
      inc_active();
      if (in_actor_phase_.load() && s.running == nullptr) {
        // The shard is idle mid-phase: start the actor right away instead of
        // parking it until the next barrier.
        s.running = a;
        start = a;
      } else {
        s.run_queue.push_back(a);
      }
    } else if (a->wait_prepared && !a->pending_wake) {
      a->pending_wake = true;
      a->wake_reason = reason;
    } else {
      return false;
    }
  }
  if (start != nullptr) start->cv.notify_one();
  return true;
}

void ParallelShards::inc_active() {
  std::lock_guard<std::mutex> lk(ctl_mu_);
  ++active_;
}

void ParallelShards::dec_active() {
  std::lock_guard<std::mutex> lk(ctl_mu_);
  if (--active_ == 0) ctl_cv_.notify_all();
}

int ParallelShards::active() const {
  std::lock_guard<std::mutex> lk(ctl_mu_);
  return active_;
}

// ---------------------------------------------------------------------------
// Timed events and introspection
// ---------------------------------------------------------------------------

std::uint64_t ParallelShards::schedule_at(SimTime t, std::function<void()> fn) {
  std::lock_guard<std::mutex> lk(events_mu_);
  auto ev = std::make_shared<detail::TimedEvent>();
  ev->t = std::max(t, now_.load(std::memory_order_relaxed));
  ev->seq = next_event_seq_++;
  ev->fn = std::move(fn);
  events_.push(ev);
  events_by_id_[ev->seq] = ev;
  return ev->seq;
}

void ParallelShards::cancel(std::uint64_t event_id) {
  std::lock_guard<std::mutex> lk(events_mu_);
  auto it = events_by_id_.find(event_id);
  if (it == events_by_id_.end()) return;
  if (auto ev = it->second.lock()) {
    ev->cancelled = true;
    // Free the closure now — tombstones in the priority queue must not pin
    // captured state (Works, tensors) until their deadline passes.
    ev->fn = nullptr;
    ++cancelled_in_queue_;
  }
  events_by_id_.erase(it);
  maybe_purge_cancelled_locked();
}

std::uint64_t ParallelShards::pending_events() const {
  std::lock_guard<std::mutex> lk(events_mu_);
  return events_.size() - cancelled_in_queue_;
}

void ParallelShards::maybe_purge_cancelled_locked() {
  // Tombstones surface cheaply at the queue head during the event phase;
  // only rebuild when they are both numerous and the majority, so cancel
  // stays amortized O(log n) on cancel-heavy workloads (fusion flush timers)
  // without pathological queue growth in between.
  if (cancelled_in_queue_ <= 64 || cancelled_in_queue_ * 2 <= events_.size()) return;
  std::vector<std::shared_ptr<detail::TimedEvent>> live;
  live.reserve(events_.size() - cancelled_in_queue_);
  while (!events_.empty()) {
    if (!events_.top()->cancelled) live.push_back(events_.top());
    events_.pop();
  }
  for (auto& ev : live) events_.push(std::move(ev));
  cancelled_in_queue_ = 0;
}

std::string ParallelShards::current_actor_name() const {
  if (t_ctx.engine == this && t_ctx.actor != nullptr) return t_ctx.actor->name;
  return std::string();
}

int ParallelShards::current_actor_id() const {
  if (t_ctx.engine == this && t_ctx.actor != nullptr) return t_ctx.actor->id;
  return -1;
}

}  // namespace mcrdl::sim
