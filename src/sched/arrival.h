// Arrival traces: the stream of jobs the serving layer replays.
//
// A trace is a list of JobSpecs ordered by arrival time. Traces serialise
// to a plain-text format (one "id tenant model ranks qos arrival_us steps"
// line per job) that round-trips through parse() byte-identically, and
// parse() rejects malformed lines with line-numbered errors — the same
// contract as TuningTable::parse. Synthetic traces come from
// generate_trace(): a seeded Poisson-like process (exponential
// inter-arrivals from the deterministic SplitMix64 RNG) over a tenant
// population with a fixed model/QoS mix, so a (seed, config) pair always
// produces the identical workload.
#pragma once

#include <string>
#include <vector>

#include "src/sched/job.h"

namespace mcrdl::sched {

struct ArrivalTrace {
  std::vector<JobSpec> jobs;

  // Plain-text round trip; serialize(parse(serialize(t))) == serialize(t).
  std::string serialize() const;
  // Throws InvalidArgument naming the offending line number on malformed
  // input (wrong field count, unknown model/qos names, trailing garbage,
  // or a spec that fails JobSpec::validate()).
  static ArrivalTrace parse(const std::string& text);
  void save(const std::string& path) const;
  static ArrivalTrace load(const std::string& path);
};

struct TraceConfig {
  int num_jobs = 1000;
  std::uint64_t seed = 1;
  // Mean of the exponential inter-arrival draw (Poisson-like arrivals).
  // The default keeps a 16-node Lassen world moderately loaded with the
  // quick model configs — queues form in bursts but drain, so latency
  // percentiles measure contention rather than unbounded backlog.
  double mean_interarrival_us = 60000.0;
  int num_tenants = 6;                    // tenant-i gets QoS class i % 3
  std::vector<int> rank_choices = {4, 8, 16};
  int min_steps = 2;
  int max_steps = 6;
};

// Deterministic synthetic trace: same config -> byte-identical trace.
// Arrival times are rounded to 1ns so the in-memory trace and its text
// round trip replay identically.
ArrivalTrace generate_trace(const TraceConfig& config);

}  // namespace mcrdl::sched
