#include "src/sched/placement.h"

#include <algorithm>

namespace mcrdl::sched {

RankAllocator::RankAllocator(int world, int alignment) : world_(world), alignment_(alignment) {
  MCRDL_REQUIRE(world >= 1, "allocator needs a non-empty world");
  MCRDL_REQUIRE(alignment >= 1, "alignment must be >= 1");
  free_.push_back(RankRange{0, world});
}

int RankAllocator::fit_begin(const RankRange& range, int count) const {
  const int align = count >= alignment_ ? alignment_ : 1;
  const int begin = ((range.begin + align - 1) / align) * align;
  return begin + count <= range.end() ? begin : -1;
}

bool RankAllocator::fits(int count) const {
  if (count < 1 || count > world_) return false;
  for (const RankRange& range : free_) {
    if (fit_begin(range, count) >= 0) return true;
  }
  return false;
}

std::optional<RankRange> RankAllocator::allocate(int count) {
  MCRDL_REQUIRE(count >= 1, "cannot allocate an empty rank range");
  for (std::size_t i = 0; i < free_.size(); ++i) {
    const int begin = fit_begin(free_[i], count);
    if (begin < 0) continue;
    const RankRange taken{begin, count};
    const RankRange before{free_[i].begin, begin - free_[i].begin};
    const RankRange after{taken.end(), free_[i].end() - taken.end()};
    auto it = free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    if (after.count > 0) it = free_.insert(it, after);
    if (before.count > 0) free_.insert(it, before);
    return taken;
  }
  return std::nullopt;
}

void RankAllocator::release(const RankRange& range) {
  MCRDL_REQUIRE(range.count >= 1 && range.begin >= 0 && range.end() <= world_,
                "released range outside the world");
  auto it = std::lower_bound(
      free_.begin(), free_.end(), range,
      [](const RankRange& a, const RankRange& b) { return a.begin < b.begin; });
  MCRDL_REQUIRE((it == free_.end() || range.end() <= it->begin) &&
                    (it == free_.begin() || std::prev(it)->end() <= range.begin),
                "released range overlaps a free range (double free?)");
  it = free_.insert(it, range);
  // Coalesce with the successor, then the predecessor.
  if (std::next(it) != free_.end() && it->end() == std::next(it)->begin) {
    it->count += std::next(it)->count;
    free_.erase(std::next(it));
  }
  if (it != free_.begin() && std::prev(it)->end() == it->begin) {
    std::prev(it)->count += it->count;
    free_.erase(it);
  }
}

int RankAllocator::free_ranks() const {
  int total = 0;
  for (const RankRange& range : free_) total += range.count;
  return total;
}

}  // namespace mcrdl::sched
