// Multi-tenant job descriptors for the serving layer (DESIGN.md §10).
//
// A Job is one tenant's training workload admitted onto the shared cluster:
// which model plan it runs (the comm patterns from src/models/), how many
// ranks of the shared world it needs, and the QoS class that sets both its
// admission quota and its bandwidth weight when links are contended. The
// scheduler (src/sched/serve.h) turns a trace of JobSpecs into JobRecords.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace mcrdl::sched {

// Service classes in descending priority. The weight enters the contention
// model (a Gold job keeps 4x the fabric share of a Bronze job under
// oversubscription) and the admission order (queued Gold jobs start first).
enum class QosClass { Gold, Silver, Bronze };

inline constexpr int kNumQosClasses = 3;

const char* qos_name(QosClass qos);
// Inverse of qos_name; returns false if the name is unknown.
bool qos_from_name(const std::string& name, QosClass& out);
// Bandwidth weight under contention: Gold 4, Silver 2, Bronze 1.
double qos_weight(QosClass qos);
// All classes in priority order (Gold first).
const std::vector<QosClass>& all_qos_classes();

// Which workload model (src/models/) the job trains.
enum class JobModel { MoE, DLRM, Megatron, ResNet };

const char* job_model_name(JobModel model);
bool job_model_from_name(const std::string& name, JobModel& out);

// One job in an arrival trace.
struct JobSpec {
  std::uint64_t id = 0;
  std::string tenant;                 // owning tenant, e.g. "tenant-3"
  JobModel model = JobModel::ResNet;
  int ranks = 1;                      // world slice requested (contiguous)
  QosClass qos = QosClass::Silver;
  SimTime arrival_us = 0.0;
  int steps = 1;                      // training steps to run

  // Throws InvalidArgument on nonsense (no tenant, ranks < 1, steps < 1,
  // negative arrival, or a tenant name with whitespace, which would corrupt
  // the trace text format).
  void validate() const;
};

enum class JobState { Queued, Running, Completed, Rejected };

const char* job_state_name(JobState state);

// A contiguous slice [begin, begin + count) of the shared world.
struct RankRange {
  int begin = 0;
  int count = 0;

  int end() const { return begin + count; }
  bool overlaps(const RankRange& other) const {
    return begin < other.end() && other.begin < end();
  }
};

// Maps a tenant-local rank list (e.g. a ProcessGroups tp_group over
// [0, range.count)) onto the global ranks of the tenant's slice.
std::vector<int> to_global(const RankRange& range, const std::vector<int>& local_ranks);

// Lifecycle record the scheduler maintains per job.
struct JobRecord {
  JobSpec spec;
  JobState state = JobState::Queued;
  RankRange placement;          // valid once Running
  SimTime start_us = 0.0;       // when the job reached hardware
  SimTime finish_us = 0.0;      // when its last step completed
  std::string reject_reason;    // set when state == Rejected

  SimTime queue_wait_us() const { return start_us - spec.arrival_us; }
  // Sojourn time — what the tenant experiences (queueing + service).
  SimTime latency_us() const { return finish_us - spec.arrival_us; }
};

}  // namespace mcrdl::sched
