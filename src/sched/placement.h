// Placement of tenant jobs onto disjoint contiguous rank ranges of the
// shared world.
//
// First-fit over a coalescing free list. Allocations of a whole node or
// more are node-aligned (begin is a multiple of gpus_per_node), so a
// multi-node tenant's slice maps onto whole nodes exactly like the
// single-job simulator lays ranks out — which is also what lets the job
// cost cache (src/sched/cost_cache.h) measure a slice as ranks [0, n).
#pragma once

#include <optional>
#include <vector>

#include "src/sched/job.h"

namespace mcrdl::sched {

class RankAllocator {
 public:
  // `alignment` is normally the topology's gpus_per_node.
  RankAllocator(int world, int alignment);

  // First-fit allocation of `count` contiguous ranks; node-aligned when
  // count >= alignment. Returns nullopt when no free range fits.
  std::optional<RankRange> allocate(int count);
  // True iff allocate(count) would succeed (no state change).
  bool fits(int count) const;
  void release(const RankRange& range);

  int world() const { return world_; }
  int free_ranks() const;
  // Current free ranges, ascending and coalesced (for tests/introspection).
  const std::vector<RankRange>& free_list() const { return free_; }

 private:
  // Aligned first-fit begin within `range`, or -1 if `count` does not fit.
  int fit_begin(const RankRange& range, int count) const;

  int world_;
  int alignment_;
  std::vector<RankRange> free_;  // ascending, disjoint, coalesced
};

}  // namespace mcrdl::sched
