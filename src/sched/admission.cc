#include "src/sched/admission.h"

#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace mcrdl::sched {

namespace {
std::size_t idx(QosClass qos) { return static_cast<std::size_t>(qos); }
}  // namespace

const QosPolicy& AdmissionConfig::policy(QosClass qos) const {
  switch (qos) {
    case QosClass::Gold: return gold;
    case QosClass::Silver: return silver;
    case QosClass::Bronze: return bronze;
  }
  return silver;
}

AdmissionController::AdmissionController(int world, AdmissionConfig config)
    : world_(world), config_(config) {
  MCRDL_REQUIRE(world >= 1, "admission needs a non-empty world");
  for (QosClass qos : all_qos_classes()) {
    const QosPolicy& p = config_.policy(qos);
    MCRDL_REQUIRE(p.rank_share > 0.0 && p.rank_share <= 1.0,
                  std::string("rank share for ") + qos_name(qos) + " must be in (0, 1]");
    MCRDL_REQUIRE(p.max_queued >= 0, "queue depth cannot be negative");
  }
}

int AdmissionController::quota_ranks(QosClass qos) const {
  const int ranks = static_cast<int>(std::floor(config_.policy(qos).rank_share * world_));
  return ranks < 1 ? 1 : ranks;
}

bool AdmissionController::quota_allows(const JobSpec& spec) const {
  return running_ranks_[idx(spec.qos)] + spec.ranks <= quota_ranks(spec.qos);
}

AdmissionController::Verdict AdmissionController::arrive(
    std::size_t job_index, const JobSpec& spec,
    const std::function<bool(const JobSpec&)>& fits, std::string* reason) {
  if (spec.ranks > world_ || spec.ranks > quota_ranks(spec.qos)) {
    // Queuing a job that can never run would wedge its whole class behind
    // an unsatisfiable head — reject it up front instead.
    if (reason != nullptr) {
      *reason = "unsatisfiable: " + std::to_string(spec.ranks) + " ranks exceeds the " +
                qos_name(spec.qos) + " quota of " + std::to_string(quota_ranks(spec.qos)) +
                " on a world of " + std::to_string(world_);
    }
    return Verdict::Reject;
  }
  std::deque<Waiting>& queue = queues_[idx(spec.qos)];
  if (queue.empty() && quota_allows(spec) && fits(spec)) return Verdict::Admit;
  if (static_cast<int>(queue.size()) >= config_.policy(spec.qos).max_queued) {
    if (reason != nullptr) {
      *reason = std::string(qos_name(spec.qos)) + " queue full (" +
                std::to_string(queue.size()) + " waiting)";
    }
    return Verdict::Reject;
  }
  queue.push_back(Waiting{job_index, spec});
  return Verdict::Queue;
}

void AdmissionController::note_started(const JobSpec& spec) {
  running_ranks_[idx(spec.qos)] += spec.ranks;
  MCRDL_CHECK(running_ranks_[idx(spec.qos)] <= quota_ranks(spec.qos))
      << "class " << qos_name(spec.qos) << " exceeded its rank quota";
}

void AdmissionController::note_finished(const JobSpec& spec) {
  running_ranks_[idx(spec.qos)] -= spec.ranks;
  MCRDL_CHECK(running_ranks_[idx(spec.qos)] >= 0) << "negative running ranks";
}

std::optional<std::size_t> AdmissionController::pop_runnable(
    const std::function<bool(const JobSpec&)>& fits) {
  for (QosClass qos : all_qos_classes()) {
    std::deque<Waiting>& queue = queues_[idx(qos)];
    if (queue.empty()) continue;
    const Waiting& head = queue.front();
    if (!quota_allows(head.spec) || !fits(head.spec)) continue;
    const std::size_t job_index = head.job_index;
    queue.pop_front();
    return job_index;
  }
  return std::nullopt;
}

bool AdmissionController::head_satisfiable_when_idle() const {
  if (total_queued() == 0) return true;
  for (QosClass qos : all_qos_classes()) {
    const std::deque<Waiting>& queue = queues_[idx(qos)];
    if (queue.empty()) continue;
    const JobSpec& spec = queue.front().spec;
    if (spec.ranks <= world_ && spec.ranks <= quota_ranks(qos)) return true;
  }
  return false;
}

std::vector<std::size_t> AdmissionController::drain() {
  std::vector<std::size_t> indices;
  for (QosClass qos : all_qos_classes()) {
    std::deque<Waiting>& queue = queues_[idx(qos)];
    for (const Waiting& waiting : queue) indices.push_back(waiting.job_index);
    queue.clear();
  }
  return indices;
}

int AdmissionController::running_ranks(QosClass qos) const { return running_ranks_[idx(qos)]; }

std::size_t AdmissionController::queued(QosClass qos) const { return queues_[idx(qos)].size(); }

std::size_t AdmissionController::total_queued() const {
  std::size_t total = 0;
  for (QosClass qos : all_qos_classes()) total += queued(qos);
  return total;
}

std::string AdmissionController::save_state() const {
  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "world " << world_ << "\n";
  out << "running";
  for (QosClass qos : all_qos_classes()) out << " " << running_ranks_[idx(qos)];
  out << "\n";
  for (QosClass qos : all_qos_classes()) {
    const std::deque<Waiting>& queue = queues_[idx(qos)];
    out << "queue " << qos_name(qos) << " " << queue.size() << "\n";
    for (const Waiting& w : queue) {
      out << "waiting " << w.job_index << " " << w.spec.id << " " << w.spec.tenant << " "
          << job_model_name(w.spec.model) << " " << w.spec.ranks << " " << w.spec.arrival_us
          << " " << w.spec.steps << "\n";
    }
  }
  return out.str();
}

void AdmissionController::restore_state(const std::string& body) {
  std::istringstream in(body);
  std::string line;
  const auto fail = [](const std::string& what, const std::string& line) {
    throw InvalidArgument("admission checkpoint: " + what + " in \"" + line + "\"");
  };
  const auto next = [&](const char* what) {
    if (!std::getline(in, line)) {
      throw InvalidArgument(std::string("admission checkpoint: missing ") + what);
    }
    return std::istringstream(line);
  };

  int world = 0;
  {
    auto fields = next("world line");
    std::string verb;
    if (!(fields >> verb >> world) || verb != "world") fail("expected world", line);
    if (world != world_) {
      throw InvalidArgument("admission checkpoint: world " + std::to_string(world) +
                            " does not match this controller's world " + std::to_string(world_));
    }
  }
  int running[kNumQosClasses] = {0, 0, 0};
  {
    auto fields = next("running line");
    std::string verb;
    if (!(fields >> verb) || verb != "running") fail("expected running", line);
    for (int& r : running) {
      if (!(fields >> r) || r < 0) fail("bad running ranks", line);
    }
  }
  std::deque<Waiting> queues[kNumQosClasses];
  for (QosClass qos : all_qos_classes()) {
    auto fields = next("queue line");
    std::string verb, name;
    std::size_t count = 0;
    if (!(fields >> verb >> name >> count) || verb != "queue" || name != qos_name(qos)) {
      fail(std::string("expected queue ") + qos_name(qos), line);
    }
    for (std::size_t i = 0; i < count; ++i) {
      auto entry = next("waiting line");
      std::string w_verb, model_name;
      Waiting w;
      if (!(entry >> w_verb >> w.job_index >> w.spec.id >> w.spec.tenant >> model_name >>
            w.spec.ranks >> w.spec.arrival_us >> w.spec.steps) ||
          w_verb != "waiting") {
        fail("bad waiting entry", line);
      }
      if (!job_model_from_name(model_name, w.spec.model)) fail("unknown model", line);
      w.spec.qos = qos;
      w.spec.validate();
      queues[idx(qos)].push_back(std::move(w));
    }
  }
  // Commit only after the whole body parsed.
  for (QosClass qos : all_qos_classes()) {
    running_ranks_[idx(qos)] = running[idx(qos)];
    queues_[idx(qos)] = std::move(queues[idx(qos)]);
  }
}

}  // namespace mcrdl::sched
