#include "src/sched/cost_cache.h"

#include <memory>

#include "src/models/dlrm.h"
#include "src/models/megatron.h"
#include "src/models/moe.h"
#include "src/models/resnet.h"
#include "src/tune/tuning.h"

namespace mcrdl::sched {

namespace {

// Contention rungs; quantising up keeps the estimate conservative (a shared
// link is never modelled faster than its true share).
constexpr double kContentionLadder[] = {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0};
constexpr int kNumRungs = static_cast<int>(sizeof(kContentionLadder) / sizeof(double));

int rung_of(double factor) {
  for (int i = 0; i < kNumRungs; ++i) {
    if (factor <= kContentionLadder[i]) return i;
  }
  return kNumRungs - 1;
}

std::unique_ptr<models::Model> make_model(JobModel kind, const net::SystemConfig& system,
                                          bool quick) {
  switch (kind) {
    case JobModel::MoE: {
      models::DSMoEConfig config;
      if (quick) {
        config.layers = 8;
        config.hidden = 512;
        config.seq = 256;
        config.micro_batch = 1;
        config.base_params = 60e6;
      }
      return std::make_unique<models::DSMoEModel>(config, system);
    }
    case JobModel::DLRM: {
      models::DLRMConfig config;
      if (quick) {
        config.global_batch = 2048;
        config.tables_per_rank = 1;
      }
      return std::make_unique<models::DLRMModel>(config, system);
    }
    case JobModel::Megatron: {
      models::MegatronConfig config;
      if (quick) {
        config.layers = 8;
        config.hidden = 1024;
        config.seq = 512;
        config.small_ops_per_layer = 2;
        config.params = 400e6;
        config.zero_bucket_bytes = 32u << 20;
      }
      return std::make_unique<models::MegatronDenseModel>(config, system);
    }
    case JobModel::ResNet: {
      models::ResNet50Config config;
      if (quick) config.grad_buckets = 2;
      return std::make_unique<models::ResNet50Model>(config, system);
    }
  }
  MCRDL_REQUIRE(false, "unknown job model kind");
  return nullptr;
}

}  // namespace

JobCostCache::JobCostCache(net::SystemConfig system, std::string plan, bool quick_models)
    : system_(std::move(system)), plan_(std::move(plan)), quick_models_(quick_models) {
  MCRDL_REQUIRE(!plan_.empty(), "cost cache needs a plan name");
}

double JobCostCache::quantize_contention(double factor) {
  return kContentionLadder[rung_of(factor)];
}

const TuningTable& JobCostCache::table_for(int ranks) {
  auto it = tables_.find(ranks);
  if (it != tables_.end()) return it->second;
  // The paper's workflow, scoped to one slice width: tune the ops the
  // workload models actually issue over a small message grid.
  TuningSuite suite(system_);
  TuningConfig config;
  config.backends = {"nccl", "mv2-gdr"};
  config.ops = {OpType::AllReduce, OpType::AllToAllSingle, OpType::Barrier};
  config.sizes = {64u << 10, 1u << 20, 4u << 20, 16u << 20};
  config.world_sizes = {ranks};
  config.iterations = 1;
  config.warmup = 0;
  return tables_.emplace(ranks, suite.generate(config)).first->second;
}

const JobProfile& JobCostCache::profile(JobModel model, int ranks, double inter_contention) {
  MCRDL_REQUIRE(ranks >= 1 && ranks <= system_.world_size(),
                "job slice exceeds the shared world");
  const Key key{static_cast<int>(model), ranks, rung_of(inter_contention)};
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  return cache_.emplace(key, measure(model, ranks, kContentionLadder[key.rung])).first->second;
}

JobProfile JobCostCache::measure(JobModel model, int ranks, double contention) {
  models::CommPlan plan;
  const TuningTable* table = nullptr;
  if (plan_ == "mixed") {
    plan = models::CommPlan::mcr_dl_mixed();
  } else if (plan_ == "tuned") {
    plan = models::CommPlan::mcr_dl_tuned();
    table = &table_for(ranks);
  } else {
    plan = models::CommPlan::pure(plan_);
  }

  models::HarnessOptions options;
  options.warmup_steps = 1;
  options.measured_steps = 1;
  options.contention.inter = contention;

  models::TrainingHarness harness(system_);
  const std::unique_ptr<models::Model> workload = make_model(model, system_, quick_models_);
  const models::RunResult result =
      harness.run(*workload, plan, models::FrameworkModel::raw(), options, table, ranks);

  JobProfile profile;
  profile.step_time_us = result.step_time_us;
  profile.comm_time_us = result.comm_time_us;
  profile.compute_time_us = result.compute_time_us;
  return profile;
}

}  // namespace mcrdl::sched
