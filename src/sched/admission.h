// Admission control: per-QoS-class quotas plus a bounded wait queue.
//
// Arriving jobs get one of three verdicts:
//
//   * Admit  — the job can start right now: its class queue is empty (FIFO
//              — a newcomer never jumps waiting peers), the class quota has
//              room, and the placement probe found a free range.
//   * Queue  — quota or placement is exhausted but the class's bounded
//              queue has room; the job waits FIFO within its class.
//   * Reject — the job can never run (more ranks than its class quota ever
//              allows — admitting it would deadlock the queue head) or the
//              class queue is full (back-pressure instead of unbounded
//              buildup).
//
// Dequeue order is strict priority by class (Gold first) and FIFO within a
// class: only each class's head is eligible, so two tenants in one class
// cannot starve each other, and a Bronze job runs only when no Gold/Silver
// head fits. Quotas are expressed as a fraction of the world's ranks a
// class may occupy concurrently, so one tenant class can never crowd the
// others out entirely.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/sched/job.h"

namespace mcrdl::sched {

struct QosPolicy {
  double rank_share = 1.0;  // max fraction of world ranks running concurrently
  int max_queued = 64;      // bounded wait queue depth
};

struct AdmissionConfig {
  QosPolicy gold{1.0, 64};
  QosPolicy silver{0.75, 64};
  QosPolicy bronze{0.5, 32};

  const QosPolicy& policy(QosClass qos) const;
};

class AdmissionController {
 public:
  enum class Verdict { Admit, Queue, Reject };

  AdmissionController(int world, AdmissionConfig config);

  // Verdict for an arriving job; `fits` is the scheduler's placement probe.
  // Queue verdicts enqueue `job_index` (the scheduler's handle); Reject
  // sets `reason`.
  Verdict arrive(std::size_t job_index, const JobSpec& spec,
                 const std::function<bool(const JobSpec&)>& fits, std::string* reason);

  // Whether the class quota admits `spec` right now (ignores placement).
  bool quota_allows(const JobSpec& spec) const;
  // Max ranks the class may ever run concurrently (floor of share * world).
  int quota_ranks(QosClass qos) const;

  // Occupancy bookkeeping; the scheduler calls these as jobs start/finish.
  void note_started(const JobSpec& spec);
  void note_finished(const JobSpec& spec);

  // Highest-priority queued head whose quota has room and whose placement
  // probe (`fits`) succeeds; pops and returns its index. nullopt when no
  // head is currently runnable.
  std::optional<std::size_t> pop_runnable(const std::function<bool(const JobSpec&)>& fits);

  // True iff some queued head could run on an *idle* cluster — false with a
  // non-empty queue means the queue is wedged (counted as a deadlock by the
  // scheduler; unreachable while arrive() rejects unsatisfiable jobs).
  bool head_satisfiable_when_idle() const;

  // Empties every queue, returning the waiting job indices in priority
  // order (all Gold FIFO, then Silver, then Bronze). Used by the scheduler
  // to fail queued jobs when the replay can no longer make progress.
  std::vector<std::size_t> drain();

  int running_ranks(QosClass qos) const;
  std::size_t queued(QosClass qos) const;
  std::size_t total_queued() const;

  // --- checkpoint (fault::CheckpointStore section body) --------------------
  // Deterministic text snapshot of the wait queues and per-class occupancy
  // cursors; save→restore→save round-trips byte-identically (tenant names
  // are whitespace-free by JobSpec::validate, arrival times print at
  // max_digits10). Config stays a construction-time property.
  std::string save_state() const;
  // Replaces queues and running-rank counters with a save_state() snapshot
  // taken on a controller over the same world size. Throws InvalidArgument
  // on malformed bodies or a world mismatch.
  void restore_state(const std::string& body);

 private:
  struct Waiting {
    std::size_t job_index;
    JobSpec spec;
  };

  int world_;
  AdmissionConfig config_;
  int running_ranks_[kNumQosClasses] = {0, 0, 0};
  std::deque<Waiting> queues_[kNumQosClasses];
};

}  // namespace mcrdl::sched
