// Per-(model, slice, contention) job step-time profiles.
//
// The serving scheduler replays thousands of jobs but only a handful of
// distinct (model kind, slice width, quantised contention) shapes; this
// cache measures each shape once through the real TrainingHarness — the
// full OpRequest pipeline, mixed/tuned backend routing, and the net cost
// models with the tenant-contention scale installed — then replays cached
// step times. Contention factors are quantised onto a fixed ladder so the
// cache stays bounded no matter how load fluctuates.
#pragma once

#include <map>
#include <string>

#include "src/models/workload.h"
#include "src/sched/job.h"

namespace mcrdl::sched {

// One measured shape: virtual-time per training step on an otherwise
// idle slice of `ranks` ranks under the given inter-node bandwidth share.
struct JobProfile {
  double step_time_us = 0.0;
  double comm_time_us = 0.0;     // per-step comm interval union (rank 0)
  double compute_time_us = 0.0;  // per-step compute busy time (rank 0)

  // Fraction of the step the job keeps its links busy — its fabric demand.
  double comm_fraction() const {
    return step_time_us > 0.0 ? comm_time_us / step_time_us : 0.0;
  }
};

class JobCostCache {
 public:
  // `plan` routes every job's communication: "mixed" (the paper's
  // coarse-grained mix), "tuned" (auto resolution through a tuning table
  // generated per slice width), or a concrete backend name. `quick_models`
  // trims the model configs (fewer layers / smaller batches) so serve
  // replays stay fast; full-size configs match the figure sweeps.
  JobCostCache(net::SystemConfig system, std::string plan = "mixed", bool quick_models = true);

  // The profile for `model` on a `ranks`-wide slice whose inter-node
  // bandwidth is divided by `inter_contention` (quantised internally).
  // Measures on first use, then returns the cached entry.
  const JobProfile& profile(JobModel model, int ranks, double inter_contention = 1.0);

  // Snaps a contention factor up to the next rung of the fixed ladder
  // (1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32; clamped at the top).
  static double quantize_contention(double factor);

  std::size_t entries() const { return cache_.size(); }
  const std::string& plan_name() const { return plan_; }

 private:
  struct Key {
    int model;
    int ranks;
    int rung;  // index into the contention ladder
    bool operator<(const Key& other) const {
      if (model != other.model) return model < other.model;
      if (ranks != other.ranks) return ranks < other.ranks;
      return rung < other.rung;
    }
  };

  JobProfile measure(JobModel model, int ranks, double contention);
  const TuningTable& table_for(int ranks);

  net::SystemConfig system_;
  std::string plan_;
  bool quick_models_;
  std::map<Key, JobProfile> cache_;
  std::map<int, TuningTable> tables_;  // per slice width, "tuned" plan only
};

}  // namespace mcrdl::sched
