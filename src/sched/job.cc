#include "src/sched/job.h"

#include <algorithm>

namespace mcrdl::sched {

const char* qos_name(QosClass qos) {
  switch (qos) {
    case QosClass::Gold: return "gold";
    case QosClass::Silver: return "silver";
    case QosClass::Bronze: return "bronze";
  }
  return "?";
}

bool qos_from_name(const std::string& name, QosClass& out) {
  for (QosClass qos : all_qos_classes()) {
    if (name == qos_name(qos)) {
      out = qos;
      return true;
    }
  }
  return false;
}

double qos_weight(QosClass qos) {
  switch (qos) {
    case QosClass::Gold: return 4.0;
    case QosClass::Silver: return 2.0;
    case QosClass::Bronze: return 1.0;
  }
  return 1.0;
}

const std::vector<QosClass>& all_qos_classes() {
  static const std::vector<QosClass> classes = {QosClass::Gold, QosClass::Silver,
                                                QosClass::Bronze};
  return classes;
}

const char* job_model_name(JobModel model) {
  switch (model) {
    case JobModel::MoE: return "moe";
    case JobModel::DLRM: return "dlrm";
    case JobModel::Megatron: return "megatron";
    case JobModel::ResNet: return "resnet";
  }
  return "?";
}

bool job_model_from_name(const std::string& name, JobModel& out) {
  for (JobModel m : {JobModel::MoE, JobModel::DLRM, JobModel::Megatron, JobModel::ResNet}) {
    if (name == job_model_name(m)) {
      out = m;
      return true;
    }
  }
  return false;
}

void JobSpec::validate() const {
  MCRDL_REQUIRE(!tenant.empty(), "job " + std::to_string(id) + " has no tenant");
  MCRDL_REQUIRE(tenant.find_first_of(" \t\n\r") == std::string::npos,
                "tenant name '" + tenant + "' contains whitespace");
  MCRDL_REQUIRE(ranks >= 1, "job " + std::to_string(id) + " requests ranks < 1");
  MCRDL_REQUIRE(steps >= 1, "job " + std::to_string(id) + " requests steps < 1");
  MCRDL_REQUIRE(arrival_us >= 0.0, "job " + std::to_string(id) + " arrives before t=0");
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Rejected: return "rejected";
  }
  return "?";
}

std::vector<int> to_global(const RankRange& range, const std::vector<int>& local_ranks) {
  std::vector<int> out;
  out.reserve(local_ranks.size());
  for (int r : local_ranks) {
    MCRDL_REQUIRE(r >= 0 && r < range.count, "local rank outside the tenant's slice");
    out.push_back(range.begin + r);
  }
  return out;
}

}  // namespace mcrdl::sched
