// The multi-tenant serving scheduler (DESIGN.md §10).
//
// ServeScheduler replays an ArrivalTrace of jobs onto one shared cluster:
//
//   * admission — per-QoS rank quotas + bounded wait queues
//     (src/sched/admission.h); unsatisfiable jobs are rejected up front so
//     the queues cannot deadlock.
//   * placement — disjoint contiguous, node-aligned rank ranges from
//     RankAllocator (src/sched/placement.h); per-tenant process groups lay
//     out inside the slice exactly like a dedicated world.
//   * contention — concurrent multi-node jobs share the inter-node fabric.
//     Each job's demand is its slice's share of the fabric scaled by its
//     measured comm fraction; when total demand exceeds the fabric capacity
//     (nodes / oversubscription), bandwidth is split by weighted max-min
//     fairness with QoS weights, and each job's dilation factor feeds
//     net::ContentionScale through the JobCostCache so the slowdown comes
//     out of the real cost models, not an ad-hoc multiplier.
//   * chaos — windows that degrade the shared fabric (a flaky spine, a
//     paused switch) multiply every multi-node job's contention factor,
//     driving the tail-latency experiments.
//   * per-tenant health — a fault::CircuitBreaker per tenant: jobs that
//     blow their SLO (sojourn > slo_factor x uncontended service time)
//     count as failures; an open breaker sheds that tenant's new arrivals
//     until a half-open probe completes in time, throttling tenants whose
//     traffic the degraded cluster can no longer serve.
//
// The replay is an event-driven simulation in virtual time (arrivals,
// completions, chaos-window edges) and is fully deterministic: the same
// trace and config produce bit-identical JobRecords and percentiles.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/fault/policy.h"
#include "src/obs/metrics.h"
#include "src/sched/admission.h"
#include "src/sched/arrival.h"
#include "src/sched/cost_cache.h"

namespace mcrdl::sched {

// One fabric-degradation window of the chaos plan.
struct ChaosWindow {
  SimTime from_us = 0.0;
  SimTime until_us = 0.0;
  double inter_degrade = 4.0;  // extra divisor on inter-node bandwidth
};

// One capacity dip: `nodes_offline` nodes leave the shared cluster during
// [from_us, until_us) — the serving-layer view of rank loss followed by
// elastic grow-back. The dip reserves only ranges that are *free* at its
// start (running jobs are never preempted; a fully busy cluster simply
// loses fewer nodes than requested), and at the end the ranks return and
// every tenant whose SLO breaker is open gets a half-open probe, so
// tenants shed during the outage are un-shed when capacity grows back.
struct CapacityDip {
  SimTime from_us = 0.0;
  SimTime until_us = 0.0;
  int nodes_offline = 1;
};

struct ServeConfig {
  net::SystemConfig system = net::SystemConfig::lassen(16);  // 64 shared ranks
  AdmissionConfig admission;
  // Comm routing for every job: "mixed", "tuned", or a backend name.
  std::string plan = "mixed";
  bool quick_models = true;  // trimmed model configs in the cost cache
  // Fat-tree taper: the core sustains nodes/oversubscription worth of
  // concurrent per-node injection. 1.0 models a full-bisection fabric
  // (contention only when demand genuinely overlaps); > 1 makes aggregate
  // multi-job traffic contend the way Eidola observes on real clusters.
  double fabric_oversubscription = 2.0;
  std::vector<ChaosWindow> chaos;
  // Capacity dips (nodes offline, then grown back). Empty by default, so
  // existing replays are bit-identical.
  std::vector<CapacityDip> dips;
  // Per-tenant SLO breaker; shedding is disabled when breaker_enabled is
  // false (every arrival reaches admission).
  bool breaker_enabled = true;
  double slo_factor = 8.0;  // SLO = slo_factor x uncontended service time
  fault::BreakerConfig breaker{3, 2, 4};
};

struct TenantStats {
  std::string tenant;
  QosClass qos = QosClass::Silver;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  // admission rejects (quota/queue/deadlock)
  std::uint64_t shed = 0;      // dropped by the tenant's open breaker
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double mean_latency_us = 0.0;
};

struct ServeResult {
  std::vector<JobRecord> jobs;  // in replay (arrival, id) order
  std::map<std::string, TenantStats> tenants;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadlocks = 0;  // queued jobs no completion could unblock
  std::uint64_t unshed_probes = 0;  // breaker probes granted when capacity grew back
  double p50_latency_us = 0.0;  // aggregate over completed jobs
  double p99_latency_us = 0.0;
  double mean_latency_us = 0.0;
  double makespan_us = 0.0;
  double avg_utilization = 0.0;   // mean fraction of world ranks occupied
  double peak_contention = 1.0;   // largest quantised dilation any job saw
};

// Nearest-rank percentile (q in (0, 100]) of an unsorted sample; throws
// InvalidArgument on an empty sample.
double percentile(std::vector<double> values, double q);

class ServeScheduler {
 public:
  explicit ServeScheduler(ServeConfig config);

  // Replays the trace to completion. Reusable: each run starts from an
  // empty cluster (metrics and breaker state accumulate across runs).
  ServeResult run(const ArrivalTrace& trace);

  // Per-tenant counters/latency histograms, labelled {tenant, qos}.
  obs::MetricsRegistry& metrics() { return metrics_; }
  fault::CircuitBreaker& breaker() { return breaker_; }
  JobCostCache& cost_cache() { return cache_; }
  const ServeConfig& config() const { return config_; }

 private:
  struct Active {
    std::size_t job;         // index into the run's JobRecord vector
    double remaining_steps;  // fractional steps outstanding
    double rate;             // steps per virtual µs at the current factor
    double factor;           // quantised contention dilation in effect
  };

  double chaos_factor_at(SimTime t) const;
  SimTime next_chaos_edge(SimTime t) const;
  // Earliest dip start/end strictly after `t`. Unlike chaos edges this is
  // part of the event-time minimum even while nothing runs: a dip end is
  // what un-wedges a queue waiting for capacity to grow back.
  SimTime next_dip_edge(SimTime t) const;
  // Recomputes every active job's contention factor and step rate.
  void recompute_rates(std::vector<Active>& active, const std::vector<JobRecord>& jobs,
                       SimTime now, double* peak_contention);

  ServeConfig config_;
  JobCostCache cache_;
  obs::MetricsRegistry metrics_;
  fault::CircuitBreaker breaker_;
};

}  // namespace mcrdl::sched
