#include "src/sched/arrival.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/rng.h"

namespace mcrdl::sched {

std::string ArrivalTrace::serialize() const {
  std::ostringstream out;
  out << "# mcr-dl arrival trace: id tenant model ranks qos arrival_us steps\n";
  char arrival[64];
  for (const JobSpec& job : jobs) {
    // Fixed three-decimal formatting round-trips exactly because arrivals
    // are quantised to 1ns (generate_trace) or came from parse() itself.
    std::snprintf(arrival, sizeof(arrival), "%.3f", job.arrival_us);
    out << job.id << " " << job.tenant << " " << job_model_name(job.model) << " " << job.ranks
        << " " << qos_name(job.qos) << " " << arrival << " " << job.steps << "\n";
  }
  return out.str();
}

ArrivalTrace ArrivalTrace::parse(const std::string& text) {
  ArrivalTrace trace;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    JobSpec job;
    std::string model_str, qos_str;
    if (!(fields >> job.id >> job.tenant >> model_str >> job.ranks >> qos_str >>
          job.arrival_us >> job.steps)) {
      throw InvalidArgument("malformed arrival trace line " + std::to_string(line_no) + ": " +
                            line);
    }
    // Exactly seven fields per line: extra tokens mean a corrupt trace.
    std::string extra;
    if (fields >> extra) {
      throw InvalidArgument("trailing garbage '" + extra + "' on arrival trace line " +
                            std::to_string(line_no) + ": " + line);
    }
    if (!job_model_from_name(model_str, job.model)) {
      throw InvalidArgument("unknown model '" + model_str + "' in arrival trace line " +
                            std::to_string(line_no));
    }
    if (!qos_from_name(qos_str, job.qos)) {
      throw InvalidArgument("unknown qos class '" + qos_str + "' in arrival trace line " +
                            std::to_string(line_no));
    }
    try {
      job.validate();
    } catch (const Error& e) {
      throw InvalidArgument("invalid job on arrival trace line " + std::to_string(line_no) +
                            ": " + e.what());
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

void ArrivalTrace::save(const std::string& path) const {
  std::ofstream out(path);
  MCRDL_REQUIRE(out.good(), "cannot open arrival trace file for writing: " + path);
  out << serialize();
}

ArrivalTrace ArrivalTrace::load(const std::string& path) {
  std::ifstream in(path);
  MCRDL_REQUIRE(in.good(), "cannot open arrival trace file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

ArrivalTrace generate_trace(const TraceConfig& config) {
  MCRDL_REQUIRE(config.num_jobs >= 1, "trace needs at least one job");
  MCRDL_REQUIRE(config.num_tenants >= 1, "trace needs at least one tenant");
  MCRDL_REQUIRE(!config.rank_choices.empty(), "trace needs at least one rank choice");
  MCRDL_REQUIRE(config.mean_interarrival_us > 0.0, "mean inter-arrival must be positive");
  MCRDL_REQUIRE(config.min_steps >= 1 && config.max_steps >= config.min_steps,
                "invalid step range");

  static const JobModel kModels[] = {JobModel::MoE, JobModel::DLRM, JobModel::Megatron,
                                     JobModel::ResNet};
  Rng rng(config.seed);
  Rng arrivals = rng.split(1);
  Rng shapes = rng.split(2);

  ArrivalTrace trace;
  trace.jobs.reserve(static_cast<std::size_t>(config.num_jobs));
  double now = 0.0;
  for (int i = 0; i < config.num_jobs; ++i) {
    // Exponential inter-arrival: -mean * ln(1 - u), the Poisson process.
    now += -config.mean_interarrival_us * std::log(1.0 - arrivals.next_double());
    JobSpec job;
    job.id = static_cast<std::uint64_t>(i);
    const int tenant = static_cast<int>(shapes.next_below(config.num_tenants));
    job.tenant = "tenant-" + std::to_string(tenant);
    job.qos = all_qos_classes()[static_cast<std::size_t>(tenant % kNumQosClasses)];
    job.model = kModels[shapes.next_below(4)];
    job.ranks = config.rank_choices[shapes.next_below(config.rank_choices.size())];
    job.steps = config.min_steps + static_cast<int>(shapes.next_below(
                                       config.max_steps - config.min_steps + 1));
    // Quantise to 1ns so the text round trip replays identically.
    job.arrival_us = std::round(now * 1000.0) / 1000.0;
    job.validate();
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

}  // namespace mcrdl::sched
