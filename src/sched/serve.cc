#include "src/sched/serve.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/sched/placement.h"

namespace mcrdl::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Slack for "this job's remaining work hit zero" after advancing by the
// exact predicted interval; steps are O(1..10) so 1e-7 is far below one
// step and far above double rounding.
constexpr double kStepEps = 1e-7;

// Weighted max-min (water-filling) split of `capacity` among demands.
// Iteratively freezes every flow whose demand fits inside its weighted
// share of the remaining capacity; the rest split what is left by weight.
// Deterministic: pure arithmetic over vector order.
std::vector<double> water_fill(const std::vector<double>& demand,
                               const std::vector<double>& weight, double capacity) {
  const std::size_t n = demand.size();
  std::vector<double> alloc(n, 0.0);
  double total = 0.0;
  for (double d : demand) total += d;
  if (total <= capacity) return demand;  // nobody is constrained

  std::vector<bool> frozen(n, false);
  double cap = capacity;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!frozen[i] && demand[i] > 0.0) weight_sum += weight[i];
    }
    if (weight_sum <= 0.0) return alloc;
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i] || demand[i] <= 0.0) continue;
      const double share = cap * weight[i] / weight_sum;
      if (demand[i] <= share * (1.0 + 1e-12)) {
        alloc[i] = demand[i];
        frozen[i] = true;
        progressed = true;
      }
    }
    if (progressed) {
      cap = capacity;
      for (std::size_t i = 0; i < n; ++i) {
        if (frozen[i]) cap -= alloc[i];
      }
    }
  }
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!frozen[i] && demand[i] > 0.0) weight_sum += weight[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!frozen[i] && demand[i] > 0.0) alloc[i] = cap * weight[i] / weight_sum;
  }
  return alloc;
}

obs::Labels tenant_labels(const JobSpec& spec) {
  return obs::Labels{{"tenant", spec.tenant}, {"qos", qos_name(spec.qos)}};
}

}  // namespace

double percentile(std::vector<double> values, double q) {
  MCRDL_REQUIRE(!values.empty(), "percentile of an empty sample");
  MCRDL_REQUIRE(q > 0.0 && q <= 100.0, "percentile rank must be in (0, 100]");
  std::sort(values.begin(), values.end());
  // Nearest-rank: the smallest value with at least q% of the sample at or
  // below it.
  const std::size_t rank = static_cast<std::size_t>(std::ceil(q / 100.0 * values.size()));
  return values[rank == 0 ? 0 : rank - 1];
}

ServeScheduler::ServeScheduler(ServeConfig config)
    : config_(std::move(config)),
      cache_(config_.system, config_.plan, config_.quick_models),
      breaker_(config_.breaker) {
  MCRDL_REQUIRE(config_.fabric_oversubscription > 0.0,
                "fabric oversubscription must be positive");
  MCRDL_REQUIRE(config_.slo_factor >= 1.0, "an SLO below the service time is unmeetable");
  for (const ChaosWindow& window : config_.chaos) {
    MCRDL_REQUIRE(window.until_us > window.from_us, "empty chaos window");
    MCRDL_REQUIRE(window.inter_degrade >= 1.0, "chaos cannot speed the fabric up");
  }
  for (const CapacityDip& dip : config_.dips) {
    MCRDL_REQUIRE(dip.until_us > dip.from_us, "empty capacity dip");
    MCRDL_REQUIRE(dip.nodes_offline >= 1, "capacity dip needs at least one node offline");
    MCRDL_REQUIRE(dip.nodes_offline < config_.system.num_nodes,
                  "capacity dip cannot take the whole cluster offline");
  }
  breaker_.set_transition_hook(
      [this](const std::string& tenant, int /*rank*/, fault::BreakerState to) {
        metrics_
            .counter("serve_breaker_transitions",
                     {{"tenant", tenant}, {"to", fault::breaker_state_name(to)}})
            .inc();
      });
}

double ServeScheduler::chaos_factor_at(SimTime t) const {
  double factor = 1.0;
  for (const ChaosWindow& window : config_.chaos) {
    if (t >= window.from_us && t < window.until_us) factor *= window.inter_degrade;
  }
  return factor;
}

SimTime ServeScheduler::next_chaos_edge(SimTime t) const {
  SimTime next = kInf;
  for (const ChaosWindow& window : config_.chaos) {
    if (window.from_us > t) next = std::min(next, window.from_us);
    if (window.until_us > t) next = std::min(next, window.until_us);
  }
  return next;
}

SimTime ServeScheduler::next_dip_edge(SimTime t) const {
  SimTime next = kInf;
  for (const CapacityDip& dip : config_.dips) {
    if (dip.from_us > t) next = std::min(next, dip.from_us);
    if (dip.until_us > t) next = std::min(next, dip.until_us);
  }
  return next;
}

void ServeScheduler::recompute_rates(std::vector<Active>& active,
                                     const std::vector<JobRecord>& jobs, SimTime now,
                                     double* peak_contention) {
  if (active.empty()) return;
  const int world = config_.system.world_size();
  const int gpn = config_.system.gpus_per_node;
  const double chaos = chaos_factor_at(now);

  // Fabric demand: each multi-node job asks for its slice's share of the
  // full-bisection fabric, scaled by how much of a step it keeps its links
  // busy when running alone. Single-node jobs live on NVLink and place no
  // demand on the shared core.
  std::vector<double> demand(active.size(), 0.0);
  std::vector<double> weight(active.size(), 0.0);
  std::vector<bool> multi_node(active.size(), false);
  for (std::size_t i = 0; i < active.size(); ++i) {
    const JobRecord& job = jobs[active[i].job];
    const RankRange& placement = job.placement;
    multi_node[i] = placement.begin / gpn != (placement.end() - 1) / gpn;
    weight[i] = qos_weight(job.spec.qos) * job.spec.ranks;
    if (multi_node[i]) {
      const JobProfile& alone = cache_.profile(job.spec.model, job.spec.ranks, 1.0);
      demand[i] =
          (static_cast<double>(job.spec.ranks) / world) * alone.comm_fraction();
    }
  }

  // The tapered core sustains only 1/oversubscription of aggregate
  // injection; QoS-weighted max-min fairness splits it under overload.
  const double capacity = 1.0 / config_.fabric_oversubscription;
  const std::vector<double> alloc = water_fill(demand, weight, capacity);

  for (std::size_t i = 0; i < active.size(); ++i) {
    const JobRecord& job = jobs[active[i].job];
    double factor = 1.0;
    if (multi_node[i]) {
      const double share = demand[i] > 0.0 && alloc[i] > 0.0 ? demand[i] / alloc[i] : 1.0;
      factor = JobCostCache::quantize_contention(std::max(1.0, share) * chaos);
    }
    const JobProfile& profile = cache_.profile(job.spec.model, job.spec.ranks, factor);
    active[i].factor = factor;
    active[i].rate = 1.0 / profile.step_time_us;
    if (peak_contention != nullptr) *peak_contention = std::max(*peak_contention, factor);
  }
}

ServeResult ServeScheduler::run(const ArrivalTrace& trace) {
  const int world = config_.system.world_size();
  ServeResult result;
  std::vector<JobRecord>& jobs = result.jobs;
  jobs.reserve(trace.jobs.size());
  for (const JobSpec& spec : trace.jobs) {
    spec.validate();
    MCRDL_REQUIRE(spec.ranks <= world, "job " + std::to_string(spec.id) +
                                           " wants more ranks than the shared world has");
    JobRecord record;
    record.spec = spec;
    jobs.push_back(std::move(record));
  }
  std::stable_sort(jobs.begin(), jobs.end(), [](const JobRecord& a, const JobRecord& b) {
    if (a.spec.arrival_us != b.spec.arrival_us) return a.spec.arrival_us < b.spec.arrival_us;
    return a.spec.id < b.spec.id;
  });

  AdmissionController admission(world, config_.admission);
  RankAllocator allocator(world, config_.system.gpus_per_node);
  std::vector<Active> active;
  SimTime now = 0.0;
  double busy_rank_us = 0.0;
  std::size_t next_arrival = 0;

  const auto fits = [&](const JobSpec& spec) { return allocator.fits(spec.ranks); };

  // Capacity dips hold allocator ranges while active; sorted tenant names
  // drive the deterministic un-shed probe sweep at each dip end.
  struct DipState {
    bool active = false;
    std::vector<RankRange> reserved;
  };
  std::vector<DipState> dips(config_.dips.size());
  std::vector<std::string> tenants;
  for (const JobRecord& job : jobs) tenants.push_back(job.spec.tenant);
  std::sort(tenants.begin(), tenants.end());
  tenants.erase(std::unique(tenants.begin(), tenants.end()), tenants.end());

  const auto process_dip_edges = [&] {
    const int gpn = config_.system.gpus_per_node;
    for (std::size_t i = 0; i < dips.size(); ++i) {
      const CapacityDip& dip = config_.dips[i];
      DipState& state = dips[i];
      if (state.active && now >= dip.until_us) {
        // Grow-back: the nodes return. Release the held ranges, then offer
        // every open tenant breaker a half-open probe so tenants shed
        // during the outage see traffic again now that capacity exists.
        for (const RankRange& range : state.reserved) allocator.release(range);
        state.reserved.clear();
        state.active = false;
        if (config_.breaker_enabled) {
          for (const std::string& tenant : tenants) {
            if (breaker_.allow_probe(tenant, 0)) {
              ++result.unshed_probes;
              metrics_.counter("serve_unshed_probes", {{"tenant", tenant}}).inc();
            }
          }
        }
      }
      if (!state.active && now >= dip.from_us && now < dip.until_us) {
        // Nodes go offline: reserve whole free nodes, never preempting a
        // running job. A busy cluster loses fewer nodes than requested.
        for (int n = 0; n < dip.nodes_offline; ++n) {
          const std::optional<RankRange> held = allocator.allocate(gpn);
          if (!held.has_value()) break;
          state.reserved.push_back(*held);
        }
        state.active = true;
        metrics_.counter("serve_capacity_dips").inc();
      }
    }
  };

  const auto start_job = [&](std::size_t index) {
    JobRecord& job = jobs[index];
    const std::optional<RankRange> placement = allocator.allocate(job.spec.ranks);
    MCRDL_CHECK(placement.has_value()) << "started a job with no free range";
    admission.note_started(job.spec);
    job.state = JobState::Running;
    job.placement = *placement;
    job.start_us = now;
    active.push_back(Active{index, static_cast<double>(job.spec.steps), 0.0, 1.0});
  };

  const auto finish_job = [&](std::size_t index) {
    JobRecord& job = jobs[index];
    job.state = JobState::Completed;
    job.finish_us = now;
    allocator.release(job.placement);
    admission.note_finished(job.spec);
    ++result.completed;
    metrics_.counter("serve_jobs_completed", tenant_labels(job.spec)).inc();
    metrics_.histogram("serve_job_latency_us", tenant_labels(job.spec))
        .observe(job.latency_us());
    if (config_.breaker_enabled) {
      // SLO: a job may take slo_factor x its uncontended service time
      // (queueing included) before the tenant counts it as failed.
      const JobProfile& alone = cache_.profile(job.spec.model, job.spec.ranks, 1.0);
      const double slo = config_.slo_factor * alone.step_time_us * job.spec.steps;
      if (job.latency_us() > slo) {
        breaker_.record_failure(job.spec.tenant, 0);
      } else {
        breaker_.record_success(job.spec.tenant, 0);
      }
    }
  };

  const auto reject_job = [&](std::size_t index, std::string reason) {
    JobRecord& job = jobs[index];
    job.state = JobState::Rejected;
    job.reject_reason = std::move(reason);
    ++result.rejected;
    metrics_.counter("serve_jobs_rejected", tenant_labels(job.spec)).inc();
  };

  process_dip_edges();  // a dip starting at t=0 holds its nodes from the start

  while (true) {
    // Next event: an arrival, the earliest completion, a capacity-dip
    // edge, or a chaos edge (which only matters while something is
    // running — rates are recomputed at start time anyway).
    const SimTime t_arrival =
        next_arrival < jobs.size() ? jobs[next_arrival].spec.arrival_us : kInf;
    SimTime t_complete = kInf;
    for (const Active& a : active) {
      if (a.rate > 0.0) t_complete = std::min(t_complete, now + a.remaining_steps / a.rate);
    }
    const SimTime t_chaos = active.empty() ? kInf : next_chaos_edge(now);
    // Dip edges count even while nothing runs: a queued job may be waiting
    // for nothing but the dip's end, and skipping the edge would wedge it.
    const SimTime t_dip = next_dip_edge(now);
    SimTime t = std::min(std::min(t_arrival, t_dip), std::min(t_complete, t_chaos));

    if (t == kInf) {
      if (admission.total_queued() == 0) break;  // replay finished
      // No arrival, nothing running, yet jobs wait: the queue is wedged.
      // arrive() rejects unsatisfiable jobs up front, so this is the
      // deadlock the acceptance criteria count — fail the stragglers
      // loudly rather than spinning forever.
      MCRDL_CHECK(!admission.head_satisfiable_when_idle())
          << "queued head claims to be satisfiable on an idle cluster";
      for (std::size_t index : admission.drain()) {
        reject_job(index, "admission deadlock: queue wedged on an idle cluster");
        ++result.deadlocks;
        metrics_.counter("serve_deadlocks").inc();
      }
      break;
    }
    t = std::max(t, now);

    // Advance every running job through [now, t) at its current rate.
    int running_ranks = 0;
    for (Active& a : active) {
      a.remaining_steps -= a.rate * (t - now);
      running_ranks += jobs[a.job].spec.ranks;
    }
    busy_rank_us += static_cast<double>(running_ranks) * (t - now);
    now = t;

    // Completions first — they free ranks and quota for everything below.
    // Ascending job order keeps tie-breaks deterministic.
    std::vector<std::size_t> done;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (active[i].remaining_steps <= kStepEps) done.push_back(active[i].job);
    }
    if (!done.empty()) {
      std::sort(done.begin(), done.end());
      active.erase(std::remove_if(active.begin(), active.end(),
                                  [](const Active& a) { return a.remaining_steps <= kStepEps; }),
                   active.end());
      for (std::size_t index : done) finish_job(index);
    }

    // Dip edges after completions (an ending dip frees capacity for the
    // pop_runnable sweep below; a starting one reserves just-freed nodes).
    process_dip_edges();

    // Queued jobs outrank same-instant arrivals for the freed capacity.
    while (const std::optional<std::size_t> index = admission.pop_runnable(fits)) {
      start_job(*index);
    }

    while (next_arrival < jobs.size() && jobs[next_arrival].spec.arrival_us <= now) {
      const std::size_t index = next_arrival++;
      const JobSpec& spec = jobs[index].spec;
      if (config_.breaker_enabled && !breaker_.healthy(spec.tenant, 0)) {
        // The tenant's breaker is open: shed the arrival instead of letting
        // a struggling tenant stack more load onto a degraded cluster. The
        // skip count is what eventually half-opens the breaker for a probe.
        breaker_.note_skipped(spec.tenant, 0);
        jobs[index].state = JobState::Rejected;
        jobs[index].reject_reason = "shed: tenant breaker open";
        ++result.shed;
        metrics_.counter("serve_jobs_shed", tenant_labels(spec)).inc();
        continue;
      }
      std::string reason;
      switch (admission.arrive(index, spec, fits, &reason)) {
        case AdmissionController::Verdict::Admit:
          start_job(index);
          break;
        case AdmissionController::Verdict::Queue:
          break;  // stays JobState::Queued
        case AdmissionController::Verdict::Reject:
          reject_job(index, reason);
          break;
      }
    }

    while (const std::optional<std::size_t> index = admission.pop_runnable(fits)) {
      start_job(*index);
    }

    recompute_rates(active, jobs, now, &result.peak_contention);
  }

  // Roll up latency statistics per tenant and in aggregate.
  result.makespan_us = now;
  result.avg_utilization =
      now > 0.0 ? busy_rank_us / (static_cast<double>(world) * now) : 0.0;
  metrics_.gauge("serve_avg_utilization").set(result.avg_utilization);

  std::vector<double> all_latencies;
  std::map<std::string, std::vector<double>> tenant_latencies;
  for (const JobRecord& job : jobs) {
    TenantStats& stats = result.tenants[job.spec.tenant];
    if (stats.tenant.empty()) {
      stats.tenant = job.spec.tenant;
      stats.qos = job.spec.qos;
    }
    switch (job.state) {
      case JobState::Completed:
        ++stats.completed;
        tenant_latencies[job.spec.tenant].push_back(job.latency_us());
        all_latencies.push_back(job.latency_us());
        break;
      case JobState::Rejected:
        if (job.reject_reason.rfind("shed:", 0) == 0) {
          ++stats.shed;
        } else {
          ++stats.rejected;
        }
        break;
      case JobState::Queued:
      case JobState::Running:
        MCRDL_CHECK(false) << "job " << job.spec.id << " left " << job_state_name(job.state)
                           << " at end of replay";
        break;
    }
  }
  for (auto& [tenant, latencies] : tenant_latencies) {
    TenantStats& stats = result.tenants[tenant];
    stats.p50_latency_us = percentile(latencies, 50.0);
    stats.p99_latency_us = percentile(latencies, 99.0);
    double sum = 0.0;
    for (double l : latencies) sum += l;
    stats.mean_latency_us = sum / static_cast<double>(latencies.size());
  }
  if (!all_latencies.empty()) {
    result.p50_latency_us = percentile(all_latencies, 50.0);
    result.p99_latency_us = percentile(all_latencies, 99.0);
    double sum = 0.0;
    for (double l : all_latencies) sum += l;
    result.mean_latency_us = sum / static_cast<double>(all_latencies.size());
  }
  return result;
}

}  // namespace mcrdl::sched
