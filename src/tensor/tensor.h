// MCR-DL's tensor type — the unit every communication operation moves.
//
// Tensors carry a dtype, a shape, and a device placement, and come in two
// storage modes:
//   * Materialised — a real host buffer stands in for device memory, and the
//     simulated collectives perform genuine data movement and reduction math
//     on it (this is what the correctness tests verify).
//   * Phantom — shape/dtype metadata only. Paper-scale workloads (a 4-billion
//     parameter MoE) are *timed* through the same code paths without
//     allocating paper-scale buffers; data-touching calls on a phantom
//     tensor are no-ops for bulk operations and errors for element access.
//
// Views (1-D slices sharing storage) support fusion slice-back and
// reduce-scatter outputs. Element accessors convert through double, which is
// exact for every supported dtype's value range used in tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/net/comm_types.h"
#include "src/tensor/dtype.h"

namespace mcrdl::sim {
class Device;
}

namespace mcrdl {

class Tensor {
 public:
  // An empty (undefined) tensor; most APIs reject it.
  Tensor() = default;

  // --- factories -----------------------------------------------------------
  static Tensor zeros(std::vector<std::int64_t> shape, DType dtype, sim::Device* device);
  static Tensor full(std::vector<std::int64_t> shape, DType dtype, double value,
                     sim::Device* device);
  // [0, 1, 2, ...); handy for alltoall/gather correctness checks.
  static Tensor arange(std::int64_t n, DType dtype, sim::Device* device);
  static Tensor random_uniform(std::vector<std::int64_t> shape, DType dtype, sim::Device* device,
                               Rng& rng, double lo = 0.0, double hi = 1.0);
  // Metadata-only tensor for paper-scale timing runs.
  static Tensor phantom(std::vector<std::int64_t> shape, DType dtype, sim::Device* device);

  // --- metadata -------------------------------------------------------------
  bool defined() const { return numel_ >= 0; }
  bool materialized() const { return storage_ != nullptr; }
  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t numel() const { return numel_ < 0 ? 0 : numel_; }
  std::size_t bytes() const { return static_cast<std::size_t>(numel()) * dtype_size(dtype_); }
  DType dtype() const { return dtype_; }
  sim::Device* device() const { return device_; }

  // --- element access (materialised tensors only) ---------------------------
  double get(std::int64_t i) const;
  void set(std::int64_t i, double v);
  std::vector<double> to_vector() const;

  // --- bulk operations -------------------------------------------------------
  // 1-D view over [offset, offset+count) elements, sharing storage.
  Tensor view(std::int64_t offset_elems, std::int64_t count) const;
  // Deep copy (phantom clones stay phantom).
  Tensor clone() const;
  // Elementwise copy; shapes may differ but numel and dtype must match.
  // No-op if either side is phantom.
  void copy_from(const Tensor& src);
  void fill(double v);
  // this[i] = this[i] OP other[i]; Avg accumulates as Sum (callers divide
  // with scale() at the end, as the backends do). No-op if either side is
  // phantom.
  void reduce_inplace(const Tensor& other, ReduceOp op);
  void scale(double factor);

  bool allclose(const Tensor& other, double atol = 1e-6, double rtol = 1e-5) const;

  // Raw byte access for the compression codec and fusion packing.
  std::byte* raw_data();
  const std::byte* raw_data() const;

  std::string describe() const;

 private:
  struct Storage {
    std::vector<std::byte> data;
  };

  Tensor(std::shared_ptr<Storage> storage, std::int64_t offset_elems,
         std::vector<std::int64_t> shape, DType dtype, sim::Device* device);

  void require_materialized(const char* what) const;

  std::shared_ptr<Storage> storage_;  // null => phantom
  std::int64_t offset_elems_ = 0;
  std::int64_t numel_ = -1;  // -1 => undefined tensor
  std::vector<std::int64_t> shape_;
  DType dtype_ = DType::F32;
  sim::Device* device_ = nullptr;
};

using TensorList = std::vector<Tensor>;

// Total payload bytes of a tensor list (the fusion and alltoall paths).
std::size_t total_bytes(const TensorList& tensors);

}  // namespace mcrdl
