// Element types for MCR-DL tensors, mirroring the PyTorch dtypes that DL
// communication actually moves, including the 16-bit float formats (with
// software conversion routines used by the compression codec and tests).
#pragma once

#include <cstddef>
#include <cstdint>

namespace mcrdl {

enum class DType { F16, BF16, F32, F64, I32, I64, U8 };

std::size_t dtype_size(DType dtype);
const char* dtype_name(DType dtype);
bool is_floating(DType dtype);

// IEEE 754 binary16 <-> binary32 conversion (round-to-nearest-even on the
// way down, with correct handling of subnormals, infinities and NaN).
float half_to_float(std::uint16_t h);
std::uint16_t float_to_half(float f);

// bfloat16 <-> binary32 (truncation of the mantissa with round-to-nearest).
float bfloat16_to_float(std::uint16_t b);
std::uint16_t float_to_bfloat16(float f);

}  // namespace mcrdl
