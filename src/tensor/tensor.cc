#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace mcrdl {

namespace {

std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    MCRDL_REQUIRE(d >= 0, "negative dimension in tensor shape");
    n *= d;
  }
  return n;
}

// Reads element i of a raw buffer as double, dispatching on dtype.
double read_element(const std::byte* base, DType dtype, std::int64_t i) {
  switch (dtype) {
    case DType::F16: {
      std::uint16_t v;
      std::memcpy(&v, base + i * 2, 2);
      return half_to_float(v);
    }
    case DType::BF16: {
      std::uint16_t v;
      std::memcpy(&v, base + i * 2, 2);
      return bfloat16_to_float(v);
    }
    case DType::F32: {
      float v;
      std::memcpy(&v, base + i * 4, 4);
      return v;
    }
    case DType::F64: {
      double v;
      std::memcpy(&v, base + i * 8, 8);
      return v;
    }
    case DType::I32: {
      std::int32_t v;
      std::memcpy(&v, base + i * 4, 4);
      return static_cast<double>(v);
    }
    case DType::I64: {
      std::int64_t v;
      std::memcpy(&v, base + i * 8, 8);
      return static_cast<double>(v);
    }
    case DType::U8: {
      std::uint8_t v;
      std::memcpy(&v, base + i, 1);
      return static_cast<double>(v);
    }
  }
  return 0.0;
}

void write_element(std::byte* base, DType dtype, std::int64_t i, double value) {
  switch (dtype) {
    case DType::F16: {
      std::uint16_t v = float_to_half(static_cast<float>(value));
      std::memcpy(base + i * 2, &v, 2);
      return;
    }
    case DType::BF16: {
      std::uint16_t v = float_to_bfloat16(static_cast<float>(value));
      std::memcpy(base + i * 2, &v, 2);
      return;
    }
    case DType::F32: {
      float v = static_cast<float>(value);
      std::memcpy(base + i * 4, &v, 4);
      return;
    }
    case DType::F64: {
      std::memcpy(base + i * 8, &value, 8);
      return;
    }
    case DType::I32: {
      std::int32_t v = static_cast<std::int32_t>(std::llround(value));
      std::memcpy(base + i * 4, &v, 4);
      return;
    }
    case DType::I64: {
      std::int64_t v = static_cast<std::int64_t>(std::llround(value));
      std::memcpy(base + i * 8, &v, 8);
      return;
    }
    case DType::U8: {
      std::uint8_t v = static_cast<std::uint8_t>(std::llround(value));
      std::memcpy(base + i, &v, 1);
      return;
    }
  }
}

double apply_reduce(double a, double b, ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum:
    case ReduceOp::Avg:  // accumulated as Sum; caller divides at the end
      return a + b;
    case ReduceOp::Prod:
      return a * b;
    case ReduceOp::Min:
      return std::min(a, b);
    case ReduceOp::Max:
      return std::max(a, b);
  }
  return a;
}

}  // namespace

Tensor::Tensor(std::shared_ptr<Storage> storage, std::int64_t offset_elems,
               std::vector<std::int64_t> shape, DType dtype, sim::Device* device)
    : storage_(std::move(storage)),
      offset_elems_(offset_elems),
      numel_(shape_numel(shape)),
      shape_(std::move(shape)),
      dtype_(dtype),
      device_(device) {}

Tensor Tensor::zeros(std::vector<std::int64_t> shape, DType dtype, sim::Device* device) {
  auto storage = std::make_shared<Storage>();
  storage->data.resize(static_cast<std::size_t>(shape_numel(shape)) * dtype_size(dtype),
                       std::byte{0});
  return Tensor(std::move(storage), 0, std::move(shape), dtype, device);
}

Tensor Tensor::full(std::vector<std::int64_t> shape, DType dtype, double value,
                    sim::Device* device) {
  Tensor t = zeros(std::move(shape), dtype, device);
  t.fill(value);
  return t;
}

Tensor Tensor::arange(std::int64_t n, DType dtype, sim::Device* device) {
  MCRDL_REQUIRE(n >= 0, "arange length must be non-negative");
  Tensor t = zeros({n}, dtype, device);
  for (std::int64_t i = 0; i < n; ++i) t.set(i, static_cast<double>(i));
  return t;
}

Tensor Tensor::random_uniform(std::vector<std::int64_t> shape, DType dtype, sim::Device* device,
                              Rng& rng, double lo, double hi) {
  Tensor t = zeros(std::move(shape), dtype, device);
  for (std::int64_t i = 0; i < t.numel(); ++i) t.set(i, rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::phantom(std::vector<std::int64_t> shape, DType dtype, sim::Device* device) {
  return Tensor(nullptr, 0, std::move(shape), dtype, device);
}

void Tensor::require_materialized(const char* what) const {
  MCRDL_REQUIRE(defined(), "operation on undefined tensor");
  if (!materialized()) {
    throw InvalidArgument(std::string(what) + " requires a materialized tensor (this one is phantom)");
  }
}

double Tensor::get(std::int64_t i) const {
  require_materialized("get()");
  MCRDL_REQUIRE(i >= 0 && i < numel_, "tensor index out of range");
  return read_element(storage_->data.data() + offset_elems_ * dtype_size(dtype_), dtype_, i);
}

void Tensor::set(std::int64_t i, double v) {
  require_materialized("set()");
  MCRDL_REQUIRE(i >= 0 && i < numel_, "tensor index out of range");
  write_element(storage_->data.data() + offset_elems_ * dtype_size(dtype_), dtype_, i, v);
}

std::vector<double> Tensor::to_vector() const {
  require_materialized("to_vector()");
  std::vector<double> out(static_cast<std::size_t>(numel_));
  for (std::int64_t i = 0; i < numel_; ++i) out[static_cast<std::size_t>(i)] = get(i);
  return out;
}

Tensor Tensor::view(std::int64_t offset_elems, std::int64_t count) const {
  MCRDL_REQUIRE(defined(), "view of undefined tensor");
  MCRDL_REQUIRE(offset_elems >= 0 && count >= 0 && offset_elems + count <= numel_,
                "view range out of bounds");
  if (!materialized()) return phantom({count}, dtype_, device_);
  return Tensor(storage_, offset_elems_ + offset_elems, {count}, dtype_, device_);
}

Tensor Tensor::clone() const {
  MCRDL_REQUIRE(defined(), "clone of undefined tensor");
  if (!materialized()) return phantom(shape_, dtype_, device_);
  Tensor out = zeros(shape_, dtype_, device_);
  std::memcpy(out.raw_data(), raw_data(), bytes());
  return out;
}

void Tensor::copy_from(const Tensor& src) {
  MCRDL_REQUIRE(defined() && src.defined(), "copy_from with undefined tensor");
  MCRDL_REQUIRE(numel() == src.numel(), "copy_from numel mismatch");
  MCRDL_REQUIRE(dtype_ == src.dtype_, "copy_from dtype mismatch");
  if (!materialized() || !src.materialized()) return;
  std::memmove(raw_data(), src.raw_data(), bytes());
}

void Tensor::fill(double v) {
  if (!materialized()) return;
  for (std::int64_t i = 0; i < numel_; ++i) set(i, v);
}

void Tensor::reduce_inplace(const Tensor& other, ReduceOp op) {
  MCRDL_REQUIRE(defined() && other.defined(), "reduce_inplace with undefined tensor");
  MCRDL_REQUIRE(numel() == other.numel(), "reduce_inplace numel mismatch");
  MCRDL_REQUIRE(dtype_ == other.dtype_, "reduce_inplace dtype mismatch");
  if (!materialized() || !other.materialized()) return;
  for (std::int64_t i = 0; i < numel_; ++i) set(i, apply_reduce(get(i), other.get(i), op));
}

void Tensor::scale(double factor) {
  if (!materialized()) return;
  for (std::int64_t i = 0; i < numel_; ++i) set(i, get(i) * factor);
}

bool Tensor::allclose(const Tensor& other, double atol, double rtol) const {
  require_materialized("allclose()");
  other.require_materialized("allclose()");
  if (numel() != other.numel()) return false;
  for (std::int64_t i = 0; i < numel_; ++i) {
    const double a = get(i);
    const double b = other.get(i);
    if (std::abs(a - b) > atol + rtol * std::abs(b)) return false;
  }
  return true;
}

std::byte* Tensor::raw_data() {
  require_materialized("raw_data()");
  return storage_->data.data() + offset_elems_ * dtype_size(dtype_);
}

const std::byte* Tensor::raw_data() const {
  require_materialized("raw_data()");
  return storage_->data.data() + offset_elems_ * dtype_size(dtype_);
}

std::string Tensor::describe() const {
  std::ostringstream out;
  out << "Tensor(";
  if (!defined()) {
    out << "undefined)";
    return out.str();
  }
  out << dtype_name(dtype_) << ", [";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) out << ",";
    out << shape_[i];
  }
  out << "]";
  if (!materialized()) out << ", phantom";
  out << ")";
  return out.str();
}

std::size_t total_bytes(const TensorList& tensors) {
  std::size_t sum = 0;
  for (const Tensor& t : tensors) sum += t.bytes();
  return sum;
}

}  // namespace mcrdl
