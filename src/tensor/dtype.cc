#include "src/tensor/dtype.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace mcrdl {

std::size_t dtype_size(DType dtype) {
  switch (dtype) {
    case DType::F16:
    case DType::BF16:
      return 2;
    case DType::F32:
    case DType::I32:
      return 4;
    case DType::F64:
    case DType::I64:
      return 8;
    case DType::U8:
      return 1;
  }
  return 0;
}

const char* dtype_name(DType dtype) {
  switch (dtype) {
    case DType::F16: return "f16";
    case DType::BF16: return "bf16";
    case DType::F32: return "f32";
    case DType::F64: return "f64";
    case DType::I32: return "i32";
    case DType::I64: return "i64";
    case DType::U8: return "u8";
  }
  return "?";
}

bool is_floating(DType dtype) {
  switch (dtype) {
    case DType::F16:
    case DType::BF16:
    case DType::F32:
    case DType::F64:
      return true;
    default:
      return false;
  }
}

float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = (h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t mant = h & 0x3FFu;
  std::uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half: normalise into a float exponent.
      int e = -1;
      std::uint32_t m = mant;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      const std::uint32_t fexp = 127 - 15 - e;
      bits = sign | (fexp << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exp == 0x1F) {
    bits = sign | 0x7F800000u | (mant << 13);  // inf / nan
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(bits);
}

std::uint16_t float_to_half(float f) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  const std::uint16_t sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t exp = (bits >> 23) & 0xFFu;
  std::uint32_t mant = bits & 0x7FFFFFu;
  if (exp == 0xFF) {  // inf / nan
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mant != 0 ? 0x200u : 0));
  }
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 0x1F) return static_cast<std::uint16_t>(sign | 0x7C00u);  // overflow -> inf
  if (e <= 0) {
    if (e < -10) return sign;  // underflow -> signed zero
    // Subnormal: shift mantissa (with the implicit bit) right.
    mant |= 0x800000u;
    const int shift = 14 - e;
    std::uint32_t half_mant = mant >> shift;
    // Round to nearest even.
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1))) ++half_mant;
    return static_cast<std::uint16_t>(sign | half_mant);
  }
  std::uint16_t half = static_cast<std::uint16_t>(sign | (e << 10) | (mant >> 13));
  // Round to nearest even on the dropped 13 bits.
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1))) ++half;
  return half;
}

float bfloat16_to_float(std::uint16_t b) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(b) << 16);
}

std::uint16_t float_to_bfloat16(float f) {
  std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  if ((bits & 0x7F800000u) == 0x7F800000u && (bits & 0x7FFFFFu) != 0) {
    return static_cast<std::uint16_t>((bits >> 16) | 0x40u);  // quiet the NaN
  }
  // Round to nearest even on the dropped 16 bits.
  const std::uint32_t rem = bits & 0xFFFFu;
  bits >>= 16;
  if (rem > 0x8000u || (rem == 0x8000u && (bits & 1))) ++bits;
  return static_cast<std::uint16_t>(bits);
}

}  // namespace mcrdl
