#include "src/backends/engine.h"

#include <algorithm>
#include <sstream>

#include "src/fault/recovery.h"

namespace mcrdl::backends_detail {

// ---------------------------------------------------------------------------
// Data application
// ---------------------------------------------------------------------------

namespace {

bool usable(const Tensor& t) { return t.defined() && t.materialized(); }

// Element count of rank r's block when a buffer of n elements is split
// evenly across `size` ranks.
std::int64_t block_count(std::int64_t n, int size) { return n / size; }

void apply_all_reduce(const OpDesc& desc, std::vector<ArrivalSlot>& slots) {
  // Accumulate into a scratch clone, then distribute (in-place semantics:
  // every rank's `input` doubles as its output, like torch.all_reduce).
  const int size = static_cast<int>(slots.size());
  Tensor acc;
  for (auto& s : slots) {
    if (!usable(s.input)) continue;
    if (!acc.defined()) {
      acc = s.input.clone();
    } else {
      acc.reduce_inplace(s.input, desc.rop);
    }
  }
  if (!acc.defined()) return;
  if (desc.rop == ReduceOp::Avg) acc.scale(1.0 / size);
  for (auto& s : slots) {
    if (usable(s.input)) s.input.copy_from(acc);
  }
}

void apply_reduce(const OpDesc& desc, std::vector<ArrivalSlot>& slots) {
  const int size = static_cast<int>(slots.size());
  Tensor acc;
  for (auto& s : slots) {
    if (!usable(s.input)) continue;
    if (!acc.defined()) {
      acc = s.input.clone();
    } else {
      acc.reduce_inplace(s.input, desc.rop);
    }
  }
  if (!acc.defined()) return;
  if (desc.rop == ReduceOp::Avg) acc.scale(1.0 / size);
  ArrivalSlot& root = slots[static_cast<std::size_t>(desc.root)];
  Tensor& dst = root.output.defined() ? root.output : root.input;
  if (usable(dst)) dst.copy_from(acc);
}

void apply_broadcast(const OpDesc& desc, std::vector<ArrivalSlot>& slots) {
  const Tensor& src = slots[static_cast<std::size_t>(desc.root)].input;
  if (!usable(src)) return;
  for (std::size_t r = 0; r < slots.size(); ++r) {
    if (static_cast<int>(r) == desc.root) continue;
    if (usable(slots[r].input)) slots[r].input.copy_from(src);
  }
}

void apply_all_gather(std::vector<ArrivalSlot>& slots) {
  const int size = static_cast<int>(slots.size());
  for (auto& dst : slots) {
    if (!usable(dst.output)) continue;
    const std::int64_t block = block_count(dst.output.numel(), size);
    for (int r = 0; r < size; ++r) {
      const Tensor& src = slots[static_cast<std::size_t>(r)].input;
      if (!usable(src)) continue;
      dst.output.view(r * block, std::min<std::int64_t>(block, src.numel()))
          .copy_from(src.view(0, std::min<std::int64_t>(block, src.numel())));
    }
  }
}

void apply_all_gatherv(std::vector<ArrivalSlot>& slots) {
  const int size = static_cast<int>(slots.size());
  for (auto& dst : slots) {
    if (!usable(dst.output)) continue;
    for (int r = 0; r < size; ++r) {
      const ArrivalSlot& src_slot = slots[static_cast<std::size_t>(r)];
      if (!usable(src_slot.input)) continue;
      const int count = dst.recv_counts[static_cast<std::size_t>(r)];
      const int displ = dst.recv_displs[static_cast<std::size_t>(r)];
      dst.output.view(displ, count).copy_from(src_slot.input.view(0, count));
    }
  }
}

void apply_gather(const OpDesc& desc, std::vector<ArrivalSlot>& slots, bool vector_counts) {
  ArrivalSlot& root = slots[static_cast<std::size_t>(desc.root)];
  if (!usable(root.output)) return;
  const int size = static_cast<int>(slots.size());
  std::int64_t offset = 0;
  const std::int64_t block = block_count(root.output.numel(), size);
  for (int r = 0; r < size; ++r) {
    const Tensor& src = slots[static_cast<std::size_t>(r)].input;
    std::int64_t count = vector_counts ? root.recv_counts[static_cast<std::size_t>(r)] : block;
    std::int64_t displ = vector_counts ? root.recv_displs[static_cast<std::size_t>(r)] : offset;
    if (usable(src)) root.output.view(displ, count).copy_from(src.view(0, count));
    offset += count;
  }
}

void apply_scatter(const OpDesc& desc, std::vector<ArrivalSlot>& slots, bool vector_counts) {
  const ArrivalSlot& root = slots[static_cast<std::size_t>(desc.root)];
  if (!usable(root.input)) return;
  const int size = static_cast<int>(slots.size());
  std::int64_t offset = 0;
  const std::int64_t block = block_count(root.input.numel(), size);
  for (int r = 0; r < size; ++r) {
    Tensor& dst = slots[static_cast<std::size_t>(r)].output;
    std::int64_t count = vector_counts ? root.send_counts[static_cast<std::size_t>(r)] : block;
    std::int64_t displ = vector_counts ? root.send_displs[static_cast<std::size_t>(r)] : offset;
    if (usable(dst)) dst.view(0, count).copy_from(root.input.view(displ, count));
    offset += count;
  }
}

void apply_reduce_scatter(const OpDesc& desc, std::vector<ArrivalSlot>& slots) {
  const int size = static_cast<int>(slots.size());
  Tensor acc;
  for (auto& s : slots) {
    if (!usable(s.input)) continue;
    if (!acc.defined()) {
      acc = s.input.clone();
    } else {
      acc.reduce_inplace(s.input, desc.rop);
    }
  }
  if (!acc.defined()) return;
  if (desc.rop == ReduceOp::Avg) acc.scale(1.0 / size);
  const std::int64_t block = block_count(acc.numel(), size);
  for (int r = 0; r < size; ++r) {
    Tensor& dst = slots[static_cast<std::size_t>(r)].output;
    if (usable(dst)) dst.view(0, block).copy_from(acc.view(r * block, block));
  }
}

void apply_all_to_all_single(std::vector<ArrivalSlot>& slots) {
  const int size = static_cast<int>(slots.size());
  for (int dst = 0; dst < size; ++dst) {
    Tensor& out = slots[static_cast<std::size_t>(dst)].output;
    if (!usable(out)) continue;
    const std::int64_t block = block_count(out.numel(), size);
    for (int src = 0; src < size; ++src) {
      const Tensor& in = slots[static_cast<std::size_t>(src)].input;
      if (!usable(in)) continue;
      const std::int64_t src_block = block_count(in.numel(), size);
      out.view(src * block, block).copy_from(in.view(dst * src_block, block));
    }
  }
}

void apply_all_to_all_list(std::vector<ArrivalSlot>& slots) {
  const int size = static_cast<int>(slots.size());
  for (int dst = 0; dst < size; ++dst) {
    auto& outs = slots[static_cast<std::size_t>(dst)].outputs;
    if (outs.empty()) continue;
    for (int src = 0; src < size; ++src) {
      const auto& ins = slots[static_cast<std::size_t>(src)].inputs;
      if (ins.empty()) continue;
      Tensor& out = outs[static_cast<std::size_t>(src)];
      const Tensor& in = ins[static_cast<std::size_t>(dst)];
      if (usable(out) && usable(in)) out.copy_from(in);
    }
  }
}

void apply_all_to_allv(std::vector<ArrivalSlot>& slots) {
  const int size = static_cast<int>(slots.size());
  for (int dst = 0; dst < size; ++dst) {
    ArrivalSlot& d = slots[static_cast<std::size_t>(dst)];
    if (!usable(d.output)) continue;
    for (int src = 0; src < size; ++src) {
      const ArrivalSlot& s = slots[static_cast<std::size_t>(src)];
      if (!usable(s.input)) continue;
      // src sends its send_counts[dst] elements at send_displs[dst] into
      // dst's recv_displs[src].
      const int count = s.send_counts[static_cast<std::size_t>(dst)];
      MCRDL_CHECK(count == d.recv_counts[static_cast<std::size_t>(src)])
          << "all_to_allv count mismatch between rank " << src << " and rank " << dst;
      d.output.view(d.recv_displs[static_cast<std::size_t>(src)], count)
          .copy_from(s.input.view(s.send_displs[static_cast<std::size_t>(dst)], count));
    }
  }
}

}  // namespace

void apply_collective(const OpDesc& desc, std::vector<ArrivalSlot>& slots) {
  switch (desc.op) {
    case OpType::AllReduce: apply_all_reduce(desc, slots); return;
    case OpType::Reduce: apply_reduce(desc, slots); return;
    case OpType::Broadcast: apply_broadcast(desc, slots); return;
    case OpType::AllGather: apply_all_gather(slots); return;
    case OpType::AllGatherV: apply_all_gatherv(slots); return;
    case OpType::Gather: apply_gather(desc, slots, /*vector_counts=*/false); return;
    case OpType::GatherV: apply_gather(desc, slots, /*vector_counts=*/true); return;
    case OpType::Scatter: apply_scatter(desc, slots, /*vector_counts=*/false); return;
    case OpType::ScatterV: apply_scatter(desc, slots, /*vector_counts=*/true); return;
    case OpType::ReduceScatter: apply_reduce_scatter(desc, slots); return;
    case OpType::AllToAllSingle: apply_all_to_all_single(slots); return;
    case OpType::AllToAll: apply_all_to_all_list(slots); return;
    case OpType::AllToAllV: apply_all_to_allv(slots); return;
    case OpType::Barrier: return;
    case OpType::Send:
    case OpType::Recv:
      MCRDL_CHECK(false) << "p2p ops do not go through apply_collective";
  }
}

// ---------------------------------------------------------------------------
// Rendezvous
// ---------------------------------------------------------------------------

Rendezvous::Rendezvous(sim::Scheduler* sched, int expected, OpDesc desc,
                       std::function<SimTime()> duration_fn, ChannelFn channel_fn,
                       std::shared_ptr<std::recursive_mutex> mu)
    : sched_(sched),
      mu_(mu ? std::move(mu) : std::make_shared<std::recursive_mutex>()),
      desc_(desc),
      expected_(expected),
      duration_fn_(std::move(duration_fn)),
      channel_fn_(std::move(channel_fn)),
      slots_(static_cast<std::size_t>(expected)),
      slot_posted_(static_cast<std::size_t>(expected), false),
      slot_ready_(static_cast<std::size_t>(expected), false),
      gates_(static_cast<std::size_t>(expected)),
      done_cond_(sched) {
  MCRDL_CHECK(expected >= 1);
}

void Rendezvous::post(int idx, ArrivalSlot slot) {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  MCRDL_CHECK(idx >= 0 && idx < expected_);
  MCRDL_CHECK(!slot_posted_[static_cast<std::size_t>(idx)])
      << "rank " << idx << " posted twice to one " << op_name(desc_.op) << " rendezvous";
  slots_[static_cast<std::size_t>(idx)] = std::move(slot);
  slot_posted_[static_cast<std::size_t>(idx)] = true;
  ++posted_;
}

const std::shared_ptr<sim::StreamGate>& Rendezvous::gate(int idx) {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  MCRDL_CHECK(idx >= 0 && idx < expected_);
  auto& g = gates_[static_cast<std::size_t>(idx)];
  if (!g) g = std::make_shared<sim::StreamGate>(sched_);
  return g;
}

void Rendezvous::mark_ready(int idx) {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  MCRDL_CHECK(idx >= 0 && idx < expected_);
  // A failed rendezvous never starts its wire phase; a straggler's stream
  // reaching its arrival callback after the watchdog fired must not revive
  // the operation.
  if (error_) return;
  MCRDL_CHECK(slot_posted_[static_cast<std::size_t>(idx)]) << "ready before post";
  MCRDL_CHECK(!slot_ready_[static_cast<std::size_t>(idx)]) << "double ready";
  slot_ready_[static_cast<std::size_t>(idx)] = true;
  ready_time_ = std::max(ready_time_, sched_->now());
  if (++ready_ < expected_) return;
  const SimTime duration = duration_fn_();
  wire_start_ = channel_fn_ ? channel_fn_(ready_time_, duration, desc_.bytes) : ready_time_;
  complete_time_ = wire_start_ + duration;
  // Keep the rendezvous alive through finish() even if every Work handle
  // and the engine's pending-table entry are dropped first.
  sched_->schedule_at(complete_time_, [self = shared_from_this()] { self->finish(); });
}

void Rendezvous::finish() {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  apply_collective(desc_, slots_);
  done_ = true;
  // Callbacks first: they set Work metadata (exec_start) that downstream
  // completion hooks — fired transitively by gate opening — read.
  auto callbacks = std::move(completion_callbacks_);
  completion_callbacks_.clear();
  for (auto& fn : callbacks) fn();
  for (auto& g : gates_) {
    if (g) g->open();
  }
  done_cond_.notify_all();
}

void Rendezvous::wait_done() {
  done_cond_.wait([&] {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return done_ || error_ != nullptr;
  });
  std::unique_lock<std::recursive_mutex> lock(*mu_);
  if (error_ && !done_) {
    auto err = error_;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void Rendezvous::fail(std::exception_ptr err) {
  MCRDL_CHECK(err != nullptr);
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  if (done_ || error_) return;
  error_ = std::move(err);
  // Completion callbacks can never fire on an errored rendezvous; dropping
  // them here breaks the Work -> callback -> Work reference cycle that would
  // otherwise keep every shed/bounced operation alive for the whole run.
  completion_callbacks_.clear();
  done_cond_.notify_all();
}

void Rendezvous::cancel(std::exception_ptr err) {
  MCRDL_CHECK(err != nullptr);
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  if (done_ || error_) return;
  error_ = std::move(err);
  // The ncclCommAbort model: streams parked behind the collective's gates
  // unwedge (no data was applied — the error is observed at the host sync
  // points), so a survivor's communication stream is never left waiting on
  // a dead rank forever.
  for (auto& g : gates_) {
    if (g) g->open();
  }
  // As in fail(): a cancelled rendezvous never completes, so its callbacks
  // are dead weight holding their captured Works (and us) alive.
  completion_callbacks_.clear();
  done_cond_.notify_all();
}

std::vector<int> Rendezvous::posted_indices() const {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  std::vector<int> out;
  for (int i = 0; i < expected_; ++i) {
    if (slot_posted_[static_cast<std::size_t>(i)]) out.push_back(i);
  }
  return out;
}

std::vector<int> Rendezvous::missing_indices() const {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  std::vector<int> out;
  for (int i = 0; i < expected_; ++i) {
    if (!slot_posted_[static_cast<std::size_t>(i)]) out.push_back(i);
  }
  return out;
}

void Rendezvous::on_complete(std::function<void()> fn) {
  {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    if (!done_) {
      completion_callbacks_.push_back(std::move(fn));
      return;
    }
  }
  fn();
}

// ---------------------------------------------------------------------------
// CollectiveEngine
// ---------------------------------------------------------------------------

CollectiveEngine::CollectiveEngine(sim::Scheduler* sched, net::CostModel cost_model,
                                   net::CommShape shape, int size, std::vector<int> global_ranks,
                                   fault::FaultInjector* faults, std::string backend_name)
    : sched_(sched),
      cost_model_(std::move(cost_model)),
      shape_(shape),
      size_(size),
      global_ranks_(std::move(global_ranks)),
      faults_(faults),
      backend_name_(std::move(backend_name)),
      next_seq_(static_cast<std::size_t>(size), 0) {
  if (global_ranks_.empty()) {
    for (int i = 0; i < size_; ++i) global_ranks_.push_back(i);
  }
  MCRDL_CHECK(static_cast<int>(global_ranks_.size()) == size_);
  if (faults_ != nullptr) {
    // Injected link degradation flows through the cost model so it shows up
    // as longer virtual-time operations, not exceptions. The hook returns
    // the identity while no fault is active, which the model skips — a
    // disabled injector leaves every cost bit-identical.
    cost_model_.set_fault_scale([faults = faults_, name = backend_name_](OpType op) {
      const fault::BetaScale s = faults->link_beta_scale(name, op);
      return net::FaultBetaScale{s.intra, s.inter};
    });
    // Elastic recovery: when a rank is declared permanently lost, the
    // quiesce phase drains this communicator's pending rendezvous; when a
    // lost rank rejoins, the grow phase re-sequences the communicator.
    drain_id_ = faults_->recovery().register_drain(
        [this](const std::vector<int>& lost) { return drain_lost(lost); });
    grow_id_ = faults_->recovery().register_grow(
        backend_name_, [this](const std::vector<int>& rejoined) { return drain_rejoined(rejoined); });
  }
}

CollectiveEngine::~CollectiveEngine() {
  if (faults_ != nullptr && drain_id_ != 0) faults_->recovery().unregister_drain(drain_id_);
  if (faults_ != nullptr && grow_id_ != 0) faults_->recovery().unregister_grow(grow_id_);
}

std::uint64_t CollectiveEngine::drain_lost(const std::vector<int>& lost) {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  std::vector<int> lost_members;
  for (int g : global_ranks_) {
    if (std::find(lost.begin(), lost.end(), g) != lost.end()) lost_members.push_back(g);
  }
  // ncclCommAbort semantics: a membership change aborts EVERY communicator,
  // not just the ones containing a lost rank. A composite parks some ranks
  // in subgroup rendezvous whose membership is all-survivor (the intact
  // node's intra group, say); if those stayed pending, their ranks would
  // never unwind while their peers bounce to the new epoch and replay from
  // the first phase — and the stale expectation would poison the reused
  // communicator's sequence ledger.
  std::uint64_t cancelled = 0;
  for (auto& [seq, rv] : pending_) {
    if (rv->done() || rv->failed() || rv->started()) continue;
    if (!lost_members.empty()) {
      rv->cancel(std::make_exception_ptr(
          RankLostError(fault::describe_rank_loss(rv->desc().op, backend_name_, lost_members))));
    } else {
      rv->cancel(std::make_exception_ptr(RankLostError(
          "epoch quiesce: " + std::string(op_name(rv->desc().op)) + " on backend '" +
          backend_name_ + "' cancelled by membership change")));
    }
    ++cancelled;
  }
  // Re-sequence, exactly like the grow path: a cancelled rendezvous consumed
  // sequence numbers only on the ranks that had already joined it, so the
  // counters disagree across the membership — and a replayed composite may
  // issue a *different* sub-op at the reused number. Started rendezvous keep
  // completing off the table (reclaim is identity-checked); every replay
  // joins fresh from sequence zero.
  pending_.clear();
  std::fill(next_seq_.begin(), next_seq_.end(), 0);
  return cancelled;
}

std::uint64_t CollectiveEngine::drain_rejoined(const std::vector<int>& rejoined) {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  bool member_rejoined = false;
  for (int g : global_ranks_) {
    if (std::find(rejoined.begin(), rejoined.end(), g) != rejoined.end()) {
      member_rejoined = true;
      break;
    }
  }
  if (!member_rejoined) return 0;
  std::uint64_t cancelled = 0;
  for (auto& [seq, rv] : pending_) {
    if (rv->done() || rv->failed() || rv->started()) continue;
    rv->cancel(std::make_exception_ptr(RankLostError(
        "grow re-sequence: " + std::string(op_name(rv->desc().op)) + " on backend '" +
        backend_name_ + "' cancelled for replay on the grown communicator")));
    ++cancelled;
  }
  // Re-sequence: survivors consumed sequence numbers on doomed joins while
  // the rejoined rank was dead, so the counters disagree across the
  // membership. Started rendezvous keep completing off the table (reclaim is
  // identity-checked); every replay joins fresh from sequence zero.
  pending_.clear();
  std::fill(next_seq_.begin(), next_seq_.end(), 0);
  return cancelled;
}

std::shared_ptr<Rendezvous> CollectiveEngine::join(int idx, const OpDesc& desc,
                                                   ArrivalSlot slot) {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  MCRDL_REQUIRE(idx >= 0 && idx < size_, "communicator rank index out of range");
  const std::uint64_t seq = next_seq_[static_cast<std::size_t>(idx)]++;
  auto it = pending_.find(seq);
  std::shared_ptr<Rendezvous> rv;
  if (it == pending_.end()) {
    OpDesc d = desc;
    rv = std::make_shared<Rendezvous>(
        sched_, size_, d,
        [this, d] {
          const SimTime base = cost_model_.collective_cost(d.op, d.bytes, shape_);
          return std::max(base - d.launch_discount_us, base * 0.1);
        },
        [this](SimTime ready, SimTime duration, std::size_t bytes) {
          if (bytes <= kWireSerializeThreshold) return ready;
          // Called from mark_ready with mu_ already held (shared mutex);
          // the recursive lock keeps this safe standalone too.
          std::lock_guard<std::recursive_mutex> channel_lock(*mu_);
          const SimTime start = std::max(ready, channel_busy_until_);
          channel_busy_until_ = start + duration;
          return start;
        },
        mu_);
    pending_[seq] = rv;
    // Reclaim the table entry once everyone has moved past this op. The
    // identity check matters across grow events: a started pre-grow
    // rendezvous completing after the table was cleared and re-sequenced
    // must not erase a fresh entry that reused its sequence number.
    rv->on_complete([this, seq, weak = std::weak_ptr<Rendezvous>(rv)] {
      std::lock_guard<std::recursive_mutex> reclaim_lock(*mu_);
      auto entry = pending_.find(seq);
      if (entry != pending_.end() && entry->second == weak.lock()) pending_.erase(entry);
    });
    if (faults_ != nullptr && faults_->enabled()) {
      // The first-arriving rank classifies the rendezvous for everyone —
      // an injected failure fails the collective identically on all ranks,
      // keeping sequence numbers aligned for the retry/failover layer.
      if (const std::vector<int> lost = faults_->lost_members(global_ranks_); !lost.empty()) {
        // Membership includes a permanently lost rank: doomed at creation so
        // every surviving joiner unwinds immediately with a retriable error
        // instead of waiting out a watchdog deadline that can never be met.
        faults_->note_rank_loss_rejection();
        rv->fail(std::make_exception_ptr(
            RankLostError(fault::describe_rank_loss(d.op, backend_name_, lost))));
      } else if (faults_->backend_unavailable(backend_name_)) {
        faults_->note_outage_rejection();
        rv->fail(std::make_exception_ptr(BackendUnavailable(
            "backend '" + backend_name_ + "' is out of service (injected outage); rejected " +
            op_name(d.op))));
      } else if (faults_->should_fail(backend_name_, d.op)) {
        faults_->note_transient();
        rv->fail(std::make_exception_ptr(TransientFault(
            std::string("injected transient fault: ") + op_name(d.op) + " on backend '" +
            backend_name_ + "'")));
      } else if (faults_->watchdog_deadline_us() > 0.0) {
        const SimTime deadline = faults_->watchdog_deadline_us();
        std::weak_ptr<Rendezvous> weak = rv;
        const std::uint64_t timer =
            faults_->watchdog().arm(deadline, [this, weak, deadline, op = d.op] {
              auto strong = weak.lock();
              if (!strong || strong->done() || strong->failed()) return;
              faults_->note_watchdog_timeout();
              std::vector<int> arrived, missing;
              for (int i : strong->posted_indices())
                arrived.push_back(global_ranks_[static_cast<std::size_t>(i)]);
              for (int i : strong->missing_indices())
                missing.push_back(global_ranks_[static_cast<std::size_t>(i)]);
              // When everyone who failed to arrive is a permanently lost
              // rank, the hang has a better name than "timeout": surface the
              // retriable RankLostError so elastic recovery (or the caller)
              // knows shrinking — not waiting — is the fix.
              bool all_missing_lost = !missing.empty();
              for (int r : missing) all_missing_lost = all_missing_lost && faults_->rank_lost(r);
              if (all_missing_lost) {
                strong->fail(std::make_exception_ptr(
                    RankLostError(fault::describe_rank_loss(op, backend_name_, missing))));
              } else {
                strong->fail(std::make_exception_ptr(
                    TimeoutError(fault::describe_timeout(op, backend_name_, deadline, arrived,
                                                         missing))));
              }
            });
        // Completion cancels the deadline; cancelled events are popped
        // without advancing virtual time, so a clean run with the watchdog
        // enabled keeps the exact fault-free timeline.
        rv->on_complete([this, timer] { faults_->watchdog().disarm(timer); });
      }
    }
  } else {
    rv = it->second;
    const OpDesc& expect = rv->desc();
    if (expect.op != desc.op || expect.root != desc.root) {
      std::ostringstream msg;
      msg << "collective mismatch at sequence " << seq << ": rank " << idx << " issued "
          << op_name(desc.op) << " (root " << desc.root << ") but the communicator expects "
          << op_name(expect.op) << " (root " << expect.root << ")";
      throw CollectiveMismatch(msg.str());
    }
  }
  rv->post(idx, std::move(slot));
  if (rv->failed()) {
    // Doomed rendezvous: the sequence number is consumed (all ranks stay
    // aligned for the retry), the table entry is reclaimed once the last
    // rank has observed the failure, and the injected error propagates.
    if (rv->posted_count() >= size_) pending_.erase(seq);
    std::rethrow_exception(rv->error());
  }
  return rv;
}

// ---------------------------------------------------------------------------
// P2P
// ---------------------------------------------------------------------------

P2pOp::P2pOp(sim::Scheduler* sched, std::function<SimTime()> duration_fn,
             std::shared_ptr<std::recursive_mutex> mu)
    : sched_(sched),
      mu_(mu ? std::move(mu) : std::make_shared<std::recursive_mutex>()),
      duration_fn_(std::move(duration_fn)),
      send_gate_(std::make_shared<sim::StreamGate>(sched)),
      recv_gate_(std::make_shared<sim::StreamGate>(sched)),
      done_cond_(sched) {}

void P2pOp::set_send(Tensor t) {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  MCRDL_CHECK(!have_send_) << "send side already set";
  send_tensor_ = std::move(t);
  have_send_ = true;
}

void P2pOp::set_recv(Tensor t) {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  MCRDL_CHECK(!have_recv_) << "recv side already set";
  recv_tensor_ = std::move(t);
  have_recv_ = true;
}

void P2pOp::mark_send_ready() {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  send_ready_ = true;
  maybe_finish();
}

void P2pOp::mark_recv_ready() {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  recv_ready_ = true;
  maybe_finish();
}

void P2pOp::doom(std::exception_ptr err) {
  MCRDL_CHECK(err != nullptr);
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  if (done_ || error_) return;
  error_ = std::move(err);
  // A doomed op never completes: drop its completion callbacks so they do
  // not pin their captured Works (and this op) until teardown.
  completion_callbacks_.clear();
  done_cond_.notify_all();
}

void P2pOp::cancel(std::exception_ptr err) {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  if (done_ || error_) return;
  error_ = std::move(err);
  send_gate_->open();
  recv_gate_->open();
  completion_callbacks_.clear();
  done_cond_.notify_all();
}

void P2pOp::maybe_finish() {
  // Callers hold mu_ (recursive).
  if (!send_ready_ || !recv_ready_ || done_ || error_) return;
  const SimTime duration = duration_fn_();
  exec_start_ = sched_->now();
  complete_time_ = sched_->now() + duration;
  sched_->schedule_at(complete_time_, [this, self = shared_from_this()] {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    if (recv_tensor_.defined() && recv_tensor_.materialized() && send_tensor_.defined() &&
        send_tensor_.materialized()) {
      recv_tensor_.copy_from(send_tensor_);
    }
    done_ = true;
    send_gate_->open();
    recv_gate_->open();
    auto callbacks = std::move(completion_callbacks_);
    completion_callbacks_.clear();
    for (auto& fn : callbacks) fn();
    done_cond_.notify_all();
  });
}

void P2pOp::wait_done() {
  done_cond_.wait([&] {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return done_ || error_ != nullptr;
  });
  std::unique_lock<std::recursive_mutex> lock(*mu_);
  if (error_ && !done_) {
    auto err = error_;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void P2pOp::on_complete(std::function<void()> fn) {
  {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    if (!done_) {
      completion_callbacks_.push_back(std::move(fn));
      return;
    }
  }
  fn();
}

P2pEngine::P2pEngine(sim::Scheduler* sched, net::CostModel cost_model,
                     std::vector<int> global_ranks, fault::FaultInjector* faults,
                     std::string backend_name)
    : sched_(sched),
      cost_model_(std::move(cost_model)),
      global_ranks_(std::move(global_ranks)),
      faults_(faults),
      backend_name_(std::move(backend_name)) {
  if (faults_ != nullptr) {
    cost_model_.set_fault_scale([faults = faults_, name = backend_name_](OpType op) {
      const fault::BetaScale s = faults->link_beta_scale(name, op);
      return net::FaultBetaScale{s.intra, s.inter};
    });
    drain_id_ = faults_->recovery().register_drain(
        [this](const std::vector<int>& lost) { return drain_lost(lost); });
    grow_id_ = faults_->recovery().register_grow(
        backend_name_, [this](const std::vector<int>& rejoined) { return drain_rejoined(rejoined); });
  }
}

P2pEngine::~P2pEngine() {
  if (faults_ != nullptr && drain_id_ != 0) faults_->recovery().unregister_drain(drain_id_);
  if (faults_ != nullptr && grow_id_ != 0) faults_->recovery().unregister_grow(grow_id_);
}

std::uint64_t P2pEngine::drain_lost(const std::vector<int>& lost) {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  const int size = static_cast<int>(global_ranks_.size());
  const auto involved = [&](std::int64_t key) {
    const int g_src = global_ranks_[static_cast<std::size_t>(key / size)];
    const int g_dst = global_ranks_[static_cast<std::size_t>(key % size)];
    return std::find(lost.begin(), lost.end(), g_src) != lost.end() ||
           std::find(lost.begin(), lost.end(), g_dst) != lost.end();
  };
  std::uint64_t cancelled = 0;
  for (auto* table : {&pending_sends_, &pending_recvs_}) {
    for (auto& [key, queue] : *table) {
      if (!involved(key)) continue;
      for (auto& op : queue) {
        if (op->done() || op->doomed()) continue;
        std::vector<int> lost_endpoints;
        const int g_src = global_ranks_[static_cast<std::size_t>(key / size)];
        const int g_dst = global_ranks_[static_cast<std::size_t>(key % size)];
        if (std::find(lost.begin(), lost.end(), g_src) != lost.end())
          lost_endpoints.push_back(g_src);
        if (g_dst != g_src && std::find(lost.begin(), lost.end(), g_dst) != lost.end())
          lost_endpoints.push_back(g_dst);
        op->cancel(std::make_exception_ptr(RankLostError(
            fault::describe_rank_loss(OpType::Send, backend_name_, lost_endpoints))));
        ++cancelled;
      }
    }
  }
  return cancelled;
}

std::uint64_t P2pEngine::drain_rejoined(const std::vector<int>& rejoined) {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  const int size = static_cast<int>(global_ranks_.size());
  const auto involved = [&](std::int64_t key) {
    const int g_src = global_ranks_[static_cast<std::size_t>(key / size)];
    const int g_dst = global_ranks_[static_cast<std::size_t>(key % size)];
    return std::find(rejoined.begin(), rejoined.end(), g_src) != rejoined.end() ||
           std::find(rejoined.begin(), rejoined.end(), g_dst) != rejoined.end();
  };
  std::uint64_t cancelled = 0;
  for (auto* table : {&pending_sends_, &pending_recvs_}) {
    for (auto& [key, queue] : *table) {
      if (!involved(key)) continue;
      // Stale entries — typically doomed ops queued while the rank was dead,
      // whose counterpart stale-rejected instead of matching — must not pair
      // with fresh post-rejoin traffic.
      for (auto& op : queue) {
        if (!op->done()) ++cancelled;
        if (op->done() || op->doomed()) continue;
        op->cancel(std::make_exception_ptr(RankLostError(
            "grow re-sequence: p2p on backend '" + backend_name_ +
            "' cancelled for replay on the grown communicator")));
      }
      queue.clear();
    }
  }
  return cancelled;
}

std::shared_ptr<P2pOp> P2pEngine::match(int src, int dst, bool is_send, std::size_t bytes) {
  // Callers (post_send/post_recv) hold mu_; the lock here is recursive.
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  const int size = static_cast<int>(global_ranks_.size());
  MCRDL_REQUIRE(src >= 0 && src < size && dst >= 0 && dst < size, "p2p peer out of range");
  const std::int64_t key = static_cast<std::int64_t>(src) * size + dst;
  auto& counterpart = is_send ? pending_recvs_[key] : pending_sends_[key];
  if (!counterpart.empty()) {
    auto op = counterpart.front();
    counterpart.erase(counterpart.begin());
    return op;
  }
  const int g_src = global_ranks_[static_cast<std::size_t>(src)];
  const int g_dst = global_ranks_[static_cast<std::size_t>(dst)];
  auto op = std::make_shared<P2pOp>(
      sched_, [this, bytes, g_src, g_dst] { return cost_model_.p2p_cost(bytes, g_src, g_dst); },
      mu_);
  if (faults_ != nullptr && faults_->enabled()) {
    // Classified once per pair, by the first-arriving side; the doomed op
    // still enters the FIFO so the counterpart matches (and fails) the same
    // attempt. Transient specs match p2p pairs through OpType::Send.
    if (const std::vector<int> lost = faults_->lost_members({g_src, g_dst}); !lost.empty()) {
      faults_->note_rank_loss_rejection();
      op->doom(std::make_exception_ptr(
          RankLostError(fault::describe_rank_loss(OpType::Send, backend_name_, lost))));
    } else if (faults_->backend_unavailable(backend_name_)) {
      faults_->note_outage_rejection();
      op->doom(std::make_exception_ptr(BackendUnavailable(
          "backend '" + backend_name_ + "' is out of service (injected outage); rejected " +
          std::string(is_send ? "send" : "recv"))));
    } else if (faults_->should_fail(backend_name_, OpType::Send)) {
      faults_->note_transient();
      op->doom(std::make_exception_ptr(TransientFault(
          "injected transient fault: p2p " + std::string(is_send ? "send" : "recv") +
          " on backend '" + backend_name_ + "'")));
    }
  }
  (is_send ? pending_sends_[key] : pending_recvs_[key]).push_back(op);
  return op;
}

std::shared_ptr<P2pOp> P2pEngine::post_send(int src, int dst, const Tensor& t) {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  auto op = match(src, dst, /*is_send=*/true, t.bytes());
  op->set_send(t);
  if (op->doomed()) std::rethrow_exception(op->error());
  return op;
}

std::shared_ptr<P2pOp> P2pEngine::post_recv(int dst, int src, Tensor t) {
  std::lock_guard<std::recursive_mutex> lock(*mu_);
  auto op = match(src, dst, /*is_send=*/false, t.bytes());
  op->set_recv(std::move(t));
  if (op->doomed()) std::rethrow_exception(op->error());
  return op;
}

}  // namespace mcrdl::backends_detail
