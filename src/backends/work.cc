#include "src/backends/work.h"

#include "src/backends/engine.h"
#include "src/sim/device.h"

namespace mcrdl {

StreamWork::StreamWork(std::shared_ptr<sim::Event> done_event, sim::Stream* default_stream)
    : done_event_(std::move(done_event)), default_stream_(default_stream) {}

bool StreamWork::test() const { return done_event_->complete(); }

void StreamWork::wait() { default_stream_->wait_event(done_event_); }

void StreamWork::synchronize() { done_event_->synchronize(); }

SimTime StreamWork::complete_time() const { return done_event_->completion_time(); }

HostWork::HostWork(std::shared_ptr<backends_detail::Rendezvous> rendezvous)
    : rendezvous_(std::move(rendezvous)) {}

HostWork::HostWork(std::shared_ptr<backends_detail::P2pOp> p2p) : p2p_(std::move(p2p)) {}

bool HostWork::test() const { return rendezvous_ ? rendezvous_->done() : p2p_->done(); }

void HostWork::wait() {
  if (rendezvous_) {
    rendezvous_->wait_done();
  } else {
    p2p_->wait_done();
  }
}

SimTime HostWork::complete_time() const {
  return rendezvous_ ? rendezvous_->complete_time() : p2p_->complete_time();
}

void StreamWork::on_complete(std::function<void()> fn) { done_event_->on_complete(std::move(fn)); }

void HostWork::on_complete(std::function<void()> fn) {
  if (rendezvous_) {
    rendezvous_->on_complete(std::move(fn));
  } else {
    p2p_->on_complete(std::move(fn));
  }
}

}  // namespace mcrdl
