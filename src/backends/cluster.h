// ClusterContext: one simulated HPC machine — the scheduler, the topology,
// and one Device per rank — plus the SPMD launcher that runs a per-rank
// program as one actor per rank.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/injector.h"
#include "src/net/cost.h"
#include "src/net/topology.h"
#include "src/obs/metrics.h"
#include "src/sim/device.h"
#include "src/sim/scheduler.h"

namespace mcrdl {

class ClusterContext {
 public:
  // `exec` selects the scheduler's execution model (DESIGN.md §11): serial
  // baton by default, or ParallelShards via ExecutionConfig::parallel(n) /
  // from_threads(n).
  explicit ClusterContext(net::SystemConfig config,
                          sim::ExecutionConfig exec = sim::ExecutionConfig::serial());

  sim::Scheduler& scheduler() { return sched_; }
  const net::Topology& topology() const { return topo_; }
  int world_size() const { return topo_.world_size(); }
  sim::Device* device(int rank);

  // Fault-injection decision engine for this cluster. Always present but
  // disabled (zero-cost on every hot path) until a FaultPlan is configured
  // — see src/fault/injector.h and McrDlOptions::fault.
  fault::FaultInjector& faults() { return faults_; }

  // Always-on metrics registry (src/obs/metrics.h). Every layer records
  // into it: the op pipeline (stage timings, op latencies), Comm::issue
  // (per-backend ops/bytes), the failover path (retries/reroutes/breaker
  // transitions) and the cost model (link usage, via link_usage()).
  obs::MetricsRegistry& metrics() { return metrics_; }
  // Link-class traffic accumulator the backends' cost models feed; mirrored
  // into `link_*` gauges by metrics_json().
  net::LinkUsage& link_usage() { return usage_; }
  // Shared tenant-contention state every backend's cost model reads
  // (net::CostModel::set_contention). Identity by default, so a single-job
  // cluster is byte-identical to a build without the serving layer; the
  // multi-tenant scheduler (src/sched/) writes the QoS-weighted bandwidth
  // shares here before measuring a job under load.
  net::ContentionScale& contention() { return contention_; }
  // Syncs the link-utilization gauges from link_usage(), then returns the
  // registry's JSON snapshot.
  std::string metrics_json();

  // Runs fn(rank) as one actor per rank and blocks until all complete.
  // Rethrows the first actor error (including DeadlockError).
  void run_spmd(const std::function<void(int)>& fn);
  // As above but only for the first `ranks` ranks.
  void run_spmd(int ranks, const std::function<void(int)>& fn);

 private:
  sim::Scheduler sched_;
  net::Topology topo_;
  std::vector<std::unique_ptr<sim::Device>> devices_;
  fault::FaultInjector faults_{&sched_};
  obs::MetricsRegistry metrics_;
  net::LinkUsage usage_;
  net::ContentionScale contention_;
};

}  // namespace mcrdl
