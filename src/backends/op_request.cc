#include "src/backends/op_request.h"

namespace mcrdl {

std::size_t OpRequest::payload_bytes() const {
  switch (op) {
    case OpType::AllReduce:
    case OpType::Broadcast:
    case OpType::Reduce:
    case OpType::Send:
    case OpType::Recv:
      return tensor.bytes();
    case OpType::AllGather:
    case OpType::AllGatherV:
    case OpType::Gather:
    case OpType::GatherV:
    case OpType::ReduceScatter:
    case OpType::AllToAllSingle:
    case OpType::AllToAllV:
      return input.bytes();
    case OpType::Scatter:
    case OpType::ScatterV:
      return output.bytes();
    case OpType::AllToAll:
      return total_bytes(inputs);
    case OpType::Barrier:
      return 0;
  }
  return 0;
}

void OpRequest::recycle() {
  op = OpType::Barrier;
  backend.clear();
  async_op = false;
  tensor = Tensor();
  output = Tensor();
  input = Tensor();
  outputs.clear();
  inputs.clear();
  root = 0;
  peer = -1;
  rop = ReduceOp::Sum;
  send_counts.clear();
  send_displs.clear();
  recv_counts.clear();
  recv_displs.clear();
  epoch = 0;
  nested = false;
}

}  // namespace mcrdl
