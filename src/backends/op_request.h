// OpRequest — the single descriptor for every operation in the MCR-DL API.
//
// The core facade (src/core/context.h) constructs one OpRequest per Listing-1
// call and feeds it to the OpPipeline (src/core/op_pipeline.h); the pipeline's
// terminal stage hands it to Comm::issue, which maps it onto the backend's
// native entry points (building the rendezvous-level OpDesc from it). Having
// one descriptor instead of N per-op signatures is what lets optimisation
// layers — tuning, fusion, compression, fault routing, logging, emulation —
// be written once as pipeline stages instead of once per operation.
//
// Field usage by operation family (unused fields stay default-initialised):
//   all_reduce / broadcast / reduce / send / recv   -> tensor (in-place)
//   *gather* / *scatter* / reduce_scatter / a2a     -> output + input
//   all_to_all (list form)                          -> outputs + inputs
//   rooted collectives                              -> root (group-rank)
//   send / recv                                     -> peer (group-rank)
//   v-collectives                                   -> *_counts / *_displs
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/net/comm_types.h"
#include "src/tensor/tensor.h"

namespace mcrdl {

struct OpRequest {
  OpType op = OpType::Barrier;
  // Requested backend string, exactly as the user passed it ("auto" routes
  // collectives through the tuning table; p2p ops require a concrete name).
  std::string backend;
  bool async_op = false;

  Tensor tensor;       // in-place payload
  Tensor output;
  Tensor input;
  TensorList outputs;  // all_to_all list form
  TensorList inputs;
  int root = 0;        // group-rank root for rooted collectives
  int peer = -1;       // send destination / recv source (group-rank)
  ReduceOp rop = ReduceOp::Sum;
  std::vector<int> send_counts, send_displs;
  std::vector<int> recv_counts, recv_displs;
  // Recovery epoch the request was issued under (stamped by the pipeline's
  // `recover` stage). After an elastic shrink the issue stage rejects
  // requests stamped with an older epoch, so stragglers from before the
  // shrink are bounced back for replay instead of deadlocking the new
  // communicators. Stays 0 for the whole run unless a rank is lost.
  std::uint64_t epoch = 0;
  // True for a sub-operation posted by a composite collective (src/coll/):
  // the pipeline skips per-call overhead, fusion/compression admission and
  // the tuner for nested requests (the parent composite owns those), while
  // metrics, traces and fault routing still see them individually.
  bool nested = false;

  // The payload size used for tuning lookups, cost attribution and logging
  // (per-rank bytes, PyTorch convention — matches what each Comm entry point
  // reports in its OpDesc).
  std::size_t payload_bytes() const;

  // Keep-capacity reset for the dispatch arena: drops tensor/backend
  // references (so no buffer stays pinned while the slot idles) and clears
  // strings/vectors without freeing their heap storage.
  void recycle();
};

}  // namespace mcrdl
