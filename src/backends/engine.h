// Rendezvous machinery shared by every simulated backend.
//
// A collective is an all-ranks rendezvous: each rank posts its payload
// (ArrivalSlot) at the communicator's next sequence number, then signals
// readiness when its input data is actually available (when its stream
// reaches the operation for stream-aware backends, or when the producing
// default-stream work finishes for host-synchronised MPI). Once every rank
// is ready, the operation's duration comes from the backend's CostModel, and
// at the completion time the engine applies the real data effect (reduction
// math / block shuffles) to all materialised tensors, opens the stream gates
// and notifies host waiters.
//
// Sequence numbers also give NCCL-accurate misuse detection: ranks issuing
// different operations at the same position on one communicator raise
// CollectiveMismatch instead of silently hanging.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/fault/injector.h"
#include "src/net/cost.h"
#include "src/sim/device.h"
#include "src/sim/scheduler.h"
#include "src/tensor/tensor.h"

namespace mcrdl::backends_detail {

// One rank's payload for one collective.
struct ArrivalSlot {
  Tensor input;
  Tensor output;
  TensorList inputs;   // all_to_all list form
  TensorList outputs;  // all_to_all list form
  std::vector<int> send_counts, send_displs;  // element counts (v-collectives)
  std::vector<int> recv_counts, recv_displs;
};

// What all ranks must agree on at one sequence position.
struct OpDesc {
  OpType op = OpType::Barrier;
  std::size_t bytes = 0;  // cost-model payload (per-rank, PyTorch convention)
  int root = 0;           // group-rank of the root for rooted ops
  ReduceOp rop = ReduceOp::Sum;
  // Launch-overhead discount for persistent collectives (µs subtracted from
  // the cost model's fixed per-op term, floored at 10% of the base cost).
  double launch_discount_us = 0.0;
};

// Applies the data semantics of `op` across all ranks' slots. Slots with
// phantom/undefined tensors are skipped (timing-only workloads). Exposed for
// direct unit testing.
void apply_collective(const OpDesc& desc, std::vector<ArrivalSlot>& slots);

// Payloads at or below this size are latency-bound and may overlap on the
// wire; larger collectives serialise on their communicator's channel
// (matching MPI progress and NCCL per-stream semantics — and the paper's
// observation that concurrent large messages are bandwidth-bound and gain
// nothing from extra streams).
inline constexpr std::size_t kWireSerializeThreshold = 64 * 1024;

// Given (ready time, duration, payload) returns the wire start time,
// accounting for channel contention.
using ChannelFn = std::function<SimTime(SimTime, SimTime, std::size_t)>;

// Thread safety (DESIGN.md §11): a rendezvous is shared cross-rank state —
// under ParallelShards different shards post/mark_ready concurrently while
// completion fires on the controller. Every mutating method and stateful
// accessor locks `mu_`, a recursive mutex shared with the owning
// CollectiveEngine (recursive because completion callbacks re-enter the
// engine to reclaim the pending-table entry, and because the channel
// contention hook reads engine state from inside mark_ready). Under the
// serial baton the locks are uncontended and change nothing.
class Rendezvous : public std::enable_shared_from_this<Rendezvous> {
 public:
  Rendezvous(sim::Scheduler* sched, int expected, OpDesc desc,
             std::function<SimTime()> duration_fn, ChannelFn channel_fn = {},
             std::shared_ptr<std::recursive_mutex> mu = nullptr);

  const OpDesc& desc() const { return desc_; }

  // Registers rank `idx`'s payload. Each rank posts exactly once.
  void post(int idx, ArrivalSlot slot);

  // Declares rank `idx`'s input ready at the current virtual time. The last
  // ready rank triggers cost evaluation and schedules completion.
  void mark_ready(int idx);

  // Stream-aware backends park their communication stream behind this gate;
  // it opens at the completion time.
  const std::shared_ptr<sim::StreamGate>& gate(int idx);

  bool done() const {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return done_;
  }
  SimTime complete_time() const {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return complete_time_;
  }
  // When the wire time actually began (all ranks ready + channel free).
  SimTime exec_start_time() const {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return wire_start_;
  }
  // Host-side block until completion (MPI discipline). Rethrows the stored
  // error if the rendezvous failed instead of completing.
  void wait_done();

  // Invoked (under the baton) at completion, after data application.
  void on_complete(std::function<void()> fn);

  // --- fault injection (src/fault/) ----------------------------------------
  // Marks the rendezvous failed: stores the error and wakes host waiters so
  // wait_done()/join() rethrow it from actor context. Safe to call from a
  // timed-event callback (never throws; gates stay closed; no data effects
  // are applied). No-op once done or already failed.
  void fail(std::exception_ptr err);
  // Like fail(), but also opens every already-created stream gate — the
  // ncclCommAbort model used by the elastic-recovery quiesce: parked
  // communication streams unwedge while host waiters still observe the
  // error. No data effects are applied.
  void cancel(std::exception_ptr err);
  // True once every participant has signalled readiness — the wire phase
  // has begun and completion is already scheduled. Quiesce drains skip
  // started rendezvous: packets in flight deliver, consistently everywhere.
  bool started() const {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return ready_ >= expected_;
  }
  bool failed() const {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return error_ != nullptr;
  }
  std::exception_ptr error() const {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return error_;
  }
  int posted_count() const {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return posted_;
  }
  // Group-rank indices that did / did not reach the rendezvous (for the
  // watchdog's who-arrived diagnostic).
  std::vector<int> posted_indices() const;
  std::vector<int> missing_indices() const;

 private:
  void finish();

  sim::Scheduler* sched_;
  std::shared_ptr<std::recursive_mutex> mu_;
  OpDesc desc_;
  int expected_;
  int posted_ = 0;
  int ready_ = 0;
  bool done_ = false;
  SimTime ready_time_ = 0.0;
  SimTime wire_start_ = 0.0;
  SimTime complete_time_ = 0.0;
  std::function<SimTime()> duration_fn_;
  ChannelFn channel_fn_;
  std::vector<ArrivalSlot> slots_;
  std::vector<bool> slot_posted_;
  std::vector<bool> slot_ready_;
  std::vector<std::shared_ptr<sim::StreamGate>> gates_;
  std::vector<std::function<void()>> completion_callbacks_;
  sim::SimCondition done_cond_;
  std::exception_ptr error_;
};

// Per-communicator collective sequencing: each rank's n-th call joins the
// n-th rendezvous; descriptors must match across ranks.
//
// Fault injection: when constructed with a FaultInjector, every rendezvous
// is classified exactly once — by the first-arriving rank, at creation — as
// doomed (injected outage or transient fault) or live (optionally guarded
// by a watchdog deadline). All joiners of a doomed rendezvous observe the
// same stored error, so communicator sequence numbers advance uniformly
// across ranks and retries stay aligned.
class CollectiveEngine {
 public:
  CollectiveEngine(sim::Scheduler* sched, net::CostModel cost_model, net::CommShape shape,
                   int size, std::vector<int> global_ranks = {},
                   fault::FaultInjector* faults = nullptr, std::string backend_name = "");
  ~CollectiveEngine();  // unregisters the recovery drain/grow hooks
  CollectiveEngine(const CollectiveEngine&) = delete;
  CollectiveEngine& operator=(const CollectiveEngine&) = delete;

  // Joins rank idx's next collective; creates the rendezvous on first
  // arrival and validates the descriptor on subsequent ones. Throws the
  // injected error (after consuming the sequence number) when the
  // rendezvous is doomed.
  std::shared_ptr<Rendezvous> join(int idx, const OpDesc& desc, ArrivalSlot slot);

  const net::CostModel& cost_model() const { return cost_model_; }
  const net::CommShape& shape() const { return shape_; }
  int size() const { return size_; }

 private:
  // Recovery quiesce hook: cancels pending rendezvous whose membership
  // includes a lost rank (unless their wire phase already started). Returns
  // the number of rendezvous cancelled.
  std::uint64_t drain_lost(const std::vector<int>& lost);
  // Recovery grow hook: when a rejoining rank is a member, this
  // communicator's sequence counters drifted while it was dead (survivors
  // consumed sequence numbers on doomed joins the dead rank never made), so
  // pending non-started rendezvous are cancelled for replay, the pending
  // table is cleared, and every rank's next_seq_ restarts at zero — the
  // whole membership re-sequences together on the grown epoch. Returns the
  // number of rendezvous cancelled.
  std::uint64_t drain_rejoined(const std::vector<int>& rejoined);

  sim::Scheduler* sched_;
  // Shared with every Rendezvous this engine creates: join/post, the channel
  // contention hook, completion reclaim, and the recovery drain all mutate
  // engine+rendezvous state as one critical section.
  std::shared_ptr<std::recursive_mutex> mu_ = std::make_shared<std::recursive_mutex>();
  net::CostModel cost_model_;
  net::CommShape shape_;
  int size_;
  std::vector<int> global_ranks_;
  fault::FaultInjector* faults_;
  std::string backend_name_;
  std::vector<std::uint64_t> next_seq_;
  std::map<std::uint64_t, std::shared_ptr<Rendezvous>> pending_;
  SimTime channel_busy_until_ = 0.0;
  std::uint64_t drain_id_ = 0;
  std::uint64_t grow_id_ = 0;
};

// A matched send/recv pair (two-party rendezvous). Thread safety mirrors
// Rendezvous: both endpoints may live on different shards, so state is
// guarded by a recursive mutex shared with the owning P2pEngine.
class P2pOp : public std::enable_shared_from_this<P2pOp> {
 public:
  P2pOp(sim::Scheduler* sched, std::function<SimTime()> duration_fn,
        std::shared_ptr<std::recursive_mutex> mu = nullptr);

  void set_send(Tensor t);
  void set_recv(Tensor t);
  void mark_send_ready();
  void mark_recv_ready();

  const std::shared_ptr<sim::StreamGate>& send_gate() { return send_gate_; }
  const std::shared_ptr<sim::StreamGate>& recv_gate() { return recv_gate_; }

  bool done() const {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return done_;
  }
  SimTime complete_time() const {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return complete_time_;
  }
  SimTime exec_start_time() const {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return exec_start_;
  }
  void wait_done();
  void on_complete(std::function<void()> fn);

  // Fault injection: a doomed op is still enqueued for FIFO matching (both
  // sides of the pair must observe the same failed attempt) but never
  // transfers data; post_send/post_recv rethrow its error.
  void doom(std::exception_ptr err);
  // Like doom(), but opens both gates so a stream parked behind the pair
  // unwedges (recovery quiesce; see Rendezvous::cancel).
  void cancel(std::exception_ptr err);
  bool doomed() const {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return error_ != nullptr;
  }
  std::exception_ptr error() const {
    std::lock_guard<std::recursive_mutex> lock(*mu_);
    return error_;
  }

 private:
  void maybe_finish();

  sim::Scheduler* sched_;
  std::shared_ptr<std::recursive_mutex> mu_;
  std::function<SimTime()> duration_fn_;
  Tensor send_tensor_, recv_tensor_;
  bool have_send_ = false, have_recv_ = false;
  bool send_ready_ = false, recv_ready_ = false;
  bool done_ = false;
  SimTime complete_time_ = 0.0;
  SimTime exec_start_ = 0.0;
  std::shared_ptr<sim::StreamGate> send_gate_, recv_gate_;
  std::vector<std::function<void()>> completion_callbacks_;
  sim::SimCondition done_cond_;
  std::exception_ptr error_;
};

// FIFO tag-matching of sends and recvs per (src, dst) pair.
//
// Fault injection mirrors CollectiveEngine: each pair is classified once at
// creation (by whichever side arrives first, matched against OpType::Send
// specs), so both endpoints of a doomed pair fail the same attempt.
class P2pEngine {
 public:
  P2pEngine(sim::Scheduler* sched, net::CostModel cost_model, std::vector<int> global_ranks,
            fault::FaultInjector* faults = nullptr, std::string backend_name = "");
  ~P2pEngine();  // unregisters the recovery drain/grow hooks
  P2pEngine(const P2pEngine&) = delete;
  P2pEngine& operator=(const P2pEngine&) = delete;

  // src/dst are group-rank indices. Returns the matched (or newly created)
  // pairwise operation; caller wires readiness signals and tensors.
  std::shared_ptr<P2pOp> post_send(int src, int dst, const Tensor& t);
  std::shared_ptr<P2pOp> post_recv(int dst, int src, Tensor t);

 private:
  std::shared_ptr<P2pOp> match(int src, int dst, bool is_send, std::size_t bytes);
  // Recovery quiesce hook: cancels unmatched queued ops whose endpoint is a
  // lost rank. Matched pairs are in flight and left to complete.
  std::uint64_t drain_lost(const std::vector<int>& lost);
  // Recovery grow hook: clears the FIFO queues at every (src, dst) key that
  // touches a rejoining rank — stale doomed entries queued while the rank
  // was dead would otherwise match fresh post-rejoin traffic. Returns the
  // number of queued ops cancelled.
  std::uint64_t drain_rejoined(const std::vector<int>& rejoined);

  sim::Scheduler* sched_;
  // Shared with every P2pOp this engine creates (see Rendezvous).
  std::shared_ptr<std::recursive_mutex> mu_ = std::make_shared<std::recursive_mutex>();
  net::CostModel cost_model_;
  std::vector<int> global_ranks_;
  fault::FaultInjector* faults_;
  std::string backend_name_;
  // Key: src * size + dst. Queues of operations where only one side arrived.
  std::map<std::int64_t, std::vector<std::shared_ptr<P2pOp>>> pending_sends_;
  std::map<std::int64_t, std::vector<std::shared_ptr<P2pOp>>> pending_recvs_;
  std::uint64_t drain_id_ = 0;
  std::uint64_t grow_id_ = 0;
};

}  // namespace mcrdl::backends_detail
