#include "src/backends/backend.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace mcrdl {

using backends_detail::ArrivalSlot;
using backends_detail::OpDesc;

// ---------------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------------

namespace {

// Every communicator's cost model feeds the cluster-wide link-usage
// accumulator (so link-utilization gauges cover all backends and groups)
// and reads the cluster's shared tenant-contention state.
net::CostModel instrumented_cost_model(Backend* backend) {
  net::CostModel model(&backend->cluster()->topology(), backend->profile());
  model.set_usage(&backend->cluster()->link_usage());
  model.set_contention(&backend->cluster()->contention());
  return model;
}

}  // namespace

Comm::Comm(Backend* backend, std::vector<int> ranks)
    : backend_(backend),
      ranks_(std::move(ranks)),
      engine_(&backend->cluster()->scheduler(), instrumented_cost_model(backend),
              net::CommShape::of(backend->cluster()->topology(), ranks_),
              static_cast<int>(ranks_.size()), ranks_, &backend->cluster()->faults(),
              backend->profile().name),
      p2p_(&backend->cluster()->scheduler(), instrumented_cost_model(backend), ranks_,
           &backend->cluster()->faults(), backend->profile().name) {
  MCRDL_REQUIRE(!ranks_.empty(), "communicator needs at least one rank");
  std::set<int> seen;
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    MCRDL_REQUIRE(seen.insert(ranks_[i]).second, "duplicate rank in communicator group");
    group_rank_[ranks_[i]] = static_cast<int>(i);
  }
}

int Comm::group_rank(int global_rank) const {
  auto it = group_rank_.find(global_rank);
  MCRDL_REQUIRE(it != group_rank_.end(), "rank is not a member of this communicator");
  return it->second;
}

bool Comm::contains(int global_rank) const { return group_rank_.count(global_rank) > 0; }

void Comm::validate_root(int root) const {
  MCRDL_REQUIRE(root >= 0 && root < size(), "root out of range for communicator");
}

void Comm::inject_launch_delay(int global_rank) {
  fault::FaultInjector& faults = backend_->cluster()->faults();
  if (!faults.enabled()) return;
  // Stragglers add a flat per-op delay; slowdowns stretch the backend's
  // launch overhead. Both are charged to this rank's host thread before the
  // operation is posted, so the rendezvous genuinely waits for it.
  const SimTime delay =
      faults.rank_delay(global_rank) +
      (faults.rank_launch_scale(global_rank) - 1.0) * backend_->profile().launch_overhead_us;
  if (delay <= 0.0) return;
  faults.note_injected_delay(delay);
  backend_->cluster()->scheduler().sleep_for(delay);
}

Work Comm::submit(int rank, OpDesc desc, ArrivalSlot slot, bool async_op) {
  backend_->require_initialized();
  inject_launch_delay(rank);
  if (!backend_->profile().is_native(desc.op)) {
    std::ostringstream msg;
    msg << backend_->display_name() << " has no native " << op_name(desc.op)
        << " (MCR-DL emulates it from native primitives)";
    throw UnsupportedOperation(msg.str());
  }
  Work work = backend_->post_collective(*this, rank, desc, std::move(slot), async_op);
  work->op = desc.op;
  work->backend_name = backend_->name();
  work->posted_at = backend_->cluster()->scheduler().now();
  backend_->track(rank, work);
  if (!async_op) work->wait();
  return work;
}

Work Comm::all_reduce(int rank, Tensor tensor, ReduceOp op, bool async_op,
                      double launch_discount_us) {
  MCRDL_REQUIRE(tensor.defined(), "all_reduce needs a defined tensor");
  MCRDL_REQUIRE(launch_discount_us >= 0.0, "launch discount must be non-negative");
  (void)group_rank(rank);
  OpDesc desc{OpType::AllReduce, tensor.bytes(), 0, op, launch_discount_us};
  ArrivalSlot slot;
  slot.input = std::move(tensor);
  return submit(rank, desc, std::move(slot), async_op);
}

Work Comm::broadcast(int rank, Tensor tensor, int root, bool async_op) {
  MCRDL_REQUIRE(tensor.defined(), "broadcast needs a defined tensor");
  validate_root(root);
  (void)group_rank(rank);
  OpDesc desc{OpType::Broadcast, tensor.bytes(), root, ReduceOp::Sum};
  ArrivalSlot slot;
  slot.input = std::move(tensor);
  return submit(rank, desc, std::move(slot), async_op);
}

Work Comm::reduce(int rank, Tensor tensor, int root, ReduceOp op, bool async_op) {
  MCRDL_REQUIRE(tensor.defined(), "reduce needs a defined tensor");
  validate_root(root);
  (void)group_rank(rank);
  OpDesc desc{OpType::Reduce, tensor.bytes(), root, op};
  ArrivalSlot slot;
  slot.input = std::move(tensor);
  return submit(rank, desc, std::move(slot), async_op);
}

Work Comm::all_gather(int rank, Tensor output, Tensor input, bool async_op) {
  MCRDL_REQUIRE(input.defined() && output.defined(), "all_gather needs input and output");
  MCRDL_REQUIRE(output.numel() == input.numel() * size(),
                "all_gather output must hold size() blocks of the input");
  (void)group_rank(rank);
  OpDesc desc{OpType::AllGather, input.bytes(), 0, ReduceOp::Sum};
  ArrivalSlot slot;
  slot.input = std::move(input);
  slot.output = std::move(output);
  return submit(rank, desc, std::move(slot), async_op);
}

Work Comm::all_gatherv(int rank, Tensor output, Tensor input, std::vector<int> recv_counts,
                       std::vector<int> recv_displs, bool async_op) {
  MCRDL_REQUIRE(input.defined() && output.defined(), "all_gatherv needs input and output");
  MCRDL_REQUIRE(recv_counts.size() == static_cast<std::size_t>(size()) &&
                    recv_displs.size() == static_cast<std::size_t>(size()),
                "all_gatherv counts/displs must have one entry per rank");
  const int idx = group_rank(rank);
  MCRDL_REQUIRE(input.numel() >= recv_counts[static_cast<std::size_t>(idx)],
                "all_gatherv input smaller than this rank's declared count");
  OpDesc desc{OpType::AllGatherV, input.bytes(), 0, ReduceOp::Sum};
  ArrivalSlot slot;
  slot.input = std::move(input);
  slot.output = std::move(output);
  slot.recv_counts = std::move(recv_counts);
  slot.recv_displs = std::move(recv_displs);
  return submit(rank, desc, std::move(slot), async_op);
}

Work Comm::gather(int rank, Tensor output, Tensor input, int root, bool async_op) {
  MCRDL_REQUIRE(input.defined(), "gather needs an input tensor");
  validate_root(root);
  const int idx = group_rank(rank);
  if (idx == root) {
    MCRDL_REQUIRE(output.defined() && output.numel() == input.numel() * size(),
                  "gather root output must hold size() blocks of the input");
  }
  OpDesc desc{OpType::Gather, input.bytes(), root, ReduceOp::Sum};
  ArrivalSlot slot;
  slot.input = std::move(input);
  slot.output = std::move(output);
  return submit(rank, desc, std::move(slot), async_op);
}

Work Comm::gatherv(int rank, Tensor output, Tensor input, int root, std::vector<int> recv_counts,
                   std::vector<int> recv_displs, bool async_op) {
  MCRDL_REQUIRE(input.defined(), "gatherv needs an input tensor");
  validate_root(root);
  const int idx = group_rank(rank);
  if (idx == root) {
    MCRDL_REQUIRE(output.defined(), "gatherv root needs an output tensor");
    MCRDL_REQUIRE(recv_counts.size() == static_cast<std::size_t>(size()) &&
                      recv_displs.size() == static_cast<std::size_t>(size()),
                  "gatherv counts/displs must have one entry per rank");
  }
  OpDesc desc{OpType::GatherV, input.bytes(), root, ReduceOp::Sum};
  ArrivalSlot slot;
  slot.input = std::move(input);
  slot.output = std::move(output);
  slot.recv_counts = std::move(recv_counts);
  slot.recv_displs = std::move(recv_displs);
  return submit(rank, desc, std::move(slot), async_op);
}

Work Comm::scatter(int rank, Tensor output, Tensor input, int root, bool async_op) {
  MCRDL_REQUIRE(output.defined(), "scatter needs an output tensor");
  validate_root(root);
  const int idx = group_rank(rank);
  if (idx == root) {
    MCRDL_REQUIRE(input.defined() && input.numel() == output.numel() * size(),
                  "scatter root input must hold size() blocks of the output");
  }
  OpDesc desc{OpType::Scatter, output.bytes(), root, ReduceOp::Sum};
  ArrivalSlot slot;
  slot.input = std::move(input);
  slot.output = std::move(output);
  return submit(rank, desc, std::move(slot), async_op);
}

Work Comm::scatterv(int rank, Tensor output, Tensor input, int root, std::vector<int> send_counts,
                    std::vector<int> send_displs, bool async_op) {
  MCRDL_REQUIRE(output.defined(), "scatterv needs an output tensor");
  validate_root(root);
  const int idx = group_rank(rank);
  if (idx == root) {
    MCRDL_REQUIRE(input.defined(), "scatterv root needs an input tensor");
    MCRDL_REQUIRE(send_counts.size() == static_cast<std::size_t>(size()) &&
                      send_displs.size() == static_cast<std::size_t>(size()),
                  "scatterv counts/displs must have one entry per rank");
  }
  OpDesc desc{OpType::ScatterV, output.bytes(), root, ReduceOp::Sum};
  ArrivalSlot slot;
  slot.input = std::move(input);
  slot.output = std::move(output);
  slot.send_counts = std::move(send_counts);
  slot.send_displs = std::move(send_displs);
  return submit(rank, desc, std::move(slot), async_op);
}

Work Comm::reduce_scatter(int rank, Tensor output, Tensor input, ReduceOp op, bool async_op) {
  MCRDL_REQUIRE(input.defined() && output.defined(), "reduce_scatter needs input and output");
  MCRDL_REQUIRE(input.numel() == output.numel() * size(),
                "reduce_scatter input must hold size() blocks of the output");
  (void)group_rank(rank);
  OpDesc desc{OpType::ReduceScatter, input.bytes(), 0, op};
  ArrivalSlot slot;
  slot.input = std::move(input);
  slot.output = std::move(output);
  return submit(rank, desc, std::move(slot), async_op);
}

Work Comm::all_to_all_single(int rank, Tensor output, Tensor input, bool async_op) {
  MCRDL_REQUIRE(input.defined() && output.defined(), "all_to_all_single needs input and output");
  MCRDL_REQUIRE(input.numel() % size() == 0, "all_to_all_single input not divisible by size()");
  MCRDL_REQUIRE(output.numel() % size() == 0, "all_to_all_single output not divisible by size()");
  (void)group_rank(rank);
  OpDesc desc{OpType::AllToAllSingle, input.bytes(), 0, ReduceOp::Sum};
  ArrivalSlot slot;
  slot.input = std::move(input);
  slot.output = std::move(output);
  return submit(rank, desc, std::move(slot), async_op);
}

Work Comm::all_to_all(int rank, TensorList outputs, TensorList inputs, bool async_op) {
  MCRDL_REQUIRE(inputs.size() == static_cast<std::size_t>(size()),
                "all_to_all needs one input tensor per rank");
  MCRDL_REQUIRE(outputs.size() == static_cast<std::size_t>(size()),
                "all_to_all needs one output tensor per rank");
  (void)group_rank(rank);
  OpDesc desc{OpType::AllToAll, total_bytes(inputs), 0, ReduceOp::Sum};
  ArrivalSlot slot;
  slot.inputs = std::move(inputs);
  slot.outputs = std::move(outputs);
  return submit(rank, desc, std::move(slot), async_op);
}

Work Comm::all_to_allv(int rank, Tensor output, Tensor input, std::vector<int> send_counts,
                       std::vector<int> send_displs, std::vector<int> recv_counts,
                       std::vector<int> recv_displs, bool async_op) {
  MCRDL_REQUIRE(input.defined() && output.defined(), "all_to_allv needs input and output");
  const auto n = static_cast<std::size_t>(size());
  MCRDL_REQUIRE(send_counts.size() == n && send_displs.size() == n && recv_counts.size() == n &&
                    recv_displs.size() == n,
                "all_to_allv counts/displs must have one entry per rank");
  (void)group_rank(rank);
  OpDesc desc{OpType::AllToAllV, input.bytes(), 0, ReduceOp::Sum};
  ArrivalSlot slot;
  slot.input = std::move(input);
  slot.output = std::move(output);
  slot.send_counts = std::move(send_counts);
  slot.send_displs = std::move(send_displs);
  slot.recv_counts = std::move(recv_counts);
  slot.recv_displs = std::move(recv_displs);
  return submit(rank, desc, std::move(slot), async_op);
}

Work Comm::barrier(int rank, bool async_op) {
  (void)group_rank(rank);
  OpDesc desc{OpType::Barrier, 0, 0, ReduceOp::Sum};
  return submit(rank, desc, ArrivalSlot{}, async_op);
}

Work Comm::send(int rank, Tensor tensor, int dst, bool async_op) {
  backend_->require_initialized();
  MCRDL_REQUIRE(tensor.defined(), "send needs a defined tensor");
  const int idx = group_rank(rank);
  MCRDL_REQUIRE(dst >= 0 && dst < size() && dst != idx, "invalid send destination");
  inject_launch_delay(rank);
  auto op = p2p_.post_send(idx, dst, tensor);
  Work work = backend_->post_p2p(*this, rank, /*is_send=*/true, op, tensor.bytes(), async_op);
  work->op = OpType::Send;
  work->backend_name = backend_->name();
  work->posted_at = backend_->cluster()->scheduler().now();
  backend_->track(rank, work);
  if (!async_op) work->wait();
  return work;
}

Work Comm::issue(int rank, const OpRequest& req) {
  // Per-backend traffic accounting: one increment per native issue attempt
  // (retries and failover re-issues count — that is the point: the counters
  // show where traffic actually went, not where it was asked to go).
  obs::MetricsRegistry& metrics = backend_->cluster()->metrics();
  metrics.counter("comm_ops", {{"backend", backend_->name()}, {"op", op_name(req.op)}}).inc();
  metrics.counter("comm_bytes", {{"backend", backend_->name()}}).inc(req.payload_bytes());
  switch (req.op) {
    case OpType::AllReduce:
      return all_reduce(rank, req.tensor, req.rop, req.async_op);
    case OpType::Broadcast:
      return broadcast(rank, req.tensor, req.root, req.async_op);
    case OpType::Reduce:
      return reduce(rank, req.tensor, req.root, req.rop, req.async_op);
    case OpType::AllGather:
      return all_gather(rank, req.output, req.input, req.async_op);
    case OpType::AllGatherV:
      return all_gatherv(rank, req.output, req.input, req.recv_counts, req.recv_displs,
                         req.async_op);
    case OpType::Gather:
      return gather(rank, req.output, req.input, req.root, req.async_op);
    case OpType::GatherV:
      return gatherv(rank, req.output, req.input, req.root, req.recv_counts, req.recv_displs,
                     req.async_op);
    case OpType::Scatter:
      return scatter(rank, req.output, req.input, req.root, req.async_op);
    case OpType::ScatterV:
      return scatterv(rank, req.output, req.input, req.root, req.send_counts, req.send_displs,
                      req.async_op);
    case OpType::ReduceScatter:
      return reduce_scatter(rank, req.output, req.input, req.rop, req.async_op);
    case OpType::AllToAllSingle:
      return all_to_all_single(rank, req.output, req.input, req.async_op);
    case OpType::AllToAll:
      return all_to_all(rank, req.outputs, req.inputs, req.async_op);
    case OpType::AllToAllV:
      return all_to_allv(rank, req.output, req.input, req.send_counts, req.send_displs,
                         req.recv_counts, req.recv_displs, req.async_op);
    case OpType::Barrier:
      return barrier(rank, req.async_op);
    case OpType::Send:
      return send(rank, req.tensor, req.peer, req.async_op);
    case OpType::Recv:
      return recv(rank, req.tensor, req.peer, req.async_op);
  }
  throw InvalidArgument("Comm::issue: unknown OpType");
}

Work Comm::recv(int rank, Tensor tensor, int src, bool async_op) {
  backend_->require_initialized();
  MCRDL_REQUIRE(tensor.defined(), "recv needs a defined tensor");
  const int idx = group_rank(rank);
  MCRDL_REQUIRE(src >= 0 && src < size() && src != idx, "invalid recv source");
  inject_launch_delay(rank);
  auto op = p2p_.post_recv(idx, src, tensor);
  Work work = backend_->post_p2p(*this, rank, /*is_send=*/false, op, tensor.bytes(), async_op);
  work->op = OpType::Recv;
  work->backend_name = backend_->name();
  work->posted_at = backend_->cluster()->scheduler().now();
  backend_->track(rank, work);
  if (!async_op) work->wait();
  return work;
}

// ---------------------------------------------------------------------------
// Backend
// ---------------------------------------------------------------------------

Backend::Backend(ClusterContext* cluster, net::BackendProfile profile)
    : cluster_(cluster),
      profile_(std::move(profile)),
      outstanding_(static_cast<std::size_t>(cluster->world_size())) {
  MCRDL_REQUIRE(cluster_ != nullptr, "backend needs a cluster context");
}

void Backend::init() {
  MCRDL_CHECK(!initialized_) << "backend " << name() << " initialised twice";
  initialized_ = true;
}

void Backend::finalize() {
  require_initialized();
  initialized_ = false;
}

void Backend::require_initialized() const {
  if (!initialized_) {
    throw BackendStateError("backend '" + name() + "' is not initialised (call init first)");
  }
}

void Backend::synchronize(int rank) {
  require_initialized();
  MCRDL_REQUIRE(rank >= 0 && rank < cluster_->world_size(), "synchronize rank out of range");
  auto& pending = outstanding_[static_cast<std::size_t>(rank)];
  // Work handles may enqueue more work while we drain, so swap out first.
  std::vector<Work> draining;
  draining.swap(pending);
  for (auto& w : draining) {
    try {
      w->synchronize();
    } catch (const RankLostError&) {
      // The op was cancelled by a recovery quiesce. Its error already
      // surfaced at the issue path (and the op was replayed on the shrunk
      // communicator); a survivor's flush must not rethrow it again.
    }
  }
}

void Backend::track(int rank, const Work& work) {
  auto& pending = outstanding_[static_cast<std::size_t>(rank)];
  // Keep the set bounded: drop already-completed handles opportunistically.
  if (pending.size() >= 256) {
    std::erase_if(pending, [](const Work& w) { return w->test(); });
  }
  pending.push_back(work);
}

Comm* Backend::world() {
  std::lock_guard<std::mutex> lock(comm_mu_);
  if (!world_) {
    std::vector<int> ranks(static_cast<std::size_t>(cluster_->world_size()));
    for (int r = 0; r < cluster_->world_size(); ++r) ranks[static_cast<std::size_t>(r)] = r;
    world_ = std::make_unique<Comm>(this, std::move(ranks));
  }
  return world_.get();
}

Comm* Backend::group(const std::vector<int>& ranks) {
  std::lock_guard<std::mutex> lock(comm_mu_);
  auto it = groups_.find(ranks);
  if (it == groups_.end()) {
    it = groups_.emplace(ranks, std::make_unique<Comm>(this, ranks)).first;
  }
  return it->second.get();
}

// ---------------------------------------------------------------------------
// StreamBackend
// ---------------------------------------------------------------------------

StreamBackend::StreamBackend(ClusterContext* cluster, net::BackendProfile profile)
    : Backend(cluster, std::move(profile)),
      pools_(static_cast<std::size_t>(cluster->world_size())),
      next_stream_(static_cast<std::size_t>(cluster->world_size()), 0) {
  for (int r = 0; r < cluster->world_size(); ++r) {
    auto& pool = pools_[static_cast<std::size_t>(r)];
    for (int s = 0; s < kStreamPoolSize; ++s) {
      pool.push_back(cluster->device(r)->create_stream(name() + "-comm" + std::to_string(s)));
    }
  }
}

sim::Stream* StreamBackend::comm_stream(int rank, std::size_t bytes) {
  auto& pool = pools_[static_cast<std::size_t>(rank)];
  if (bytes > kConcurrentSmallMessageLimit) return pool[0];
  int& cursor = next_stream_[static_cast<std::size_t>(rank)];
  sim::Stream* s = pool[static_cast<std::size_t>(cursor)];
  cursor = (cursor + 1) % kStreamPoolSize;
  return s;
}

Work StreamBackend::post_collective(Comm& comm, int global_rank, const OpDesc& desc,
                                    ArrivalSlot slot, bool /*async_op*/) {
  const int idx = comm.group_rank(global_rank);
  auto rv = comm.engine().join(idx, desc, std::move(slot));
  sim::Scheduler& sched = cluster_->scheduler();
  sim::Device* dev = cluster_->device(global_rank);
  sim::Stream* stream = comm_stream(global_rank, desc.bytes);

  // Input dependency: the communication stream waits for everything the
  // default stream has produced so far (fine-grained event, Fig 4(b) step 2).
  auto input_ready = std::make_shared<sim::Event>(&sched);
  dev->default_stream()->record_event(input_ready);
  stream->wait_event(input_ready);
  // Stream-side arrival: the collective "kernel" starts when the stream
  // reaches this point on every rank.
  stream->add_callback([rv, idx] { rv->mark_ready(idx); });
  stream->wait_gate(rv->gate(idx));
  auto done = std::make_shared<sim::Event>(&sched);
  stream->record_event(done);
  auto work = std::make_shared<StreamWork>(done, dev->default_stream());
  rv->on_complete([work, rv_raw = rv.get()] { work->exec_start = rv_raw->exec_start_time(); });
  return work;
}

Work StreamBackend::post_p2p(Comm& comm, int global_rank, bool is_send,
                             std::shared_ptr<backends_detail::P2pOp> op, std::size_t bytes,
                             bool /*async_op*/) {
  (void)comm;
  sim::Scheduler& sched = cluster_->scheduler();
  sim::Device* dev = cluster_->device(global_rank);
  sim::Stream* stream = comm_stream(global_rank, bytes);

  auto input_ready = std::make_shared<sim::Event>(&sched);
  dev->default_stream()->record_event(input_ready);
  stream->wait_event(input_ready);
  if (is_send) {
    stream->add_callback([op] { op->mark_send_ready(); });
    stream->wait_gate(op->send_gate());
  } else {
    stream->add_callback([op] { op->mark_recv_ready(); });
    stream->wait_gate(op->recv_gate());
  }
  auto done = std::make_shared<sim::Event>(&sched);
  stream->record_event(done);
  auto work = std::make_shared<StreamWork>(done, dev->default_stream());
  op->on_complete([work, op_raw = op.get()] { work->exec_start = op_raw->exec_start_time(); });
  return work;
}

// ---------------------------------------------------------------------------
// HostMpiBackend
// ---------------------------------------------------------------------------

HostMpiBackend::HostMpiBackend(ClusterContext* cluster, net::BackendProfile profile)
    : Backend(cluster, std::move(profile)) {}

Work HostMpiBackend::post_collective(Comm& comm, int global_rank, const OpDesc& desc,
                                     ArrivalSlot slot, bool /*async_op*/) {
  const int idx = comm.group_rank(global_rank);
  auto rv = comm.engine().join(idx, desc, std::move(slot));
  // CUDA-aware MPI lets the library manage streams (paper Section V-D,
  // option 1): the operation may start once the data produced on this
  // rank's default stream so far is complete.
  cluster_->device(global_rank)->default_stream()->add_callback([rv, idx] { rv->mark_ready(idx); });
  auto work = std::make_shared<HostWork>(rv);
  rv->on_complete([work, rv_raw = rv.get()] { work->exec_start = rv_raw->exec_start_time(); });
  return work;
}

Work HostMpiBackend::post_p2p(Comm& comm, int global_rank, bool is_send,
                              std::shared_ptr<backends_detail::P2pOp> op, std::size_t /*bytes*/,
                              bool /*async_op*/) {
  (void)comm;
  if (is_send) {
    cluster_->device(global_rank)->default_stream()->add_callback(
        [op] { op->mark_send_ready(); });
  } else {
    cluster_->device(global_rank)->default_stream()->add_callback(
        [op] { op->mark_recv_ready(); });
  }
  auto work = std::make_shared<HostWork>(op);
  op->on_complete([work, op_raw = op.get()] { work->exec_start = op_raw->exec_start_time(); });
  return work;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<Backend> make_backend(const std::string& name, ClusterContext* cluster) {
  if (name == "nccl") return std::make_unique<StreamBackend>(cluster, net::nccl_profile());
  if (name == "sccl") return std::make_unique<StreamBackend>(cluster, net::sccl_profile());
  if (name == "mv2-gdr") return std::make_unique<HostMpiBackend>(cluster, net::mv2_gdr_profile());
  if (name == "ompi") return std::make_unique<HostMpiBackend>(cluster, net::ompi_profile());
  // Extensibility demo: a new backend is one profile + one factory line.
  if (name == "gloo") return std::make_unique<HostMpiBackend>(cluster, net::gloo_profile());
  throw InvalidArgument("unknown backend '" + name +
                        "' (available: nccl, sccl, mv2-gdr, ompi, gloo)");
}

// The paper's four evaluated backends; "gloo" is also accepted by
// make_backend but stays out of tuning sweeps by default.
std::vector<std::string> available_backend_names() { return {"mv2-gdr", "ompi", "nccl", "sccl"}; }

}  // namespace mcrdl
