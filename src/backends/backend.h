// The "backend as a class" layer (paper Table I, Section V-B).
//
// A Backend is one communication library instance over the whole simulated
// cluster (e.g. "nccl"). It owns per-rank communication-stream pools (for
// stream-aware libraries) and hands out Comm objects — communicators over a
// rank subset — on which the actual operations are posted. Two families:
//
//   * StreamBackend (NCCL, SCCL): operations travel through a communication
//     stream; input readiness and completion are CUDA events/gates; wait()
//     on the returned Work is a stream-level dependency.
//   * HostMpiBackend (MVAPICH2-GDR, OpenMPI): CUDA-aware MPI semantics; the
//     host posts operations, blocking calls suspend the host actor, and
//     non-blocking calls return MPI_Request-like handles.
//
// Comm methods take the caller's *global* rank (the per-rank binding lives
// in the MCR-DL core facade); roots and peers are group-rank indices.
// Operations the library does not support natively throw
// UnsupportedOperation — the MCR-DL emulation layer builds them from native
// primitives one level up.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/backends/cluster.h"
#include "src/backends/engine.h"
#include "src/backends/op_request.h"
#include "src/backends/work.h"
#include "src/net/cost.h"
#include "src/tensor/tensor.h"

namespace mcrdl {

class Backend;

// One communicator (rank group) of one backend.
class Comm {
 public:
  Comm(Backend* backend, std::vector<int> ranks);

  Backend* backend() const { return backend_; }
  int size() const { return static_cast<int>(ranks_.size()); }
  const std::vector<int>& ranks() const { return ranks_; }
  // Dense index of a global rank within this communicator.
  int group_rank(int global_rank) const;
  bool contains(int global_rank) const;

  // --- collectives (PyTorch-distributed calling conventions) --------------
  // In-place allreduce on `tensor`. `launch_discount_us` is used by
  // persistent collectives to amortise setup cost (src/core/persistent.h).
  Work all_reduce(int rank, Tensor tensor, ReduceOp op, bool async_op,
                  double launch_discount_us = 0.0);
  Work broadcast(int rank, Tensor tensor, int root, bool async_op);
  // Reduction lands in `tensor` on root (in-place like torch.reduce).
  Work reduce(int rank, Tensor tensor, int root, ReduceOp op, bool async_op);
  // `output` holds size() blocks of input.numel() elements.
  Work all_gather(int rank, Tensor output, Tensor input, bool async_op);
  Work all_gatherv(int rank, Tensor output, Tensor input, std::vector<int> recv_counts,
                   std::vector<int> recv_displs, bool async_op);
  Work gather(int rank, Tensor output, Tensor input, int root, bool async_op);
  Work gatherv(int rank, Tensor output, Tensor input, int root, std::vector<int> recv_counts,
               std::vector<int> recv_displs, bool async_op);
  Work scatter(int rank, Tensor output, Tensor input, int root, bool async_op);
  Work scatterv(int rank, Tensor output, Tensor input, int root, std::vector<int> send_counts,
                std::vector<int> send_displs, bool async_op);
  Work reduce_scatter(int rank, Tensor output, Tensor input, ReduceOp op, bool async_op);
  Work all_to_all_single(int rank, Tensor output, Tensor input, bool async_op);
  Work all_to_all(int rank, TensorList outputs, TensorList inputs, bool async_op);
  Work all_to_allv(int rank, Tensor output, Tensor input, std::vector<int> send_counts,
                   std::vector<int> send_displs, std::vector<int> recv_counts,
                   std::vector<int> recv_displs, bool async_op);
  Work barrier(int rank, bool async_op);

  // --- point-to-point -------------------------------------------------------
  Work send(int rank, Tensor tensor, int dst, bool async_op);
  Work recv(int rank, Tensor tensor, int src, bool async_op);

  // Generic entry point: dispatches an OpRequest onto the matching native
  // method above. Non-native operations still throw UnsupportedOperation —
  // emulation::issue (src/core/emulation.h) is the layer that rewrites them.
  Work issue(int rank, const OpRequest& req);

  backends_detail::CollectiveEngine& engine() { return engine_; }

 private:
  friend class Backend;

  Work submit(int rank, backends_detail::OpDesc desc, backends_detail::ArrivalSlot slot,
              bool async_op);
  void validate_root(int root) const;
  // Charges injected straggler/slowdown time to `rank`'s host launch path
  // (no-op unless a fault plan is active — see src/fault/injector.h).
  void inject_launch_delay(int global_rank);

  Backend* backend_;
  std::vector<int> ranks_;
  std::map<int, int> group_rank_;  // global rank -> dense index
  backends_detail::CollectiveEngine engine_;
  backends_detail::P2pEngine p2p_;
};

class Backend {
 public:
  Backend(ClusterContext* cluster, net::BackendProfile profile);
  virtual ~Backend() = default;

  const std::string& name() const { return profile_.name; }
  const std::string& display_name() const { return profile_.display_name; }
  const net::BackendProfile& profile() const { return profile_; }
  ClusterContext* cluster() const { return cluster_; }
  bool stream_synchronized() const { return profile_.stream_aware; }

  // Lifecycle (paper API: init/finalize/synchronize per backend).
  void init();
  void finalize();
  bool initialized() const { return initialized_; }
  // Completes all outstanding operations posted by `rank` on this backend.
  void synchronize(int rank);

  // The all-ranks communicator.
  Comm* world();
  // A cached sub-communicator over the given global ranks.
  Comm* group(const std::vector<int>& ranks);

  // Number of communication streams per rank (stream-aware backends).
  static constexpr int kStreamPoolSize = 4;
  // Messages at or below this size round-robin across the pool; larger ones
  // serialise on stream 0 (concurrent large transfers are bandwidth-bound
  // and gain nothing — paper Section V-C).
  static constexpr std::size_t kConcurrentSmallMessageLimit = 64 * 1024;

 protected:
  friend class Comm;

  // Posts a collective with backend-family-specific readiness/completion
  // wiring; returns the caller's Work handle.
  virtual Work post_collective(Comm& comm, int global_rank, const backends_detail::OpDesc& desc,
                               backends_detail::ArrivalSlot slot, bool async_op) = 0;
  virtual Work post_p2p(Comm& comm, int global_rank, bool is_send,
                        std::shared_ptr<backends_detail::P2pOp> op, std::size_t bytes,
                        bool async_op) = 0;

  void require_initialized() const;
  // Tracks an operation for synchronize().
  void track(int rank, const Work& work);

  ClusterContext* cluster_;
  net::BackendProfile profile_;
  std::atomic<bool> initialized_{false};
  // Guards lazy communicator creation (world_/groups_) — under the parallel
  // execution model several actors can request the same group at once. The
  // outstanding_ vectors need no lock: each rank's actor touches only its
  // own slot, and the vector itself never resizes after construction.
  std::mutex comm_mu_;
  std::unique_ptr<Comm> world_;
  std::map<std::vector<int>, std::unique_ptr<Comm>> groups_;
  std::vector<std::vector<Work>> outstanding_;  // per global rank
};

// NCCL/SCCL-style stream-synchronised backend.
class StreamBackend : public Backend {
 public:
  StreamBackend(ClusterContext* cluster, net::BackendProfile profile);

  // Picks the communication stream for a message of `bytes` on `rank`.
  sim::Stream* comm_stream(int rank, std::size_t bytes);

 protected:
  Work post_collective(Comm& comm, int global_rank, const backends_detail::OpDesc& desc,
                       backends_detail::ArrivalSlot slot, bool async_op) override;
  Work post_p2p(Comm& comm, int global_rank, bool is_send,
                std::shared_ptr<backends_detail::P2pOp> op, std::size_t bytes,
                bool async_op) override;

 private:
  std::vector<std::vector<sim::Stream*>> pools_;  // [rank][stream]
  std::vector<int> next_stream_;                  // round-robin cursor per rank
};

// CUDA-aware MPI backend synchronised on the host thread.
class HostMpiBackend : public Backend {
 public:
  HostMpiBackend(ClusterContext* cluster, net::BackendProfile profile);

 protected:
  Work post_collective(Comm& comm, int global_rank, const backends_detail::OpDesc& desc,
                       backends_detail::ArrivalSlot slot, bool async_op) override;
  Work post_p2p(Comm& comm, int global_rank, bool is_send,
                std::shared_ptr<backends_detail::P2pOp> op, std::size_t bytes,
                bool async_op) override;
};

// Creates a backend by registry name: "nccl", "sccl", "mv2-gdr", "ompi".
std::unique_ptr<Backend> make_backend(const std::string& name, ClusterContext* cluster);
// Names accepted by make_backend, in the paper's order.
std::vector<std::string> available_backend_names();

}  // namespace mcrdl
