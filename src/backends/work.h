// Asynchronous work handles — what every MCR-DL communication call returns.
//
// Two completion disciplines exist, matching the two backend families
// (paper Section V-C/V-D):
//   * StreamWork (NCCL/SCCL): completion is a CUDA event on the backend's
//     communication stream. wait() inserts a stream-level dependency on the
//     caller's default stream — the host does NOT block (this is the
//     fine-grained synchronisation of Figure 4(b)). synchronize() blocks the
//     host actor.
//   * HostWork (MPI): completion is a host-side flag guarded by a virtual
//     condition (MPI_Wait semantics). wait() and synchronize() both block
//     the host actor.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "src/common/units.h"
#include "src/net/comm_types.h"

namespace mcrdl {

namespace sim {
class Event;
class Stream;
}  // namespace sim

class WorkHandle {
 public:
  virtual ~WorkHandle() = default;

  // True once the operation has completed (MPI_Test / cudaEventQuery).
  virtual bool test() const = 0;
  // Orders the operation before subsequent work as seen from the caller's
  // default stream; see class comment for per-family behaviour.
  virtual void wait() = 0;
  // Blocks the calling actor until the operation has completed.
  virtual void synchronize() = 0;
  // Virtual time at which the operation completed (valid once test()).
  virtual SimTime complete_time() const = 0;
  // Runs fn at completion time, under the baton, before waiters resume.
  // Fusion slice-back and the communication logger hook in here.
  virtual void on_complete(std::function<void()> fn) = 0;

  OpType op = OpType::Barrier;
  std::string backend_name;
  SimTime posted_at = 0.0;
  // When the operation actually started executing (all participants ready);
  // set by the backend at completion. Negative until known. The logger uses
  // [exec_start, complete] so overlapped queueing time is not billed as
  // communication.
  SimTime exec_start = -1.0;
};

using Work = std::shared_ptr<WorkHandle>;

// Completion via a recorded event on a communication stream.
class StreamWork : public WorkHandle {
 public:
  StreamWork(std::shared_ptr<sim::Event> done_event, sim::Stream* default_stream);

  bool test() const override;
  void wait() override;         // default_stream.wait_event(done_event)
  void synchronize() override;  // host waits on done_event
  SimTime complete_time() const override;
  void on_complete(std::function<void()> fn) override;

 private:
  std::shared_ptr<sim::Event> done_event_;
  sim::Stream* default_stream_;
};

namespace backends_detail {
class Rendezvous;
class P2pOp;
}  // namespace backends_detail

// Completion via a host-side rendezvous flag (MPI request).
class HostWork : public WorkHandle {
 public:
  explicit HostWork(std::shared_ptr<backends_detail::Rendezvous> rendezvous);
  explicit HostWork(std::shared_ptr<backends_detail::P2pOp> p2p);

  bool test() const override;
  void wait() override;  // MPI_Wait: blocks the host
  void synchronize() override { wait(); }
  SimTime complete_time() const override;
  void on_complete(std::function<void()> fn) override;

 private:
  std::shared_ptr<backends_detail::Rendezvous> rendezvous_;
  std::shared_ptr<backends_detail::P2pOp> p2p_;
};

}  // namespace mcrdl
