#include "src/backends/cluster.h"

namespace mcrdl {

ClusterContext::ClusterContext(net::SystemConfig config) : topo_(std::move(config)) {
  const int world = topo_.world_size();
  devices_.reserve(world);
  for (int rank = 0; rank < world; ++rank) {
    devices_.push_back(
        std::make_unique<sim::Device>(&sched_, rank, topo_.node_of(rank), topo_.local_of(rank)));
  }
}

sim::Device* ClusterContext::device(int rank) {
  MCRDL_REQUIRE(rank >= 0 && rank < world_size(), "device rank out of range");
  return devices_[static_cast<std::size_t>(rank)].get();
}

void ClusterContext::run_spmd(const std::function<void(int)>& fn) {
  run_spmd(world_size(), fn);
}

void ClusterContext::run_spmd(int ranks, const std::function<void(int)>& fn) {
  MCRDL_REQUIRE(ranks >= 1 && ranks <= world_size(), "SPMD rank count out of range");
  for (int rank = 0; rank < ranks; ++rank) {
    sched_.spawn("rank" + std::to_string(rank), [fn, rank] { fn(rank); });
  }
  sched_.run();
}

}  // namespace mcrdl
