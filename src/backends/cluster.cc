#include "src/backends/cluster.h"

namespace mcrdl {

ClusterContext::ClusterContext(net::SystemConfig config, sim::ExecutionConfig exec)
    : sched_(exec), topo_(std::move(config)) {
  const int world = topo_.world_size();
  devices_.reserve(world);
  for (int rank = 0; rank < world; ++rank) {
    devices_.push_back(
        std::make_unique<sim::Device>(&sched_, rank, topo_.node_of(rank), topo_.local_of(rank)));
  }
}

sim::Device* ClusterContext::device(int rank) {
  MCRDL_REQUIRE(rank >= 0 && rank < world_size(), "device rank out of range");
  return devices_[static_cast<std::size_t>(rank)].get();
}

void ClusterContext::run_spmd(const std::function<void(int)>& fn) {
  run_spmd(world_size(), fn);
}

void ClusterContext::run_spmd(int ranks, const std::function<void(int)>& fn) {
  MCRDL_REQUIRE(ranks >= 1 && ranks <= world_size(), "SPMD rank count out of range");
  for (int rank = 0; rank < ranks; ++rank) {
    sched_.spawn("rank" + std::to_string(rank), [fn, rank] { fn(rank); });
  }
  sched_.run();
}

std::string ClusterContext::metrics_json() {
  const SimTime now = sched_.now();
  const auto sync = [&](const char* link, const net::LinkUsage::ClassUsage& u) {
    const obs::Labels labels{{"link", link}};
    metrics_.gauge("link_ops", labels).set(static_cast<double>(u.ops));
    metrics_.gauge("link_bytes", labels).set(static_cast<double>(u.bytes));
    metrics_.gauge("link_busy_us", labels).set(u.busy_us);
    // Mean concurrent occupancy of the link class over the run so far; can
    // exceed 1.0 when transfers overlap (many communicators in flight).
    metrics_.gauge("link_utilization", labels).set(now > 0.0 ? u.busy_us / now : 0.0);
  };
  sync("intra", usage_.intra());
  sync("inter", usage_.inter());
  return metrics_.to_json();
}

}  // namespace mcrdl
