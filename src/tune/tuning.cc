#include "src/tune/tuning.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/backends/backend.h"

namespace mcrdl {

// ---------------------------------------------------------------------------
// TuningTable
// ---------------------------------------------------------------------------

void TuningTable::set(OpType op, int world, std::size_t max_bytes, std::string backend) {
  MCRDL_REQUIRE(world >= 1, "tuning table world size must be >= 1");
  MCRDL_REQUIRE(!backend.empty(), "tuning table backend must be non-empty");
  table_[op][world][max_bytes] = std::move(backend);
}

const std::string& TuningTable::lookup(OpType op, int world, std::size_t bytes) const {
  auto op_it = table_.find(op);
  if (op_it == table_.end()) {
    throw InvalidArgument(std::string("no tuning data for operation ") + op_name(op) +
                          " — run the tuning suite or pass an explicit backend");
  }
  const auto& worlds = op_it->second;
  // Prefer the exact world size, then the next tabulated size up (tables
  // generalise downward poorly), then the largest available.
  auto w_it = worlds.lower_bound(world);
  if (w_it == worlds.end()) --w_it;
  const auto& sizes = w_it->second;
  auto s_it = sizes.lower_bound(bytes);
  if (s_it == sizes.end()) --s_it;  // oversized messages use the largest bucket
  return s_it->second;
}

bool TuningTable::has(OpType op) const { return table_.count(op) > 0; }

std::size_t TuningTable::num_entries() const {
  std::size_t n = 0;
  for (const auto& [op, worlds] : table_) {
    for (const auto& [w, sizes] : worlds) n += sizes.size();
  }
  return n;
}

std::vector<TuningTable::Entry> TuningTable::entries(OpType op, int world) const {
  std::vector<Entry> out;
  auto op_it = table_.find(op);
  if (op_it == table_.end()) return out;
  auto w_it = op_it->second.find(world);
  if (w_it == op_it->second.end()) return out;
  for (const auto& [max_bytes, backend] : w_it->second) {
    out.push_back(Entry{op, world, max_bytes, backend});
  }
  return out;
}

std::vector<int> TuningTable::tuned_worlds(OpType op) const {
  std::vector<int> out;
  auto op_it = table_.find(op);
  if (op_it == table_.end()) return out;
  for (const auto& [w, sizes] : op_it->second) out.push_back(w);
  return out;
}

std::string TuningTable::serialize() const {
  std::ostringstream out;
  out << "# mcr-dl tuning table: op world max_bytes backend\n";
  for (const auto& [op, worlds] : table_) {
    for (const auto& [world, sizes] : worlds) {
      for (const auto& [max_bytes, backend] : sizes) {
        out << op_name(op) << " " << world << " " << max_bytes << " " << backend << "\n";
      }
    }
  }
  return out.str();
}

TuningTable TuningTable::parse(const std::string& text) {
  TuningTable table;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string op_str, backend;
    int world = 0;
    std::size_t max_bytes = 0;
    if (!(fields >> op_str >> world >> max_bytes >> backend)) {
      throw InvalidArgument("malformed tuning table line " + std::to_string(line_no) + ": " +
                            line);
    }
    // Exactly four fields per line: trailing tokens are a corrupt or
    // hand-mangled table, not something to silently accept.
    std::string extra;
    if (fields >> extra) {
      throw InvalidArgument("trailing garbage '" + extra + "' on tuning table line " +
                            std::to_string(line_no) + ": " + line);
    }
    OpType op;
    if (!op_from_name(op_str, op)) {
      throw InvalidArgument("unknown operation '" + op_str + "' in tuning table line " +
                            std::to_string(line_no));
    }
    table.set(op, world, max_bytes, backend);
  }
  return table;
}

void TuningTable::save(const std::string& path) const {
  std::ofstream out(path);
  MCRDL_REQUIRE(out.good(), "cannot open tuning table file for writing: " + path);
  out << serialize();
}

TuningTable TuningTable::load(const std::string& path) {
  std::ifstream in(path);
  MCRDL_REQUIRE(in.good(), "cannot open tuning table file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

// ---------------------------------------------------------------------------
// TuningSuite
// ---------------------------------------------------------------------------

TuningSuite::TuningSuite(net::SystemConfig base) : base_(std::move(base)) {}

namespace {

// Rounds `numel` up so every rank owns an equal, nonzero block.
std::int64_t divisible_numel(std::size_t bytes, int world) {
  const std::int64_t numel = std::max<std::int64_t>(static_cast<std::int64_t>(bytes / 4), 1);
  const std::int64_t rem = numel % world;
  return rem == 0 ? numel : numel + (world - rem);
}

// Runs `iterations` timed executions of one blocking collective and returns
// the mean per-operation latency seen by rank 0.
void run_grid_point(ClusterContext& cluster, Backend& backend, OpType op, std::size_t bytes,
                    int world, int warmup, int iterations, SimTime* result) {
  std::vector<int> ranks(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) ranks[static_cast<std::size_t>(r)] = r;
  Comm* comm = backend.group(ranks);
  cluster.run_spmd(world, [&](int rank) {
    sim::Device* dev = cluster.device(rank);
    const std::int64_t numel = divisible_numel(bytes, world);
    auto one_op = [&] {
      switch (op) {
        case OpType::AllReduce: {
          Tensor t = Tensor::phantom({numel}, DType::F32, dev);
          comm->all_reduce(rank, t, ReduceOp::Sum, false);
          break;
        }
        case OpType::AllGather: {
          Tensor in = Tensor::phantom({numel}, DType::F32, dev);
          Tensor out = Tensor::phantom({numel * world}, DType::F32, dev);
          comm->all_gather(rank, out, in, false);
          break;
        }
        case OpType::ReduceScatter: {
          Tensor in = Tensor::phantom({numel}, DType::F32, dev);
          Tensor out = Tensor::phantom({numel / world}, DType::F32, dev);
          comm->reduce_scatter(rank, out, in, ReduceOp::Sum, false);
          break;
        }
        case OpType::Broadcast: {
          Tensor t = Tensor::phantom({numel}, DType::F32, dev);
          comm->broadcast(rank, t, 0, false);
          break;
        }
        case OpType::AllToAllSingle: {
          Tensor in = Tensor::phantom({numel}, DType::F32, dev);
          Tensor out = Tensor::phantom({numel}, DType::F32, dev);
          comm->all_to_all_single(rank, out, in, false);
          break;
        }
        case OpType::Barrier:
          comm->barrier(rank, false);
          break;
        default:
          MCRDL_REQUIRE(false, "tuning suite does not benchmark this operation");
      }
      backend.synchronize(rank);
    };
    for (int i = 0; i < warmup; ++i) one_op();
    const SimTime start = cluster.scheduler().now();
    for (int i = 0; i < iterations; ++i) one_op();
    if (rank == 0) *result = (cluster.scheduler().now() - start) / iterations;
  });
}

}  // namespace

TuningTable TuningSuite::generate(const TuningConfig& config) {
  TuningConfig cfg = config;
  if (cfg.backends.empty()) cfg.backends = available_backend_names();
  if (cfg.world_sizes.empty()) cfg.world_sizes = {base_.world_size()};
  MCRDL_REQUIRE(cfg.iterations >= 1, "tuning iterations must be >= 1");

  measurements_.clear();
  TuningTable table;
  for (int world : cfg.world_sizes) {
    net::SystemConfig sys = base_;
    sys.num_nodes = (world + base_.gpus_per_node - 1) / base_.gpus_per_node;
    for (const auto& backend_name : cfg.backends) {
      // A fresh cluster per (world, backend) keeps grid points independent.
      for (OpType op : cfg.ops) {
        for (std::size_t bytes : cfg.sizes) {
          ClusterContext cluster(sys);
          auto backend = make_backend(backend_name, &cluster);
          backend->init();
          SimTime t = 0.0;
          run_grid_point(cluster, *backend, op, bytes, world, cfg.warmup, cfg.iterations, &t);
          measurements_.push_back(Measurement{backend_name, op, world, bytes, t});
        }
      }
    }
    // Pick the winner per (op, size).
    for (OpType op : cfg.ops) {
      for (std::size_t bytes : cfg.sizes) {
        const Measurement* best = nullptr;
        for (const auto& m : measurements_) {
          if (m.op != op || m.world != world || m.bytes != bytes) continue;
          if (best == nullptr || m.time_us < best->time_us) best = &m;
        }
        MCRDL_CHECK(best != nullptr);
        table.set(op, world, bytes, best->backend);
      }
    }
  }
  return table;
}

SimTime TuningSuite::measured(const std::string& backend, OpType op, int world,
                              std::size_t bytes) const {
  for (const auto& m : measurements_) {
    if (m.backend == backend && m.op == op && m.world == world && m.bytes == bytes) {
      return m.time_us;
    }
  }
  throw InvalidArgument("no measurement for requested tuning grid point");
}

}  // namespace mcrdl
