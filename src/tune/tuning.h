// The MCR-DL tuning suite (paper Section V-F).
//
// TuningTable is the static table mapping (operation, world size, message
// size) → best backend; one is generated per system by TuningSuite, which
// runs micro-benchmarks of every backend over a grid of operations, message
// sizes and scales on a freshly built simulated cluster — exactly the
// workflow the paper describes — and is consulted at runtime whenever the
// special backend string "auto" is passed to an operation.
//
// Table size = Num_Collectives × Num_Scales × Num_Message_Sizes (paper
// Section V-F); tables serialise to a plain-text format for reuse.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/net/comm_types.h"
#include "src/net/topology.h"

namespace mcrdl {

class TuningTable {
 public:
  struct Entry {
    OpType op;
    int world;
    std::size_t max_bytes;  // entry covers message sizes <= max_bytes
    std::string backend;
  };

  // Registers the best backend for messages up to max_bytes at this
  // (op, world) point.
  void set(OpType op, int world, std::size_t max_bytes, std::string backend);

  // Best backend for the given operation/scale/size. Uses the closest
  // tabulated world size (preferring the next one up) and the smallest
  // tabulated size bucket >= bytes, falling back to the largest bucket for
  // oversized messages. Throws if the operation was never tuned.
  const std::string& lookup(OpType op, int world, std::size_t bytes) const;

  bool has(OpType op) const;
  bool empty() const { return table_.empty(); }
  std::size_t num_entries() const;
  // All entries for one (op, world), ordered by message size — the rows of
  // the paper's Table II.
  std::vector<Entry> entries(OpType op, int world) const;
  std::vector<int> tuned_worlds(OpType op) const;

  // Plain-text round trip: one "op world max_bytes backend" line per entry.
  std::string serialize() const;
  static TuningTable parse(const std::string& text);
  void save(const std::string& path) const;
  static TuningTable load(const std::string& path);

 private:
  // op -> world -> (max_bytes -> backend)
  std::map<OpType, std::map<int, std::map<std::size_t, std::string>>> table_;
};

struct TuningConfig {
  std::vector<std::string> backends;  // defaults to all four
  std::vector<OpType> ops = {OpType::AllReduce, OpType::AllGather, OpType::AllToAllSingle,
                             OpType::Broadcast, OpType::ReduceScatter};
  std::vector<std::size_t> sizes = {256,    512,    1024,  2048,  4096,    8192,   16384,
                                    32768,  65536,  1 << 17, 1 << 18, 1 << 20, 1 << 22};
  std::vector<int> world_sizes;  // defaults to the full config world
  int iterations = 3;
  int warmup = 1;
};

class TuningSuite {
 public:
  struct Measurement {
    std::string backend;
    OpType op;
    int world;
    std::size_t bytes;
    SimTime time_us;  // mean per-operation latency
  };

  // `base` supplies the node architecture; the suite scales node counts to
  // reach each requested world size.
  explicit TuningSuite(net::SystemConfig base);

  // Runs the micro-benchmark grid and builds the static tuning table.
  TuningTable generate(const TuningConfig& config);

  const std::vector<Measurement>& measurements() const { return measurements_; }
  // Measured latency for one grid point (throws if absent).
  SimTime measured(const std::string& backend, OpType op, int world, std::size_t bytes) const;

 private:
  net::SystemConfig base_;
  std::vector<Measurement> measurements_;
};

}  // namespace mcrdl
