#include "src/tune/online_tuner.h"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>
#include <utility>

#include "src/common/logging.h"

namespace mcrdl::tune {

namespace {

constexpr double kUnmeasured = std::numeric_limits<double>::infinity();

// A stable per-key salt so every key gets its own explore-schedule phase
// from the one master seed, independent of key creation order.
std::uint64_t key_salt(OpType op, int world, std::size_t bucket) {
  std::uint64_t h = static_cast<std::uint64_t>(op) + 1;
  h = h * 0x100000001b3ull ^ static_cast<std::uint64_t>(world);
  h = h * 0x100000001b3ull ^ static_cast<std::uint64_t>(bucket);
  return h;
}

}  // namespace

OnlineTuner::OnlineTuner(OnlineTunerConfig config, obs::MetricsRegistry* metrics)
    : cfg_(std::move(config)), metrics_(metrics), rng_(cfg_.seed) {
  MCRDL_REQUIRE(cfg_.explore_period >= 2, "explore_period must be >= 2");
  MCRDL_REQUIRE(cfg_.min_samples >= 1, "min_samples must be >= 1");
  MCRDL_REQUIRE(cfg_.baseline_samples >= 1, "baseline_samples must be >= 1");
  MCRDL_REQUIRE(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0, "ewma_alpha must be in (0, 1]");
  MCRDL_REQUIRE(cfg_.drift_threshold > 1.0, "drift_threshold must be > 1");
  MCRDL_REQUIRE(cfg_.quarantine_period >= 1, "quarantine_period must be >= 1");
  MCRDL_REQUIRE(cfg_.hysteresis >= 0.0 && cfg_.hysteresis < 1.0, "hysteresis must be in [0, 1)");
}

void OnlineTuner::seed_prior(TuningTable table) { prior_ = std::move(table); }

std::size_t OnlineTuner::bucket(std::size_t bytes) {
  std::size_t b = 256;
  while (b < bytes) b <<= 1;
  return b;
}

OnlineTuner::KeyState& OnlineTuner::key_state(OpType op, int world, std::size_t bytes) {
  const std::size_t bkt = bucket(bytes);
  const Key key{op, world, bkt};
  auto it = keys_.find(key);
  if (it != keys_.end()) return it->second;
  KeyState k;
  // The seeded phase de-correlates explore schedules across keys; derived
  // from the key itself so creation order cannot perturb it.
  k.explore_offset = rng_.split(key_salt(op, world, bkt))
                         .next_below(static_cast<std::uint64_t>(cfg_.explore_period));
  return keys_.emplace(key, std::move(k)).first->second;
}

const std::string& OnlineTuner::select(OpType op, int world, std::size_t bytes, int rank,
                                       const std::vector<std::string>& candidates) {
  MCRDL_REQUIRE(!candidates.empty(), "online tuner needs at least one candidate backend");
  KeyState& k = key_state(op, world, bytes);
  if (!k.routed) {
    // First routed decision on this key: adopt the caller's preference order
    // and seed the incumbent from the static prior (the paper's winner for
    // this grid point), so the tuner starts from table behaviour and departs
    // from it only on measured evidence. Observe-only traffic may already
    // have populated arms; their samples are kept.
    k.candidates = candidates;
    k.incumbent = candidates.front();
    if (prior_.has_value() && prior_->has(op)) {
      const std::string& winner = prior_->lookup(op, world, bytes);
      if (std::find(candidates.begin(), candidates.end(), winner) != candidates.end()) {
        k.incumbent = winner;
      }
    }
    for (const auto& name : candidates) k.arms[name];
    k.routed = true;
  } else {
    for (const auto& name : candidates) {
      if (std::find(k.candidates.begin(), k.candidates.end(), name) == k.candidates.end()) {
        k.candidates.push_back(name);
        k.arms[name];
      }
    }
  }
  std::size_t& cursor = k.rank_cursor[rank];
  const std::size_t index = cursor++;
  // Another rank already reached this logical decision: replay its choice so
  // the collective stays on one backend across the whole group.
  if (index < k.log.size()) return k.log[index];
  MCRDL_CHECK(index == k.log.size()) << "online tuner decision log skipped an index";
  return decide(k, op);
}

const std::string& OnlineTuner::decide(KeyState& k, OpType op) {
  const std::uint64_t index = static_cast<std::uint64_t>(k.log.size());
  ++decisions_;

  // Release arms whose quarantine has expired: they owe a single probe. The
  // healthy-era baseline is kept, so one slow probe re-quarantines the arm
  // immediately instead of costing baseline_samples slow operations.
  for (auto& [name, arm] : k.arms) {
    if (arm.quarantined_until != 0 && index >= arm.quarantined_until) {
      arm.quarantined_until = 0;
      arm.needs_probe = true;
      arm.count = 0;
      arm.ewma_us = 0.0;
    }
  }

  const auto quarantined = [&](const std::string& name) {
    return k.arms[name].quarantined_until != 0;
  };
  const auto measured_ewma = [&](const std::string& name) {
    const Arm& a = k.arms[name];
    return a.count >= static_cast<std::uint64_t>(cfg_.min_samples) ? a.ewma_us : kUnmeasured;
  };

  // Viable = not quarantined (everything, if the whole key is quarantined —
  // routing must still pick something).
  std::vector<const std::string*> viable;
  for (const auto& name : k.candidates) {
    if (!quarantined(name)) viable.push_back(&name);
  }
  if (viable.empty()) {
    for (const auto& name : k.candidates) viable.push_back(&name);
  }

  // Measured-best viable arm (candidate order breaks ties).
  const std::string* best = nullptr;
  for (const std::string* name : viable) {
    if (measured_ewma(*name) == kUnmeasured) continue;
    if (best == nullptr || measured_ewma(*name) < measured_ewma(*best)) best = name;
  }

  const std::string* chosen = nullptr;
  bool explored = false;

  // Probes owed from quarantine expiry take priority; then the periodic
  // count-based exploration slot probes the least-sampled viable arm.
  for (const std::string* name : viable) {
    if (k.arms[*name].needs_probe) {
      chosen = name;
      break;
    }
  }
  if (chosen == nullptr && viable.size() > 1 &&
      index % static_cast<std::uint64_t>(cfg_.explore_period) == k.explore_offset) {
    const std::string* least = viable.front();
    for (const std::string* name : viable) {
      if (k.arms[*name].count < k.arms[*least].count) least = name;
    }
    // Exploring the incumbent teaches nothing the exploit path would not.
    if (*least != k.incumbent) chosen = least;
  }

  if (chosen != nullptr) {
    explored = true;
    k.arms[*chosen].needs_probe = false;
    ++explorations_;
  } else {
    // Exploit. The incumbent survives unless it is quarantined/unviable (a
    // forced switch) or a challenger clears the hysteresis margin.
    bool incumbent_viable = false;
    for (const std::string* name : viable) incumbent_viable |= (*name == k.incumbent);
    const std::string* next_incumbent = &k.incumbent;
    if (!incumbent_viable) {
      next_incumbent = best != nullptr ? best : viable.front();
    } else if (best != nullptr && *best != k.incumbent) {
      const double inc = measured_ewma(k.incumbent);
      if (measured_ewma(*best) < inc * (1.0 - cfg_.hysteresis)) next_incumbent = best;
    }
    if (*next_incumbent != k.incumbent) {
      ++switches_;
      if (metrics_ != nullptr) {
        metrics_->counter("tune_switches", {{"op", op_name(op)}, {"to", *next_incumbent}}).inc();
      }
      k.incumbent = *next_incumbent;
    }
    chosen = &k.incumbent;
  }

  // Regret bookkeeping: how much slower than the measured-best arm this
  // decision is expected to be (0 when either side is unmeasured).
  if (best != nullptr && measured_ewma(*chosen) != kUnmeasured) {
    regret_us_ += std::max(0.0, measured_ewma(*chosen) - measured_ewma(*best));
  }
  if (metrics_ != nullptr) {
    metrics_->counter("tune_decisions", {{"mode", explored ? "explore" : "exploit"}}).inc();
    metrics_->gauge("tune_regret_us").set(regret_us_);
  }

  k.log.push_back(*chosen);
  return k.log.back();
}

void OnlineTuner::observe(OpType op, int world, std::size_t bytes, const std::string& backend,
                          double latency_us) {
  if (latency_us < 0.0 || backend.empty()) return;
  KeyState& k = key_state(op, world, bytes);
  if (std::find(k.candidates.begin(), k.candidates.end(), backend) == k.candidates.end()) {
    k.candidates.push_back(backend);
  }
  Arm& arm = k.arms[backend];
  ++arm.count;
  arm.ewma_us = arm.count == 1
                    ? latency_us
                    : cfg_.ewma_alpha * latency_us + (1.0 - cfg_.ewma_alpha) * arm.ewma_us;
  if (arm.baseline_count < static_cast<std::uint64_t>(cfg_.baseline_samples)) {
    arm.baseline_sum += latency_us;
    if (++arm.baseline_count == static_cast<std::uint64_t>(cfg_.baseline_samples)) {
      arm.baseline_us = arm.baseline_sum / static_cast<double>(cfg_.baseline_samples);
    }
  }
  maybe_quarantine(k, backend, arm);
}

void OnlineTuner::maybe_quarantine(KeyState& k, const std::string& backend, Arm& arm) {
  if (arm.quarantined_until != 0 || arm.baseline_us <= 0.0) return;
  if (arm.ewma_us <= arm.baseline_us * cfg_.drift_threshold) return;
  arm.quarantined_until =
      static_cast<std::uint64_t>(k.log.size()) + static_cast<std::uint64_t>(cfg_.quarantine_period);
  arm.needs_probe = false;
  ++quarantines_;
  MCRDL_LOG_WARN << "online tuner quarantined backend '" << backend << "': observed EWMA "
                 << arm.ewma_us << "us drifted past " << cfg_.drift_threshold << "x its baseline "
                 << arm.baseline_us << "us";
  if (metrics_ != nullptr) {
    metrics_->counter("tune_quarantines", {{"backend", backend}}).inc();
  }
}

TuningTable OnlineTuner::to_table() const {
  TuningTable table;
  for (const auto& [key, k] : keys_) {
    const auto& [op, world, bkt] = key;
    const std::string* winner = nullptr;
    double winner_ewma = kUnmeasured;
    for (const auto& name : k.candidates) {
      const auto it = k.arms.find(name);
      if (it == k.arms.end() || it->second.count == 0) continue;
      if (winner == nullptr || it->second.ewma_us < winner_ewma) {
        winner = &name;
        winner_ewma = it->second.ewma_us;
      }
    }
    if (winner == nullptr && k.incumbent.empty()) continue;
    table.set(op, world, bkt, winner != nullptr ? *winner : k.incumbent);
  }
  return table;
}

std::string OnlineTuner::save_state() const {
  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "counters " << decisions_ << " " << explorations_ << " " << switches_ << " "
      << quarantines_ << " " << regret_us_ << "\n";
  for (const auto& [key, k] : keys_) {
    const auto& [op, world, bkt] = key;
    out << "key " << op_name(op) << " " << world << " " << bkt << "\n";
    out << "routed " << (k.routed ? 1 : 0) << " " << (k.incumbent.empty() ? "-" : k.incumbent)
        << " " << k.explore_offset << "\n";
    out << "candidates " << k.candidates.size();
    for (const auto& name : k.candidates) out << " " << name;
    out << "\n";
    out << "log " << k.log.size();
    for (const auto& name : k.log) out << " " << name;
    out << "\n";
    for (const auto& [rank, cursor] : k.rank_cursor)
      out << "cursor " << rank << " " << cursor << "\n";
    for (const auto& [name, arm] : k.arms) {
      out << "arm " << name << " " << arm.count << " " << arm.ewma_us << " " << arm.baseline_sum
          << " " << arm.baseline_count << " " << arm.baseline_us << " " << arm.quarantined_until
          << " " << (arm.needs_probe ? 1 : 0) << "\n";
    }
  }
  return out.str();
}

void OnlineTuner::restore_state(const std::string& body) {
  std::map<Key, KeyState> keys;
  std::uint64_t decisions = 0, explorations = 0, switches = 0, quarantines = 0;
  double regret_us = 0.0;
  bool saw_counters = false;
  KeyState* current = nullptr;
  const auto fail = [](const std::string& line, const std::string& why) {
    throw InvalidArgument("tuner checkpoint: " + why + " — \"" + line + "\"");
  };
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string verb;
    if (!(fields >> verb)) continue;
    if (verb == "counters") {
      if (!(fields >> decisions >> explorations >> switches >> quarantines >> regret_us))
        fail(line, "bad counters line");
      saw_counters = true;
    } else if (verb == "key") {
      std::string op_tok;
      int world = 0;
      std::size_t bkt = 0;
      OpType op;
      if (!(fields >> op_tok >> world >> bkt) || !op_from_name(op_tok, op))
        fail(line, "bad key line");
      auto [it, fresh] = keys.emplace(Key{op, world, bkt}, KeyState{});
      if (!fresh) fail(line, "duplicate key");
      current = &it->second;
    } else if (current == nullptr) {
      fail(line, "state line before any key");
    } else if (verb == "routed") {
      int routed = 0;
      std::string incumbent;
      if (!(fields >> routed >> incumbent >> current->explore_offset))
        fail(line, "bad routed line");
      current->routed = routed != 0;
      current->incumbent = incumbent == "-" ? std::string() : incumbent;
    } else if (verb == "candidates" || verb == "log") {
      std::size_t n = 0;
      if (!(fields >> n)) fail(line, "bad " + verb + " line");
      std::vector<std::string> names;
      std::string name;
      while (fields >> name) names.push_back(name);
      if (names.size() != n) fail(line, verb + " count mismatch");
      (verb == "candidates" ? current->candidates : current->log) = std::move(names);
    } else if (verb == "cursor") {
      int rank = 0;
      std::size_t cursor = 0;
      if (!(fields >> rank >> cursor)) fail(line, "bad cursor line");
      current->rank_cursor[rank] = cursor;
    } else if (verb == "arm") {
      std::string name;
      Arm arm;
      int needs_probe = 0;
      if (!(fields >> name >> arm.count >> arm.ewma_us >> arm.baseline_sum >>
            arm.baseline_count >> arm.baseline_us >> arm.quarantined_until >> needs_probe))
        fail(line, "bad arm line");
      arm.needs_probe = needs_probe != 0;
      current->arms[name] = arm;
    } else {
      fail(line, "unknown line");
    }
  }
  if (!saw_counters) throw InvalidArgument("tuner checkpoint: missing counters line");
  keys_ = std::move(keys);
  decisions_ = decisions;
  explorations_ = explorations;
  switches_ = switches;
  quarantines_ = quarantines;
  regret_us_ = regret_us;
}

std::vector<OnlineTuner::ArmView> OnlineTuner::arms() const {
  std::vector<ArmView> out;
  for (const auto& [key, k] : keys_) {
    const auto& [op, world, bkt] = key;
    for (const auto& name : k.candidates) {
      const auto it = k.arms.find(name);
      if (it == k.arms.end()) continue;
      ArmView v;
      v.op = op;
      v.world = world;
      v.bucket = bkt;
      v.backend = name;
      v.samples = it->second.count;
      v.ewma_us = it->second.ewma_us;
      v.baseline_us = it->second.baseline_us;
      v.quarantined = it->second.quarantined_until != 0;
      v.incumbent = name == k.incumbent;
      out.push_back(std::move(v));
    }
  }
  return out;
}

}  // namespace mcrdl::tune
