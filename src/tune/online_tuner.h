// Online adaptive tuning — the measurement-driven half of the tuning story.
//
// The static TuningTable (src/tune/tuning.h) reproduces the paper's
// Section V-F workflow: benchmark once, trust forever. That table is only
// correct while the system behaves the way it did when the suite ran —
// "Demystifying NCCL" shows algorithm/protocol crossover points move with
// runtime conditions, and our own fault layer can degrade a backend's links
// mid-run, silently inverting every winner the table recorded.
//
// OnlineTuner closes the loop. Each completed collective feeds its observed
// latency back into a per-(op, world, size-bucket) arm table; the "auto"
// resolution path then asks the tuner instead of the static table. The
// policy is deliberately boring and *deterministic*:
//
//   * count-based epsilon-greedy — every explore_period-th decision on a key
//     probes the least-sampled arm (offset per key from a seeded SplitMix64,
//     never wall clock), all other decisions exploit;
//   * hysteresis — the incumbent backend is only abandoned when a challenger
//     beats its EWMA by more than `hysteresis`, so near-ties cannot flap;
//   * the static table (when present) seeds each key's incumbent, so the
//     tuner starts from the paper's behaviour and only departs from it on
//     evidence;
//   * EWMA drift detection — an arm whose fast EWMA diverges from the
//     baseline frozen over its first healthy samples is quarantined for
//     `quarantine_period` decisions and then re-probed once; if it is still
//     slow, the single probe re-quarantines it immediately. This is what
//     re-routes traffic when a fault::degrade/slowdown plan (or a real-world
//     equivalent) hits a backend mid-run.
//
// Determinism contract: selections depend only on the sequence of select()/
// observe() calls and the seed. SPMD ranks resolve the same logical op
// independently, so the first rank to reach decision #i on a key computes it
// and the choice is memoised — every other rank replays the identical
// answer, keeping collectives on one backend per logical op (the same
// alignment argument the failover router makes). No wall clock anywhere.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/net/comm_types.h"
#include "src/obs/metrics.h"
#include "src/tune/tuning.h"

namespace mcrdl::tune {

struct OnlineTunerConfig {
  bool enabled = false;
  // Every explore_period-th fresh decision per key probes instead of
  // exploiting (count-based epsilon with epsilon = 1/explore_period).
  int explore_period = 16;
  // Samples before an arm's EWMA takes part in exploit comparisons.
  int min_samples = 2;
  double ewma_alpha = 0.5;
  // Samples averaged into the frozen drift baseline.
  int baseline_samples = 4;
  // EWMA > baseline * drift_threshold quarantines the arm.
  double drift_threshold = 2.0;
  // Fresh decisions a quarantined arm sits out before its single re-probe.
  int quarantine_period = 128;
  // A challenger must beat the incumbent's EWMA by this fraction to win.
  double hysteresis = 0.1;
  std::uint64_t seed = 0xad4f70e1u;
};

class OnlineTuner {
 public:
  explicit OnlineTuner(OnlineTunerConfig config, obs::MetricsRegistry* metrics = nullptr);

  // Installs the static table as the prior: a key's first incumbent is the
  // table's winner for that grid point (when the table covers the op).
  void seed_prior(TuningTable table);

  // The backend rank `rank`'s next occurrence of (op, world, bytes) should
  // use, drawn from `candidates` (the initialised backends, preference
  // order). Deterministic and memoised per decision index — see the class
  // comment. `candidates` must be identical on every rank.
  const std::string& select(OpType op, int world, std::size_t bytes, int rank,
                            const std::vector<std::string>& candidates);

  // Feeds one completed operation's observed latency back into the arm it
  // ran on. Purely observational: never touches the scheduler.
  void observe(OpType op, int world, std::size_t bytes, const std::string& backend,
               double latency_us);

  // The learned table: per key, the measured-best arm (the incumbent when
  // nothing is measured yet). Serialises through the standard text format,
  // so online-produced tables warm-start later runs via seed_prior/load.
  TuningTable to_table() const;

  // Power-of-two size bucketing (>= 256 bytes) shared by select/observe.
  static std::size_t bucket(std::size_t bytes);

  // --- checkpoint (fault::CheckpointStore section body) ---------------------
  // Deterministic text snapshot of every learned key: candidates, incumbent,
  // decision log, per-rank replay cursors, and each arm's counts/EWMA/
  // baseline/quarantine state, plus the global counters. Doubles are printed
  // at max_digits10 so save→restore→save round-trips byte-identically.
  std::string save_state() const;
  // Replaces the learned state with a save_state() snapshot; the restored
  // tuner resumes exactly where the checkpointed one stopped (no cold-start
  // re-exploration). Config and seed stay construction-time properties.
  // Throws InvalidArgument on malformed bodies.
  void restore_state(const std::string& body);

  // --- introspection (tests, CLI reports) ----------------------------------
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t explorations() const { return explorations_; }
  std::uint64_t switches() const { return switches_; }
  std::uint64_t quarantines() const { return quarantines_; }
  // Cumulative EWMA regret: chosen-arm minus best-arm latency, summed over
  // fresh decisions where both were measured.
  double regret_us() const { return regret_us_; }

  struct ArmView {
    OpType op;
    int world;
    std::size_t bucket;
    std::string backend;
    std::uint64_t samples;
    double ewma_us;
    double baseline_us;  // 0 until frozen
    bool quarantined;
    bool incumbent;
  };
  std::vector<ArmView> arms() const;

 private:
  struct Arm {
    std::uint64_t count = 0;
    double ewma_us = 0.0;
    double baseline_sum = 0.0;
    std::uint64_t baseline_count = 0;
    double baseline_us = 0.0;      // frozen mean of the first baseline_samples
    std::uint64_t quarantined_until = 0;  // fresh-decision index; 0 = clear
    bool needs_probe = false;      // re-probe owed after quarantine expiry
  };

  struct KeyState {
    std::vector<std::string> candidates;
    std::map<std::string, Arm> arms;
    std::string incumbent;
    bool routed = false;               // select() has installed candidates/prior
    std::vector<std::string> log;      // memoised decisions by index
    std::map<int, std::size_t> rank_cursor;
    std::uint64_t explore_offset = 0;  // seeded phase of the explore schedule
  };

  using Key = std::tuple<OpType, int, std::size_t>;

  KeyState& key_state(OpType op, int world, std::size_t bytes);
  const std::string& decide(KeyState& k, OpType op);
  void maybe_quarantine(KeyState& k, const std::string& backend, Arm& arm);

  OnlineTunerConfig cfg_;
  obs::MetricsRegistry* metrics_;
  std::optional<TuningTable> prior_;
  Rng rng_;
  std::map<Key, KeyState> keys_;
  std::uint64_t decisions_ = 0;
  std::uint64_t explorations_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t quarantines_ = 0;
  double regret_us_ = 0.0;
};

}  // namespace mcrdl::tune
