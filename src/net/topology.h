// Cluster topology description: nodes × GPUs-per-node, intra-node (NVLink)
// and inter-node (InfiniBand) link characteristics, plus presets for the two
// systems the paper evaluates on (Lassen and ThetaGPU).
//
// Ranks are laid out block-wise: rank r lives on node r / gpus_per_node,
// local device r % gpus_per_node — the standard `ppn` launch layout the
// paper's "16 node 4 ppn" captions describe.
#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace mcrdl::net {

// One physical link class: first-byte latency plus sustained bandwidth.
struct LinkSpec {
  double latency_us = 0.0;
  double bandwidth_gbps = 0.0;  // GB/s (1e9 bytes/s)

  // Time to move `bytes` over this link once, ignoring contention.
  SimTime transfer_time(std::size_t bytes) const {
    return latency_us + transfer_time_us(bytes, bandwidth_gbps);
  }
};

// Full machine description. Bandwidth figures are effective, per-direction
// numbers in GB/s; compute figures feed the workload models' kernel
// durations.
struct SystemConfig {
  std::string name;
  int num_nodes = 1;
  int gpus_per_node = 1;

  LinkSpec intra_node;        // GPU<->GPU over NVLink within a node
  LinkSpec inter_node;        // GPU<->GPU across nodes (through the NIC)
  double nic_bandwidth_gbps = 0.0;  // per-node injection bandwidth (shared by local GPUs)
  // Achieved fraction of the NIC share when more than one local rank drives
  // the node's HCAs concurrently (QP arbitration, PCIe root-complex
  // contention — see PAPERS.md: "Demystifying NCCL"; Awan et al. on
  // dense-GPU IB clusters). A rank that owns the NIC alone pays no such
  // tax. The committed paper fits (Figure 2, Table II) are insensitive to
  // this value; it is the modeling assumption that gives leader-based
  // two-level algorithms their multi-rail advantage at >=2 nodes, so the
  // BENCH_hier gate *exercises* it rather than evidences it — see the
  // cost-model provenance note in EXPERIMENTS.md.
  double nic_sharing_eff = 0.8;
  double pcie_bandwidth_gbps = 0.0; // host staging path (D2H/H2D)
  double pcie_latency_us = 0.0;

  double gpu_tflops = 0.0;    // effective mixed-precision throughput per GPU
  double hbm_gbps = 0.0;      // device memory bandwidth (memory-bound kernels)

  int world_size() const { return num_nodes * gpus_per_node; }

  // Lassen (LLNL): 4×16GB V100 per node, POWER9, Mellanox IB EDR fat-tree.
  static SystemConfig lassen(int num_nodes);
  // ThetaGPU (ALCF): DGX-A100 nodes — 8×40GB A100, AMD Rome, HDR IB.
  static SystemConfig theta_gpu(int num_nodes);
};

// Rank→hardware mapping helpers over a SystemConfig.
class Topology {
 public:
  explicit Topology(SystemConfig config);

  const SystemConfig& config() const { return config_; }
  int world_size() const { return config_.world_size(); }
  int num_nodes() const { return config_.num_nodes; }
  int gpus_per_node() const { return config_.gpus_per_node; }

  int node_of(int rank) const;
  int local_of(int rank) const;
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  // Point-to-point link between two ranks (intra- or inter-node class).
  const LinkSpec& link(int a, int b) const;

  // Effective per-GPU inter-node bandwidth when `concurrent` GPUs on one
  // node drive the NIC simultaneously (NIC injection bandwidth is shared).
  double inter_node_bw_per_gpu(int concurrent) const;

 private:
  SystemConfig config_;
};

// Node-aligned partition of an explicit rank list: one member group per
// occupied node plus the leader (lowest rank) of each — the two levels every
// hierarchical collective decomposes over. Derived from the *actual* ranks,
// not from [0, world), so it stays exact for shrunk or otherwise irregular
// memberships: a node that lost a rank simply shows a smaller intra group.
struct NodePartition {
  // Per occupied node, ascending node id; each group's ranks ascending.
  std::vector<std::vector<int>> intra;
  // The lowest rank of each occupied node (parallel to `intra`).
  std::vector<int> leaders;
};

// Partitions `ranks` into node-local groups and leaders under `topo`.
NodePartition node_partition(const Topology& topo, const std::vector<int>& ranks);

}  // namespace mcrdl::net
