#include "src/net/comm_types.h"

namespace mcrdl {

const char* op_name(OpType op) {
  switch (op) {
    case OpType::Send: return "send";
    case OpType::Recv: return "recv";
    case OpType::Broadcast: return "broadcast";
    case OpType::Reduce: return "reduce";
    case OpType::AllReduce: return "all_reduce";
    case OpType::AllGather: return "all_gather";
    case OpType::AllGatherV: return "all_gatherv";
    case OpType::Gather: return "gather";
    case OpType::GatherV: return "gatherv";
    case OpType::Scatter: return "scatter";
    case OpType::ScatterV: return "scatterv";
    case OpType::ReduceScatter: return "reduce_scatter";
    case OpType::AllToAll: return "all_to_all";
    case OpType::AllToAllSingle: return "all_to_all_single";
    case OpType::AllToAllV: return "all_to_allv";
    case OpType::Barrier: return "barrier";
  }
  return "?";
}

const char* reduce_op_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum: return "sum";
    case ReduceOp::Prod: return "prod";
    case ReduceOp::Min: return "min";
    case ReduceOp::Max: return "max";
    case ReduceOp::Avg: return "avg";
  }
  return "?";
}

bool op_from_name(const std::string& name, OpType& out) {
  static const OpType all[] = {
      OpType::Send,    OpType::Recv,     OpType::Broadcast,      OpType::Reduce,
      OpType::AllReduce, OpType::AllGather, OpType::AllGatherV,  OpType::Gather,
      OpType::GatherV, OpType::Scatter,  OpType::ScatterV,       OpType::ReduceScatter,
      OpType::AllToAll, OpType::AllToAllSingle, OpType::AllToAllV, OpType::Barrier};
  for (OpType op : all) {
    if (name == op_name(op)) {
      out = op;
      return true;
    }
  }
  return false;
}

bool is_alltoall_like(OpType op) {
  return op == OpType::AllToAll || op == OpType::AllToAllSingle || op == OpType::AllToAllV;
}

bool is_rooted(OpType op) {
  switch (op) {
    case OpType::Broadcast:
    case OpType::Reduce:
    case OpType::Gather:
    case OpType::GatherV:
    case OpType::Scatter:
    case OpType::ScatterV:
      return true;
    default:
      return false;
  }
}

bool is_vector_collective(OpType op) {
  switch (op) {
    case OpType::GatherV:
    case OpType::ScatterV:
    case OpType::AllGatherV:
    case OpType::AllToAllV:
      return true;
    default:
      return false;
  }
}

}  // namespace mcrdl
