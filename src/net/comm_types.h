// Communication operation vocabulary shared by the cost models, backends,
// and the MCR-DL core.
#pragma once

#include <cstddef>
#include <string>

namespace mcrdl {

// Every operation in the MCR-DL API (paper Listing 1).
enum class OpType {
  Send,
  Recv,
  Broadcast,
  Reduce,
  AllReduce,
  AllGather,
  AllGatherV,
  Gather,
  GatherV,
  Scatter,
  ScatterV,
  ReduceScatter,
  AllToAll,        // list-of-tensors variant
  AllToAllSingle,  // single-tensor shuffle
  AllToAllV,
  Barrier,
};

enum class ReduceOp { Sum, Prod, Min, Max, Avg };

const char* op_name(OpType op);
const char* reduce_op_name(ReduceOp op);

// Inverse of op_name; returns false if the name is unknown.
bool op_from_name(const std::string& name, OpType& out);

// True for operations whose wire pattern is all-to-all-like (their cost is
// dominated by cross-bisection traffic rather than a single root).
bool is_alltoall_like(OpType op);
// True for rooted operations (gather/scatter/reduce/bcast families).
bool is_rooted(OpType op);
// True for the variable-count ("vector") collectives NCCL-style libraries
// lack natively (paper Table I).
bool is_vector_collective(OpType op);

}  // namespace mcrdl
