#include "src/net/cost.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mcrdl::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

int ceil_log2(int n) {
  MCRDL_REQUIRE(n >= 1, "ceil_log2 of non-positive value");
  int bits = 0;
  int v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

double BackendProfile::bw_efficiency(OpType op) const {
  auto it = bw_eff.find(op);
  return it != bw_eff.end() ? it->second : default_bw_eff;
}

CommShape CommShape::over(const Topology& topo, int world_used) {
  MCRDL_REQUIRE(world_used >= 1 && world_used <= topo.world_size(),
                "communicator size out of range for topology");
  CommShape s;
  s.world = world_used;
  const int g = topo.gpus_per_node();
  s.ppn = std::min(world_used, g);
  s.nodes = (world_used + g - 1) / g;
  return s;
}

CommShape CommShape::of(const Topology& topo, const std::vector<int>& ranks) {
  MCRDL_REQUIRE(!ranks.empty(), "communicator shape needs at least one rank");
  std::map<int, int> per_node;
  for (int r : ranks) ++per_node[topo.node_of(r)];
  CommShape s;
  s.world = static_cast<int>(ranks.size());
  s.nodes = static_cast<int>(per_node.size());
  s.ppn = 1;
  for (const auto& [node, count] : per_node) {
    (void)node;
    s.ppn = std::max(s.ppn, count);
  }
  return s;
}

CostModel::CostModel(const Topology* topo, BackendProfile profile)
    : topo_(topo), profile_(std::move(profile)) {
  MCRDL_REQUIRE(topo_ != nullptr, "CostModel needs a topology");
}

CostModel::Terms CostModel::terms_for(const CommShape& shape, OpType op) const {
  const SystemConfig& cfg = topo_->config();
  const double eff = profile_.bw_efficiency(op);
  Terms t;
  t.alpha_intra = cfg.intra_node.latency_us + profile_.step_latency_us;
  t.alpha_inter = cfg.inter_node.latency_us + profile_.step_latency_us;
  t.beta_intra =
      gbps_to_bytes_per_us(cfg.intra_node.bandwidth_gbps) * eff * profile_.intra_bw_scale;
  // Subgroup-aware inter-node bandwidth. A communicator with one rank per
  // occupied node is the leader-subgroup shape: each member is its node's
  // sole NIC user, so a multi-rail transport registers against every HCA and
  // stripes the full node injection bandwidth — the per-channel NIC binding
  // NCCL-class runtimes use (PAPERS.md: "Demystifying NCCL") and the
  // mechanism leader-based two-level algorithms rely on. Everyone else gets
  // the per-GPU share, including the multi-process arbitration tax; like
  // nic_sharing_eff itself this split is a modeling assumption, not pinned
  // by the committed paper fits (see EXPERIMENTS.md, cost-model provenance).
  const double inter_gbps = (shape.ppn == 1 && shape.nodes > 1)
                                ? cfg.nic_bandwidth_gbps
                                : topo_->inter_node_bw_per_gpu(shape.ppn);
  t.beta_inter_gpu = gbps_to_bytes_per_us(inter_gbps) * eff;
  t.red_bw = gbps_to_bytes_per_us(std::max(profile_.reduction_gbps, 1.0));
  if (fault_scale_) {
    // Injected link degradation multiplies β (time per byte), i.e. divides
    // the achievable bandwidth. Skipped entirely at the identity so runs
    // with the hook installed but no active fault stay bit-identical.
    const FaultBetaScale fs = fault_scale_(op);
    if (fs.intra != 1.0) t.beta_intra /= fs.intra;
    if (fs.inter != 1.0) {
      t.beta_inter_gpu /= fs.inter;
      t.fault_inter = fs.inter;
    }
  }
  if (contention_ != nullptr && !contention_->is_identity()) {
    // Tenant contention divides the bandwidth share exactly like injected
    // link degradation, and stacks with it: a degraded link shared by two
    // jobs is slower than either condition alone. fault_inter carries the
    // combined divisor into the node-level (NIC) β used by two-level
    // algorithms.
    if (contention_->intra != 1.0) t.beta_intra /= contention_->intra;
    if (contention_->inter != 1.0) {
      t.beta_inter_gpu /= contention_->inter;
      t.fault_inter *= contention_->inter;
    }
  }
  if (shape.nodes <= 1) {
    t.alpha_mixed = t.alpha_intra;
    t.beta_mixed = t.beta_intra;
  } else {
    const double p = shape.world;
    const double intra_frac = (p - shape.nodes) / p;
    const double inter_frac = shape.nodes / p;
    t.alpha_mixed = intra_frac * t.alpha_intra + inter_frac * t.alpha_inter;
    const double inv = intra_frac / t.beta_intra + inter_frac / t.beta_inter_gpu;
    t.beta_mixed = 1.0 / inv;
  }
  return t;
}

namespace {

// Per-hop latency of a pipelined ring step: the profile's pipeline factor
// scales how much of the raw link latency is exposed per hop.
double ring_hop_alpha(const BackendProfile& p, double link_latency) {
  return link_latency * p.ring_pipeline_factor + p.step_latency_us;
}

}  // namespace

SimTime CostModel::collective_cost(OpType op, std::size_t bytes, const CommShape& shape) const {
  MCRDL_REQUIRE(shape.world >= 1, "collective over empty communicator");
  if (shape.world == 1) return profile_.launch_overhead_us;
  const Terms t = terms_for(shape, op);
  double cost = kInf;
  switch (op) {
    case OpType::AllReduce:
      cost = allreduce_cost(bytes, shape, t);
      break;
    case OpType::AllGather:
    case OpType::AllGatherV:
      cost = allgather_cost(bytes, shape, t);
      break;
    case OpType::ReduceScatter:
      cost = reduce_scatter_cost(bytes, shape, t);
      break;
    case OpType::Broadcast:
      cost = broadcast_cost(bytes, shape, t);
      break;
    case OpType::Reduce:
      cost = reduce_cost(bytes, shape, t);
      break;
    case OpType::Gather:
    case OpType::GatherV:
    case OpType::Scatter:
    case OpType::ScatterV:
      cost = gather_cost(bytes, shape, t);
      break;
    case OpType::AllToAll:
    case OpType::AllToAllSingle:
    case OpType::AllToAllV:
      cost = alltoall_cost(bytes, shape, t);
      break;
    case OpType::Barrier:
      cost = barrier_cost(shape, t);
      break;
    case OpType::Send:
    case OpType::Recv:
      // Point-to-point cost requires endpoints; callers use p2p_cost().
      MCRDL_REQUIRE(false, "send/recv costs come from p2p_cost()");
  }
  MCRDL_CHECK(cost != kInf) << "no applicable algorithm for " << op_name(op) << " in backend "
                            << profile_.name;
  const SimTime total = profile_.launch_overhead_us + cost;
  if (usage_ != nullptr) {
    if (shape.nodes > 1) {
      usage_->record_inter(bytes, total);
    } else {
      usage_->record_intra(bytes, total);
    }
  }
  return total;
}

SimTime CostModel::p2p_cost(std::size_t bytes, int src, int dst) const {
  const LinkSpec& link = topo_->link(src, dst);
  const double eff = profile_.bw_efficiency(OpType::Send);
  double bw = gbps_to_bytes_per_us(link.bandwidth_gbps) * eff;
  if (fault_scale_) {
    const FaultBetaScale fs = fault_scale_(OpType::Send);
    const double f = topo_->same_node(src, dst) ? fs.intra : fs.inter;
    if (f != 1.0) bw /= f;
  }
  if (contention_ != nullptr && !contention_->is_identity()) {
    const double c = topo_->same_node(src, dst) ? contention_->intra : contention_->inter;
    if (c != 1.0) bw /= c;
  }
  double cost = profile_.launch_overhead_us * 0.5 + profile_.p2p_latency_us +
                link.latency_us + static_cast<double>(bytes) / bw;
  if (bytes > profile_.eager_threshold) cost += profile_.rendezvous_overhead_us;
  if (usage_ != nullptr) {
    if (topo_->same_node(src, dst)) {
      usage_->record_intra(bytes, cost);
    } else {
      usage_->record_inter(bytes, cost);
    }
  }
  return cost;
}

// --- per-operation algorithm menus -----------------------------------------

SimTime CostModel::allreduce_cost(std::size_t bytes, const CommShape& s, const Terms& t) const {
  const double S = static_cast<double>(bytes);
  const double P = s.world;
  const SystemConfig& cfg = topo_->config();
  double best = kInf;
  if (has(Algo::Ring)) {
    const double hops = 2.0 * (P - 1.0);
    const double intra_frac = (P - s.nodes) / P;
    const double inter_frac = s.nodes > 1 ? s.nodes / P : 0.0;
    const double alpha =
        intra_frac * ring_hop_alpha(profile_, cfg.intra_node.latency_us) +
        inter_frac * ring_hop_alpha(profile_, cfg.inter_node.latency_us);
    const double bw = 2.0 * (P - 1.0) / P * S / t.beta_mixed;
    best = std::min(best, hops * alpha + bw + S / t.red_bw);
  }
  if (has(Algo::DoubleBinaryTree)) {
    const double alpha = s.nodes > 1 ? t.alpha_inter : t.alpha_intra;
    const double beta = s.nodes > 1 ? std::min(t.beta_intra, t.beta_inter_gpu) : t.beta_intra;
    best = std::min(best, 2.0 * ceil_log2(s.world) * alpha + 2.0 * S / beta + S / t.red_bw);
  }
  if (has(Algo::RecursiveDoubling)) {
    const double alpha = s.nodes > 1 ? t.alpha_inter : t.alpha_intra;
    const double beta = s.nodes > 1 ? std::min(t.beta_intra, t.beta_inter_gpu) : t.beta_intra;
    best = std::min(best, ceil_log2(s.world) * (alpha + S / beta + S / t.red_bw));
  }
  if (has(Algo::TwoLevel) && s.nodes > 1 && s.ppn > 1) {
    const double beta_node = gbps_to_bytes_per_us(cfg.nic_bandwidth_gbps) *
                             profile_.bw_efficiency(OpType::AllReduce) / t.fault_inter;
    const double intra_reduce = ceil_log2(s.ppn) * (t.alpha_intra + S / t.beta_intra + S / t.red_bw);
    const double inter = ceil_log2(s.nodes) * (t.alpha_inter + S / beta_node + S / t.red_bw);
    const double intra_bcast = ceil_log2(s.ppn) * (t.alpha_intra + S / t.beta_intra);
    best = std::min(best, intra_reduce + inter + intra_bcast);
  }
  return best;
}

SimTime CostModel::allgather_cost(std::size_t bytes, const CommShape& s, const Terms& t) const {
  const double S = static_cast<double>(bytes);  // per-rank contribution
  const double P = s.world;
  const SystemConfig& cfg = topo_->config();
  double best = kInf;
  if (has(Algo::Ring)) {
    const double intra_frac = (P - s.nodes) / P;
    const double inter_frac = s.nodes > 1 ? s.nodes / P : 0.0;
    const double alpha =
        intra_frac * ring_hop_alpha(profile_, cfg.intra_node.latency_us) +
        inter_frac * ring_hop_alpha(profile_, cfg.inter_node.latency_us);
    best = std::min(best, (P - 1.0) * alpha + (P - 1.0) * S / t.beta_mixed);
  }
  if (has(Algo::RecursiveDoubling)) {
    const double alpha = s.nodes > 1 ? t.alpha_inter : t.alpha_intra;
    const double beta = s.nodes > 1 ? std::min(t.beta_intra, t.beta_inter_gpu) : t.beta_intra;
    best = std::min(best, ceil_log2(s.world) * alpha + (P - 1.0) * S / beta);
  }
  if (has(Algo::TwoLevel) && profile_.overlapped_two_level && s.nodes > 1 && s.ppn > 1) {
    const double beta_node = gbps_to_bytes_per_us(cfg.nic_bandwidth_gbps) *
                             profile_.bw_efficiency(OpType::AllGather) / t.fault_inter;
    const double lat = 2.0 * ceil_log2(s.ppn) * t.alpha_intra + ceil_log2(s.nodes) * t.alpha_inter;
    const double inter_bw = (s.nodes - 1.0) * s.ppn * S / beta_node;
    const double intra_bw = P * S / t.beta_intra;
    const double gather_bw = (s.ppn - 1.0) * S / t.beta_intra;
    // Synthesized schedules overlap the intra broadcast with the inter
    // exchange, so the wire term is the max of the two, not the sum.
    best = std::min(best, lat + std::max(inter_bw, intra_bw) + gather_bw);
  }
  return best;
}

SimTime CostModel::reduce_scatter_cost(std::size_t bytes, const CommShape& s,
                                       const Terms& t) const {
  const double S = static_cast<double>(bytes);
  const double P = s.world;
  const SystemConfig& cfg = topo_->config();
  double best = kInf;
  if (has(Algo::Ring)) {
    const double intra_frac = (P - s.nodes) / P;
    const double inter_frac = s.nodes > 1 ? s.nodes / P : 0.0;
    const double alpha =
        intra_frac * ring_hop_alpha(profile_, cfg.intra_node.latency_us) +
        inter_frac * ring_hop_alpha(profile_, cfg.inter_node.latency_us);
    best = std::min(best,
                    (P - 1.0) * alpha + (P - 1.0) / P * S / t.beta_mixed + (P - 1.0) / P * S / t.red_bw);
  }
  if (has(Algo::RecursiveDoubling)) {
    const double alpha = s.nodes > 1 ? t.alpha_inter : t.alpha_intra;
    const double beta = s.nodes > 1 ? std::min(t.beta_intra, t.beta_inter_gpu) : t.beta_intra;
    best = std::min(best,
                    ceil_log2(s.world) * alpha + (P - 1.0) / P * S / beta + (P - 1.0) / P * S / t.red_bw);
  }
  return best;
}

SimTime CostModel::broadcast_cost(std::size_t bytes, const CommShape& s, const Terms& t) const {
  const double S = static_cast<double>(bytes);
  const double P = s.world;
  double best = kInf;
  const double alpha = s.nodes > 1 ? t.alpha_inter : t.alpha_intra;
  const double beta = s.nodes > 1 ? std::min(t.beta_intra, t.beta_inter_gpu) : t.beta_intra;
  if (has(Algo::BinomialTree) || has(Algo::DoubleBinaryTree)) {
    best = std::min(best, ceil_log2(s.world) * (alpha + S / beta));
  }
  if (has(Algo::Ring)) {
    // Scatter + allgather (van de Geijn): bandwidth-optimal for large S.
    best = std::min(best, ceil_log2(s.world) * alpha + 2.0 * (P - 1.0) / P * S / t.beta_mixed);
  }
  return best;
}

SimTime CostModel::reduce_cost(std::size_t bytes, const CommShape& s, const Terms& t) const {
  const double S = static_cast<double>(bytes);
  const double P = s.world;
  const SystemConfig& cfg = topo_->config();
  const double alpha = s.nodes > 1 ? t.alpha_inter : t.alpha_intra;
  const double beta = s.nodes > 1 ? std::min(t.beta_intra, t.beta_inter_gpu) : t.beta_intra;
  // Binomial reduction tree; every level moves and reduces the payload.
  double best = ceil_log2(s.world) * (alpha + S / beta + S / t.red_bw);
  if (has(Algo::Ring)) {
    // Ring reduce-scatter followed by a gather to the root: each rank moves
    // ~2S/P per step instead of the tree's full payload per level, making
    // this the bandwidth-optimal choice for large messages.
    const double intra_frac = (P - s.nodes) / P;
    const double inter_frac = s.nodes > 1 ? s.nodes / P : 0.0;
    const double hop_alpha =
        intra_frac * ring_hop_alpha(profile_, cfg.intra_node.latency_us) +
        inter_frac * ring_hop_alpha(profile_, cfg.inter_node.latency_us);
    const double bw = 2.0 * (P - 1.0) / P * S / t.beta_mixed;
    best = std::min(best, 2.0 * (P - 1.0) * hop_alpha + bw + (P - 1.0) / P * S / t.red_bw);
  }
  return best;
}

SimTime CostModel::gather_cost(std::size_t bytes, const CommShape& s, const Terms& t) const {
  const double S = static_cast<double>(bytes);  // per-rank payload
  const SystemConfig& cfg = topo_->config();
  // Binomial tree latency; the root's links are the bandwidth bottleneck:
  // (ppn-1) local payloads arrive over NVLink, the rest through the NIC.
  const double alpha = s.nodes > 1 ? t.alpha_inter : t.alpha_intra;
  const double beta_nic = gbps_to_bytes_per_us(cfg.nic_bandwidth_gbps) *
                          profile_.bw_efficiency(OpType::Gather) / t.fault_inter;
  const double intra_bw = (s.ppn - 1.0) * S / t.beta_intra;
  const double inter_bw = s.nodes > 1 ? (s.world - s.ppn) * S / beta_nic : 0.0;
  return ceil_log2(s.world) * alpha + intra_bw + inter_bw;
}

SimTime CostModel::alltoall_cost(std::size_t bytes, const CommShape& s, const Terms& t) const {
  // `bytes` is the total local buffer; each rank exchanges bytes/P per peer.
  const double P = s.world;
  const double m = static_cast<double>(bytes) / P;
  const SystemConfig& cfg = topo_->config();
  const double intra_peers = s.ppn - 1.0;
  const double inter_peers = P - s.ppn;
  double best = kInf;
  if (has(Algo::Bruck)) {
    const double alpha = s.nodes > 1 ? t.alpha_inter : t.alpha_intra;
    best = std::min(best,
                    ceil_log2(s.world) * (alpha + static_cast<double>(bytes) / 2.0 / t.beta_mixed));
  }
  if (has(Algo::PairwiseExchange)) {
    // One peer per round; inter-node rounds are built on the backend's
    // network p2p path and pay its per-peer latency — the term that makes
    // NCCL's Alltoall scale poorly with P (paper Section I-C). Intra-node
    // rounds are direct NVLink copies.
    const double intra_alpha = cfg.intra_node.latency_us * profile_.ring_pipeline_factor +
                               profile_.step_latency_us;
    const double inter_alpha = cfg.inter_node.latency_us * profile_.ring_pipeline_factor +
                               profile_.step_latency_us + profile_.p2p_latency_us;
    const double lat = intra_peers * intra_alpha + inter_peers * inter_alpha;
    const double bw = intra_peers * m / t.beta_intra + inter_peers * m / t.beta_inter_gpu;
    best = std::min(best, lat + bw);
  }
  if (has(Algo::ScatteredExchange)) {
    // GDR-style: all sends posted up front, intra- and inter-node traffic
    // overlap; per-round software cost is a fraction of a step.
    const double lat = (s.nodes > 1 ? t.alpha_inter : t.alpha_intra) +
                       (P - 2.0) * 0.25 * profile_.step_latency_us;
    const double bw = std::max(intra_peers * m / t.beta_intra, inter_peers * m / t.beta_inter_gpu);
    best = std::min(best, lat + bw);
  }
  return best;
}

SimTime CostModel::barrier_cost(const CommShape& s, const Terms& t) const {
  const double alpha = s.nodes > 1 ? t.alpha_inter : t.alpha_intra;
  return ceil_log2(s.world) * alpha;
}

}  // namespace mcrdl::net
