// Analytic collective-communication cost models.
//
// Every backend is characterised by a BackendProfile (latencies, achieved
// bandwidth fractions per operation, and the set of algorithm templates its
// implementation uses). CostModel evaluates the classical α/β cost of each
// applicable algorithm over a two-level (intra-node NVLink / inter-node IB)
// topology and returns the cheapest — mirroring how real libraries select
// algorithms by message size and scale. All the paper's performance
// crossovers (NCCL wins large Allreduce, MVAPICH2-GDR wins small messages
// and Alltoall at scale, SCCL wins large All_gather) emerge from these
// models; `tests/net/calibration_test.cc` pins the orderings.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/shard_slot.h"
#include "src/common/units.h"
#include "src/net/comm_types.h"
#include "src/net/topology.h"

namespace mcrdl::net {

// Shape of a communicator over the block rank layout.
struct CommShape {
  int world = 1;  // ranks in the communicator
  int nodes = 1;  // nodes spanned
  int ppn = 1;    // ranks per node

  // Shape of a communicator covering ranks [0, world_used) of `topo`.
  static CommShape over(const Topology& topo, int world_used);
  static CommShape over(const Topology& topo) { return over(topo, topo.world_size()); }
  // Shape of a communicator over an explicit — possibly non-contiguous —
  // rank list: nodes actually spanned, and the maximum ranks-per-node over
  // the real per-node occupancy. This is what makes subgroup costing exact:
  // an intra-node group costs as nodes=1 (NVLink β), a one-leader-per-node
  // group costs as ppn=1 (each leader gets the full NIC share).
  static CommShape of(const Topology& topo, const std::vector<int>& ranks);
};

// Algorithm templates a backend implementation may employ.
enum class Algo {
  Ring,               // bandwidth-optimal rings (NCCL's workhorse)
  DoubleBinaryTree,   // NCCL's latency tree for allreduce/broadcast
  RecursiveDoubling,  // MPI latency-optimal power-of-two exchanges
  BinomialTree,       // rooted MPI collectives
  Bruck,              // small-message alltoall
  PairwiseExchange,   // large-message alltoall, one peer per round
  ScatteredExchange,  // GDR-style alltoall with intra/inter overlap
  TwoLevel,           // hierarchical node-leader algorithms
};

// Performance personality of one communication backend.
struct BackendProfile {
  std::string name;          // registry key, e.g. "mv2-gdr"
  std::string display_name;  // e.g. "MVAPICH2-GDR"

  double launch_overhead_us = 0.0;  // fixed critical-path cost per operation
  double step_latency_us = 0.0;     // software α added to every algorithm step
  double p2p_latency_us = 0.0;      // extra latency per point-to-point message
  double reduction_gbps = 0.0;      // on-GPU reduction arithmetic bandwidth

  std::size_t eager_threshold = 0;     // p2p messages <= this skip rendezvous
  double rendezvous_overhead_us = 0.0; // extra RTT-ish cost for large p2p

  // Fraction of the hardware link latency visible per ring hop; kernel-level
  // chunk pipelining (NCCL) hides most of it, host-driven MPI rings do not.
  double ring_pipeline_factor = 1.0;

  // Whether the library's two-level schedules overlap intra-node and
  // inter-node traffic (synthesized MSCCL/SCCL schedules do; classic MPI
  // hierarchical collectives run the phases back to back).
  bool overlapped_two_level = false;

  // Fraction of NVLink bandwidth the library reaches inside a node, applied
  // on top of the per-op efficiency. Kernel-based libraries (NCCL/SCCL)
  // drive NVLink directly; host-mediated MPI over CUDA IPC reaches far less.
  double intra_bw_scale = 1.0;

  bool stream_aware = false;             // synchronises via CUDA streams
  bool native_vector_collectives = false;
  bool supports_all_ops = true;          // full MPI operation coverage

  std::set<Algo> algorithms;
  // Operations the library implements natively; ops absent from a non-empty
  // set must be emulated by MCR-DL's emulation layer (paper Section V-B).
  std::set<OpType> native_ops;
  std::map<OpType, double> bw_eff;  // achieved fraction of link bandwidth per op
  double default_bw_eff = 0.8;

  double bw_efficiency(OpType op) const;
  bool is_native(OpType op) const { return native_ops.empty() || native_ops.count(op) > 0; }
};

// Ready-made profiles for the four backends the paper evaluates.
BackendProfile nccl_profile();
BackendProfile mv2_gdr_profile();
BackendProfile ompi_profile();
BackendProfile sccl_profile();
// Extensibility demo (paper Section V-B): a host-side Gloo-style backend
// added purely by defining a profile — not part of the paper's evaluation.
BackendProfile gloo_profile();
// All of the above, in the paper's order.
std::vector<BackendProfile> all_backend_profiles();

// β multipliers injected by the fault subsystem: >1 slows the matching link
// class down (link degradation shows up as longer virtual-time transfers).
struct FaultBetaScale {
  double intra = 1.0;
  double inter = 1.0;
};
// Queried per cost evaluation; returns the multipliers active *now* for the
// backend this model belongs to (src/fault/injector.h).
using FaultScaleFn = std::function<FaultBetaScale(OpType)>;

// Bandwidth-sharing state from concurrent tenants (src/sched/): when several
// jobs' transfers occupy the same link class, each job sees only its share of
// the bandwidth. A factor of k divides the link class's achievable β by k —
// the serving scheduler sets it to the job's QoS-weighted oversubscription
// before evaluating that job's costs. Distinct from FaultBetaScale: faults
// model broken hardware, contention models healthy hardware that is merely
// shared. At the identity (the default) every cost is bit-identical to a
// model without the hook, which is what keeps single-job golden traces
// byte-stable.
struct ContentionScale {
  double intra = 1.0;  // NVLink sharing within a node
  double inter = 1.0;  // NIC / fabric sharing across nodes

  bool is_identity() const { return intra == 1.0 && inter == 1.0; }
};

// Aggregate traffic per link class, accumulated by every CostModel the
// owning cluster hands out (see CostModel::set_usage). A plain struct so
// src/net stays free of the obs layer; ClusterContext mirrors it into
// link-utilization gauges at snapshot time. `ops` counts cost-model
// evaluations (one per collective rendezvous or p2p transfer), `busy_us`
// the virtual time those transfers occupied the link class.
//
// Writes are striped per execution-model shard slot (shard_slot.h) so
// concurrent shards never touch the same counters; reads merge the stripes.
// Like the metrics stripes, merged reads are exact at quiescent points
// (between scheduler phases or after run()) — the only places snapshots are
// taken.
struct LinkUsage {
  struct ClassUsage {
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    double busy_us = 0.0;
  };

  void record_intra(std::uint64_t bytes, double busy_us) {
    record(intra_slots_, bytes, busy_us);
  }
  void record_inter(std::uint64_t bytes, double busy_us) {
    record(inter_slots_, bytes, busy_us);
  }

  // Merged totals across all shard stripes.
  ClassUsage intra() const { return merge(intra_slots_); }
  ClassUsage inter() const { return merge(inter_slots_); }

 private:
  using Slots = std::array<ClassUsage, kShardSlots>;

  static void record(Slots& slots, std::uint64_t bytes, double busy_us) {
    ClassUsage& u = slots[static_cast<std::size_t>(shard_slot())];
    ++u.ops;
    u.bytes += bytes;
    u.busy_us += busy_us;
  }
  static ClassUsage merge(const Slots& slots) {
    ClassUsage total;
    for (const ClassUsage& u : slots) {
      total.ops += u.ops;
      total.bytes += u.bytes;
      total.busy_us += u.busy_us;
    }
    return total;
  }

  Slots intra_slots_{};  // NVLink traffic within a node
  Slots inter_slots_{};  // NIC traffic crossing nodes
};

// Evaluates operation costs for one backend over one topology.
class CostModel {
 public:
  CostModel(const Topology* topo, BackendProfile profile);

  // Virtual-time cost of a collective. `bytes` follows the PyTorch
  // convention: the per-rank input payload for allreduce/allgather/
  // reduce_scatter/bcast/gather/scatter, and the *total local buffer* for
  // the alltoall family.
  SimTime collective_cost(OpType op, std::size_t bytes, const CommShape& shape) const;

  // Virtual-time cost of one point-to-point message between two ranks.
  SimTime p2p_cost(std::size_t bytes, int src, int dst) const;

  const BackendProfile& profile() const { return profile_; }
  const Topology& topology() const { return *topo_; }

  // Installs (or clears, with nullptr) the fault-injection β hook. Unset —
  // the default — the cost formulas are untouched, keeping fault-free runs
  // bit-identical to a build without the fault subsystem.
  void set_fault_scale(FaultScaleFn fn) { fault_scale_ = std::move(fn); }

  // Installs the link-usage accumulator (cluster-owned; must outlive the
  // model). Purely observational: recording never changes the returned
  // costs, so attaching it cannot move a virtual-time stamp.
  void set_usage(LinkUsage* usage) { usage_ = usage; }

  // Installs (or clears, with nullptr) the shared tenant-contention state
  // (cluster-owned; must outlive the model). Read per evaluation, so the
  // scheduler can re-weight bandwidth shares between operations without
  // touching the models. Identity state leaves every cost bit-identical.
  void set_contention(const ContentionScale* contention) { contention_ = contention; }

 private:
  // Derived per-shape link terms (bytes/µs and µs).
  struct Terms {
    double alpha_intra;    // per-step latency, intra-node
    double alpha_inter;    // per-step latency, inter-node
    double alpha_mixed;    // ppn-weighted average step latency
    double beta_intra;     // bytes/µs over NVLink (efficiency applied)
    double beta_inter_gpu; // bytes/µs per GPU over the NIC, all ppn active
    double beta_mixed;     // harmonic step mix for ring laps
    double red_bw;         // bytes/µs of reduction arithmetic
    double fault_inter = 1.0;  // active fault β multiplier, inter-node links
  };
  Terms terms_for(const CommShape& shape, OpType op) const;

  bool has(Algo a) const { return profile_.algorithms.count(a) > 0; }

  SimTime allreduce_cost(std::size_t bytes, const CommShape& s, const Terms& t) const;
  SimTime allgather_cost(std::size_t bytes, const CommShape& s, const Terms& t) const;
  SimTime reduce_scatter_cost(std::size_t bytes, const CommShape& s, const Terms& t) const;
  SimTime broadcast_cost(std::size_t bytes, const CommShape& s, const Terms& t) const;
  SimTime reduce_cost(std::size_t bytes, const CommShape& s, const Terms& t) const;
  SimTime gather_cost(std::size_t bytes, const CommShape& s, const Terms& t) const;
  SimTime alltoall_cost(std::size_t bytes, const CommShape& s, const Terms& t) const;
  SimTime barrier_cost(const CommShape& s, const Terms& t) const;

  const Topology* topo_;
  BackendProfile profile_;
  FaultScaleFn fault_scale_;
  LinkUsage* usage_ = nullptr;                     // optional, not owned
  const ContentionScale* contention_ = nullptr;    // optional, not owned
};

// ceil(log2(n)) with log2(1) == 0; shared by the algorithm formulas.
int ceil_log2(int n);

}  // namespace mcrdl::net
