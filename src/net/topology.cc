#include "src/net/topology.h"

#include <algorithm>
#include <map>

namespace mcrdl::net {

SystemConfig SystemConfig::lassen(int num_nodes) {
  MCRDL_REQUIRE(num_nodes >= 1, "lassen node count must be >= 1");
  SystemConfig c;
  c.name = "Lassen";
  c.num_nodes = num_nodes;
  c.gpus_per_node = 4;
  // NVLink2 on a 4-GPU POWER9 node: ~50 GB/s effective per GPU pair.
  c.intra_node = LinkSpec{1.8, 50.0};
  // Mellanox EDR (2 HCAs/node on Lassen): ~21 GB/s node injection; a single
  // GPU pair across nodes sees the full path latency and NIC share.
  c.inter_node = LinkSpec{3.5, 10.5};
  c.nic_bandwidth_gbps = 21.0;
  c.pcie_bandwidth_gbps = 12.0;
  c.pcie_latency_us = 4.0;
  // V100: 15.7 fp32 TFLOPs, ~50 effective mixed-precision TFLOPs for DL.
  c.gpu_tflops = 50.0;
  c.hbm_gbps = 800.0;
  return c;
}

SystemConfig SystemConfig::theta_gpu(int num_nodes) {
  MCRDL_REQUIRE(num_nodes >= 1, "theta_gpu node count must be >= 1");
  SystemConfig c;
  c.name = "ThetaGPU";
  c.num_nodes = num_nodes;
  c.gpus_per_node = 8;
  // NVLink3 / NVSwitch inside a DGX-A100: ~220 GB/s effective per GPU.
  c.intra_node = LinkSpec{1.2, 220.0};
  // 8×HDR-200 HCAs per DGX node: ~20 GB/s per GPU across nodes.
  c.inter_node = LinkSpec{2.5, 20.0};
  c.nic_bandwidth_gbps = 160.0;
  c.pcie_bandwidth_gbps = 24.0;
  c.pcie_latency_us = 3.0;
  // A100: ~150 effective mixed-precision TFLOPs.
  c.gpu_tflops = 150.0;
  c.hbm_gbps = 1550.0;
  return c;
}

Topology::Topology(SystemConfig config) : config_(std::move(config)) {
  MCRDL_REQUIRE(config_.num_nodes >= 1, "topology needs >= 1 node");
  MCRDL_REQUIRE(config_.gpus_per_node >= 1, "topology needs >= 1 GPU per node");
}

int Topology::node_of(int rank) const {
  MCRDL_REQUIRE(rank >= 0 && rank < world_size(), "rank out of range");
  return rank / config_.gpus_per_node;
}

int Topology::local_of(int rank) const {
  MCRDL_REQUIRE(rank >= 0 && rank < world_size(), "rank out of range");
  return rank % config_.gpus_per_node;
}

const LinkSpec& Topology::link(int a, int b) const {
  return same_node(a, b) ? config_.intra_node : config_.inter_node;
}

double Topology::inter_node_bw_per_gpu(int concurrent) const {
  MCRDL_REQUIRE(concurrent >= 1, "concurrent GPU count must be >= 1");
  double share = config_.nic_bandwidth_gbps / static_cast<double>(concurrent);
  // Several local ranks arbitrating for the HCAs do not reach the clean
  // division of the injection bandwidth — the fan-in through the PCIe root
  // complex and per-QP scheduling costs a fixed fraction of the share.
  if (concurrent > 1) share *= config_.nic_sharing_eff;
  // A single GPU cannot exceed its own HCA path.
  return std::min(share, config_.inter_node.bandwidth_gbps);
}

NodePartition node_partition(const Topology& topo, const std::vector<int>& ranks) {
  MCRDL_REQUIRE(!ranks.empty(), "node_partition needs at least one rank");
  // Keyed map: nodes come out in ascending id whatever order `ranks` is in.
  std::map<int, std::vector<int>> by_node;
  for (int r : ranks) {
    MCRDL_REQUIRE(r >= 0 && r < topo.world_size(), "rank out of range for topology");
    by_node[topo.node_of(r)].push_back(r);
  }
  NodePartition out;
  out.intra.reserve(by_node.size());
  out.leaders.reserve(by_node.size());
  for (auto& [node, members] : by_node) {
    (void)node;
    std::sort(members.begin(), members.end());
    out.leaders.push_back(members.front());
    out.intra.push_back(std::move(members));
  }
  return out;
}

}  // namespace mcrdl::net
