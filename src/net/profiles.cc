// Performance personalities of the four communication backends the paper
// evaluates (Section VI-2). Constants are calibrated so that the paper's
// observed orderings hold on the simulated Lassen/ThetaGPU topologies:
//   * MVAPICH2-GDR: best small-message latency, best Alltoall at scale,
//     weak large-message Allreduce bandwidth.
//   * NCCL: high launch overhead, best large-message Allreduce/ReduceScatter,
//     poor Alltoall (p2p-based, per-peer latency scales with P).
//   * OpenMPI: trails MVAPICH2-GDR across the board.
//   * SCCL (MSCCL): costly synthesized-schedule launch, best large All_gather
//     (Table II) and strong dense-model collectives (Fig 10).
// tests/net/calibration_test.cc pins these orderings.
#include "src/net/cost.h"

namespace mcrdl::net {

BackendProfile nccl_profile() {
  BackendProfile p;
  p.name = "nccl";
  p.display_name = "NCCL";
  p.launch_overhead_us = 18.0;
  p.step_latency_us = 0.3;
  // Per-peer send/recv pair launch cost — the term that makes NCCL's
  // p2p-based Alltoall scale poorly with world size (paper Section I-C).
  p.p2p_latency_us = 8.0;
  p.reduction_gbps = 600.0;
  p.eager_threshold = 0;
  p.rendezvous_overhead_us = 0.0;
  p.ring_pipeline_factor = 0.15;  // chunked kernels hide most link latency
  p.stream_aware = true;
  p.native_vector_collectives = false;
  p.supports_all_ops = false;
  p.algorithms = {Algo::Ring, Algo::DoubleBinaryTree, Algo::PairwiseExchange};
  p.native_ops = {OpType::Send,          OpType::Recv,          OpType::Broadcast,
                  OpType::Reduce,        OpType::AllReduce,     OpType::AllGather,
                  OpType::ReduceScatter, OpType::AllToAll,      OpType::AllToAllSingle,
                  OpType::Barrier};
  p.default_bw_eff = 0.88;
  p.bw_eff[OpType::AllReduce] = 0.92;
  p.bw_eff[OpType::ReduceScatter] = 0.92;
  p.bw_eff[OpType::AllGather] = 0.80;
  p.bw_eff[OpType::AllToAll] = 0.70;
  p.bw_eff[OpType::AllToAllSingle] = 0.70;
  p.bw_eff[OpType::AllToAllV] = 0.70;
  return p;
}

BackendProfile mv2_gdr_profile() {
  BackendProfile p;
  p.name = "mv2-gdr";
  p.display_name = "MVAPICH2-GDR";
  p.launch_overhead_us = 2.2;
  p.step_latency_us = 0.7;
  p.p2p_latency_us = 0.9;
  p.reduction_gbps = 300.0;
  p.eager_threshold = 17408;  // MVAPICH-style eager/rendezvous switch
  p.rendezvous_overhead_us = 6.0;
  p.ring_pipeline_factor = 1.0;  // host-driven rings expose full link latency
  p.intra_bw_scale = 0.5;        // CUDA-IPC path reaches half of NVLink
  p.stream_aware = false;
  p.native_vector_collectives = true;
  p.supports_all_ops = true;
  p.algorithms = {Algo::Ring,     Algo::RecursiveDoubling, Algo::BinomialTree,
                  Algo::Bruck,    Algo::PairwiseExchange,  Algo::ScatteredExchange,
                  Algo::TwoLevel};
  p.default_bw_eff = 0.70;
  p.bw_eff[OpType::AllReduce] = 0.70;
  p.bw_eff[OpType::ReduceScatter] = 0.70;
  // No reduction staging on the gather path: better wire efficiency than the
  // reducing collectives (0.70 above). The magnitude is pinned by the
  // Table II fit (tests/net/calibration_test.cc): at 0.70 the small-message
  // all_gather cells the paper gives to MVAPICH2-GDR flip away from it.
  // Orthogonal to the BENCH_hier gate — hier composites decompose into
  // reduce/allreduce/broadcast and never touch the gather path.
  // The vector variant shares the same wire path, so it shares the number.
  p.bw_eff[OpType::AllGather] = 0.78;
  p.bw_eff[OpType::AllGatherV] = 0.78;
  p.bw_eff[OpType::AllToAll] = 0.85;
  p.bw_eff[OpType::AllToAllSingle] = 0.85;
  p.bw_eff[OpType::AllToAllV] = 0.85;
  return p;
}

BackendProfile ompi_profile() {
  BackendProfile p;
  p.name = "ompi";
  p.display_name = "OpenMPI";
  p.launch_overhead_us = 3.6;
  p.step_latency_us = 1.1;
  p.p2p_latency_us = 1.5;
  p.reduction_gbps = 250.0;
  p.eager_threshold = 12288;
  p.rendezvous_overhead_us = 8.0;
  p.ring_pipeline_factor = 1.0;
  p.intra_bw_scale = 0.45;
  p.stream_aware = false;
  p.native_vector_collectives = true;
  p.supports_all_ops = true;
  p.algorithms = {Algo::Ring, Algo::RecursiveDoubling, Algo::BinomialTree, Algo::Bruck,
                  Algo::PairwiseExchange, Algo::TwoLevel};
  p.default_bw_eff = 0.60;
  p.bw_eff[OpType::AllReduce] = 0.48;
  p.bw_eff[OpType::ReduceScatter] = 0.48;
  p.bw_eff[OpType::AllGather] = 0.62;
  p.bw_eff[OpType::AllToAll] = 0.65;
  p.bw_eff[OpType::AllToAllSingle] = 0.65;
  p.bw_eff[OpType::AllToAllV] = 0.65;
  return p;
}

BackendProfile sccl_profile() {
  BackendProfile p;
  p.name = "sccl";
  p.display_name = "SCCL";
  p.overlapped_two_level = true;
  // Schedule-interpreter startup: a NCCL-class kernel launch plus on-device
  // fetch/decode of the synthesized instruction DAG, so small-message
  // latency sits well above nccl's 18 us. The magnitude is pinned by the
  // Table II fit (tests/net/calibration_test.cc), not by any composite
  // experiment: at the old 43 us sccl steals the 4-8 KiB all_gather cells
  // the paper gives to NCCL; at 50 us the >=16 KiB cells stay sccl's on
  // wire efficiency alone.
  p.launch_overhead_us = 50.0;
  p.step_latency_us = 1.6;
  p.p2p_latency_us = 2.2;
  p.reduction_gbps = 500.0;
  p.eager_threshold = 0;
  p.rendezvous_overhead_us = 0.0;
  p.ring_pipeline_factor = 0.2;
  p.stream_aware = true;
  p.native_vector_collectives = false;
  p.supports_all_ops = false;
  p.algorithms = {Algo::Ring, Algo::DoubleBinaryTree, Algo::TwoLevel, Algo::PairwiseExchange,
                  Algo::ScatteredExchange};
  p.native_ops = {OpType::Send,          OpType::Recv,      OpType::Broadcast,
                  OpType::Reduce,        OpType::AllReduce, OpType::AllGather,
                  OpType::ReduceScatter, OpType::AllToAll,  OpType::AllToAllSingle,
                  OpType::Barrier};
  p.default_bw_eff = 0.88;
  p.bw_eff[OpType::AllReduce] = 0.90;
  p.bw_eff[OpType::ReduceScatter] = 0.90;
  p.bw_eff[OpType::AllGather] = 0.97;
  p.bw_eff[OpType::AllToAll] = 0.72;
  p.bw_eff[OpType::AllToAllSingle] = 0.72;
  p.bw_eff[OpType::AllToAllV] = 0.72;
  return p;
}

BackendProfile gloo_profile() {
  BackendProfile p;
  p.name = "gloo";
  p.display_name = "Gloo";
  // Host-side rendezvous library: every payload crosses PCIe, so effective
  // bandwidth is poor and latency mediocre — included to demonstrate the
  // "Backend as a Class" extensibility (paper Section V-B), not to win.
  p.launch_overhead_us = 10.0;
  p.step_latency_us = 2.0;
  p.p2p_latency_us = 3.0;
  p.reduction_gbps = 40.0;  // reductions run on the CPU
  p.eager_threshold = 8192;
  p.rendezvous_overhead_us = 12.0;
  p.ring_pipeline_factor = 1.0;
  p.intra_bw_scale = 0.25;
  p.stream_aware = false;
  p.native_vector_collectives = true;
  p.supports_all_ops = true;
  p.algorithms = {Algo::Ring, Algo::RecursiveDoubling, Algo::BinomialTree, Algo::Bruck,
                  Algo::PairwiseExchange};
  p.default_bw_eff = 0.35;
  return p;
}

std::vector<BackendProfile> all_backend_profiles() {
  return {mv2_gdr_profile(), ompi_profile(), nccl_profile(), sccl_profile()};
}

}  // namespace mcrdl::net
