// Minimal JSON support for the observability layer: escaping for the
// writers (metrics snapshots, Chrome traces, BENCH_*.json) and a strict
// recursive-descent parser for the readers (tests and `bench_export
// --check`). Strict means strict: trailing garbage, unescaped control
// characters, bad \u sequences, lone surrogates and malformed numbers all
// throw InvalidArgument with the byte offset of the problem, so a writer
// regression fails loudly instead of producing a file Perfetto (or a future
// CI gate) silently rejects.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace mcrdl::obs {

// Escapes `s` for embedding inside a JSON string literal: quote, backslash,
// and every control byte < 0x20 (named escapes for \b \t \n \f \r, \u00XX
// for the rest). Everything else passes through untouched.
std::string json_escape(const std::string& s);

// One parsed JSON value. A tagged struct rather than a variant tree: the
// consumers are tests and schema checks, which want cheap field access, not
// a DOM API.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  // Object member lookup; nullptr when absent (or when not an object).
  const JsonValue* find(const std::string& key) const;
  // As find(), but throws InvalidArgument naming the missing key.
  const JsonValue& at(const std::string& key) const;
};

// Parses exactly one JSON document covering the whole input; anything after
// the document besides whitespace is an error. Throws InvalidArgument.
JsonValue parse_json(const std::string& text);

}  // namespace mcrdl::obs
