#include "src/obs/metrics.h"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "src/common/status.h"
#include "src/obs/json.h"

namespace mcrdl::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  MCRDL_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  MCRDL_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
                "histogram bounds must be strictly increasing");
  for (Slot& slot : slots_) slot.counts.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  Slot& slot = slots_[shard_slot()];
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++slot.counts[static_cast<std::size_t>(it - bounds_.begin())];
  ++slot.count;
  slot.sum += value;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.count;
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Slot& slot : slots_) total += slot.sum;
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> merged(bounds_.size() + 1, 0);
  for (const Slot& slot : slots_) {
    for (std::size_t i = 0; i < merged.size(); ++i) merged[i] += slot.counts[i];
  }
  return merged;
}

std::vector<double> Histogram::default_latency_bounds_us() {
  std::vector<double> bounds;
  bounds.reserve(21);
  for (int i = 0; i <= 20; ++i) bounds.push_back(static_cast<double>(1u << i));
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  const Key key{name, labels};
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = counters_.find(key);
    if (it != counters_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  return counters_[key];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  const Key key{name, labels};
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = gauges_.find(key);
    if (it != gauges_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  return gauges_[key];
}

Histogram& MetricsRegistry::histogram(const std::string& name, const Labels& labels,
                                      std::vector<double> bounds) {
  const Key key{name, labels};
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = histograms_.find(key);
    if (it != histograms_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::default_latency_bounds_us();
    it = histograms_.emplace(key, Histogram(std::move(bounds))).first;
  }
  return it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name, const Labels& labels) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = counters_.find({name, labels});
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::gauge_value(const std::string& name, const Labels& labels) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = gauges_.find({name, labels});
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const Labels& labels) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = histograms_.find({name, labels});
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_total(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters_) {
    if (key.first == name) total += c.value();
  }
  return total;
}

std::size_t MetricsRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

// Doubles in snapshots: plain decimal with enough precision to round-trip
// typical virtual-time values; never emits inf/nan (callers record finite
// values only).
void append_number(std::ostringstream& out, double v) {
  std::ostringstream num;
  num.precision(12);
  num << v;
  out << num.str();
}

void append_labels(std::ostringstream& out, const Labels& labels) {
  out << "\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
  }
  out << "}";
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":[";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(key.first) << "\",";
    append_labels(out, key.second);
    out << ",\"value\":" << c.value() << "}";
  }
  out << "],\"gauges\":[";
  first = true;
  for (const auto& [key, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(key.first) << "\",";
    append_labels(out, key.second);
    out << ",\"value\":";
    append_number(out, g.value());
    out << "}";
  }
  out << "],\"histograms\":[";
  first = true;
  for (const auto& [key, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(key.first) << "\",";
    append_labels(out, key.second);
    out << ",\"count\":" << h.count() << ",\"sum\":";
    append_number(out, h.sum());
    out << ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i > 0) out << ",";
      append_number(out, h.bounds()[i]);
    }
    out << "],\"buckets\":[";
    const std::vector<std::uint64_t> buckets = h.bucket_counts();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (i > 0) out << ",";
      out << buckets[i];
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace mcrdl::obs
