#include "src/obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "src/common/status.h"
#include "src/obs/json.h"

namespace mcrdl::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  MCRDL_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  MCRDL_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
                "histogram bounds must be strictly increasing");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

std::vector<double> Histogram::default_latency_bounds_us() {
  std::vector<double> bounds;
  bounds.reserve(21);
  for (int i = 0; i <= 20; ++i) bounds.push_back(static_cast<double>(1u << i));
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  return counters_[{name, labels}];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return gauges_[{name, labels}];
}

Histogram& MetricsRegistry::histogram(const std::string& name, const Labels& labels,
                                      std::vector<double> bounds) {
  const Key key{name, labels};
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::default_latency_bounds_us();
    it = histograms_.emplace(key, Histogram(std::move(bounds))).first;
  }
  return it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name, const Labels& labels) const {
  auto it = counters_.find({name, labels});
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::gauge_value(const std::string& name, const Labels& labels) const {
  auto it = gauges_.find({name, labels});
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const Labels& labels) const {
  auto it = histograms_.find({name, labels});
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_total(const std::string& name) const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters_) {
    if (key.first == name) total += c.value();
  }
  return total;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

// Doubles in snapshots: plain decimal with enough precision to round-trip
// typical virtual-time values; never emits inf/nan (callers record finite
// values only).
void append_number(std::ostringstream& out, double v) {
  std::ostringstream num;
  num.precision(12);
  num << v;
  out << num.str();
}

void append_labels(std::ostringstream& out, const Labels& labels) {
  out << "\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
  }
  out << "}";
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  out << "{\"counters\":[";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(key.first) << "\",";
    append_labels(out, key.second);
    out << ",\"value\":" << c.value() << "}";
  }
  out << "],\"gauges\":[";
  first = true;
  for (const auto& [key, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(key.first) << "\",";
    append_labels(out, key.second);
    out << ",\"value\":";
    append_number(out, g.value());
    out << "}";
  }
  out << "],\"histograms\":[";
  first = true;
  for (const auto& [key, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(key.first) << "\",";
    append_labels(out, key.second);
    out << ",\"count\":" << h.count() << ",\"sum\":";
    append_number(out, h.sum());
    out << ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i > 0) out << ",";
      append_number(out, h.bounds()[i]);
    }
    out << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
      if (i > 0) out << ",";
      out << h.bucket_counts()[i];
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace mcrdl::obs
