// MetricsRegistry — the always-on observability spine (paper Section V-E).
//
// The paper's logging extension produced Figures 1 and 12 by attributing
// communication time per operation and per backend; this registry is the
// machine-readable equivalent for the simulator. Three instrument kinds:
//
//   * Counter    — monotonically increasing uint64 (ops, bytes, retries...)
//   * Gauge      — last-written double (link utilization, queue depths...)
//   * Histogram  — fixed-bucket latency distribution (power-of-two µs
//                  bounds by default, 1µs .. ~1s), with count and sum so
//                  means are recoverable without the buckets.
//
// Instruments are keyed by (name, label map); labels are sorted maps so the
// JSON snapshot is deterministic. References returned by counter()/gauge()/
// histogram() stay valid for the registry's lifetime (std::map nodes are
// stable), so hot paths can cache the pointer and skip the lookup.
//
// Determinism contract: recording is purely observational — it never touches
// the scheduler, sleeps, or allocates device memory — so enabling metrics
// cannot move a single virtual-time stamp (the golden-trace tests pin this).
//
// Execution models (DESIGN.md §11): under SerialBaton every write happens on
// the baton, one thread at a time. Under ParallelShards, actors on different
// shards record concurrently, so counters and histograms stripe their state
// across kShardSlots per-shard slots (indexed by the thread-local
// shard_slot(); slot 0 is the serial/controller slot). Each slot has exactly
// one writer at a time — the shard's single running actor — and the engine's
// mutex handoffs provide the happens-before edges, so writes need no
// atomics. Readers merge slots in index order, which keeps snapshots
// reproducible for a fixed (model, threads) configuration; counters and
// bucket counts are integer-exact across configurations, while histogram
// sums may differ in final ULPs from the serial engine because floating
// point addition is reassociated. Instrument *creation* mutates the registry
// maps and is the one place that takes a lock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/shard_slot.h"

namespace mcrdl::obs {

using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { slots_[shard_slot()] += delta; }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (std::uint64_t v : slots_) total += v;
    return total;
  }

 private:
  std::array<std::uint64_t, kShardSlots> slots_{};
};

// Last-write-wins; the store is atomic so concurrent shards setting the same
// gauge (rare — gauges are normally per-rank labelled or written outside
// run()) are a benign race rather than undefined behaviour.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  // `bounds` are inclusive upper bucket edges, strictly increasing; one
  // overflow bucket is appended implicitly.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  std::uint64_t count() const;
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  // bucket_counts().size() == bounds().size() + 1; the last is overflow.
  // Merged across shard slots; recomputed on each call.
  std::vector<std::uint64_t> bucket_counts() const;

  // Power-of-two microsecond edges: 1, 2, 4, ..., 2^20 (≈ 1s).
  static std::vector<double> default_latency_bounds_us();

 private:
  struct Slot {
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::vector<double> bounds_;
  std::array<Slot, kShardSlots> slots_;
};

class MetricsRegistry {
 public:
  // Find-or-create. The returned reference is stable; cache it on hot paths.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  // `bounds` applies only on first creation; empty = default latency edges.
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> bounds = {});

  // Read-only lookups for tests and reporters; zero/null when absent.
  std::uint64_t counter_value(const std::string& name, const Labels& labels = {}) const;
  double gauge_value(const std::string& name, const Labels& labels = {}) const;
  const Histogram* find_histogram(const std::string& name, const Labels& labels = {}) const;

  // Sum of a counter over every label combination it was recorded with.
  std::uint64_t counter_total(const std::string& name) const;

  std::size_t size() const;
  void clear();

  // Deterministic snapshot:
  //   {"counters":[{"name":...,"labels":{...},"value":N},...],
  //    "gauges":[...{"value":F}...],
  //    "histograms":[...{"count":N,"sum":F,"bounds":[...],"buckets":[...]}...]}
  std::string to_json() const;

 private:
  using Key = std::pair<std::string, Labels>;

  // Guards map structure only; instrument writes go through the striped
  // slots and never take it. Reader/writer: find-or-create hits (the steady
  // state — every instrument exists after the first step) share the lock so
  // concurrent shards resolve instruments without serializing; only the
  // first-creation miss path takes it exclusively.
  mutable std::shared_mutex mu_;
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

}  // namespace mcrdl::obs
