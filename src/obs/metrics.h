// MetricsRegistry — the always-on observability spine (paper Section V-E).
//
// The paper's logging extension produced Figures 1 and 12 by attributing
// communication time per operation and per backend; this registry is the
// machine-readable equivalent for the simulator. Three instrument kinds:
//
//   * Counter    — monotonically increasing uint64 (ops, bytes, retries...)
//   * Gauge      — last-written double (link utilization, queue depths...)
//   * Histogram  — fixed-bucket latency distribution (power-of-two µs
//                  bounds by default, 1µs .. ~1s), with count and sum so
//                  means are recoverable without the buckets.
//
// Instruments are keyed by (name, label map); labels are sorted maps so the
// JSON snapshot is deterministic. References returned by counter()/gauge()/
// histogram() stay valid for the registry's lifetime (std::map nodes are
// stable), so hot paths can cache the pointer and skip the lookup.
//
// Determinism contract: recording is purely observational — it never touches
// the scheduler, sleeps, or allocates device memory — so enabling metrics
// cannot move a single virtual-time stamp (the golden-trace tests pin this).
// The simulator is single-batoned, so no locking is needed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mcrdl::obs {

using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  // `bounds` are inclusive upper bucket edges, strictly increasing; one
  // overflow bucket is appended implicitly.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  // bucket_counts().size() == bounds().size() + 1; the last is overflow.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  // Power-of-two microsecond edges: 1, 2, 4, ..., 2^20 (≈ 1s).
  static std::vector<double> default_latency_bounds_us();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  // Find-or-create. The returned reference is stable; cache it on hot paths.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  // `bounds` applies only on first creation; empty = default latency edges.
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> bounds = {});

  // Read-only lookups for tests and reporters; zero/null when absent.
  std::uint64_t counter_value(const std::string& name, const Labels& labels = {}) const;
  double gauge_value(const std::string& name, const Labels& labels = {}) const;
  const Histogram* find_histogram(const std::string& name, const Labels& labels = {}) const;

  // Sum of a counter over every label combination it was recorded with.
  std::uint64_t counter_total(const std::string& name) const;

  std::size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }
  void clear();

  // Deterministic snapshot:
  //   {"counters":[{"name":...,"labels":{...},"value":N},...],
  //    "gauges":[...{"value":F}...],
  //    "histograms":[...{"count":N,"sum":F,"bounds":[...],"buckets":[...]}...]}
  std::string to_json() const;

 private:
  using Key = std::pair<std::string, Labels>;

  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

}  // namespace mcrdl::obs
