#include "src/obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/common/status.h"

namespace mcrdl::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw InvalidArgument("JSON object has no member '" + key + "'");
  }
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("JSON parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char take() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (eof() || text_[pos_] != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  JsonValue parse_value() {
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.str = parse_string();
        return v;
      }
      case 't':
        parse_literal("true");
        return make_bool(true);
      case 'f':
        parse_literal("false");
        return make_bool(false);
      case 'n':
        parse_literal("null");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
  }

  void parse_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (eof() || text_[pos_] != *p) fail(std::string("invalid literal; expected '") + lit + "'");
      ++pos_;
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (v.object.count(key) != 0) fail("duplicate object key '" + key + "'");
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      v.array.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    return value;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (eof() || take() != '\\' || eof() || take() != 'u') {
              fail("high surrogate not followed by \\u low surrogate");
            }
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid fraction");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace mcrdl::obs
