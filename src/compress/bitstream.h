// Bit-granular writer/reader used by the fixed-rate codec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace mcrdl::compress {

class BitWriter {
 public:
  // Appends the low `bits` bits of value (LSB first).
  void write(std::uint64_t value, int bits);
  // Pads to a byte boundary and returns the buffer.
  std::vector<std::byte> finish();
  std::size_t bits_written() const { return total_bits_; }

 private:
  std::vector<std::byte> bytes_;
  std::uint64_t acc_ = 0;
  int acc_bits_ = 0;
  std::size_t total_bits_ = 0;
};

class BitReader {
 public:
  BitReader(const std::byte* data, std::size_t size) : data_(data), size_(size) {}
  explicit BitReader(const std::vector<std::byte>& buf) : BitReader(buf.data(), buf.size()) {}

  // Reads `bits` bits (LSB first). Reading past the end throws.
  std::uint64_t read(int bits);
  std::size_t bits_consumed() const { return bit_pos_; }

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t bit_pos_ = 0;
};

}  // namespace mcrdl::compress
