// Fixed-rate lossy floating-point codec in the spirit of zfp
// (Lindstrom 2014), the library the paper's compression extension uses.
//
// Values are processed in blocks of 4: block-floating-point normalisation
// against the block's maximum exponent, zfp's reversible 4-point
// decorrelating lifting transform on the quantised integers, then truncation
// of each coefficient to a fixed bit budget (more bits for low-frequency
// coefficients). The rate is exactly `bits_per_value` amortised bits per
// value plus a small per-block exponent header — so the compressed size of a
// message is known up front, which is what a communication runtime needs to
// pre-size buffers.
#pragma once

#include <cstddef>
#include <vector>

#include "src/tensor/tensor.h"

namespace mcrdl::compress {

struct ZfpConfig {
  // Amortised payload bits per value, 4..28. 8 gives ~4x over f32.
  int bits_per_value = 8;
};

class ZfpCodec {
 public:
  explicit ZfpCodec(ZfpConfig config = {});

  // Compressed size in bytes for `numel` values (exact, rate is fixed).
  std::size_t compressed_bytes(std::int64_t numel) const;
  // Compression ratio versus the tensor's own dtype width.
  double ratio(DType dtype) const;

  // Compresses a floating tensor (F16/BF16/F32/F64 via double conversion).
  std::vector<std::byte> compress(const Tensor& t) const;
  // Decompresses into `out` (must have the same numel the data was
  // compressed from).
  void decompress(const std::vector<std::byte>& buf, Tensor& out) const;

  // Maximum absolute reconstruction error for values within a block whose
  // largest magnitude is `block_max`.
  double error_bound(double block_max) const;

  const ZfpConfig& config() const { return config_; }

 private:
  ZfpConfig config_;
};

}  // namespace mcrdl::compress
