#include "src/compress/zfp_codec.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/compress/bitstream.h"

namespace mcrdl::compress {

namespace {

constexpr int kBlock = 4;
constexpr int kHeaderBits = 12;       // biased block exponent (0 = all-zero block)
constexpr int kExponentBias = 2048;

// Quantisation precision: integers carry bits_per_value + 6 significant
// bits before the transform, so truncation error dominates quantisation.
int quant_precision(int bits_per_value) { return std::min(bits_per_value + 6, 29); }

// Per-coefficient bit budgets: low-frequency coefficients get more bits.
// Sums to 4 * bits_per_value.
void coefficient_bits(int bits_per_value, int out[kBlock]) {
  out[0] = bits_per_value + 1;
  out[1] = bits_per_value + 1;
  out[2] = bits_per_value - 1;
  out[3] = bits_per_value - 1;
  for (int k = 0; k < kBlock; ++k) out[k] = std::clamp(out[k], 2, 40);
}

// Reversible two-level S-transform on 4 integers (Haar-style lifting with
// arithmetic shifts, the decorrelation idea of zfp's block transform).
void forward_transform(std::int64_t v[kBlock]) {
  std::int64_t s01 = (v[0] + v[1]) >> 1, d01 = v[0] - v[1];
  std::int64_t s23 = (v[2] + v[3]) >> 1, d23 = v[2] - v[3];
  std::int64_t s = (s01 + s23) >> 1, d = s01 - s23;
  v[0] = s;
  v[1] = d;
  v[2] = d01;
  v[3] = d23;
}

void inverse_transform(std::int64_t v[kBlock]) {
  const std::int64_t s = v[0], d = v[1], d01 = v[2], d23 = v[3];
  const std::int64_t s01 = s + ((d + 1) >> 1);
  const std::int64_t s23 = s01 - d;
  std::int64_t out[kBlock];
  out[0] = s01 + ((d01 + 1) >> 1);
  out[1] = out[0] - d01;
  out[2] = s23 + ((d23 + 1) >> 1);
  out[3] = out[2] - d23;
  std::copy(out, out + kBlock, v);
}

// Encodes a signed value in `bits` bits after dropping `shift` low bits
// (round to nearest), saturating at the representable range.
std::uint64_t encode_coeff(std::int64_t c, int bits, int shift) {
  std::int64_t scaled = shift > 0 ? ((c >= 0 ? c + (std::int64_t{1} << (shift - 1))
                                             : c - (std::int64_t{1} << (shift - 1))) >>
                                     shift)
                                  : c;
  const std::int64_t lim = (std::int64_t{1} << (bits - 1)) - 1;
  scaled = std::clamp(scaled, -lim - 1, lim);
  return static_cast<std::uint64_t>(scaled + lim + 1);  // bias to unsigned
}

std::int64_t decode_coeff(std::uint64_t raw, int bits, int shift) {
  const std::int64_t lim = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t val = static_cast<std::int64_t>(raw) - lim - 1;
  return val << shift;
}

}  // namespace

ZfpCodec::ZfpCodec(ZfpConfig config) : config_(config) {
  MCRDL_REQUIRE(config_.bits_per_value >= 4 && config_.bits_per_value <= 28,
                "zfp bits_per_value must be in [4, 28]");
}

std::size_t ZfpCodec::compressed_bytes(std::int64_t numel) const {
  MCRDL_REQUIRE(numel >= 0, "negative element count");
  const std::int64_t blocks = (numel + kBlock - 1) / kBlock;
  const std::size_t bits =
      static_cast<std::size_t>(blocks) *
      (kHeaderBits + static_cast<std::size_t>(kBlock * config_.bits_per_value));
  return (bits + 7) / 8;
}

double ZfpCodec::ratio(DType dtype) const {
  const double raw_bits = 8.0 * static_cast<double>(dtype_size(dtype));
  const double comp_bits =
      config_.bits_per_value + static_cast<double>(kHeaderBits) / kBlock;
  return raw_bits / comp_bits;
}

double ZfpCodec::error_bound(double block_max) const {
  // The difference coefficients carry bits_per_value-1 bits after a shift of
  // prec+3-bits, giving a truncation step of ~2^(5-bits) relative to the
  // block maximum; the inverse transform can spread one more bit of it.
  return std::abs(block_max) * std::ldexp(1.0, -(config_.bits_per_value - 6));
}

std::vector<std::byte> ZfpCodec::compress(const Tensor& t) const {
  MCRDL_REQUIRE(t.defined() && t.materialized(), "compress needs a materialized tensor");
  MCRDL_REQUIRE(is_floating(t.dtype()), "zfp codec compresses floating tensors only");
  const int prec = quant_precision(config_.bits_per_value);
  int bits[kBlock];
  coefficient_bits(config_.bits_per_value, bits);

  BitWriter out;
  const std::int64_t n = t.numel();
  for (std::int64_t base = 0; base < n; base += kBlock) {
    double vals[kBlock] = {0, 0, 0, 0};
    double block_max = 0.0;
    for (int k = 0; k < kBlock && base + k < n; ++k) {
      vals[k] = t.get(base + k);
      block_max = std::max(block_max, std::abs(vals[k]));
    }
    if (block_max == 0.0) {
      out.write(0, kHeaderBits);  // all-zero block, no payload
      continue;
    }
    int e = 0;
    (void)std::frexp(block_max, &e);  // block_max = m * 2^e, m in [0.5, 1)
    out.write(static_cast<std::uint64_t>(e + kExponentBias), kHeaderBits);

    // Quantise to prec-bit integers against the block exponent.
    const double scale = std::ldexp(1.0, prec - 1 - e);
    std::int64_t q[kBlock];
    for (int k = 0; k < kBlock; ++k) q[k] = std::llround(vals[k] * scale);
    forward_transform(q);
    for (int k = 0; k < kBlock; ++k) {
      const int shift = std::max(0, prec + 2 - bits[k]);
      out.write(encode_coeff(q[k], bits[k], shift), bits[k]);
    }
  }
  return out.finish();
}

void ZfpCodec::decompress(const std::vector<std::byte>& buf, Tensor& out) const {
  MCRDL_REQUIRE(out.defined() && out.materialized(), "decompress needs a materialized output");
  MCRDL_REQUIRE(is_floating(out.dtype()), "zfp codec decompresses floating tensors only");
  const int prec = quant_precision(config_.bits_per_value);
  int bits[kBlock];
  coefficient_bits(config_.bits_per_value, bits);

  BitReader in(buf);
  const std::int64_t n = out.numel();
  for (std::int64_t base = 0; base < n; base += kBlock) {
    const std::uint64_t header = in.read(kHeaderBits);
    if (header == 0) {
      for (int k = 0; k < kBlock && base + k < n; ++k) out.set(base + k, 0.0);
      continue;
    }
    const int e = static_cast<int>(header) - kExponentBias;
    std::int64_t q[kBlock];
    for (int k = 0; k < kBlock; ++k) {
      const int shift = std::max(0, prec + 2 - bits[k]);
      q[k] = decode_coeff(in.read(bits[k]), bits[k], shift);
    }
    inverse_transform(q);
    const double inv_scale = std::ldexp(1.0, e - (prec - 1));
    for (int k = 0; k < kBlock && base + k < n; ++k) {
      out.set(base + k, static_cast<double>(q[k]) * inv_scale);
    }
  }
}

}  // namespace mcrdl::compress
