#include "src/compress/bitstream.h"

namespace mcrdl::compress {

void BitWriter::write(std::uint64_t value, int bits) {
  MCRDL_REQUIRE(bits >= 0 && bits <= 57, "BitWriter supports 0..57 bits per write");
  if (bits < 64) value &= (std::uint64_t{1} << bits) - 1;
  acc_ |= value << acc_bits_;
  acc_bits_ += bits;
  total_bits_ += static_cast<std::size_t>(bits);
  while (acc_bits_ >= 8) {
    bytes_.push_back(static_cast<std::byte>(acc_ & 0xFF));
    acc_ >>= 8;
    acc_bits_ -= 8;
  }
}

std::vector<std::byte> BitWriter::finish() {
  if (acc_bits_ > 0) {
    bytes_.push_back(static_cast<std::byte>(acc_ & 0xFF));
    acc_ = 0;
    acc_bits_ = 0;
  }
  return std::move(bytes_);
}

std::uint64_t BitReader::read(int bits) {
  MCRDL_REQUIRE(bits >= 0 && bits <= 57, "BitReader supports 0..57 bits per read");
  std::uint64_t value = 0;
  for (int got = 0; got < bits;) {
    const std::size_t byte_index = bit_pos_ >> 3;
    MCRDL_REQUIRE(byte_index < size_, "BitReader: read past end of stream");
    const int bit_in_byte = static_cast<int>(bit_pos_ & 7);
    const int take = std::min(8 - bit_in_byte, bits - got);
    const std::uint64_t chunk =
        (static_cast<std::uint64_t>(data_[byte_index]) >> bit_in_byte) & ((1u << take) - 1);
    value |= chunk << got;
    got += take;
    bit_pos_ += static_cast<std::size_t>(take);
  }
  return value;
}

}  // namespace mcrdl::compress
